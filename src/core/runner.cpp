#include "core/runner.h"

#include <algorithm>

namespace sysnoise::core {

using models::benchmark_cls_dataset;
using models::benchmark_det_dataset;
using models::benchmark_seg_dataset;
using models::cls_pipeline_spec;
using models::det_pipeline_spec;

SysNoiseConfig combined_config(bool has_maxpool, bool with_upsample,
                               bool with_postproc) {
  SysNoiseConfig cfg;
  cfg.decoder = jpeg::DecoderVendor::kDALI;
  cfg.resize = ResizeMethod::kOpenCVNearest;
  cfg.color = ColorMode::kNv12RoundTrip;
  cfg.precision = nn::Precision::kINT8;
  cfg.ceil_mode = has_maxpool;
  if (with_upsample) cfg.upsample = nn::UpsampleMode::kBilinear;
  if (with_postproc) cfg.proposal_offset = 1.0f;
  return cfg;
}

namespace {

// Generic sweep over the shared noise axes given a metric evaluator
// eval(cfg) -> metric. Fills the row fields common to all tasks.
template <typename EvalFn>
void sweep_common(NoiseRow& row, bool has_maxpool, const EvalFn& eval) {
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  row.trained = eval(base);

  // Decoder: mean/max over the three alternate vendors.
  {
    double sum = 0.0, worst = -1e30;
    for (auto v : decoder_noise_options()) {
      SysNoiseConfig c = base;
      c.decoder = v;
      const double d = row.trained - eval(c);
      sum += d;
      worst = std::max(worst, d);
    }
    row.decode_mean = sum / static_cast<double>(decoder_noise_options().size());
    row.decode_max = worst;
  }
  // Resize: mean/max over the ten alternate methods.
  {
    double sum = 0.0, worst = -1e30;
    for (auto m : resize_noise_options()) {
      SysNoiseConfig c = base;
      c.resize = m;
      const double d = row.trained - eval(c);
      sum += d;
      worst = std::max(worst, d);
    }
    row.resize_mean = sum / static_cast<double>(resize_noise_options().size());
    row.resize_max = worst;
  }
  // Color mode (NV12 round trip).
  {
    SysNoiseConfig c = base;
    c.color = ColorMode::kNv12RoundTrip;
    row.color = row.trained - eval(c);
  }
  // Precision.
  {
    SysNoiseConfig c = base;
    c.precision = nn::Precision::kFP16;
    row.fp16 = row.trained - eval(c);
    c.precision = nn::Precision::kINT8;
    row.int8 = row.trained - eval(c);
  }
  // Ceil mode (only where a stride-2 max-pool exists).
  if (has_maxpool) {
    SysNoiseConfig c = base;
    c.ceil_mode = true;
    row.ceil = row.trained - eval(c);
  }
}

}  // namespace

NoiseRow measure_classifier(models::TrainedClassifier& tc) {
  const auto& ds = benchmark_cls_dataset();
  const PipelineSpec spec = cls_pipeline_spec();
  NoiseRow row;
  row.model = tc.name;
  auto eval = [&](const SysNoiseConfig& cfg) {
    return models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
  };
  sweep_common(row, tc.model->has_maxpool(), eval);
  row.combined =
      row.trained - eval(combined_config(tc.model->has_maxpool(), false, false));
  return row;
}

NoiseRow measure_detector(models::TrainedDetector& td) {
  const auto& ds = benchmark_det_dataset();
  const PipelineSpec spec = det_pipeline_spec();
  NoiseRow row;
  row.model = td.name;
  auto eval = [&](const SysNoiseConfig& cfg) {
    return models::eval_detector(*td.model, ds, cfg, spec, &td.ranges);
  };
  sweep_common(row, td.model->has_maxpool(), eval);
  {
    SysNoiseConfig c = SysNoiseConfig::training_default();
    c.upsample = nn::UpsampleMode::kBilinear;
    row.upsample = row.trained - eval(c);
    c = SysNoiseConfig::training_default();
    c.proposal_offset = 1.0f;
    row.postproc = row.trained - eval(c);
  }
  row.combined =
      row.trained - eval(combined_config(td.model->has_maxpool(), true, true));
  return row;
}

NoiseRow measure_segmenter(models::TrainedSegmenter& ts) {
  const auto& ds = benchmark_seg_dataset();
  const PipelineSpec spec = det_pipeline_spec();
  NoiseRow row;
  row.model = ts.name;
  auto eval = [&](const SysNoiseConfig& cfg) {
    return models::eval_segmenter(*ts.model, ds, cfg, spec, &ts.ranges);
  };
  sweep_common(row, ts.model->has_maxpool(), eval);
  {
    SysNoiseConfig c = SysNoiseConfig::training_default();
    c.upsample = nn::UpsampleMode::kBilinear;
    row.upsample = row.trained - eval(c);
  }
  row.combined =
      row.trained - eval(combined_config(ts.model->has_maxpool(), true, false));
  return row;
}

std::vector<StepPoint> stepwise_classifier(models::TrainedClassifier& tc) {
  const auto& ds = benchmark_cls_dataset();
  const PipelineSpec spec = cls_pipeline_spec();
  auto eval = [&](const SysNoiseConfig& cfg) {
    return models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
  };
  const double base = eval(SysNoiseConfig::training_default());

  SysNoiseConfig cfg = SysNoiseConfig::training_default();
  std::vector<StepPoint> points;
  cfg.decoder = jpeg::DecoderVendor::kDALI;
  points.push_back({"Decode", base - eval(cfg)});
  cfg.resize = ResizeMethod::kOpenCVNearest;
  points.push_back({"+Resize", base - eval(cfg)});
  cfg.color = ColorMode::kNv12RoundTrip;
  points.push_back({"+Color Mode", base - eval(cfg)});
  cfg.precision = nn::Precision::kINT8;
  points.push_back({"+INT8", base - eval(cfg)});
  if (tc.model->has_maxpool()) {
    cfg.ceil_mode = true;
    points.push_back({"+Ceil Mode", base - eval(cfg)});
  }
  return points;
}

std::vector<StepPoint> stepwise_detector(models::TrainedDetector& td) {
  const auto& ds = benchmark_det_dataset();
  const PipelineSpec spec = det_pipeline_spec();
  auto eval = [&](const SysNoiseConfig& cfg) {
    return models::eval_detector(*td.model, ds, cfg, spec, &td.ranges);
  };
  const double base = eval(SysNoiseConfig::training_default());

  SysNoiseConfig cfg = SysNoiseConfig::training_default();
  std::vector<StepPoint> points;
  cfg.decoder = jpeg::DecoderVendor::kDALI;
  points.push_back({"Decode", base - eval(cfg)});
  cfg.resize = ResizeMethod::kOpenCVNearest;
  points.push_back({"+Resize", base - eval(cfg)});
  cfg.color = ColorMode::kNv12RoundTrip;
  points.push_back({"+Color Mode", base - eval(cfg)});
  cfg.precision = nn::Precision::kINT8;
  points.push_back({"+INT8", base - eval(cfg)});
  if (td.model->has_maxpool()) {
    cfg.ceil_mode = true;
    points.push_back({"+Ceil Mode", base - eval(cfg)});
  }
  cfg.upsample = nn::UpsampleMode::kBilinear;
  points.push_back({"+Upsample", base - eval(cfg)});
  cfg.proposal_offset = 1.0f;
  points.push_back({"+Post processing", base - eval(cfg)});
  return points;
}

}  // namespace sysnoise::core
