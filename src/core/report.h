// Plain-text table / CSV rendering for the bench binaries. Columns are
// derived from whatever axes the AxisReports carry (registry order), so a
// newly registered NoiseAxis shows up in every table and CSV without
// touching this module. Cell format mirrors the paper: "mean (max)" for
// multi-option axes, one column per option for per-option axes (FP16/INT8),
// "-" where an axis does not apply.
#pragma once

#include <string>
#include <vector>

#include "core/sweep.h"
#include "util/json.h"

namespace sysnoise::core {

// Fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);
// "mean (max)" cell.
std::string fmt_mm(double mean, double mx, int precision = 2);

// Render a Table 2/3/4-style report: one row per AxisReport, one column
// group per axis present in any report.
std::string render_axis_table(const std::vector<AxisReport>& reports,
                              const std::string& metric_name);

// CSV dump of the same reports (for downstream plotting). Multi-option
// axes emit "<key>_mean,<key>_max" columns, per-option axes one column per
// option label, single-option axes just "<key>".
std::string axis_report_csv(const std::vector<AxisReport>& reports);

// Fig. 3 stepwise table / CSV helpers.
std::string render_step_table(const std::vector<StepPoint>& points,
                              const std::string& metric_name);
std::string step_points_csv(const std::vector<StepPoint>& points,
                            const std::string& task_label);

// A named Fig. 3 stepwise curve — the stepwise counterpart of AxisReport,
// so shard merges and downstream tooling can round-trip both report shapes.
struct StepReport {
  std::string model;
  std::vector<StepPoint> points;
};

// Lossless JSON round trips (deltas at full double precision — the CSVs
// above round for display, these do not).
util::Json axis_report_to_json(const AxisReport& report);
AxisReport axis_report_from_json(const util::Json& j);
util::Json step_report_to_json(const StepReport& report);
StepReport step_report_from_json(const util::Json& j);

}  // namespace sysnoise::core
