// Plain-text table / CSV rendering for the bench binaries. Row format
// mirrors the paper: "mean (max)" cells for decode/resize, "-" for
// non-applicable axes.
#pragma once

#include <string>
#include <vector>

#include "core/runner.h"

namespace sysnoise::core {

// Fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);
// "mean (max)" cell.
std::string fmt_mm(double mean, double mx, int precision = 2);

// Render Table 2/3/4-style reports from NoiseRows.
std::string render_noise_table(const std::vector<NoiseRow>& rows,
                               const std::string& metric_name,
                               bool with_upsample, bool with_postproc);

// CSV dump of the same rows (for downstream plotting).
std::string noise_rows_csv(const std::vector<NoiseRow>& rows);

}  // namespace sysnoise::core
