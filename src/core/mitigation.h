// Mitigation strategies evaluated by the paper:
//  * Mix training (Algo. 1, Tables 7/8): sample decoder / resize per batch.
//  * Data augmentation (Fig. 4a): Standard, APR-SP, DeepAug, AugMix and
//    combinations — laptop-scale re-implementations of each recipe's core
//    mechanism.
//  * Adversarial training (Fig. 4b): FGSM inner step (PGD-1).
//  * Test-time adaptation (TENT, Table 6): online entropy minimization of
//    normalization affine parameters during evaluation.
#pragma once

#include "models/train.h"
#include "models/zoo.h"

namespace sysnoise::core {

// ---- training-side preprocessors -------------------------------------------

// Mix training (Algo. 1): randomly sample the decoder and/or resize method
// for each training sample (training default for the axes not mixed).
models::ClsPreprocessor mix_training_preprocessor(const PipelineSpec& spec,
                                                  bool mix_decoder,
                                                  bool mix_resize);

// Fixed deployment config used for *training* (Tables 7/8 rows: "train with
// OpenCV-nearest" etc.).
models::ClsPreprocessor fixed_config_preprocessor(const PipelineSpec& spec,
                                                  const SysNoiseConfig& cfg);

enum class AugStrategy {
  kStandard = 0,       // flip + shift
  kAprSp = 1,          // amplitude-phase recombination
  kDeepaugAprSp = 2,
  kDeepaugAugmix = 3,
  kDeepaug = 4,        // stochastic color/noise distortions
  kAugmix = 5,         // mixed augmentation chains
};
constexpr int kNumAugStrategies = 6;
const char* aug_strategy_name(AugStrategy s);

// Augmentation applied after the training-default pipeline.
models::ClsPreprocessor augmented_preprocessor(const PipelineSpec& spec,
                                               AugStrategy strategy);

// ---- adversarial training ---------------------------------------------------

// FGSM adversarial training of a zoo classifier (cached under tag "adv").
models::TrainedClassifier adversarial_train_classifier(const std::string& name,
                                                       float epsilon = 0.05f);

// ---- TENT --------------------------------------------------------------------

// Accuracy under `cfg` with online TENT adaptation (entropy minimization on
// each test batch, updating only normalization affine parameters). Mutates
// the model; callers should pass a freshly loaded instance.
double eval_classifier_tent(models::Classifier& model,
                            const std::vector<data::ClsSample>& eval,
                            const SysNoiseConfig& cfg, const PipelineSpec& spec,
                            nn::ActRanges* ranges, float lr = 5e-3f,
                            int batch_size = 16);

}  // namespace sysnoise::core
