#include "core/disk_stage_cache.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/json.h"

namespace sysnoise::core {

namespace {

// Bump when the entry layout (or anything the encoded payloads depend on)
// changes incompatibly.
constexpr const char* kFormatTag = "SYSNOISE-STAGE-v1";

std::string read_line(std::istream& in) {
  std::string line;
  std::getline(in, line);
  return line;
}

}  // namespace

bool DiskStageCache::enabled_by_env() {
  const char* env = std::getenv("SYSNOISE_DISK_STAGE_CACHE");
  return env == nullptr || env[0] != '0';
}

std::string DiskStageCache::default_dir() {
  if (const char* env = std::getenv("SYSNOISE_STAGE_CACHE_DIR")) return env;
  if (const char* env = std::getenv("SYSNOISE_CACHE_DIR"))
    return std::string(env) + "/stages";
  return "/tmp/sysnoise_model_cache/stages";
}

DiskStageCache::DiskStageCache(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string DiskStageCache::entry_path(const std::string& scope,
                                       const std::string& key) const {
  return dir_ + "/" + util::fnv1a64_hex(scope) + "_" + util::fnv1a64_hex(key) +
         ".stage";
}

bool DiskStageCache::load(const std::string& scope, const std::string& key,
                          std::string* bytes) {
  std::ifstream f(entry_path(scope, key), std::ios::binary);
  bool ok = false;
  if (f) {
    // Header: format tag, scope, key (newline-terminated), then the raw
    // payload until EOF. Scope/key are verified so an FNV collision (or a
    // stale incompatible entry) reads as a miss, never as wrong data.
    if (read_line(f) == kFormatTag && read_line(f) == scope &&
        read_line(f) == key) {
      std::ostringstream payload;
      payload << f.rdbuf();
      *bytes = payload.str();
      ok = true;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ok ? ++hits_ : ++misses_;
  return ok;
}

void DiskStageCache::store(const std::string& scope, const std::string& key,
                           const std::string& bytes) {
  const std::string path = entry_path(scope, key);
  // The temp name must be unique across every concurrent writer — threads
  // AND processes (distributed workers share $SYSNOISE_STAGE_CACHE_DIR), so
  // pid + a process-local counter, never thread ids (which collide across
  // processes and would interleave two writers in one temp file).
  static std::atomic<std::uint64_t> seq{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "." << seq.fetch_add(1);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    f << kFormatTag << "\n" << scope << "\n" << key << "\n";
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;  // disk full / unwritable: persisting is best-effort
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
}

std::size_t DiskStageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t DiskStageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t DiskStageCache::stores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}

}  // namespace sysnoise::core
