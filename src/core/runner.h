// The SysNoise benchmark runner — measures the metric drop of a trained
// model under each deployment noise axis (Tables 2-4) and under stepwise
// noise accumulation (Fig. 3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "models/zoo.h"

namespace sysnoise::core {

// One row of a Table 2/3/4-style report. Deltas are
// metric(training config) - metric(deployment config); mean/max over the
// axis' option set where the axis has several options.
struct NoiseRow {
  std::string model;
  double trained = 0.0;
  double decode_mean = 0.0, decode_max = 0.0;
  double resize_mean = 0.0, resize_max = 0.0;
  double color = 0.0;
  double fp16 = 0.0;
  double int8 = 0.0;
  std::optional<double> ceil;      // absent for models without max-pool
  std::optional<double> upsample;  // detection / segmentation only
  std::optional<double> postproc;  // detection only
  double combined = 0.0;
};

// Deployment config with every noise knob flipped to its "worst common"
// setting (used for the Combined column; Fig. 3 adds them one at a time).
SysNoiseConfig combined_config(bool has_maxpool, bool with_upsample,
                               bool with_postproc);

// Sweep all noise axes for one classifier.
NoiseRow measure_classifier(models::TrainedClassifier& tc);

// Sweep for one detector (adds upsample + post-processing axes).
NoiseRow measure_detector(models::TrainedDetector& td);

// Sweep for one segmenter (adds upsample axis).
NoiseRow measure_segmenter(models::TrainedSegmenter& ts);

// Fig. 3 stepwise combined-noise curve: metric after cumulatively applying
// each named noise step. Returns {step name, metric delta so far}.
struct StepPoint {
  std::string step;
  double delta = 0.0;
};
std::vector<StepPoint> stepwise_classifier(models::TrainedClassifier& tc);
std::vector<StepPoint> stepwise_detector(models::TrainedDetector& td);

}  // namespace sysnoise::core
