#include "core/sweep.h"

#include <utility>

#include "core/executor.h"
#include "core/plan.h"

namespace sysnoise::core {

bool SweepCache::lookup(const std::string& key, double* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void SweepCache::store(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, value);
}

void SweepCache::seed(const EvalTask& task, const SysNoiseConfig& cfg,
                      double metric) {
  store(key_for(task, cfg), metric);
}

std::size_t SweepCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t SweepCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SweepCache::key_for(const EvalTask& task, const SysNoiseConfig& cfg) {
  return task.cache_identity() + "|" + cfg.describe();
}

const OptionDelta* AxisResult::option(const std::string& label) const {
  for (const OptionDelta& o : options)
    if (o.label == label) return &o;
  return nullptr;
}

const AxisResult* AxisReport::find(const std::string& axis) const {
  for (const AxisResult& a : axes)
    if (a.axis == axis) return &a;
  return nullptr;
}

// sweep()/stepwise() are now thin compositions of the explicit lifecycle:
// plan (core/plan.h) -> execute (core/executor.h) -> assemble.

AxisReport sweep(const EvalTask& task, const SweepOptions& opts) {
  const SweepPlan plan = plan_sweep(task, registry_or_global(opts));
  return assemble_report(plan, ThreadPoolExecutor().execute(task, plan, opts));
}

std::vector<StepPoint> stepwise(const EvalTask& task, const SweepOptions& opts) {
  const SweepPlan plan = plan_stepwise(task, registry_or_global(opts));
  return assemble_steps(plan, ThreadPoolExecutor().execute(task, plan, opts));
}

}  // namespace sysnoise::core
