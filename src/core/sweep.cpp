#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

namespace sysnoise::core {

bool SweepCache::lookup(const std::string& key, double* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void SweepCache::store(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, value);
}

void SweepCache::seed(const EvalTask& task, const SysNoiseConfig& cfg,
                      double metric) {
  store(key_for(task, cfg), metric);
}

std::size_t SweepCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t SweepCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SweepCache::key_for(const EvalTask& task, const SysNoiseConfig& cfg) {
  return task.cache_identity() + "|" + cfg.describe();
}

const OptionDelta* AxisResult::option(const std::string& label) const {
  for (const OptionDelta& o : options)
    if (o.label == label) return &o;
  return nullptr;
}

const AxisResult* AxisReport::find(const std::string& axis) const {
  for (const AxisResult& a : axes)
    if (a.axis == axis) return &a;
  return nullptr;
}

namespace {

struct Request {
  std::string key;
  SysNoiseConfig cfg;
};

// Evaluate every request, deduplicating identical configs (and consulting
// the cross-call cache) when memoization is on, and fanning the remaining
// evaluations out over a thread pool. Returns key -> metric; deterministic
// regardless of thread count because each evaluation is independent and the
// task contract requires deterministic metrics.
std::map<std::string, double> evaluate_all(const EvalTask& task,
                                           const std::vector<Request>& requests,
                                           const SweepOptions& opts) {
  std::map<std::string, double> results;

  std::vector<const Request*> pending;
  for (const Request& r : requests) {
    if (opts.memoize) {
      if (results.count(r.key) != 0) continue;
      double cached = 0.0;
      if (opts.cache != nullptr && opts.cache->lookup(r.key, &cached)) {
        results.emplace(r.key, cached);
        continue;
      }
      results.emplace(r.key, 0.0);  // reserve so duplicates dedup
    }
    pending.push_back(&r);
  }

  std::vector<double> values(pending.size(), 0.0);
  int threads = opts.threads > 0
                    ? opts.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min(threads, static_cast<int>(pending.size())));

  if (threads <= 1 || pending.size() <= 1) {
    for (std::size_t i = 0; i < pending.size(); ++i)
      values[i] = task.evaluate(pending[i]->cfg);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < pending.size();
           i = next.fetch_add(1)) {
        try {
          values[i] = task.evaluate(pending[i]->cfg);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    const int n = std::min<int>(threads, static_cast<int>(pending.size()));
    pool.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  for (std::size_t i = 0; i < pending.size(); ++i) {
    results[pending[i]->key] = values[i];
    if (opts.memoize && opts.cache != nullptr)
      opts.cache->store(pending[i]->key, values[i]);
  }
  return results;
}

Request make_request(const EvalTask& task, SysNoiseConfig cfg) {
  Request r;
  r.key = SweepCache::key_for(task, cfg);
  r.cfg = std::move(cfg);
  return r;
}

const AxisRegistry& registry_of(const SweepOptions& opts) {
  return opts.registry != nullptr ? *opts.registry : AxisRegistry::global();
}

}  // namespace

AxisReport sweep(const EvalTask& task, const SweepOptions& opts) {
  const AxisRegistry& registry = registry_of(opts);
  const TaskTraits traits = task.traits();
  const auto axes = registry.applicable(traits);
  const SysNoiseConfig base = SysNoiseConfig::training_default();

  std::vector<Request> requests;
  requests.push_back(make_request(task, base));
  for (const NoiseAxis* axis : axes) {
    for (int i = 0; i < axis->num_options(); ++i) {
      SysNoiseConfig cfg = base;
      axis->apply(cfg, i);
      requests.push_back(make_request(task, cfg));
    }
  }
  const SysNoiseConfig combined = combined_config(traits, registry);
  requests.push_back(make_request(task, combined));

  const auto results = evaluate_all(task, requests, opts);

  AxisReport report;
  report.model = task.name();
  report.trained = results.at(SweepCache::key_for(task, base));
  for (const NoiseAxis* axis : axes) {
    AxisResult res;
    res.axis = axis->name;
    res.key = axis->key;
    res.per_option = axis->per_option;
    double sum = 0.0, worst = -1e300;
    for (int i = 0; i < axis->num_options(); ++i) {
      SysNoiseConfig cfg = base;
      axis->apply(cfg, i);
      const double d =
          report.trained - results.at(SweepCache::key_for(task, cfg));
      res.options.push_back({axis->option_labels[static_cast<std::size_t>(i)], d});
      sum += d;
      worst = std::max(worst, d);
    }
    res.mean = sum / static_cast<double>(axis->num_options());
    res.max = worst;
    report.axes.push_back(std::move(res));
  }
  report.combined =
      report.trained - results.at(SweepCache::key_for(task, combined));
  return report;
}

std::vector<StepPoint> stepwise(const EvalTask& task, const SweepOptions& opts) {
  const AxisRegistry& registry = registry_of(opts);
  const auto axes = registry.applicable(task.traits());
  const SysNoiseConfig base = SysNoiseConfig::training_default();

  std::vector<Request> requests;
  requests.push_back(make_request(task, base));
  std::vector<std::string> labels;
  SysNoiseConfig cfg = base;
  for (const NoiseAxis* axis : axes) {
    axis->apply(cfg, axis->combined_option);
    labels.push_back(labels.empty() ? axis->step_label : "+" + axis->step_label);
    requests.push_back(make_request(task, cfg));
  }

  const auto results = evaluate_all(task, requests, opts);

  const double trained = results.at(requests.front().key);
  std::vector<StepPoint> points;
  for (std::size_t i = 0; i < labels.size(); ++i)
    points.push_back({labels[i], trained - results.at(requests[i + 1].key)});
  return points;
}

}  // namespace sysnoise::core
