#include "core/sweep.h"

#include <utility>

#include "core/sweep_detail.h"

namespace sysnoise::core {

bool SweepCache::lookup(const std::string& key, double* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void SweepCache::store(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, value);
}

void SweepCache::seed(const EvalTask& task, const SysNoiseConfig& cfg,
                      double metric) {
  store(key_for(task, cfg), metric);
}

std::size_t SweepCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t SweepCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SweepCache::key_for(const EvalTask& task, const SysNoiseConfig& cfg) {
  return task.cache_identity() + "|" + cfg.describe();
}

const OptionDelta* AxisResult::option(const std::string& label) const {
  for (const OptionDelta& o : options)
    if (o.label == label) return &o;
  return nullptr;
}

const AxisResult* AxisReport::find(const std::string& axis) const {
  for (const AxisResult& a : axes)
    if (a.axis == axis) return &a;
  return nullptr;
}

namespace {

using detail::Request;

// Monolithic evaluator: fan the pending requests out over a thread pool,
// each one running the task's full evaluate() chain.
std::map<std::string, double> evaluate_all(const EvalTask& task,
                                           const std::vector<Request>& requests,
                                           const SweepOptions& opts) {
  return detail::evaluate_requests(
      requests, opts, [&](const std::vector<const Request*>& pending) {
        std::vector<double> values(pending.size(), 0.0);
        detail::parallel_for_n(opts.threads, pending.size(), [&](std::size_t i) {
          values[i] = task.evaluate(pending[i]->cfg);
        });
        return values;
      });
}

}  // namespace

AxisReport sweep(const EvalTask& task, const SweepOptions& opts) {
  const AxisRegistry& registry = detail::registry_of(opts);
  const auto requests = detail::plan_sweep_requests(task, registry);
  const auto results = evaluate_all(task, requests, opts);
  return detail::assemble_axis_report(task, registry, results);
}

std::vector<StepPoint> stepwise(const EvalTask& task, const SweepOptions& opts) {
  const AxisRegistry& registry = detail::registry_of(opts);
  std::vector<std::string> labels;
  const auto requests = detail::plan_stepwise_requests(task, registry, &labels);
  const auto results = evaluate_all(task, requests, opts);

  const double trained = results.at(requests.front().key);
  std::vector<StepPoint> points;
  for (std::size_t i = 0; i < labels.size(); ++i)
    points.push_back({labels[i], trained - results.at(requests[i + 1].key)});
  return points;
}

}  // namespace sysnoise::core
