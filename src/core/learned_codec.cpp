#include "core/learned_codec.h"

#include "models/zoo.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace sysnoise::core {

using namespace sysnoise::nn;

struct LearnedCodec::Impl {
  Conv2d enc1, enc2, dec1, dec2;
  Impl(Rng& rng)
      : enc1(3, 12, 3, 2, 1, rng, "ae.e1"),
        enc2(12, 12, 3, 1, 1, rng, "ae.e2"),
        dec1(12, 12, 3, 1, 1, rng, "ae.d1"),
        dec2(12, 3, 3, 1, 1, rng, "ae.d2") {}

  Node* forward(Tape& t, Node* x) {
    Node* h = relu(t, enc1(t, x));   // half resolution bottleneck
    h = relu(t, enc2(t, h));
    h = upsample2x(t, h);
    h = relu(t, dec1(t, h));
    return dec2(t, h);               // residual-free direct reconstruction
  }
  void collect(ParamRefs& out) {
    enc1.collect(out);
    enc2.collect(out);
    dec1.collect(out);
    dec2.collect(out);
  }
};

LearnedCodec::LearnedCodec(Rng& rng) : impl_(std::make_shared<Impl>(rng)) {}

void LearnedCodec::collect(ParamRefs& out) { impl_->collect(out); }

ImageU8 LearnedCodec::reconstruct(const ImageU8& img) {
  // Normalize to [0,1]; reconstruct; back to uint8.
  Tensor x = image_to_tensor_raw(img);
  x.mul_(1.0f / 255.0f);
  Tape t;
  Node* y = impl_->forward(t, t.input(x));
  Tensor out = y->value;
  out.mul_(255.0f);
  return tensor_to_image(out);
}

float LearnedCodec::train(const std::vector<data::ClsSample>& samples, int epochs,
                          float lr) {
  ParamRefs params;
  collect(params);
  Adam opt(params, lr);
  Rng rng(17);
  float last = 0.0f;
  const int n = static_cast<int>(samples.size());
  for (int e = 0; e < epochs; ++e) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += 8) {
      const int bs = std::min(8, n - b);
      std::vector<Tensor> imgs;
      for (int i = 0; i < bs; ++i) {
        const ImageU8 img = jpeg::decode(
            samples[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])].jpeg,
            jpeg::DecoderVendor::kPillow);
        Tensor x = image_to_tensor_raw(img);
        x.mul_(1.0f / 255.0f);
        imgs.push_back(std::move(x));
      }
      Tensor batch = models::stack_batch(imgs);
      Tape t;
      t.training = true;
      opt.zero_grad();
      Node* y = impl_->forward(t, t.input(batch));
      Node* loss = mse_loss(t, y, batch);
      t.backward(loss);
      opt.step();
      last = loss->value[0];
    }
  }
  return last;
}

std::shared_ptr<LearnedCodec> get_learned_codec() {
  static std::shared_ptr<LearnedCodec> codec = [] {
    Rng rng(404);
    auto c = std::make_shared<LearnedCodec>(rng);
    ParamRefs params;
    c->collect(params);
    const std::string path = models::cache_dir() + "/learned_codec_v1.weights";
    if (!load_params(path, params)) {
      c->train(models::benchmark_cls_dataset().train, /*epochs=*/12, 2e-3f);
      save_params(path, params);
    }
    return c;
  }();
  return codec;
}

Tensor preprocess_learned(const std::vector<std::uint8_t>& jpeg_bytes,
                          LearnedCodec& codec, const PipelineSpec& spec) {
  const SysNoiseConfig cfg = SysNoiseConfig::training_default();
  ImageU8 decoded = jpeg::decode(jpeg_bytes, cfg.decoder);
  decoded = codec.reconstruct(decoded);
  const ImageU8 resized = resize(decoded, spec.out_h, spec.out_w, cfg.resize);
  return image_to_tensor(resized, spec.mean, spec.stddev);
}

models::ClsPreprocessor learned_decoder_preprocessor(const PipelineSpec& spec) {
  auto codec = get_learned_codec();
  return [spec, codec](const data::ClsSample& s, Rng&) {
    return preprocess_learned(s.jpeg, *codec, spec);
  };
}

}  // namespace sysnoise::core
