// Model-free reference EvalTasks for engine tests and micro-benchmarks: the
// metric is a pure FNV-1a hash of the config string (deterministic, config-
// sensitive, thread-safe), every evaluation is counted, and `work_rounds`
// scales the per-eval cost so scheduling overhead can be measured against a
// stand-in for a real model evaluation. SyntheticStagedTask additionally
// factors the hash through the three pipeline stages with per-stage costs
// and run counters, mirroring how real tasks split work (pre-processing
// dominates, forward is substantial, post-processing is cheap).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "core/staged_eval.h"
#include "core/sweep.h"
#include "data/pipeline.h"

namespace sysnoise::core {

class SyntheticTask : public EvalTask {
 public:
  SyntheticTask(TaskKind kind, bool has_maxpool, int work_rounds = 1)
      : traits_{kind, has_maxpool}, work_rounds_(work_rounds) {}

  const std::string& name() const override {
    static const std::string n = "synthetic";
    return n;
  }
  TaskTraits traits() const override { return traits_; }
  double evaluate(const SysNoiseConfig& cfg) const override {
    evals_.fetch_add(1);
    const std::string desc = cfg.describe();
    std::uint64_t h = 1469598103934665603ull;
    for (int round = 0; round < work_rounds_; ++round)
      for (const char c : desc) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ull;
      }
    return 40.0 + static_cast<double>(h % 4000) / 100.0;
  }
  // The metric depends on work_rounds, so tasks with different costs must
  // not share cache entries.
  std::string cache_identity() const override {
    return name() + "#r" + std::to_string(work_rounds_);
  }
  int evals() const { return evals_.load(); }
  void reset() const { evals_.store(0); }

 private:
  TaskTraits traits_;
  int work_rounds_;
  mutable std::atomic<int> evals_{0};
};

// Staged counterpart with per-stage work/counters. The metric chains the
// three stage hashes, so staged_sweep() (stage products shared) and plain
// sweep() (full chain per config) are bit-identical by construction — what
// changes is how often each stage runs, which the counters expose.
//
// `fwd_overhead_rounds` models the fixed per-invocation cost of a network
// forward pass (tape setup, per-layer weight-precision transforms) that
// cross-config batching amortizes: every forward INVOCATION burns it once,
// regardless of how many configs ride along. A task with overhead > 0
// advertises forward-batch compatibility (forward_batch_key), so the staged
// executor stacks compatible configs through run_forward_batched — products
// stay bit-identical, only invocation counts and wall time change.
class SyntheticStagedTask : public StagedEvalTask {
 public:
  SyntheticStagedTask(TaskKind kind, bool has_maxpool, int pre_rounds = 1,
                      int fwd_rounds = 1, int post_rounds = 1,
                      int fwd_overhead_rounds = 0)
      : traits_{kind, has_maxpool},
        pre_rounds_(pre_rounds),
        fwd_rounds_(fwd_rounds),
        post_rounds_(post_rounds),
        fwd_overhead_rounds_(fwd_overhead_rounds) {}

  const std::string& name() const override {
    static const std::string n = "synthetic-staged";
    return n;
  }
  TaskTraits traits() const override { return traits_; }
  std::string cache_identity() const override {
    return name() + "#" + std::to_string(pre_rounds_) + "/" +
           std::to_string(fwd_rounds_) + "/" + std::to_string(post_rounds_) +
           "/" + std::to_string(fwd_overhead_rounds_);
  }

  // Keys come from the same encoders the real adapters use (over a default
  // PipelineSpec), so grouping behavior can't drift from production.
  std::string preprocess_key(const SysNoiseConfig& cfg) const override {
    return sysnoise::preprocess_key(cfg, PipelineSpec{});
  }
  std::string forward_key(const SysNoiseConfig& cfg) const override {
    return preprocess_key(cfg) + forward_key_suffix(cfg);
  }

  StageProduct run_preprocess(const SysNoiseConfig& cfg) const override {
    pre_runs_.fetch_add(1);
    return std::make_shared<const std::uint64_t>(
        work(0xcbf29ce484222325ull, preprocess_key(cfg), pre_rounds_));
  }

  // Disk round trip for the synthetic stage-1 product (the hash, printed),
  // so the disk StageCache path is testable without training a zoo. The
  // product depends on pre_rounds_, so the scope keeps tasks with different
  // costs apart — exactly like cache_identity does for metrics.
  std::string preprocess_scope() const override {
    return name() + "-pre#" + std::to_string(pre_rounds_);
  }
  bool encode_preprocess(const StageProduct& product,
                         std::string* bytes) const override {
    *bytes = std::to_string(*static_cast<const std::uint64_t*>(product.get()));
    return true;
  }
  StageProduct decode_preprocess(const std::string& bytes) const override {
    if (bytes.empty()) return nullptr;
    return std::make_shared<const std::uint64_t>(
        std::strtoull(bytes.c_str(), nullptr, 10));
  }
  StageProduct run_forward(const SysNoiseConfig& cfg,
                           const StageProduct& pre) const override {
    fwd_runs_.fetch_add(1);
    fwd_invocations_.fetch_add(1);
    burn_invocation_overhead();
    return forward_product(cfg, pre);
  }

  // Batching: one invocation's overhead covers every config in the stack;
  // the per-config products are computed exactly as run_forward would.
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override {
    if (fwd_overhead_rounds_ <= 0) return std::string();
    return cache_identity() + forward_key_suffix(cfg);
  }
  std::vector<StageProduct> run_forward_batched(
      const std::vector<const SysNoiseConfig*>& cfgs,
      const std::vector<StageProduct>& pres) const override {
    fwd_runs_.fetch_add(static_cast<int>(cfgs.size()));
    fwd_invocations_.fetch_add(1);
    fwd_batched_calls_.fetch_add(1);
    burn_invocation_overhead();
    std::vector<StageProduct> out;
    out.reserve(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
      out.push_back(forward_product(*cfgs[i], pres[i]));
    return out;
  }
  // Forward products round-trip the same way (the default forward_scope
  // already folds in cache_identity, which pins all three stage costs), so
  // warm disk runs skip the synthetic forward stage too.
  bool encode_forward(const StageProduct& product,
                      std::string* bytes) const override {
    *bytes = std::to_string(*static_cast<const std::uint64_t*>(product.get()));
    return true;
  }
  StageProduct decode_forward(const std::string& bytes) const override {
    if (bytes.empty()) return nullptr;
    return std::make_shared<const std::uint64_t>(
        std::strtoull(bytes.c_str(), nullptr, 10));
  }
  double run_postprocess(const SysNoiseConfig& cfg,
                         const StageProduct& fwd) const override {
    post_runs_.fetch_add(1);
    const auto seed = *static_cast<const std::uint64_t*>(fwd.get());
    std::ostringstream os;
    os << "offset=" << cfg.proposal_offset;
    const std::uint64_t h = work(seed, os.str(), post_rounds_);
    return 40.0 + static_cast<double>(h % 4000) / 100.0;
  }

  int pre_runs() const { return pre_runs_.load(); }
  int fwd_runs() const { return fwd_runs_.load(); }
  int post_runs() const { return post_runs_.load(); }
  // Network invocations (one per run_forward call, one per batched call
  // regardless of stack size) and how many of them were batched.
  int fwd_invocations() const { return fwd_invocations_.load(); }
  int fwd_batched_calls() const { return fwd_batched_calls_.load(); }
  void reset() const {
    pre_runs_.store(0);
    fwd_runs_.store(0);
    post_runs_.store(0);
    fwd_invocations_.store(0);
    fwd_batched_calls_.store(0);
  }

 private:
  static std::uint64_t work(std::uint64_t h, const std::string& s, int rounds) {
    for (int round = 0; round < rounds; ++round)
      for (const char c : s) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ull;
      }
    return h;
  }

  StageProduct forward_product(const SysNoiseConfig& cfg,
                               const StageProduct& pre) const {
    const auto seed = *static_cast<const std::uint64_t*>(pre.get());
    return std::make_shared<const std::uint64_t>(
        work(seed, forward_key(cfg), fwd_rounds_));
  }

  void burn_invocation_overhead() const {
    if (fwd_overhead_rounds_ <= 0) return;
    static const std::string kOverhead = "per-invocation-overhead";
    volatile std::uint64_t sink =
        work(0x9e3779b97f4a7c15ull, kOverhead, fwd_overhead_rounds_);
    (void)sink;
  }

  TaskTraits traits_;
  int pre_rounds_;
  int fwd_rounds_;
  int post_rounds_;
  int fwd_overhead_rounds_;
  mutable std::atomic<int> pre_runs_{0};
  mutable std::atomic<int> fwd_runs_{0};
  mutable std::atomic<int> post_runs_{0};
  mutable std::atomic<int> fwd_invocations_{0};
  mutable std::atomic<int> fwd_batched_calls_{0};
};

}  // namespace sysnoise::core
