// Model-free reference EvalTask for engine tests and micro-benchmarks: the
// metric is a pure FNV-1a hash of the config string (deterministic, config-
// sensitive, thread-safe), every evaluation is counted, and `work_rounds`
// scales the per-eval cost so scheduling overhead can be measured against a
// stand-in for a real model evaluation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/sweep.h"

namespace sysnoise::core {

class SyntheticTask : public EvalTask {
 public:
  SyntheticTask(TaskKind kind, bool has_maxpool, int work_rounds = 1)
      : traits_{kind, has_maxpool}, work_rounds_(work_rounds) {}

  const std::string& name() const override {
    static const std::string n = "synthetic";
    return n;
  }
  TaskTraits traits() const override { return traits_; }
  double evaluate(const SysNoiseConfig& cfg) const override {
    evals_.fetch_add(1);
    const std::string desc = cfg.describe();
    std::uint64_t h = 1469598103934665603ull;
    for (int round = 0; round < work_rounds_; ++round)
      for (const char c : desc) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ull;
      }
    return 40.0 + static_cast<double>(h % 4000) / 100.0;
  }
  // The metric depends on work_rounds, so tasks with different costs must
  // not share cache entries.
  std::string cache_identity() const override {
    return name() + "#r" + std::to_string(work_rounds_);
  }
  int evals() const { return evals_.load(); }
  void reset() const { evals_.store(0); }

 private:
  TaskTraits traits_;
  int work_rounds_;
  mutable std::atomic<int> evals_{0};
};

}  // namespace sysnoise::core
