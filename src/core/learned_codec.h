// Learning-based image decoder (Appendix B / Table 9): a small
// convolutional autoencoder standing in for the learned codec of Sun et
// al. (2020). "Decoding" with it means Pillow-decode + autoencoder round
// trip — like a neural codec, it reproduces the image with small learned
// reconstruction error.
#pragma once

#include <memory>

#include "models/train.h"

namespace sysnoise::core {

class LearnedCodec {
 public:
  explicit LearnedCodec(Rng& rng);
  // Round-trip an RGB image through the autoencoder.
  ImageU8 reconstruct(const ImageU8& img);
  void collect(nn::ParamRefs& out);
  float train(const std::vector<data::ClsSample>& samples, int epochs, float lr);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

// Trained-or-cached codec on the shared classification dataset.
std::shared_ptr<LearnedCodec> get_learned_codec();

// Preprocessor whose decode stage is the learned codec.
models::ClsPreprocessor learned_decoder_preprocessor(const PipelineSpec& spec);

// Eval-side preprocessing with a learned decode stage.
Tensor preprocess_learned(const std::vector<std::uint8_t>& jpeg_bytes,
                          LearnedCodec& codec, const PipelineSpec& spec);

}  // namespace sysnoise::core
