#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/disk_stage_cache.h"
#include "core/sweep_detail.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/backend.h"

namespace sysnoise::core {

namespace {

std::vector<double> monolithic_eval(
    const EvalTask& task, const std::vector<const PlannedConfig*>& pending,
    const SweepOptions& opts) {
  std::vector<double> values(pending.size(), 0.0);
  detail::parallel_for_n(opts.threads, pending.size(), [&](std::size_t i) {
    obs::TraceSpan span("pool.evaluate");
    if (span.active()) span.attr("key", pending[i]->metric_key);
    values[i] = task.evaluate(pending[i]->cfg);
  });
  return values;
}

// One forward pass shared by every config with the same forward key; the
// group members differ only in post-processing knobs.
struct ForwardGroup {
  std::string pre_key;
  std::string fwd_key;
  std::vector<std::size_t> members;  // indices into the pending list
};

// Stage keys come from the plan when present (a deserialized plan carries
// them); otherwise they are recomputed from the task.
std::string pre_key_of(const StagedEvalTask& task, const PlannedConfig& p) {
  return p.preprocess_key.empty() ? task.preprocess_key(p.cfg)
                                  : p.preprocess_key;
}

std::string fwd_key_of(const StagedEvalTask& task, const PlannedConfig& p) {
  return p.forward_key.empty() ? task.forward_key(p.cfg) : p.forward_key;
}

std::vector<double> staged_eval(const StagedEvalTask& task,
                                const std::vector<const PlannedConfig*>& pending,
                                const SweepOptions& opts, StageStats* stats,
                                DiskStageCache* disk) {
  // Plan: group by forward key, keeping groups with a common preprocess key
  // adjacent so their stage-1 product stays hot.
  std::vector<ForwardGroup> groups;
  std::map<std::string, std::size_t> group_of;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::string fwd_key = fwd_key_of(task, *pending[i]);
    const auto it = group_of.find(fwd_key);
    if (it == group_of.end()) {
      group_of.emplace(fwd_key, groups.size());
      groups.push_back({pre_key_of(task, *pending[i]), fwd_key, {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ForwardGroup& a, const ForwardGroup& b) {
                     return a.pre_key < b.pre_key;
                   });

  // Batch sets: forward-key groups whose configs advertise the same
  // forward_batch_key (same weights + inference knobs, different
  // pre-processing) are computed by ONE stacked forward invocation, capped
  // at max_forward_batch groups per call so the stacked tensor's memory
  // stays bounded. Groups that opt out (empty key) stay singleton sets; so
  // does everything when batching is disabled.
  std::vector<std::vector<std::size_t>> sets;
  sets.reserve(groups.size());
  {
    const std::size_t cap =
        static_cast<std::size_t>(std::max(1, opts.max_forward_batch));
    std::map<std::string, std::size_t> open_set;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::string batch_key =
          opts.batch_forwards
              ? task.forward_batch_key(pending[groups[g].members.front()]->cfg)
              : std::string();
      if (batch_key.empty()) {
        sets.push_back({g});
        continue;
      }
      const auto it = open_set.find(batch_key);
      if (it != open_set.end() && sets[it->second].size() < cap) {
        sets[it->second].push_back(g);
      } else {
        open_set[batch_key] = sets.size();
        sets.push_back({g});
      }
    }
  }

  StageCache pre_cache;
  std::atomic<std::size_t> disk_hits{0}, computed{0}, persisted{0};
  std::atomic<std::size_t> fwd_disk_hits{0}, fwd_computed{0}, fwd_persisted{0};
  std::atomic<std::size_t> batch_calls{0}, batch_cfgs{0}, batch_max{0};
  std::vector<StageProduct> pre_of(groups.size());
  std::vector<StageProduct> fwd_of(groups.size());
  std::vector<double> values(pending.size(), 0.0);

  // Phase 1, parallel per group: a disk-cached forward product makes stage 1
  // unnecessary (the pre-processed batches exist only to feed the network);
  // otherwise materialize the group's stage-1 product through pre_cache.
  detail::parallel_for_n(opts.threads, groups.size(), [&](std::size_t g) {
    const ForwardGroup& group = groups[g];
    obs::TraceSpan span("staged.preprocess");
    if (span.active()) span.attr("pre_key", group.pre_key);
    const SysNoiseConfig& lead_cfg = pending[group.members.front()]->cfg;
    if (disk != nullptr) {
      std::string bytes;
      if (disk->load(task.forward_scope(), group.fwd_key, &bytes)) {
        if ((fwd_of[g] = task.decode_forward(bytes)) != nullptr)
          fwd_disk_hits.fetch_add(1);
      }
    }
    if (fwd_of[g] != nullptr) return;
    pre_of[g] = pre_cache.get_or_compute(group.pre_key, [&] {
      if (disk != nullptr) {
        std::string bytes;
        if (disk->load(task.preprocess_scope(), group.pre_key, &bytes)) {
          if (StageProduct p = task.decode_preprocess(bytes)) {
            disk_hits.fetch_add(1);
            return p;
          }
        }
      }
      computed.fetch_add(1);
      StageProduct p = task.run_preprocess(lead_cfg);
      if (disk != nullptr) {
        std::string bytes;
        if (task.encode_preprocess(p, &bytes)) {
          disk->store(task.preprocess_scope(), group.pre_key, bytes);
          persisted.fetch_add(1);
        }
      }
      return p;
    });
  });

  // Phase 2, parallel per batch set: one forward invocation covers every
  // group of the set still lacking a product, then post-processing fans the
  // (split) outputs back out to the planned configs.
  detail::parallel_for_n(opts.threads, sets.size(), [&](std::size_t s) {
    std::vector<std::size_t> need;
    for (const std::size_t g : sets[s])
      if (fwd_of[g] == nullptr) need.push_back(g);
    if (!need.empty()) {
      obs::TraceSpan span("staged.forward");
      if (span.active()) {
        span.attr("fwd_key", groups[need.front()].fwd_key);
        span.attr("batched_groups", need.size());
      }
      if (need.size() == 1) {
        const std::size_t g = need.front();
        fwd_of[g] =
            task.run_forward(pending[groups[g].members.front()]->cfg, pre_of[g]);
      } else {
        std::vector<const SysNoiseConfig*> cfgs;
        std::vector<StageProduct> pres;
        for (const std::size_t g : need) {
          cfgs.push_back(&pending[groups[g].members.front()]->cfg);
          pres.push_back(pre_of[g]);
        }
        // A stacked multi-config forward is the big-M invocation worth
        // fanning out: grant the kernels intra-forward parallelism for its
        // duration (bit-identical at any worker count — disjoint row
        // ranges, unchanged per-element accumulation order).
        const GemmParallelScope gemm_fanout(/*workers=*/0);
        const std::vector<StageProduct> outs =
            task.run_forward_batched(cfgs, pres);
        if (outs.size() != need.size())
          throw std::runtime_error(
              "run_forward_batched returned " + std::to_string(outs.size()) +
              " products for " + std::to_string(need.size()) + " configs");
        std::size_t covered = 0;
        for (std::size_t i = 0; i < need.size(); ++i) {
          fwd_of[need[i]] = outs[i];
          covered += groups[need[i]].members.size();
        }
        // Multi-group invocations only: a singleton forward covering a
        // multi-member group is stage sharing, not cross-config batching,
        // and must not inflate the batching evidence.
        batch_cfgs.fetch_add(covered);
        for (std::size_t prev = batch_max.load();
             covered > prev && !batch_max.compare_exchange_weak(prev, covered);) {
        }
      }
      fwd_computed.fetch_add(need.size());
      batch_calls.fetch_add(1);
      if (disk != nullptr) {
        for (const std::size_t g : need) {
          std::string bytes;
          if (task.encode_forward(fwd_of[g], &bytes)) {
            disk->store(task.forward_scope(), groups[g].fwd_key, bytes);
            fwd_persisted.fetch_add(1);
          }
        }
      }
    }
    obs::TraceSpan post_span("staged.postprocess");
    for (const std::size_t g : sets[s])
      for (const std::size_t i : groups[g].members)
        values[i] = task.run_postprocess(pending[i]->cfg, fwd_of[g]);
  });

  if (stats != nullptr) {
    StageStats s;
    // Per planned evaluation: the first arrival at a stage key is the miss
    // that materializes it; every other member reuses the product.
    s.preprocess_misses = pre_cache.misses();
    s.preprocess_hits = pending.size() - pre_cache.misses();
    s.forward_misses = groups.size();
    s.forward_hits = pending.size() - groups.size();
    s.evaluations = pending.size();
    s.preprocess_disk_hits = disk_hits.load();
    s.preprocess_computed = computed.load();
    s.preprocess_persisted = persisted.load();
    s.forward_disk_hits = fwd_disk_hits.load();
    s.forward_computed = fwd_computed.load();
    s.forward_persisted = fwd_persisted.load();
    s.batched_forward_calls = batch_calls.load();
    s.batched_forward_configs = batch_cfgs.load();
    s.max_configs_per_batch = batch_max.load();
    *stats += s;
  }
  if (obs::trace_enabled()) {
    // Once per evaluation batch (cold path): cache effectiveness counters
    // for the flight-recorder summary. Purely observational — never read
    // back by any computation.
    obs::MetricsRegistry& m = obs::metrics();
    m.counter_add("staged.evaluations", pending.size());
    m.counter_add("staged.preprocess_hits",
                  pending.size() - pre_cache.misses());
    m.counter_add("staged.preprocess_misses", pre_cache.misses());
    m.counter_add("staged.forward_hits", pending.size() - groups.size());
    m.counter_add("staged.forward_misses", groups.size());
    m.counter_add("staged.preprocess_disk_hits", disk_hits.load());
    m.counter_add("staged.preprocess_computed", computed.load());
    m.counter_add("staged.forward_disk_hits", fwd_disk_hits.load());
    m.counter_add("staged.forward_computed", fwd_computed.load());
    m.counter_add("staged.batched_forward_calls", batch_calls.load());
    m.counter_add("staged.batched_forward_configs", batch_cfgs.load());
    if (batch_calls.load() > 0)
      m.gauge_add("staged.max_configs_per_batch",
                  static_cast<double>(batch_max.load()));
  }
  return values;
}

}  // namespace

MetricMap ThreadPoolExecutor::execute(const EvalTask& task,
                                      const SweepPlan& plan,
                                      const SweepOptions& opts) const {
  return detail::evaluate_plan(
      plan, opts, [&](const std::vector<const PlannedConfig*>& pending) {
        return monolithic_eval(task, pending, opts);
      });
}

MetricMap StagedExecutor::execute(const EvalTask& task, const SweepPlan& plan,
                                  const SweepOptions& opts) const {
  const auto* staged = dynamic_cast<const StagedEvalTask*>(&task);
  if (staged == nullptr) {
    // Not a staged task: the monolithic chain is the only evaluation there
    // is, so fall back rather than fail.
    return ThreadPoolExecutor().execute(task, plan, opts);
  }
  return detail::evaluate_plan(
      plan, opts, [&](const std::vector<const PlannedConfig*>& pending) {
        return staged_eval(*staged, pending, opts, stats_, disk_);
      });
}

ShardExecutor::ShardExecutor(const Executor& inner, int shard_index,
                             int shard_count)
    : inner_(inner), shard_index_(shard_index), shard_count_(shard_count) {
  if (shard_count <= 0 || shard_index < 0 || shard_index >= shard_count)
    throw std::invalid_argument("ShardExecutor: bad shard " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
}

MetricMap ShardExecutor::execute(const EvalTask& task, const SweepPlan& plan,
                                 const SweepOptions& opts) const {
  return inner_.execute(
      task, plan.slice(plan.shard_indices(shard_index_, shard_count_)), opts);
}

MetricMap ShardExecutor::merge(const SweepPlan& plan,
                               const std::vector<MetricMap>& parts) {
  MetricMap merged;
  for (const MetricMap& part : parts)
    for (const auto& [key, value] : part) {
      const auto [it, inserted] = merged.emplace(key, value);
      if (!inserted && it->second != value)
        throw std::invalid_argument(
            "ShardExecutor::merge: shards disagree on \"" + key + "\"");
    }
  for (const PlannedConfig& p : plan.configs)
    if (merged.find(p.metric_key) == merged.end())
      throw std::out_of_range(
          "ShardExecutor::merge: no shard covered planned config \"" +
          p.metric_key + "\"");
  return merged;
}

}  // namespace sysnoise::core
