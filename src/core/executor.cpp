#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/disk_stage_cache.h"
#include "core/sweep_detail.h"

namespace sysnoise::core {

namespace {

std::vector<double> monolithic_eval(
    const EvalTask& task, const std::vector<const PlannedConfig*>& pending,
    const SweepOptions& opts) {
  std::vector<double> values(pending.size(), 0.0);
  detail::parallel_for_n(opts.threads, pending.size(), [&](std::size_t i) {
    values[i] = task.evaluate(pending[i]->cfg);
  });
  return values;
}

// One forward pass shared by every config with the same forward key; the
// group members differ only in post-processing knobs.
struct ForwardGroup {
  std::string pre_key;
  std::string fwd_key;
  std::vector<std::size_t> members;  // indices into the pending list
};

// Stage keys come from the plan when present (a deserialized plan carries
// them); otherwise they are recomputed from the task.
std::string pre_key_of(const StagedEvalTask& task, const PlannedConfig& p) {
  return p.preprocess_key.empty() ? task.preprocess_key(p.cfg)
                                  : p.preprocess_key;
}

std::string fwd_key_of(const StagedEvalTask& task, const PlannedConfig& p) {
  return p.forward_key.empty() ? task.forward_key(p.cfg) : p.forward_key;
}

std::vector<double> staged_eval(const StagedEvalTask& task,
                                const std::vector<const PlannedConfig*>& pending,
                                const SweepOptions& opts, StageStats* stats,
                                DiskStageCache* disk) {
  // Plan: group by forward key, keeping groups with a common preprocess key
  // adjacent so their stage-1 product stays hot.
  std::vector<ForwardGroup> groups;
  std::map<std::string, std::size_t> group_of;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::string fwd_key = fwd_key_of(task, *pending[i]);
    const auto it = group_of.find(fwd_key);
    if (it == group_of.end()) {
      group_of.emplace(fwd_key, groups.size());
      groups.push_back({pre_key_of(task, *pending[i]), fwd_key, {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ForwardGroup& a, const ForwardGroup& b) {
                     return a.pre_key < b.pre_key;
                   });

  StageCache pre_cache;
  std::atomic<std::size_t> disk_hits{0}, computed{0}, persisted{0};
  std::atomic<std::size_t> fwd_disk_hits{0}, fwd_computed{0}, fwd_persisted{0};
  std::vector<double> values(pending.size(), 0.0);
  detail::parallel_for_n(opts.threads, groups.size(), [&](std::size_t g) {
    const ForwardGroup& group = groups[g];
    const SysNoiseConfig& lead_cfg = pending[group.members.front()]->cfg;
    // A disk-cached forward product makes stage 1 unnecessary for this
    // group: the pre-processed batches exist only to feed the network.
    StageProduct fwd;
    if (disk != nullptr) {
      std::string bytes;
      if (disk->load(task.forward_scope(), group.fwd_key, &bytes)) {
        if ((fwd = task.decode_forward(bytes)) != nullptr)
          fwd_disk_hits.fetch_add(1);
      }
    }
    if (fwd == nullptr) {
      const StageProduct pre = pre_cache.get_or_compute(group.pre_key, [&] {
        if (disk != nullptr) {
          std::string bytes;
          if (disk->load(task.preprocess_scope(), group.pre_key, &bytes)) {
            if (StageProduct p = task.decode_preprocess(bytes)) {
              disk_hits.fetch_add(1);
              return p;
            }
          }
        }
        computed.fetch_add(1);
        StageProduct p = task.run_preprocess(lead_cfg);
        if (disk != nullptr) {
          std::string bytes;
          if (task.encode_preprocess(p, &bytes)) {
            disk->store(task.preprocess_scope(), group.pre_key, bytes);
            persisted.fetch_add(1);
          }
        }
        return p;
      });
      fwd_computed.fetch_add(1);
      fwd = task.run_forward(lead_cfg, pre);
      if (disk != nullptr) {
        std::string bytes;
        if (task.encode_forward(fwd, &bytes)) {
          disk->store(task.forward_scope(), group.fwd_key, bytes);
          fwd_persisted.fetch_add(1);
        }
      }
    }
    for (const std::size_t i : group.members)
      values[i] = task.run_postprocess(pending[i]->cfg, fwd);
  });

  if (stats != nullptr) {
    StageStats s;
    // Per planned evaluation: the first arrival at a stage key is the miss
    // that materializes it; every other member reuses the product.
    s.preprocess_misses = pre_cache.misses();
    s.preprocess_hits = pending.size() - pre_cache.misses();
    s.forward_misses = groups.size();
    s.forward_hits = pending.size() - groups.size();
    s.evaluations = pending.size();
    s.preprocess_disk_hits = disk_hits.load();
    s.preprocess_computed = computed.load();
    s.preprocess_persisted = persisted.load();
    s.forward_disk_hits = fwd_disk_hits.load();
    s.forward_computed = fwd_computed.load();
    s.forward_persisted = fwd_persisted.load();
    *stats += s;
  }
  return values;
}

}  // namespace

MetricMap ThreadPoolExecutor::execute(const EvalTask& task,
                                      const SweepPlan& plan,
                                      const SweepOptions& opts) const {
  return detail::evaluate_plan(
      plan, opts, [&](const std::vector<const PlannedConfig*>& pending) {
        return monolithic_eval(task, pending, opts);
      });
}

MetricMap StagedExecutor::execute(const EvalTask& task, const SweepPlan& plan,
                                  const SweepOptions& opts) const {
  const auto* staged = dynamic_cast<const StagedEvalTask*>(&task);
  if (staged == nullptr) {
    // Not a staged task: the monolithic chain is the only evaluation there
    // is, so fall back rather than fail.
    return ThreadPoolExecutor().execute(task, plan, opts);
  }
  return detail::evaluate_plan(
      plan, opts, [&](const std::vector<const PlannedConfig*>& pending) {
        return staged_eval(*staged, pending, opts, stats_, disk_);
      });
}

ShardExecutor::ShardExecutor(const Executor& inner, int shard_index,
                             int shard_count)
    : inner_(inner), shard_index_(shard_index), shard_count_(shard_count) {
  if (shard_count <= 0 || shard_index < 0 || shard_index >= shard_count)
    throw std::invalid_argument("ShardExecutor: bad shard " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
}

MetricMap ShardExecutor::execute(const EvalTask& task, const SweepPlan& plan,
                                 const SweepOptions& opts) const {
  return inner_.execute(
      task, plan.slice(plan.shard_indices(shard_index_, shard_count_)), opts);
}

MetricMap ShardExecutor::merge(const SweepPlan& plan,
                               const std::vector<MetricMap>& parts) {
  MetricMap merged;
  for (const MetricMap& part : parts)
    for (const auto& [key, value] : part) {
      const auto [it, inserted] = merged.emplace(key, value);
      if (!inserted && it->second != value)
        throw std::invalid_argument(
            "ShardExecutor::merge: shards disagree on \"" + key + "\"");
    }
  for (const PlannedConfig& p : plan.configs)
    if (merged.find(p.metric_key) == merged.end())
      throw std::out_of_range(
          "ShardExecutor::merge: no shard covered planned config \"" +
          p.metric_key + "\"");
  return merged;
}

}  // namespace sysnoise::core
