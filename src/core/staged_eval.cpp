#include "core/staged_eval.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/sweep_detail.h"

namespace sysnoise::core {

std::string forward_key_suffix(const SysNoiseConfig& cfg) {
  std::ostringstream os;
  os << "|prec=" << nn::precision_name(cfg.precision)
     << "|ceil=" << (cfg.ceil_mode ? 1 : 0)
     << "|up=" << nn::upsample_mode_name(cfg.upsample);
  return os.str();
}

StageProduct StageCache::get_or_compute(
    const std::string& key, const std::function<StageProduct()>& compute) {
  std::promise<StageProduct> promise;
  std::shared_future<StageProduct> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      owner = true;
    }
  }
  // The inserting thread computes; concurrent readers block on the future.
  if (owner) {
    try {
      promise.set_value(compute());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t StageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t StageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t StageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

StageStats& StageStats::operator+=(const StageStats& o) {
  preprocess_hits += o.preprocess_hits;
  preprocess_misses += o.preprocess_misses;
  forward_hits += o.forward_hits;
  forward_misses += o.forward_misses;
  evaluations += o.evaluations;
  return *this;
}

namespace {

using detail::Request;

// One forward pass shared by every config with the same forward key; the
// group members differ only in post-processing knobs.
struct ForwardGroup {
  std::string pre_key;
  std::string fwd_key;
  std::vector<std::size_t> members;  // indices into the pending list
};

// Staged evaluator: group the pending configs by (preprocess, forward)
// keys, then evaluate forward groups concurrently. Each group computes its
// pre-processed batches through a compute-once StageCache (shared across
// groups with equal preprocess keys), runs one forward pass, and
// post-processes every member from those outputs.
std::map<std::string, double> staged_evaluate_all(
    const StagedEvalTask& task, const std::vector<Request>& requests,
    const SweepOptions& opts, StageStats* stats) {
  return detail::evaluate_requests(
      requests, opts, [&](const std::vector<const Request*>& pending) {
        // Plan: group by forward key, keeping groups with a common
        // preprocess key adjacent so their stage-1 product stays hot.
        std::vector<ForwardGroup> groups;
        std::map<std::string, std::size_t> group_of;
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const std::string fwd_key = task.forward_key(pending[i]->cfg);
          const auto it = group_of.find(fwd_key);
          if (it == group_of.end()) {
            group_of.emplace(fwd_key, groups.size());
            groups.push_back({task.preprocess_key(pending[i]->cfg), fwd_key,
                              {i}});
          } else {
            groups[it->second].members.push_back(i);
          }
        }
        std::stable_sort(groups.begin(), groups.end(),
                         [](const ForwardGroup& a, const ForwardGroup& b) {
                           return a.pre_key < b.pre_key;
                         });

        StageCache pre_cache;
        std::vector<double> values(pending.size(), 0.0);
        detail::parallel_for_n(
            opts.threads, groups.size(), [&](std::size_t g) {
              const ForwardGroup& group = groups[g];
              const SysNoiseConfig& lead_cfg =
                  pending[group.members.front()]->cfg;
              const StageProduct pre = pre_cache.get_or_compute(
                  group.pre_key,
                  [&] { return task.run_preprocess(lead_cfg); });
              const StageProduct fwd = task.run_forward(lead_cfg, pre);
              for (const std::size_t i : group.members)
                values[i] = task.run_postprocess(pending[i]->cfg, fwd);
            });

        if (stats != nullptr) {
          StageStats s;
          // Per planned evaluation: the first arrival at a stage key is the
          // miss that computes it; every other member reuses the product.
          s.preprocess_misses = pre_cache.misses();
          s.preprocess_hits = pending.size() - pre_cache.misses();
          s.forward_misses = groups.size();
          s.forward_hits = pending.size() - groups.size();
          s.evaluations = pending.size();
          *stats += s;
        }
        return values;
      });
}

}  // namespace

AxisReport staged_sweep(const StagedEvalTask& task, const SweepOptions& opts,
                        StageStats* stats) {
  const AxisRegistry& registry = detail::registry_of(opts);
  const auto requests = detail::plan_sweep_requests(task, registry);
  const auto results = staged_evaluate_all(task, requests, opts, stats);
  return detail::assemble_axis_report(task, registry, results);
}

std::vector<StepPoint> staged_stepwise(const StagedEvalTask& task,
                                       const SweepOptions& opts,
                                       StageStats* stats) {
  const AxisRegistry& registry = detail::registry_of(opts);
  std::vector<std::string> labels;
  const auto requests = detail::plan_stepwise_requests(task, registry, &labels);
  const auto results = staged_evaluate_all(task, requests, opts, stats);

  const double trained = results.at(requests.front().key);
  std::vector<StepPoint> points;
  for (std::size_t i = 0; i < labels.size(); ++i)
    points.push_back({labels[i], trained - results.at(requests[i + 1].key)});
  return points;
}

}  // namespace sysnoise::core
