#include "core/staged_eval.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/executor.h"
#include "core/plan.h"

namespace sysnoise::core {

std::string forward_key_suffix(const SysNoiseConfig& cfg) {
  std::ostringstream os;
  os << "|prec=" << nn::precision_name(cfg.precision)
     << "|ceil=" << (cfg.ceil_mode ? 1 : 0)
     << "|up=" << nn::upsample_mode_name(cfg.upsample)
     // Different kernel families legitimately produce different floats, so
     // forward products (memory and disk StageCache alike) never mix across
     // backends.
     << "|be=" << backend_name(cfg.backend);
  return os.str();
}

std::vector<StageProduct> StagedEvalTask::run_forward_batched(
    const std::vector<const SysNoiseConfig*>& cfgs,
    const std::vector<StageProduct>& pres) const {
  std::vector<StageProduct> out;
  out.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    out.push_back(run_forward(*cfgs[i], pres[i]));
  return out;
}

StageProduct StageCache::get_or_compute(
    const std::string& key, const std::function<StageProduct()>& compute) {
  std::promise<StageProduct> promise;
  std::shared_future<StageProduct> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
    } else {
      ++misses_;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      owner = true;
    }
  }
  // The inserting thread computes; concurrent readers block on the future.
  if (owner) {
    try {
      promise.set_value(compute());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t StageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t StageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t StageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

StageStats& StageStats::operator+=(const StageStats& o) {
  preprocess_hits += o.preprocess_hits;
  preprocess_misses += o.preprocess_misses;
  forward_hits += o.forward_hits;
  forward_misses += o.forward_misses;
  evaluations += o.evaluations;
  preprocess_disk_hits += o.preprocess_disk_hits;
  preprocess_computed += o.preprocess_computed;
  preprocess_persisted += o.preprocess_persisted;
  forward_disk_hits += o.forward_disk_hits;
  forward_computed += o.forward_computed;
  forward_persisted += o.forward_persisted;
  batched_forward_calls += o.batched_forward_calls;
  batched_forward_configs += o.batched_forward_configs;
  max_configs_per_batch = std::max(max_configs_per_batch, o.max_configs_per_batch);
  return *this;
}

util::Json StageStats::to_json() const {
  util::Json j = util::Json::object();
  j.set("preprocess_hits", preprocess_hits);
  j.set("preprocess_misses", preprocess_misses);
  j.set("forward_hits", forward_hits);
  j.set("forward_misses", forward_misses);
  j.set("evaluations", evaluations);
  j.set("preprocess_disk_hits", preprocess_disk_hits);
  j.set("preprocess_computed", preprocess_computed);
  j.set("preprocess_persisted", preprocess_persisted);
  j.set("forward_disk_hits", forward_disk_hits);
  j.set("forward_computed", forward_computed);
  j.set("forward_persisted", forward_persisted);
  j.set("batched_forward_calls", batched_forward_calls);
  j.set("batched_forward_configs", batched_forward_configs);
  j.set("max_configs_per_batch", max_configs_per_batch);
  return j;
}

// Thin compositions of the explicit lifecycle, staged flavor: plan ->
// StagedExecutor -> assemble. The stage-sharing machinery itself lives in
// core/executor.cpp.

AxisReport staged_sweep(const StagedEvalTask& task, const SweepOptions& opts,
                        StageStats* stats) {
  const SweepPlan plan = plan_sweep(task, registry_or_global(opts));
  return assemble_report(plan,
                         StagedExecutor(stats).execute(task, plan, opts));
}

std::vector<StepPoint> staged_stepwise(const StagedEvalTask& task,
                                       const SweepOptions& opts,
                                       StageStats* stats) {
  const SweepPlan plan = plan_stepwise(task, registry_or_global(opts));
  return assemble_steps(plan, StagedExecutor(stats).execute(task, plan, opts));
}

}  // namespace sysnoise::core
