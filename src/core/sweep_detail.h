// Internal helpers shared by the executors (core/executor.cpp) and the
// sweep()/staged_sweep() wrappers: the metric-memoization front-end over a
// SweepPlan and a small parallel-for. Not part of the public API — include
// only from core/*.cpp and tests.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/plan.h"

namespace sysnoise::core::detail {

// Run fn(0..count-1) on up to `threads` workers; rethrows the first worker
// exception. Deterministic for independent iterations.
inline void parallel_for_n(int threads, std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  threads = threads > 0 ? threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, static_cast<int>(count)));
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Memoization front-end shared by every executor: dedup identical configs
// within the plan, consult the cross-call cache, hand the still-pending
// configs to `eval_pending` (which returns one metric per pending config,
// in order), and write fresh results back through the cache.
inline MetricMap evaluate_plan(
    const SweepPlan& plan, const SweepOptions& opts,
    const std::function<
        std::vector<double>(const std::vector<const PlannedConfig*>&)>&
        eval_pending) {
  MetricMap results;
  std::vector<const PlannedConfig*> pending;
  for (const PlannedConfig& p : plan.configs) {
    if (opts.memoize) {
      if (results.count(p.metric_key) != 0) continue;
      double cached = 0.0;
      if (opts.cache != nullptr && opts.cache->lookup(p.metric_key, &cached)) {
        results.emplace(p.metric_key, cached);
        continue;
      }
      results.emplace(p.metric_key, 0.0);  // reserve so duplicates dedup
    }
    pending.push_back(&p);
  }

  const std::vector<double> values = eval_pending(pending);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    results[pending[i]->metric_key] = values[i];
    if (opts.memoize && opts.cache != nullptr)
      opts.cache->store(pending[i]->metric_key, values[i]);
  }
  return results;
}

}  // namespace sysnoise::core::detail
