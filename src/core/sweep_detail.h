// Internal helpers shared by the monolithic sweep engine (core/sweep.cpp)
// and the staged engine (core/staged_eval.cpp): request planning, the
// memoization front-end, report assembly, and a small parallel-for. Not
// part of the public API — include only from core/*.cpp and tests.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.h"

namespace sysnoise::core::detail {

struct Request {
  std::string key;  // SweepCache metric key (task identity + cfg.describe())
  SysNoiseConfig cfg;
};

inline Request make_request(const EvalTask& task, SysNoiseConfig cfg) {
  Request r;
  r.key = SweepCache::key_for(task, cfg);
  r.cfg = std::move(cfg);
  return r;
}

inline const AxisRegistry& registry_of(const SweepOptions& opts) {
  return opts.registry != nullptr ? *opts.registry : AxisRegistry::global();
}

// The full-table plan: training baseline, every applicable axis option, and
// the all-noises Combined config (in that order).
inline std::vector<Request> plan_sweep_requests(const EvalTask& task,
                                                const AxisRegistry& registry) {
  const TaskTraits traits = task.traits();
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  std::vector<Request> requests;
  requests.push_back(make_request(task, base));
  for (const NoiseAxis* axis : registry.applicable(traits)) {
    for (int i = 0; i < axis->num_options(); ++i) {
      SysNoiseConfig cfg = base;
      axis->apply(cfg, i);
      requests.push_back(make_request(task, cfg));
    }
  }
  requests.push_back(make_request(task, combined_config(traits, registry)));
  return requests;
}

// The Fig. 3 plan: baseline plus one request per cumulative step. Fills
// `labels` with the step labels in order.
inline std::vector<Request> plan_stepwise_requests(
    const EvalTask& task, const AxisRegistry& registry,
    std::vector<std::string>* labels) {
  const auto axes = registry.applicable(task.traits());
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  std::vector<Request> requests;
  requests.push_back(make_request(task, base));
  SysNoiseConfig cfg = base;
  for (const NoiseAxis* axis : axes) {
    axis->apply(cfg, axis->combined_option);
    labels->push_back(labels->empty() ? axis->step_label
                                      : "+" + axis->step_label);
    requests.push_back(make_request(task, cfg));
  }
  return requests;
}

// Build the AxisReport from the evaluated metric map (keyed like Requests).
inline AxisReport assemble_axis_report(const EvalTask& task,
                                       const AxisRegistry& registry,
                                       const std::map<std::string, double>& results) {
  const TaskTraits traits = task.traits();
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  AxisReport report;
  report.model = task.name();
  report.trained = results.at(SweepCache::key_for(task, base));
  for (const NoiseAxis* axis : registry.applicable(traits)) {
    AxisResult res;
    res.axis = axis->name;
    res.key = axis->key;
    res.per_option = axis->per_option;
    double sum = 0.0, worst = -1e300;
    for (int i = 0; i < axis->num_options(); ++i) {
      SysNoiseConfig cfg = base;
      axis->apply(cfg, i);
      const double d =
          report.trained - results.at(SweepCache::key_for(task, cfg));
      res.options.push_back({axis->option_labels[static_cast<std::size_t>(i)], d});
      sum += d;
      worst = std::max(worst, d);
    }
    res.mean = sum / static_cast<double>(axis->num_options());
    res.max = worst;
    report.axes.push_back(std::move(res));
  }
  report.combined = report.trained -
                    results.at(SweepCache::key_for(
                        task, combined_config(traits, registry)));
  return report;
}

// Run fn(0..count-1) on up to `threads` workers; rethrows the first worker
// exception. Deterministic for independent iterations.
inline void parallel_for_n(int threads, std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  threads = threads > 0 ? threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, static_cast<int>(count)));
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Memoization front-end shared by both engines: dedup identical configs,
// consult the cross-call cache, hand the still-pending requests to
// `eval_pending` (which returns one metric per pending request, in order),
// and write fresh results back through the cache.
inline std::map<std::string, double> evaluate_requests(
    const std::vector<Request>& requests, const SweepOptions& opts,
    const std::function<std::vector<double>(const std::vector<const Request*>&)>&
        eval_pending) {
  std::map<std::string, double> results;
  std::vector<const Request*> pending;
  for (const Request& r : requests) {
    if (opts.memoize) {
      if (results.count(r.key) != 0) continue;
      double cached = 0.0;
      if (opts.cache != nullptr && opts.cache->lookup(r.key, &cached)) {
        results.emplace(r.key, cached);
        continue;
      }
      results.emplace(r.key, 0.0);  // reserve so duplicates dedup
    }
    pending.push_back(&r);
  }

  const std::vector<double> values = eval_pending(pending);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    results[pending[i]->key] = values[i];
    if (opts.memoize && opts.cache != nullptr)
      opts.cache->store(pending[i]->key, values[i]);
  }
  return results;
}

}  // namespace sysnoise::core::detail
