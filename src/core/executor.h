// The execute half of the plan -> execute -> merge lifecycle.
//
// An Executor turns a SweepPlan (core/plan.h) into a MetricMap; how — one
// process, stage-sharing, a shard of a distributed run — is the executor's
// business, never the caller's. All executors honor SweepOptions (thread
// count, metric memoization, cross-call SweepCache) and are required to be
// bit-identical to each other on the same plan: swapping executors changes
// wall time and locality, never results.
//
//  * ThreadPoolExecutor — the monolithic path: each planned config runs the
//    task's full evaluate() chain, fanned out over a thread pool.
//  * StagedExecutor — stage-shared evaluation for StagedEvalTasks (configs
//    grouped by forward key; pre-processing computed once per preprocess
//    key), with cross-config batched forwards: forward-key groups whose
//    configs advertise the same forward_batch_key (same weights + inference
//    knobs) stack their stage-1 batches through ONE network invocation
//    (SweepOptions::batch_forwards / max_forward_batch). Optionally backed
//    by a disk StageCache so products persist across processes and bench
//    binaries. Falls back to the monolithic path for tasks that are not
//    staged.
//  * ShardExecutor — deterministically partitions the plan into i/N slices
//    (plan-order round-robin), executes only its slice through an inner
//    executor, and statically merges partial MetricMaps back into the full
//    map, bit-identical to a single-process run.
#pragma once

#include <cstddef>
#include <vector>

#include "core/plan.h"
#include "core/staged_eval.h"

namespace sysnoise::core {

class DiskStageCache;

class Executor {
 public:
  virtual ~Executor() = default;
  virtual const char* name() const = 0;
  // Evaluate every config in `plan` (metric-memoized per SweepOptions) and
  // return metric_key -> metric covering at least those configs.
  virtual MetricMap execute(const EvalTask& task, const SweepPlan& plan,
                            const SweepOptions& opts = {}) const = 0;
};

// The in-process thread-pool path previously fused into sweep().
class ThreadPoolExecutor : public Executor {
 public:
  const char* name() const override { return "thread-pool"; }
  MetricMap execute(const EvalTask& task, const SweepPlan& plan,
                    const SweepOptions& opts = {}) const override;
};

// The stage-cache-aware path previously fused into staged_sweep(). `stats`
// (optional) accumulates stage-cache accounting across execute() calls;
// `disk` (optional) persists/loads encoded stage-1 products so repeat
// invocations skip the pre-processing work entirely.
class StagedExecutor : public Executor {
 public:
  explicit StagedExecutor(StageStats* stats = nullptr,
                          DiskStageCache* disk = nullptr)
      : stats_(stats), disk_(disk) {}
  const char* name() const override { return "staged"; }
  MetricMap execute(const EvalTask& task, const SweepPlan& plan,
                    const SweepOptions& opts = {}) const override;

 private:
  StageStats* stats_;
  DiskStageCache* disk_;
};

// Deterministic i/N partition of a plan. Executes plan.slice(shard) through
// the inner executor; merge() reassembles the full metric map.
class ShardExecutor : public Executor {
 public:
  ShardExecutor(const Executor& inner, int shard_index, int shard_count);
  const char* name() const override { return "shard"; }
  int shard_index() const { return shard_index_; }
  int shard_count() const { return shard_count_; }
  MetricMap execute(const EvalTask& task, const SweepPlan& plan,
                    const SweepOptions& opts = {}) const override;

  // Merge partial shard results into the plan's full metric map. Verifies
  // that every planned config is covered and that overlapping entries agree
  // bit-exactly; throws std::invalid_argument / std::out_of_range on gaps
  // or disagreement.
  static MetricMap merge(const SweepPlan& plan,
                         const std::vector<MetricMap>& parts);

 private:
  const Executor& inner_;
  int shard_index_;
  int shard_count_;
};

}  // namespace sysnoise::core
