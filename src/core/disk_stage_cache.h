// Disk-backed stage-product store: persists encoded stage products (the
// pre-processed input batches of the staged evaluation split) under
// $SYSNOISE_STAGE_CACHE_DIR so they survive the process. Separate bench
// binaries — and separate shards of one sharded sweep — stop re-decoding
// JPEG work for preprocess keys any earlier run has already materialized.
//
// Entries are keyed by (scope, stage key): the scope names what the key is
// relative to (dataset + pipeline-spec identity for pre-processing
// products, task identity for forward products) since preprocess_key alone
// is deliberately dataset-agnostic. Files are content-addressed by FNV-1a
// of scope and key, store both verbatim for collision rejection, and are
// written via a temp-file rename so concurrent writers never expose a
// half-written entry.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

namespace sysnoise::core {

class DiskStageCache {
 public:
  // Default directory: $SYSNOISE_STAGE_CACHE_DIR, else
  // $SYSNOISE_CACHE_DIR/stages, else /tmp/sysnoise_model_cache/stages.
  static std::string default_dir();

  // The opt-out every consumer (bench binaries, distributed workers)
  // honors: SYSNOISE_DISK_STAGE_CACHE=0 disables persistence; default on.
  static bool enabled_by_env();

  explicit DiskStageCache(std::string dir = default_dir());

  const std::string& dir() const { return dir_; }

  // Load the encoded product for (scope, key) into *bytes. Returns false on
  // a missing entry, a hash collision (stored scope/key differ), or a
  // format/version mismatch.
  bool load(const std::string& scope, const std::string& key,
            std::string* bytes);
  // Persist an encoded product. Thread- and process-safe: the entry is
  // written to a unique temp file and atomically renamed into place.
  void store(const std::string& scope, const std::string& key,
             const std::string& bytes);

  std::size_t hits() const;    // successful load()s
  std::size_t misses() const;  // load()s that found nothing usable
  std::size_t stores() const;

 private:
  std::string entry_path(const std::string& scope, const std::string& key) const;

  std::string dir_;
  mutable std::mutex mu_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t stores_ = 0;
};

}  // namespace sysnoise::core
