#include "core/plan.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/staged_eval.h"

namespace sysnoise::core {

const char* planned_role_name(PlannedConfig::Role r) {
  switch (r) {
    case PlannedConfig::Role::kBaseline: return "baseline";
    case PlannedConfig::Role::kOption: return "option";
    case PlannedConfig::Role::kCombined: return "combined";
    case PlannedConfig::Role::kStep: return "step";
  }
  return "?";
}

PlannedConfig::Role planned_role_from_name(const std::string& name) {
  for (const auto r :
       {PlannedConfig::Role::kBaseline, PlannedConfig::Role::kOption,
        PlannedConfig::Role::kCombined, PlannedConfig::Role::kStep})
    if (name == planned_role_name(r)) return r;
  throw std::invalid_argument("unknown planned-config role \"" + name + "\"");
}

namespace {

PlannedConfig make_planned(const EvalTask& task, PlannedConfig::Role role,
                           SysNoiseConfig cfg) {
  PlannedConfig p;
  p.role = role;
  p.metric_key = SweepCache::key_for(task, cfg);
  if (const auto* staged = dynamic_cast<const StagedEvalTask*>(&task)) {
    p.preprocess_key = staged->preprocess_key(cfg);
    p.forward_key = staged->forward_key(cfg);
  }
  p.cfg = std::move(cfg);
  return p;
}

PlanAxis plan_axis_of(const NoiseAxis& axis) {
  PlanAxis pa;
  pa.name = axis.name;
  pa.key = axis.key;
  pa.per_option = axis.per_option;
  pa.option_labels = axis.option_labels;
  return pa;
}

// A plan with zero applicable axes means the registry and the task belong
// to different modalities (e.g. image-only axes planned against an NLP
// task) — a silent baseline-plus-combined "sweep" would measure nothing, so
// fail loudly instead.
void require_applicable(const EvalTask& task,
                        const std::vector<const NoiseAxis*>& axes) {
  if (axes.empty())
    throw std::invalid_argument(
        std::string("plan: no registered axis applies to task \"") +
        task.name() + "\" (kind " + task_kind_name(task.traits().kind) +
        ") — registry/modality mismatch?");
}

}  // namespace

const AxisRegistry& registry_or_global(const SweepOptions& opts) {
  return opts.registry != nullptr ? *opts.registry : AxisRegistry::global();
}

SweepPlan plan_sweep(const EvalTask& task, const AxisRegistry& registry) {
  const TaskTraits traits = task.traits();
  const SysNoiseConfig base = SysNoiseConfig::training_default();

  SweepPlan plan;
  plan.kind = SweepPlan::Kind::kSweep;
  plan.task = task.name();
  plan.task_identity = task.cache_identity();
  plan.configs.push_back(make_planned(task, PlannedConfig::Role::kBaseline, base));
  const std::vector<const NoiseAxis*> applicable = registry.applicable(traits);
  require_applicable(task, applicable);
  for (const NoiseAxis* axis : applicable) {
    const int axis_index = static_cast<int>(plan.axes.size());
    plan.axes.push_back(plan_axis_of(*axis));
    for (int i = 0; i < axis->num_options(); ++i) {
      SysNoiseConfig cfg = base;
      axis->apply(cfg, i);
      PlannedConfig p =
          make_planned(task, PlannedConfig::Role::kOption, std::move(cfg));
      p.axis = axis_index;
      p.option = i;
      p.label = axis->option_labels[static_cast<std::size_t>(i)];
      plan.configs.push_back(std::move(p));
    }
  }
  plan.configs.push_back(make_planned(task, PlannedConfig::Role::kCombined,
                                      combined_config(traits, registry)));
  return plan;
}

SweepPlan plan_stepwise(const EvalTask& task, const AxisRegistry& registry) {
  const SysNoiseConfig base = SysNoiseConfig::training_default();

  SweepPlan plan;
  plan.kind = SweepPlan::Kind::kStepwise;
  plan.task = task.name();
  plan.task_identity = task.cache_identity();
  plan.configs.push_back(make_planned(task, PlannedConfig::Role::kBaseline, base));
  SysNoiseConfig cfg = base;
  const std::vector<const NoiseAxis*> applicable =
      registry.applicable(task.traits());
  require_applicable(task, applicable);
  for (const NoiseAxis* axis : applicable) {
    plan.axes.push_back(plan_axis_of(*axis));
    axis->apply(cfg, axis->combined_option);
    PlannedConfig p = make_planned(task, PlannedConfig::Role::kStep, cfg);
    p.axis = static_cast<int>(plan.axes.size()) - 1;
    p.option = axis->combined_option;
    p.label = plan.configs.size() == 1 ? axis->step_label
                                       : "+" + axis->step_label;
    plan.configs.push_back(std::move(p));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

std::vector<std::size_t> SweepPlan::shard_indices(int shard_index,
                                                  int shard_count) const {
  if (shard_count <= 0 || shard_index < 0 || shard_index >= shard_count)
    throw std::invalid_argument("SweepPlan::shard_indices: bad shard " +
                                std::to_string(shard_index) + "/" +
                                std::to_string(shard_count));
  std::vector<std::size_t> out;
  for (std::size_t i = static_cast<std::size_t>(shard_index);
       i < configs.size(); i += static_cast<std::size_t>(shard_count))
    out.push_back(i);
  return out;
}

SweepPlan SweepPlan::slice(const std::vector<std::size_t>& indices) const {
  SweepPlan out;
  out.kind = kind;
  out.task = task;
  out.task_identity = task_identity;
  out.axes = axes;
  out.configs.reserve(indices.size());
  for (const std::size_t i : indices) {
    if (i >= configs.size())
      throw std::out_of_range("SweepPlan::slice: index out of range");
    out.configs.push_back(configs[i]);
  }
  return out;
}

std::string planned_forward_suffix(const PlannedConfig& p) {
  if (p.forward_key.empty() || p.preprocess_key.empty() ||
      p.forward_key.size() <= p.preprocess_key.size() ||
      p.forward_key.compare(0, p.preprocess_key.size(), p.preprocess_key) != 0)
    return std::string();
  return p.forward_key.substr(p.preprocess_key.size());
}

std::vector<std::vector<std::size_t>> plan_work_units(const SweepPlan& plan) {
  return plan_work_units(plan, WorkUnitOptions{});
}

std::vector<std::vector<std::size_t>> plan_work_units(
    const SweepPlan& plan, const WorkUnitOptions& opts) {
  struct Unit {
    std::string pre_key;
    std::string suffix;  // forward-batch compatibility ("" = not mergeable)
    std::vector<std::size_t> members;
    std::size_t groups = 1;  // forward-key groups merged into this unit
  };
  std::vector<Unit> units;
  std::map<std::string, std::size_t> unit_of;
  for (std::size_t i = 0; i < plan.configs.size(); ++i) {
    const PlannedConfig& p = plan.configs[i];
    // Duplicate configs share a metric key and always share a forward key,
    // so keying on either lands them in one unit (one evaluation, memoized).
    const std::string& key =
        p.forward_key.empty() ? p.metric_key : p.forward_key;
    const auto it = unit_of.find(key);
    if (it == unit_of.end()) {
      unit_of.emplace(key, units.size());
      units.push_back({p.preprocess_key, planned_forward_suffix(p), {i}});
    } else {
      units[it->second].members.push_back(i);
    }
  }
  // Mirror the staged executor's grouping order: units sharing a stage-1
  // product adjacent, so consecutive leases to one worker (and the disk
  // StageCache) see warm preprocess keys.
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     return a.pre_key < b.pre_key;
                   });
  if (opts.merge_batch_compatible) {
    // Concatenate forward groups sharing a suffix (up to the cap) so one
    // lease holds a whole batchable set; pre-key order within a merged unit
    // is preserved from the sort above.
    const std::size_t cap = std::max<std::size_t>(1, opts.max_groups_per_unit);
    std::vector<Unit> merged;
    std::map<std::string, std::size_t> open;  // suffix -> merged index
    for (Unit& u : units) {
      const auto it = u.suffix.empty() ? open.end() : open.find(u.suffix);
      if (it != open.end() && merged[it->second].groups < cap) {
        Unit& dst = merged[it->second];
        dst.members.insert(dst.members.end(), u.members.begin(),
                           u.members.end());
        ++dst.groups;
      } else {
        if (!u.suffix.empty()) open[u.suffix] = merged.size();
        merged.push_back(std::move(u));
      }
    }
    units = std::move(merged);
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(units.size());
  for (Unit& u : units) out.push_back(std::move(u.members));
  return out;
}

// ---------------------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------------------

util::Json SweepPlan::to_json() const {
  util::Json j = util::Json::object();
  j.set("kind", kind == Kind::kSweep ? "sweep" : "stepwise");
  j.set("task", task);
  j.set("task_identity", task_identity);

  util::Json jaxes = util::Json::array();
  for (const PlanAxis& a : axes) {
    util::Json ja = util::Json::object();
    ja.set("name", a.name);
    ja.set("key", a.key);
    ja.set("per_option", a.per_option);
    util::Json labels = util::Json::array();
    for (const std::string& l : a.option_labels) labels.push_back(l);
    ja.set("option_labels", std::move(labels));
    jaxes.push_back(std::move(ja));
  }
  j.set("axes", std::move(jaxes));

  util::Json jconfigs = util::Json::array();
  for (const PlannedConfig& p : configs) {
    util::Json jp = util::Json::object();
    jp.set("role", planned_role_name(p.role));
    if (p.role == PlannedConfig::Role::kOption ||
        p.role == PlannedConfig::Role::kStep) {
      jp.set("axis", p.axis);
      jp.set("option", p.option);
      jp.set("label", p.label);
    }
    jp.set("metric_key", p.metric_key);
    if (!p.preprocess_key.empty()) jp.set("preprocess_key", p.preprocess_key);
    if (!p.forward_key.empty()) jp.set("forward_key", p.forward_key);
    jp.set("config", p.cfg.to_json());
    jconfigs.push_back(std::move(jp));
  }
  j.set("configs", std::move(jconfigs));
  return j;
}

SweepPlan SweepPlan::from_json(const util::Json& j) {
  SweepPlan plan;
  const std::string& kind = j.at("kind").as_string();
  if (kind == "sweep") {
    plan.kind = Kind::kSweep;
  } else if (kind == "stepwise") {
    plan.kind = Kind::kStepwise;
  } else {
    throw std::invalid_argument("unknown plan kind \"" + kind + "\"");
  }
  plan.task = j.at("task").as_string();
  plan.task_identity = j.at("task_identity").as_string();

  const util::Json& jaxes = j.at("axes");
  for (std::size_t i = 0; i < jaxes.size(); ++i) {
    const util::Json& ja = jaxes.at(i);
    PlanAxis a;
    a.name = ja.at("name").as_string();
    a.key = ja.at("key").as_string();
    a.per_option = ja.at("per_option").as_bool();
    const util::Json& labels = ja.at("option_labels");
    for (std::size_t l = 0; l < labels.size(); ++l)
      a.option_labels.push_back(labels.at(l).as_string());
    plan.axes.push_back(std::move(a));
  }

  const util::Json& jconfigs = j.at("configs");
  for (std::size_t i = 0; i < jconfigs.size(); ++i) {
    const util::Json& jp = jconfigs.at(i);
    PlannedConfig p;
    p.role = planned_role_from_name(jp.at("role").as_string());
    if (p.role == PlannedConfig::Role::kOption ||
        p.role == PlannedConfig::Role::kStep) {
      p.axis = jp.at("axis").as_int();
      p.option = jp.at("option").as_int();
      p.label = jp.at("label").as_string();
      if (p.axis < 0 || p.axis >= static_cast<int>(plan.axes.size()))
        throw std::invalid_argument("planned config references unknown axis");
    }
    p.metric_key = jp.at("metric_key").as_string();
    if (const util::Json* pk = jp.get("preprocess_key"))
      p.preprocess_key = pk->as_string();
    if (const util::Json* fk = jp.get("forward_key"))
      p.forward_key = fk->as_string();
    p.cfg = SysNoiseConfig::from_json(jp.at("config"));
    plan.configs.push_back(std::move(p));
  }
  return plan;
}

std::string SweepPlan::fingerprint() const {
  return util::fnv1a64_hex(to_json().dump());
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

namespace {

double metric_at(const MetricMap& results, const std::string& key) {
  const auto it = results.find(key);
  if (it == results.end())
    throw std::out_of_range("assemble: no metric for planned config \"" + key +
                            "\" (incomplete shard merge?)");
  return it->second;
}

double baseline_metric(const SweepPlan& plan, const MetricMap& results) {
  for (const PlannedConfig& p : plan.configs)
    if (p.role == PlannedConfig::Role::kBaseline)
      return metric_at(results, p.metric_key);
  throw std::invalid_argument("assemble: plan has no baseline config");
}

}  // namespace

AxisReport assemble_report(const SweepPlan& plan, const MetricMap& results) {
  if (plan.kind != SweepPlan::Kind::kSweep)
    throw std::invalid_argument("assemble_report: not a sweep plan");
  AxisReport report;
  report.model = plan.task;
  report.trained = baseline_metric(plan, results);

  for (const PlanAxis& axis : plan.axes) {
    AxisResult res;
    res.axis = axis.name;
    res.key = axis.key;
    res.per_option = axis.per_option;
    report.axes.push_back(std::move(res));
  }
  for (const PlannedConfig& p : plan.configs) {
    switch (p.role) {
      case PlannedConfig::Role::kOption: {
        AxisResult& res = report.axes[static_cast<std::size_t>(p.axis)];
        res.options.push_back(
            {p.label, report.trained - metric_at(results, p.metric_key)});
        break;
      }
      case PlannedConfig::Role::kCombined:
        report.combined = report.trained - metric_at(results, p.metric_key);
        break;
      case PlannedConfig::Role::kBaseline:
      case PlannedConfig::Role::kStep:
        break;
    }
  }
  for (AxisResult& res : report.axes) {
    double sum = 0.0, worst = -1e300;
    for (const OptionDelta& o : res.options) {
      sum += o.delta;
      worst = std::max(worst, o.delta);
    }
    res.mean = res.options.empty()
                   ? 0.0
                   : sum / static_cast<double>(res.options.size());
    res.max = worst;
  }
  return report;
}

std::vector<StepPoint> assemble_steps(const SweepPlan& plan,
                                      const MetricMap& results) {
  if (plan.kind != SweepPlan::Kind::kStepwise)
    throw std::invalid_argument("assemble_steps: not a stepwise plan");
  const double trained = baseline_metric(plan, results);
  std::vector<StepPoint> points;
  for (const PlannedConfig& p : plan.configs)
    if (p.role == PlannedConfig::Role::kStep)
      points.push_back({p.label, trained - metric_at(results, p.metric_key)});
  return points;
}

}  // namespace sysnoise::core
