#include "core/mitigation.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "audio/fft.h"
#include "image/synthetic.h"
#include "models/zoo.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace sysnoise::core {

using models::ClsPreprocessor;

models::ClsPreprocessor mix_training_preprocessor(const PipelineSpec& spec,
                                                  bool mix_decoder,
                                                  bool mix_resize) {
  return [spec, mix_decoder, mix_resize](const data::ClsSample& s, Rng& rng) {
    SysNoiseConfig cfg = SysNoiseConfig::training_default();
    if (mix_decoder)
      cfg.decoder = static_cast<jpeg::DecoderVendor>(
          rng.uniform_int(jpeg::kNumDecoderVendors));
    if (mix_resize)
      cfg.resize = all_resize_methods()[static_cast<std::size_t>(
          rng.uniform_int(kNumResizeMethods))];
    return preprocess(s.jpeg, cfg, spec);
  };
}

models::ClsPreprocessor fixed_config_preprocessor(const PipelineSpec& spec,
                                                  const SysNoiseConfig& cfg) {
  return [spec, cfg](const data::ClsSample& s, Rng&) {
    return preprocess(s.jpeg, cfg, spec);
  };
}

const char* aug_strategy_name(AugStrategy s) {
  switch (s) {
    case AugStrategy::kStandard: return "Standard";
    case AugStrategy::kAprSp: return "APR-SP";
    case AugStrategy::kDeepaugAprSp: return "Deepaug+APR-SP";
    case AugStrategy::kDeepaugAugmix: return "Deepaug+AugMix";
    case AugStrategy::kDeepaug: return "Deepaug";
    case AugStrategy::kAugmix: return "AugMix";
  }
  return "?";
}

namespace {

// ---- image-space augmentation primitives (operate on ImageU8) -------------

ImageU8 flip_horizontal(const ImageU8& img) {
  ImageU8 out(img.height(), img.width(), img.channels());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < img.channels(); ++c)
        out.at(y, x, c) = img.at(y, img.width() - 1 - x, c);
  return out;
}

ImageU8 translate(const ImageU8& img, int dy, int dx) {
  ImageU8 out(img.height(), img.width(), img.channels());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < img.channels(); ++c)
        out.at(y, x, c) = img.at_clamped(y + dy, x + dx, c);
  return out;
}

ImageU8 brightness(const ImageU8& img, float delta) {
  ImageU8 out = img;
  for (auto& v : out.vec()) v = clamp_u8f(static_cast<float>(v) + delta);
  return out;
}

ImageU8 contrast(const ImageU8& img, float gain) {
  ImageU8 out = img;
  for (auto& v : out.vec())
    v = clamp_u8f((static_cast<float>(v) - 128.0f) * gain + 128.0f);
  return out;
}

ImageU8 posterize(const ImageU8& img, int keep_bits) {
  const int mask = 0xFF << (8 - keep_bits);
  ImageU8 out = img;
  for (auto& v : out.vec()) v = static_cast<std::uint8_t>(v & mask);
  return out;
}

ImageU8 color_jitter(const ImageU8& img, Rng& rng) {
  float gain[3], bias[3];
  for (int c = 0; c < 3; ++c) {
    gain[c] = rng.uniform_f(0.8f, 1.2f);
    bias[c] = rng.uniform_f(-18.0f, 18.0f);
  }
  ImageU8 out(img.height(), img.width(), img.channels());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < 3; ++c)
        out.at(y, x, c) = clamp_u8f(static_cast<float>(img.at(y, x, c)) * gain[c] +
                                    bias[c]);
  return out;
}

ImageU8 blend(const ImageU8& a, const ImageU8& b, float w) {
  ImageU8 out(a.height(), a.width(), a.channels());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.vec()[i] = clamp_u8f(w * static_cast<float>(a.vec()[i]) +
                             (1.0f - w) * static_cast<float>(b.vec()[i]));
  return out;
}

ImageU8 random_op(const ImageU8& img, Rng& rng) {
  switch (rng.uniform_int(5)) {
    case 0: return flip_horizontal(img);
    case 1: return translate(img, rng.uniform_int(7) - 3, rng.uniform_int(7) - 3);
    case 2: return brightness(img, rng.uniform_f(-30.0f, 30.0f));
    case 3: return contrast(img, rng.uniform_f(0.7f, 1.3f));
    default: return posterize(img, 5 + rng.uniform_int(3));
  }
}

ImageU8 augmix_lite(const ImageU8& img, Rng& rng) {
  // Two chains of 1-2 ops blended with the original (AugMix's core idea).
  ImageU8 chain1 = random_op(img, rng);
  if (rng.bernoulli(0.5)) chain1 = random_op(chain1, rng);
  ImageU8 chain2 = random_op(img, rng);
  const ImageU8 mixed = blend(chain1, chain2, rng.uniform_f(0.3f, 0.7f));
  return blend(img, mixed, rng.uniform_f(0.4f, 0.7f));
}

ImageU8 deepaug_lite(const ImageU8& img, Rng& rng) {
  // DeepAug distorts images through a perturbed generative network; the
  // lite stand-in composes strong stochastic color/noise distortions.
  ImageU8 out = color_jitter(img, rng);
  add_pixel_noise(out, rng.uniform_f(2.0f, 8.0f), rng);
  if (rng.bernoulli(0.3)) out = posterize(out, 5);
  return out;
}

// APR-SP: keep the *phase* of img, take the *amplitude* from a partner
// (per channel, full-image 2D FFT). Sizes are powers of two (32x32).
ImageU8 apr_sp(const ImageU8& img, const ImageU8& partner, Rng& rng) {
  const int h = img.height(), w = img.width();
  if (!audio::is_power_of_two(h) || !audio::is_power_of_two(w) ||
      partner.height() != h || partner.width() != w)
    return img;
  ImageU8 out(h, w, 3);
  const bool swap = rng.bernoulli(0.5);  // APR-S vs APR-P direction
  for (int c = 0; c < 3; ++c) {
    // 2D FFT = rows then columns.
    auto fft2 = [&](const ImageU8& src) {
      std::vector<std::vector<std::complex<float>>> rows(
          static_cast<std::size_t>(h));
      for (int y = 0; y < h; ++y) {
        std::vector<std::complex<float>> row(static_cast<std::size_t>(w));
        for (int x = 0; x < w; ++x)
          row[static_cast<std::size_t>(x)] = static_cast<float>(src.at(y, x, c));
        audio::fft_radix2(row);
        rows[static_cast<std::size_t>(y)] = std::move(row);
      }
      for (int x = 0; x < w; ++x) {
        std::vector<std::complex<float>> col(static_cast<std::size_t>(h));
        for (int y = 0; y < h; ++y) col[static_cast<std::size_t>(y)] = rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
        audio::fft_radix2(col);
        for (int y = 0; y < h; ++y) rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = col[static_cast<std::size_t>(y)];
      }
      return rows;
    };
    auto fa = fft2(swap ? partner : img);   // amplitude source
    auto fp = fft2(swap ? img : partner);   // phase source... (see below)
    // Recombine: amplitude of fa with phase of the *original* image's
    // spectrum (APR keeps the structured phase of the clean image).
    auto forig = fft2(img);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        const float amp = std::abs(fa[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)]);
        const float phase = std::arg(forig[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)]);
        fp[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] =
            std::polar(amp, phase);
      }
    // Inverse 2D FFT.
    for (int x = 0; x < w; ++x) {
      std::vector<std::complex<float>> col(static_cast<std::size_t>(h));
      for (int y = 0; y < h; ++y) col[static_cast<std::size_t>(y)] = fp[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
      audio::fft_radix2(col, /*inverse=*/true);
      for (int y = 0; y < h; ++y) fp[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = col[static_cast<std::size_t>(y)];
    }
    for (int y = 0; y < h; ++y) {
      auto row = fp[static_cast<std::size_t>(y)];
      audio::fft_radix2(row, /*inverse=*/true);
      for (int x = 0; x < w; ++x)
        out.at(y, x, c) = clamp_u8f(row[static_cast<std::size_t>(x)].real());
    }
  }
  return out;
}

}  // namespace

models::ClsPreprocessor augmented_preprocessor(const PipelineSpec& spec,
                                               AugStrategy strategy) {
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  // Partner pool for APR-SP amplitude swaps.
  const auto& pool = models::benchmark_cls_dataset().train;
  return [spec, train_cfg, strategy, &pool](const data::ClsSample& s, Rng& rng) {
    ImageU8 img = preprocess_image(s.jpeg, train_cfg, spec);
    auto apply_apr = [&](ImageU8 base) {
      const auto& partner =
          pool[static_cast<std::size_t>(rng.uniform_int(static_cast<int>(pool.size())))];
      const ImageU8 pimg = preprocess_image(partner.jpeg, train_cfg, spec);
      return apr_sp(base, pimg, rng);
    };
    switch (strategy) {
      case AugStrategy::kStandard:
        if (rng.bernoulli(0.5)) img = flip_horizontal(img);
        img = translate(img, rng.uniform_int(5) - 2, rng.uniform_int(5) - 2);
        break;
      case AugStrategy::kAprSp:
        if (rng.bernoulli(0.7)) img = apply_apr(img);
        break;
      case AugStrategy::kDeepaugAprSp:
        img = deepaug_lite(img, rng);
        if (rng.bernoulli(0.5)) img = apply_apr(img);
        break;
      case AugStrategy::kDeepaugAugmix:
        img = deepaug_lite(img, rng);
        img = augmix_lite(img, rng);
        break;
      case AugStrategy::kDeepaug:
        img = deepaug_lite(img, rng);
        break;
      case AugStrategy::kAugmix:
        img = augmix_lite(img, rng);
        break;
    }
    return image_to_tensor(img, spec.mean, spec.stddev);
  };
}

models::TrainedClassifier adversarial_train_classifier(const std::string& name,
                                                       float epsilon) {
  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  models::TrainedClassifier out;
  out.name = name + "-Adv";
  Rng rng(2024);
  out.model = models::make_classifier(name, ds.num_classes, rng);

  nn::ParamRefs params;
  out.model->collect(params);
  nn::StateRefs state;
  out.model->collect_state(state);
  std::vector<const Tensor*> cstate(state.begin(), state.end());

  const std::string stem = models::cache_dir() + "/cls_" + name + "_adv_v1";
  if (!nn::load_params(stem + ".weights", params, state)) {
    // FGSM adversarial training (Madry-style single-step inner maximizer).
    models::TrainConfig cfg;
    nn::Sgd opt(params, cfg.lr, cfg.momentum, cfg.weight_decay);
    Rng train_rng(7);
    const auto prep = models::default_cls_preprocessor(spec);
    const int n = static_cast<int>(ds.train.size());
    const int steps_per_epoch = (n + cfg.batch_size - 1) / cfg.batch_size;
    const int total = cfg.epochs * steps_per_epoch;
    int step = 0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
      const auto order = train_rng.permutation(n);
      for (int b = 0; b < n; b += cfg.batch_size) {
        const int bs = std::min(cfg.batch_size, n - b);
        std::vector<Tensor> inputs;
        std::vector<int> labels;
        for (int i = 0; i < bs; ++i) {
          const auto& s = ds.train[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])];
          inputs.push_back(prep(s, train_rng));
          labels.push_back(s.label);
        }
        Tensor batch = models::stack_batch(inputs);

        // Pass 1: input gradient for FGSM.
        {
          nn::Tape t;
          t.training = true;
          opt.zero_grad();
          nn::Node* x = t.input(batch, /*requires_grad=*/true);
          nn::Node* loss = nn::softmax_cross_entropy(
              t, out.model->forward(t, x, nn::BnMode::kTrain), labels);
          t.backward(loss);
          for (std::size_t i = 0; i < batch.size(); ++i)
            batch[i] += epsilon * (x->grad[i] > 0.0f ? 1.0f : -1.0f);
        }
        // Pass 2: train on the perturbed batch.
        nn::Tape t;
        t.training = true;
        opt.set_lr(nn::cosine_lr(cfg.lr, step, total));
        opt.zero_grad();
        nn::Node* loss = nn::softmax_cross_entropy(
            t, out.model->forward(t, t.input(batch), nn::BnMode::kTrain), labels);
        t.backward(loss);
        nn::clip_grad_norm(params, cfg.clip_norm);
        opt.step();
        ++step;
      }
    }
    models::calibrate_classifier(*out.model, ds.train, spec, out.ranges);
    nn::save_params(stem + ".weights", params, cstate);
    nn::save_ranges(stem + ".ranges", out.ranges);
  } else if (!nn::load_ranges(stem + ".ranges", out.ranges)) {
    models::calibrate_classifier(*out.model, ds.train, spec, out.ranges);
    nn::save_ranges(stem + ".ranges", out.ranges);
  }
  out.trained_acc = models::eval_classifier(
      *out.model, ds.eval, SysNoiseConfig::training_default(), spec, &out.ranges);
  return out;
}

double eval_classifier_tent(models::Classifier& model,
                            const std::vector<data::ClsSample>& eval,
                            const SysNoiseConfig& cfg, const PipelineSpec& spec,
                            nn::ActRanges* ranges, float lr, int batch_size) {
  nn::ParamRefs affine;
  model.collect_bn_affine(affine);
  nn::Sgd opt(affine, lr, 0.9f);

  const int n = static_cast<int>(eval.size());
  int correct = 0;
  for (int b = 0; b < n; b += batch_size) {
    const int bs = std::min(batch_size, n - b);
    std::vector<Tensor> inputs;
    for (int i = 0; i < bs; ++i)
      inputs.push_back(preprocess(eval[static_cast<std::size_t>(b + i)].jpeg, cfg, spec));
    Tensor batch = models::stack_batch(inputs);

    // Adaptation step: minimize prediction entropy on this test batch
    // (batch statistics for BN, running stats frozen).
    if (!affine.empty()) {
      nn::Tape t;
      t.ctx = cfg.inference_ctx(ranges);
      opt.zero_grad();
      nn::Node* logits = model.forward(t, t.input(batch), nn::BnMode::kAdapt);
      nn::Node* h = nn::softmax_entropy(t, logits);
      t.backward(h);
      opt.step();
    }
    // Predict with the adapted parameters.
    nn::Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    nn::Node* logits = model.forward(t, t.input(batch), nn::BnMode::kAdapt);
    for (int i = 0; i < bs; ++i) {
      int best = 0;
      for (int c = 1; c < logits->value.dim(1); ++c)
        if (logits->value.at2(i, c) > logits->value.at2(i, best)) best = c;
      if (best == eval[static_cast<std::size_t>(b + i)].label) ++correct;
    }
  }
  return 100.0 * correct / std::max(1, n);
}

}  // namespace sysnoise::core
