#include "core/report.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace sysnoise::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[i]))
         << cells[i];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << std::string(width[i] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_mm(double mean, double mx, int precision) {
  return fmt(mean, precision) + " (" + fmt(mx, precision) + ")";
}

namespace {

// One rendered column group, derived from the axes present in the reports.
struct AxisColumn {
  std::string axis;
  std::string key;
  bool per_option = false;
  bool multi = false;                       // "mean (max)" cell
  std::vector<std::string> option_labels;   // per-option column labels
};

// Union of the axes across reports. Each report lists its axes in registry
// order, so an order-preserving merge of the subsequences reconstructs the
// global column order without consulting the registry.
std::vector<AxisColumn> merge_columns(const std::vector<AxisReport>& reports) {
  std::vector<AxisColumn> cols;
  for (const AxisReport& rep : reports) {
    std::size_t insert_pos = 0;
    for (const AxisResult& res : rep.axes) {
      const auto it = std::find_if(cols.begin(), cols.end(), [&](const AxisColumn& c) {
        return c.axis == res.axis;
      });
      if (it != cols.end()) {
        insert_pos = static_cast<std::size_t>(it - cols.begin()) + 1;
        continue;
      }
      AxisColumn col;
      col.axis = res.axis;
      col.key = res.key;
      col.per_option = res.per_option;
      col.multi = !res.per_option && res.options.size() > 1;
      for (const OptionDelta& o : res.options) col.option_labels.push_back(o.label);
      cols.insert(cols.begin() + static_cast<std::ptrdiff_t>(insert_pos),
                  std::move(col));
      ++insert_pos;
    }
  }
  return cols;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

std::string render_axis_table(const std::vector<AxisReport>& reports,
                              const std::string& metric_name) {
  const std::vector<AxisColumn> cols = merge_columns(reports);

  std::vector<std::string> headers = {"Architecture", "Trained " + metric_name};
  for (const AxisColumn& c : cols) {
    if (c.per_option)
      for (const std::string& label : c.option_labels) headers.push_back(label);
    else
      headers.push_back(c.axis);
  }
  headers.push_back("Combined");

  TextTable table(headers);
  for (const AxisReport& rep : reports) {
    std::vector<std::string> cells = {rep.model, fmt(rep.trained)};
    for (const AxisColumn& c : cols) {
      const AxisResult* res = rep.find(c.axis);
      if (c.per_option) {
        for (const std::string& label : c.option_labels) {
          const OptionDelta* o = res != nullptr ? res->option(label) : nullptr;
          cells.push_back(o != nullptr ? fmt(o->delta) : "-");
        }
      } else if (res == nullptr) {
        cells.push_back("-");
      } else {
        cells.push_back(c.multi ? fmt_mm(res->mean, res->max) : fmt(res->mean));
      }
    }
    cells.push_back(fmt(rep.combined));
    table.add_row(std::move(cells));
  }
  return table.str();
}

std::string axis_report_csv(const std::vector<AxisReport>& reports) {
  const std::vector<AxisColumn> cols = merge_columns(reports);

  std::ostringstream os;
  os << "model,trained";
  for (const AxisColumn& c : cols) {
    if (c.per_option)
      for (const std::string& label : c.option_labels) os << ',' << lower(label);
    else if (c.multi)
      os << ',' << c.key << "_mean," << c.key << "_max";
    else
      os << ',' << c.key;
  }
  os << ",combined\n";

  for (const AxisReport& rep : reports) {
    os << rep.model << ',' << fmt(rep.trained);
    for (const AxisColumn& c : cols) {
      const AxisResult* res = rep.find(c.axis);
      if (c.per_option) {
        for (const std::string& label : c.option_labels) {
          const OptionDelta* o = res != nullptr ? res->option(label) : nullptr;
          os << ',' << (o != nullptr ? fmt(o->delta) : "");
        }
      } else if (c.multi) {
        os << ',' << (res != nullptr ? fmt(res->mean) : "") << ','
           << (res != nullptr ? fmt(res->max) : "");
      } else {
        os << ',' << (res != nullptr ? fmt(res->mean) : "");
      }
    }
    os << ',' << fmt(rep.combined) << '\n';
  }
  return os.str();
}

util::Json axis_report_to_json(const AxisReport& report) {
  util::Json j = util::Json::object();
  j.set("model", report.model);
  j.set("trained", report.trained);
  util::Json axes = util::Json::array();
  for (const AxisResult& res : report.axes) {
    util::Json ja = util::Json::object();
    ja.set("axis", res.axis);
    ja.set("key", res.key);
    ja.set("mean", res.mean);
    ja.set("max", res.max);
    ja.set("per_option", res.per_option);
    util::Json options = util::Json::array();
    for (const OptionDelta& o : res.options) {
      util::Json jo = util::Json::object();
      jo.set("label", o.label);
      jo.set("delta", o.delta);
      options.push_back(std::move(jo));
    }
    ja.set("options", std::move(options));
    axes.push_back(std::move(ja));
  }
  j.set("axes", std::move(axes));
  j.set("combined", report.combined);
  return j;
}

AxisReport axis_report_from_json(const util::Json& j) {
  AxisReport report;
  report.model = j.at("model").as_string();
  report.trained = j.at("trained").as_number();
  const util::Json& axes = j.at("axes");
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const util::Json& ja = axes.at(i);
    AxisResult res;
    res.axis = ja.at("axis").as_string();
    res.key = ja.at("key").as_string();
    res.mean = ja.at("mean").as_number();
    res.max = ja.at("max").as_number();
    res.per_option = ja.at("per_option").as_bool();
    const util::Json& options = ja.at("options");
    for (std::size_t o = 0; o < options.size(); ++o)
      res.options.push_back({options.at(o).at("label").as_string(),
                             options.at(o).at("delta").as_number()});
    report.axes.push_back(std::move(res));
  }
  report.combined = j.at("combined").as_number();
  return report;
}

util::Json step_report_to_json(const StepReport& report) {
  util::Json j = util::Json::object();
  j.set("model", report.model);
  util::Json points = util::Json::array();
  for (const StepPoint& p : report.points) {
    util::Json jp = util::Json::object();
    jp.set("step", p.step);
    jp.set("delta", p.delta);
    points.push_back(std::move(jp));
  }
  j.set("points", std::move(points));
  return j;
}

StepReport step_report_from_json(const util::Json& j) {
  StepReport report;
  report.model = j.at("model").as_string();
  const util::Json& points = j.at("points");
  for (std::size_t i = 0; i < points.size(); ++i)
    report.points.push_back({points.at(i).at("step").as_string(),
                             points.at(i).at("delta").as_number()});
  return report;
}

std::string render_step_table(const std::vector<StepPoint>& points,
                              const std::string& metric_name) {
  TextTable table({"Noise added (cumulative)", "Δ" + metric_name});
  for (const StepPoint& p : points) table.add_row({p.step, fmt(p.delta)});
  return table.str();
}

std::string step_points_csv(const std::vector<StepPoint>& points,
                            const std::string& task_label) {
  std::ostringstream os;
  os << "task,step,delta\n";
  for (const StepPoint& p : points)
    os << task_label << ',' << p.step << ',' << fmt(p.delta) << '\n';
  return os.str();
}

}  // namespace sysnoise::core
