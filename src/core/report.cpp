#include "core/report.h"

#include <iomanip>
#include <sstream>

namespace sysnoise::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[i]))
         << cells[i];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << std::string(width[i] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_mm(double mean, double mx, int precision) {
  return fmt(mean, precision) + " (" + fmt(mx, precision) + ")";
}

std::string render_noise_table(const std::vector<NoiseRow>& rows,
                               const std::string& metric_name, bool with_upsample,
                               bool with_postproc) {
  std::vector<std::string> headers = {"Architecture", "Trained " + metric_name,
                                      "Decode",       "Resize",
                                      "Color Mode",   "FP16",
                                      "INT8",         "Ceil Mode"};
  if (with_upsample) headers.push_back("Upsample");
  if (with_postproc) headers.push_back("Post-proc");
  headers.push_back("Combined");

  TextTable table(headers);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {
        r.model,
        fmt(r.trained),
        fmt_mm(r.decode_mean, r.decode_max),
        fmt_mm(r.resize_mean, r.resize_max),
        fmt(r.color),
        fmt(r.fp16),
        fmt(r.int8),
        r.ceil.has_value() ? fmt(*r.ceil) : "-"};
    if (with_upsample) cells.push_back(r.upsample.has_value() ? fmt(*r.upsample) : "-");
    if (with_postproc) cells.push_back(r.postproc.has_value() ? fmt(*r.postproc) : "-");
    cells.push_back(fmt(r.combined));
    table.add_row(std::move(cells));
  }
  return table.str();
}

std::string noise_rows_csv(const std::vector<NoiseRow>& rows) {
  std::ostringstream os;
  os << "model,trained,decode_mean,decode_max,resize_mean,resize_max,color,"
        "fp16,int8,ceil,upsample,postproc,combined\n";
  for (const auto& r : rows) {
    os << r.model << ',' << fmt(r.trained) << ',' << fmt(r.decode_mean) << ','
       << fmt(r.decode_max) << ',' << fmt(r.resize_mean) << ',' << fmt(r.resize_max)
       << ',' << fmt(r.color) << ',' << fmt(r.fp16) << ',' << fmt(r.int8) << ','
       << (r.ceil ? fmt(*r.ceil) : "") << ',' << (r.upsample ? fmt(*r.upsample) : "")
       << ',' << (r.postproc ? fmt(*r.postproc) : "") << ',' << fmt(r.combined)
       << '\n';
  }
  return os.str();
}

}  // namespace sysnoise::core
