// The plan half of the plan -> execute -> merge measurement lifecycle.
//
// A SweepPlan is a first-class, JSON-serializable value describing every
// deployment config a sweep (Tables 2-4) or stepwise accumulation (Fig. 3)
// will evaluate, in evaluation order, together with the axis metadata
// needed to assemble the final AxisReport / step curve WITHOUT access to an
// AxisRegistry or the task itself. Making the plan a value is what unlocks
// everything "beyond one process": a plan can be emitted by one binary,
// deterministically partitioned into i/N shards executed on different
// machines (core/executor.h), and the partial metric maps merged back into
// a report bit-identical to the single-process run.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "util/json.h"

namespace sysnoise::core {

// metric_key -> metric, keyed exactly like SweepCache (task identity +
// cfg.describe()). The unit executors produce and merges consume.
using MetricMap = std::map<std::string, double>;

// Axis metadata captured into the plan so report assembly is registry-free.
struct PlanAxis {
  std::string name;  // NoiseAxis::name (table header)
  std::string key;   // NoiseAxis::key (machine/CSV key)
  bool per_option = false;
  std::vector<std::string> option_labels;
};

// One planned evaluation: the config plus why it is in the plan.
struct PlannedConfig {
  enum class Role {
    kBaseline,  // the training-default config (report.trained)
    kOption,    // option `option` of axes[axis]
    kCombined,  // the all-noises Combined config
    kStep,      // one Fig. 3 cumulative step
  };
  Role role = Role::kBaseline;
  int axis = -1;      // index into SweepPlan::axes (kOption only)
  int option = -1;    // option index within that axis (kOption only)
  std::string label;  // option label / step label ("" for baseline/combined)
  std::string metric_key;      // SweepCache key for this evaluation
  std::string preprocess_key;  // stage-1 key ("" for non-staged tasks)
  std::string forward_key;     // stage-2 key ("" for non-staged tasks)
  SysNoiseConfig cfg;
};

const char* planned_role_name(PlannedConfig::Role r);
PlannedConfig::Role planned_role_from_name(const std::string& name);

struct SweepPlan {
  enum class Kind { kSweep, kStepwise };

  Kind kind = Kind::kSweep;
  std::string task;           // EvalTask::name() (AxisReport::model)
  std::string task_identity;  // EvalTask::cache_identity()
  std::vector<PlanAxis> axes;
  std::vector<PlannedConfig> configs;  // evaluation order

  // Stable content hash (over the serialized plan) used to verify that
  // shard results being merged were produced from this exact plan.
  std::string fingerprint() const;

  // The deterministic shard partition: config indices i with
  // i % shard_count == shard_index, in plan order.
  std::vector<std::size_t> shard_indices(int shard_index, int shard_count) const;
  // Sub-plan holding only the given configs (axis metadata retained), e.g.
  // one shard's slice. Assembly requires the full plan's metrics, not a
  // slice's.
  SweepPlan slice(const std::vector<std::size_t>& indices) const;

  util::Json to_json() const;
  static SweepPlan from_json(const util::Json& j);
};

// The registry a sweep resolves against: SweepOptions::registry when set,
// the process-global one otherwise. The single source of truth for every
// plan construction site (sweep, staged_sweep, seeded bench helpers).
const AxisRegistry& registry_or_global(const SweepOptions& opts);

// Extracted planners (previously fused into sweep()/staged_sweep()): the
// full-table plan is baseline + every applicable axis option + Combined;
// the stepwise plan is baseline + one cumulative step per applicable axis.
// When `task` is a StagedEvalTask the per-config stage keys are captured
// into the plan too.
SweepPlan plan_sweep(const EvalTask& task, const AxisRegistry& registry);
SweepPlan plan_stepwise(const EvalTask& task, const AxisRegistry& registry);

// Assemble the final artifacts from a plan plus a metric map covering every
// planned config (throws std::out_of_range on gaps). Given the union of
// shard results, these reproduce the single-process outputs bit-identically.
AxisReport assemble_report(const SweepPlan& plan, const MetricMap& results);
std::vector<StepPoint> assemble_steps(const SweepPlan& plan,
                                      const MetricMap& results);

// The inference-knob suffix of a planned config's forward key (forward_key
// minus its preprocess_key prefix). Staged tasks build forward_key as
// preprocess_key + forward_key_suffix(cfg), so two configs of one plan that
// share this suffix run the same network invocation over different stage-1
// products — they are forward-batch-compatible, and an executor may stack
// their batches through one forward call. Empty for non-staged configs (or
// keys that don't nest), which opts them out of batching.
std::string planned_forward_suffix(const PlannedConfig& p);

// Stage-key-grouped work units: plan.configs indices partitioned so that
// configs sharing a forward pass (same forward key — e.g. the detection
// post-processing options) are never split apart, with units ordered so
// shared preprocess keys stay adjacent. This is the unit of leasing in the
// distributed runtime (dist/coordinator.h): splitting a forward group
// across workers would re-run its forward pass once per worker, while
// anything coarser would starve dynamic balancing. Plans without stage keys
// (non-staged tasks) degrade to one unit per distinct metric key.
std::vector<std::vector<std::size_t>> plan_work_units(const SweepPlan& plan);

struct WorkUnitOptions {
  // Merge forward-key groups whose configs share a forward suffix
  // (planned_forward_suffix — i.e. the same inference knobs) into one unit,
  // bounded by max_groups_per_unit. A merged unit lands on ONE worker, whose
  // StagedExecutor can then stack the groups' pre-processed batches through
  // a single forward call — this is how cross-config batching reaches the
  // distributed runtime. The bound keeps leases small enough for dynamic
  // balancing (and mirrors SweepOptions::max_forward_batch).
  bool merge_batch_compatible = false;
  std::size_t max_groups_per_unit = 8;
};
std::vector<std::vector<std::size_t>> plan_work_units(
    const SweepPlan& plan, const WorkUnitOptions& opts);

}  // namespace sysnoise::core
