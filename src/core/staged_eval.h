// Staged evaluation: the SysNoiseConfig factors into independent
// pre-processing / model-inference / post-processing stages, so a sweep
// over dozens of deployment configs can share intermediates instead of
// re-running the whole preprocess -> forward -> metric chain per config.
//
// A StagedEvalTask names each stage's inputs with a key (`preprocess_key`
// covers decoder/resize/color/normalization, `forward_key` adds the
// inference knobs) and materializes stage products behind opaque pointers.
// `staged_sweep()` plans every axis option up front, groups the plan by
// shared stage keys, and evaluates group-by-group: pre-processed batches
// are computed once per preprocess key, and forward outputs once per
// forward key — so e.g. the detection post-processing axis (box-decode
// offset) is measured without re-running the forward pass at all. Results
// are bit-identical to the monolithic sweep() (tested); only the wall time
// changes.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "util/json.h"

namespace sysnoise::core {

// Opaque stage intermediate (stacked input batches, raw forward outputs...).
using StageProduct = std::shared_ptr<const void>;

// The canonical encoding of the model-inference knobs (precision, ceil
// mode, upsample — deliberately NOT proposal_offset, which only the
// post-processing stage reads). Tasks build their forward key as
// preprocess_key(cfg) + forward_key_suffix(cfg) so the knob list lives in
// exactly one place.
std::string forward_key_suffix(const SysNoiseConfig& cfg);

// An EvalTask whose evaluation factors into the three pipeline stages.
// evaluate() is the monolithic chain of the three run_* hooks, so any
// StagedEvalTask still works with the plain sweep()/stepwise() engine.
class StagedEvalTask : public EvalTask {
 public:
  // Stable encoding of every config knob the pre-processing stage reads.
  // Configs differing only in inference/post-processing knobs must share a
  // key; configs with different pre-processing products must not.
  virtual std::string preprocess_key(const SysNoiseConfig& cfg) const = 0;
  // preprocess_key plus the model-inference knobs: the identity of the
  // forward pass. Post-processing-only knobs must NOT be folded in.
  virtual std::string forward_key(const SysNoiseConfig& cfg) const = 0;

  // Stage 1: materialize pre-processed input batches for `cfg`.
  virtual StageProduct run_preprocess(const SysNoiseConfig& cfg) const = 0;
  // Stage 2: run the network over cached stage-1 batches.
  virtual StageProduct run_forward(const SysNoiseConfig& cfg,
                                   const StageProduct& pre) const = 0;
  // Stage 3: post-process cached forward outputs into the metric.
  virtual double run_postprocess(const SysNoiseConfig& cfg,
                                 const StageProduct& fwd) const = 0;

  // --- optional cross-config batched forwards ----------------------------
  // Identity of the network invocation independent of pre-processing: the
  // weights (fingerprint) plus the inference knobs (forward_key_suffix).
  // Configs sharing this key run the same network over different stage-1
  // products, so the executor may stack their batches through ONE forward
  // call (run_forward_batched). The default empty key opts a task out of
  // batching; forward_key stays the cache identity of the outputs either
  // way.
  virtual std::string forward_batch_key(const SysNoiseConfig& cfg) const {
    (void)cfg;
    return std::string();
  }
  // One batched forward covering every cfg (all sharing forward_batch_key,
  // one per distinct forward key): returns one stage-2 product per config,
  // bit-identical to calling run_forward(cfgs[i], pres[i]) per config. The
  // default runs the serial loop, so opting in via forward_batch_key alone
  // is already correct — overriding this is what makes it fast.
  virtual std::vector<StageProduct> run_forward_batched(
      const std::vector<const SysNoiseConfig*>& cfgs,
      const std::vector<StageProduct>& pres) const;

  // --- optional disk persistence (core/disk_stage_cache.h) ---------------
  // Scope the pre-processing products are keyed under. preprocess_key is
  // deliberately dataset-agnostic (it encodes knobs + output geometry), so
  // the scope must name the dataset/pipeline identity — tasks over the same
  // samples and spec share products across processes AND across models.
  virtual std::string preprocess_scope() const { return cache_identity(); }
  // Encode/decode a stage-1 product for the disk cache. The default "not
  // serializable" pair opts a task out; stage products then only ever live
  // in process memory.
  virtual bool encode_preprocess(const StageProduct& product,
                                 std::string* bytes) const {
    (void)product;
    (void)bytes;
    return false;
  }
  virtual StageProduct decode_preprocess(const std::string& bytes) const {
    (void)bytes;
    return nullptr;
  }

  // Scope for forward-stage products. forward_key (preprocess_key + the
  // inference knobs) is still dataset- AND model-agnostic, so the scope
  // adds both: the same dataset scope plus the task identity that names the
  // weights the outputs came from. Unlike stage-1 batches, forward products
  // are never shared across models.
  virtual std::string forward_scope() const {
    return preprocess_scope() + "|fwd=" + cache_identity();
  }
  // Encode/decode a stage-2 product (e.g. detection RawDetections) for the
  // disk cache; the default pair opts a task out, exactly as above.
  virtual bool encode_forward(const StageProduct& product,
                              std::string* bytes) const {
    (void)product;
    (void)bytes;
    return false;
  }
  virtual StageProduct decode_forward(const std::string& bytes) const {
    (void)bytes;
    return nullptr;
  }

  double evaluate(const SysNoiseConfig& cfg) const override {
    return run_postprocess(cfg, run_forward(cfg, run_preprocess(cfg)));
  }
};

// Compute-once keyed store for stage products. Concurrent requests for the
// same key block on the first computation's shared_future instead of
// recomputing; hit/miss counters mirror SweepCache's accounting.
class StageCache {
 public:
  StageProduct get_or_compute(const std::string& key,
                              const std::function<StageProduct()>& compute);

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_future<StageProduct>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

// Stage-cache accounting for one staged_sweep/staged_stepwise call,
// surfaced alongside the SweepOptions::cache (metric memo) stats. A "hit"
// is a planned evaluation that reused another evaluation's stage product.
struct StageStats {
  std::size_t preprocess_hits = 0;
  std::size_t preprocess_misses = 0;  // distinct preprocess keys materialized
  std::size_t forward_hits = 0;
  std::size_t forward_misses = 0;  // distinct forward passes run
  std::size_t evaluations = 0;     // configs evaluated after metric memo
  // Disk-backed StageCache accounting: of the preprocess_misses, how many
  // products were loaded from disk vs computed (and how many fresh
  // computations were persisted). A warm disk cache shows computed == 0 —
  // i.e. zero JPEG decodes in the whole run.
  std::size_t preprocess_disk_hits = 0;
  std::size_t preprocess_computed = 0;
  std::size_t preprocess_persisted = 0;
  // Same split for the forward stage (tasks that opt in via encode_forward;
  // a warm cache runs zero forward passes for repeated configs).
  std::size_t forward_disk_hits = 0;
  std::size_t forward_computed = 0;
  std::size_t forward_persisted = 0;
  // Cross-config batched forward accounting: how many network invocations
  // the executor actually issued (a batched invocation computes several
  // forward-key groups' products at once, so calls <= forward_computed and,
  // with batch-compatible configs present, strictly fewer). The other two
  // count only MULTI-group invocations — genuine cross-config stacks, not
  // stage sharing within one forward group: planned evaluations covered by
  // such calls, and the largest such stack. configs-per-batch =
  // evaluations / batched_forward_calls.
  std::size_t batched_forward_calls = 0;
  std::size_t batched_forward_configs = 0;
  std::size_t max_configs_per_batch = 0;

  StageStats& operator+=(const StageStats& o);

  // Field-per-field object (insertion order == declaration order), used by
  // the bench perf dumps and the trace summary's "stage_stats" section.
  util::Json to_json() const;
};

// Drop-in staged replacements for sweep()/stepwise(): identical reports,
// stage-shared evaluation. `stats` (optional) accumulates cache accounting.
AxisReport staged_sweep(const StagedEvalTask& task,
                        const SweepOptions& opts = {},
                        StageStats* stats = nullptr);
std::vector<StepPoint> staged_stepwise(const StagedEvalTask& task,
                                       const SweepOptions& opts = {},
                                       StageStats* stats = nullptr);

}  // namespace sysnoise::core
