// Unified sweep engine: one generic sweep()/stepwise() pair drives any
// EvalTask over every applicable NoiseAxis in the registry, replacing the
// old per-task measure_*/stepwise_* quintuplet. Axis options are evaluated
// concurrently on a small thread pool, and identical configs are memoized
// through an optional cross-call SweepCache (the trained-baseline eval used
// to be recomputed by every entry point).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/axis.h"

namespace sysnoise::core {

// Task-agnostic evaluation surface the sweep engine drives. Thin adapters
// for the concrete model families live in models/eval_tasks.h.
class EvalTask {
 public:
  virtual ~EvalTask() = default;
  virtual const std::string& name() const = 0;
  virtual TaskTraits traits() const = 0;
  // Metric under `cfg` (higher = better, e.g. ACC / mAP / mIoU). Must be
  // deterministic and safe to call concurrently from several threads.
  virtual double evaluate(const SysNoiseConfig& cfg) const = 0;
  // Identity used for SweepCache keys. Override whenever two tasks with the
  // same display name can carry different weights (retrained variants), or
  // a shared cache would hand one task the other's metrics.
  virtual std::string cache_identity() const { return name(); }
};

// (task, config)-keyed metric memo. Share one instance across sweep() and
// stepwise() calls (and seed it with the trained metric from the model zoo)
// to skip duplicate evaluations; thread-safe.
class SweepCache {
 public:
  bool lookup(const std::string& key, double* out);
  void store(const std::string& key, double value);
  // Pre-fill the entry sweep()/stepwise() would compute for `cfg`.
  void seed(const EvalTask& task, const SysNoiseConfig& cfg, double metric);

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t size() const;

  static std::string key_for(const EvalTask& task, const SysNoiseConfig& cfg);

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

struct SweepOptions {
  int threads = 0;              // <= 0: use hardware concurrency
  bool memoize = true;          // dedup identical configs within a call
  SweepCache* cache = nullptr;  // optional cross-call memo
  const AxisRegistry* registry = nullptr;  // default: AxisRegistry::global()
  // Cross-config batched forwards (StagedExecutor): configs whose networks
  // are forward-batch-compatible (same weights fingerprint + inference
  // knobs, different pre-processing) have their stage-1 batches stacked
  // through one forward call. Bit-identical to the unbatched staged sweep;
  // only invocation count and wall time change.
  bool batch_forwards = true;
  // Upper bound on forward-key groups stacked into one batched call (bounds
  // the stacked tensor's memory to max_forward_batch x the per-config batch).
  int max_forward_batch = 8;
};

struct OptionDelta {
  std::string label;
  double delta = 0.0;  // metric(training) - metric(option)
};

// Per-axis slice of a report: summary stats plus every option's delta.
struct AxisResult {
  std::string axis;  // NoiseAxis::name
  std::string key;   // NoiseAxis::key
  double mean = 0.0;
  double max = 0.0;
  std::vector<OptionDelta> options;
  bool per_option = false;  // rendering hint copied from the axis

  const OptionDelta* option(const std::string& label) const;
};

// Dynamic replacement for the old fixed-field NoiseRow: whatever axes the
// registry holds (and the task admits) show up here, in registry order.
struct AxisReport {
  std::string model;
  double trained = 0.0;
  std::vector<AxisResult> axes;
  double combined = 0.0;

  const AxisResult* find(const std::string& axis) const;
};

// Fig. 3 stepwise combined-noise point: metric delta after cumulatively
// applying each axis' combined option.
struct StepPoint {
  std::string step;
  double delta = 0.0;
};

// Sweep every applicable axis (Tables 2-4 rows).
AxisReport sweep(const EvalTask& task, const SweepOptions& opts = {});

// Fig. 3 stepwise accumulation over the applicable axes in registry order.
std::vector<StepPoint> stepwise(const EvalTask& task,
                                const SweepOptions& opts = {});

}  // namespace sysnoise::core
