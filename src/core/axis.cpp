#include "core/axis.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sysnoise::core {

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::kClassification: return "classification";
    case TaskKind::kDetection: return "detection";
    case TaskKind::kSegmentation: return "segmentation";
    case TaskKind::kNlp: return "nlp";
    case TaskKind::kTts: return "tts";
  }
  return "?";
}

const char* task_modality_name(TaskKind k) {
  switch (k) {
    case TaskKind::kClassification:
    case TaskKind::kDetection:
    case TaskKind::kSegmentation: return "image";
    case TaskKind::kNlp: return "text";
    case TaskKind::kTts: return "audio";
  }
  return "?";
}

namespace {

// Gate for the image pre-processing axes (decode/resize/color/norm/layout):
// NLP and TTS tasks have no image pipeline to perturb.
bool applies_to_images(const TaskTraits& t) { return is_image_kind(t.kind); }

}  // namespace

void AxisRegistry::add(NoiseAxis axis) {
  if (axis.name.empty() || axis.option_labels.empty() || !axis.apply)
    throw std::invalid_argument("AxisRegistry::add: axis needs a name, at "
                                "least one option and an apply function");
  if (find(axis.name) != nullptr)
    throw std::invalid_argument("AxisRegistry::add: duplicate axis " + axis.name);
  if (axis.step_label.empty()) axis.step_label = axis.name;
  if (axis.key.empty()) axis.key = axis.name;
  if (find_by_key(axis.key) != nullptr)
    throw std::invalid_argument("AxisRegistry::add: duplicate axis key " +
                                axis.key);
  axes_.push_back(std::move(axis));
}

const NoiseAxis* AxisRegistry::find(const std::string& name) const {
  for (const NoiseAxis& a : axes_)
    if (a.name == name) return &a;
  return nullptr;
}

const NoiseAxis* AxisRegistry::find_by_key(const std::string& key) const {
  for (const NoiseAxis& a : axes_)
    if (a.key == key) return &a;
  return nullptr;
}

std::vector<const NoiseAxis*> AxisRegistry::applicable(
    const TaskTraits& traits) const {
  std::vector<const NoiseAxis*> out;
  for (const NoiseAxis& a : axes_)
    if (a.applies_to(traits)) out.push_back(&a);
  return out;
}

AxisRegistry& AxisRegistry::global() {
  static AxisRegistry reg = [] {
    AxisRegistry r;
    for (NoiseAxis& a : builtin_axes()) r.add(std::move(a));
    return r;
  }();
  return reg;
}

std::vector<NoiseAxis> builtin_axes() {
  std::vector<NoiseAxis> axes;

  {
    NoiseAxis a;
    a.name = "Decode";
    a.key = "decode";
    const auto vendors = decoder_noise_options();
    for (auto v : vendors) a.option_labels.push_back(jpeg::vendor_name(v));
    a.apply = [vendors](SysNoiseConfig& cfg, int i) { cfg.decoder = vendors[i]; };
    // Worst common vendor (the DALI-class decoder) drives Combined/Fig. 3.
    a.combined_option = static_cast<int>(
        std::find(vendors.begin(), vendors.end(), jpeg::DecoderVendor::kDALI) -
        vendors.begin());
    a.applies = applies_to_images;
    a.stage = "Pre-processing";
    a.tasks_label = "Cls/Det/Seg";
    a.effect_level = "High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Resize";
    a.key = "resize";
    const auto methods = resize_noise_options();
    for (auto m : methods) a.option_labels.push_back(resize_method_name(m));
    a.apply = [methods](SysNoiseConfig& cfg, int i) { cfg.resize = methods[i]; };
    a.combined_option = static_cast<int>(
        std::find(methods.begin(), methods.end(), ResizeMethod::kOpenCVNearest) -
        methods.begin());
    a.applies = applies_to_images;
    a.stage = "Pre-processing";
    a.tasks_label = "Cls/Det/Seg";
    a.effect_level = "Very High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Crop";
    a.key = "crop";
    const auto fractions = crop_noise_options();
    for (auto f : fractions) {
      std::ostringstream label;
      label << "center-" << f;
      a.option_labels.push_back(label.str());
    }
    a.apply = [fractions](SysNoiseConfig& cfg, int i) {
      cfg.crop_fraction = fractions[static_cast<std::size_t>(i)];
    };
    // Crop-geometry mismatch is a classification-pipeline phenomenon (the
    // torchvision resize-then-center-crop convention); detection and
    // segmentation pipelines resize to the full input and would shift the
    // image against its ground-truth geometry.
    a.applies = [](const TaskTraits& t) {
      return t.kind == TaskKind::kClassification;
    };
    a.stage = "Pre-processing";
    a.tasks_label = "Cls";
    a.input_dependent = true;
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Color Mode";
    a.key = "color";
    const auto modes = color_noise_options();
    for (auto m : modes) a.option_labels.push_back(color_mode_name(m));
    a.apply = [modes](SysNoiseConfig& cfg, int i) { cfg.color = modes[i]; };
    a.applies = applies_to_images;
    a.stage = "Pre-processing";
    a.tasks_label = "Cls/Det/Seg";
    a.input_dependent = true;
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Normalize";
    a.key = "normalize";
    const auto stats = norm_noise_options();
    for (auto s : stats) a.option_labels.push_back(norm_stats_name(s));
    a.apply = [stats](SysNoiseConfig& cfg, int i) { cfg.norm = stats[i]; };
    // Integer-quantized means are the mismatch real converter stacks ship
    // (Caffe/TFLite bake round(mean*255)); that option drives Combined and
    // the Fig. 3 accumulation. The 0.5/0.5 option models generic mobile
    // runtime defaults and is far more destructive.
    a.combined_option = 0;
    a.applies = applies_to_images;
    a.stage = "Pre-processing";
    a.tasks_label = "Cls/Det/Seg";
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Layout";
    a.key = "layout";
    const auto layouts = layout_noise_options();
    for (auto l : layouts) a.option_labels.push_back(channel_layout_name(l));
    a.apply = [layouts](SysNoiseConfig& cfg, int i) {
      cfg.layout = layouts[static_cast<std::size_t>(i)];
    };
    a.applies = applies_to_images;
    a.step_label = "NHWC";
    a.stage = "Pre-processing";
    a.tasks_label = "Cls/Det/Seg";
    a.input_dependent = true;
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Precision";
    a.key = "precision";
    const auto precisions = precision_noise_options();
    for (auto p : precisions) a.option_labels.push_back(nn::precision_name(p));
    a.apply = [precisions](SysNoiseConfig& cfg, int i) {
      cfg.precision = precisions[i];
    };
    a.per_option = true;  // report FP16 and INT8 as separate columns
    a.combined_option = static_cast<int>(
        std::find(precisions.begin(), precisions.end(), nn::Precision::kINT8) -
        precisions.begin());
    a.step_label = "INT8";
    a.stage = "Model inference";
    a.tasks_label = "Cls/Det/Seg/NLP/TTS";
    a.input_dependent = true;
    a.effect_level = "High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Backend";
    a.key = "backend";
    const auto backends = backend_noise_options();
    for (auto b : backends) a.option_labels.push_back(backend_name(b));
    a.apply = [backends](SysNoiseConfig& cfg, int i) {
      cfg.backend = backends[static_cast<std::size_t>(i)];
    };
    a.per_option = true;  // each kernel family is its own deployment column
    // The vectorized kernel is what a real deployment runtime would ship —
    // FMA contraction and lane-wise partial sums are the representative
    // hardware/implementation drift for Combined/Fig. 3. When simd *is* the
    // process default (SYSNOISE_BACKEND=simd) it is not an alternate; fall
    // back to the first option.
    const auto simd_it =
        std::find(backends.begin(), backends.end(), ComputeBackend::kSimd);
    a.combined_option =
        simd_it != backends.end()
            ? static_cast<int>(simd_it - backends.begin())
            : 0;
    a.step_label = "SIMD";
    a.stage = "Model inference";
    a.tasks_label = "Cls/Det/Seg/NLP/TTS";
    a.input_dependent = true;
    a.effect_level = "Low";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Ceil Mode";
    a.key = "ceil";
    a.option_labels = {"ceil"};
    a.applies = [](const TaskTraits& t) { return t.has_maxpool; };
    a.apply = [](SysNoiseConfig& cfg, int) { cfg.ceil_mode = true; };
    a.stage = "Model inference";
    a.tasks_label = "Cls/Det/Seg";
    a.effect_level = "High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Upsample";
    a.key = "upsample";
    a.option_labels = {"bilinear"};
    a.applies = [](const TaskTraits& t) {
      return t.kind == TaskKind::kDetection || t.kind == TaskKind::kSegmentation;
    };
    a.apply = [](SysNoiseConfig& cfg, int) {
      cfg.upsample = nn::UpsampleMode::kBilinear;
    };
    a.stage = "Model inference";
    a.tasks_label = "Det/Seg";
    a.effect_level = "Very High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Post-proc";
    a.key = "postproc";
    a.step_label = "Post processing";
    a.option_labels = {"offset-1"};
    a.applies = [](const TaskTraits& t) { return t.kind == TaskKind::kDetection; };
    a.apply = [](SysNoiseConfig& cfg, int) { cfg.proposal_offset = 1.0f; };
    a.stage = "Post-processing";
    a.tasks_label = "Det";
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Tokenizer";
    a.key = "tokenizer";
    const auto profiles = tokenizer_noise_options();
    for (auto p : profiles) a.option_labels.push_back(tokenizer_profile_name(p));
    a.apply = [profiles](SysNoiseConfig& cfg, int i) {
      cfg.tokenizer = profiles[static_cast<std::size_t>(i)];
    };
    a.applies = [](const TaskTraits& t) { return t.kind == TaskKind::kNlp; };
    // The mild truncation (trunc-12) is what a pruned-embedding export
    // actually ships; it drives Combined. trunc-8 is the stress option.
    a.combined_option = 0;
    a.stage = "Pre-processing";
    a.tasks_label = "NLP";
    a.input_dependent = true;
    a.effect_level = "High";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Resample";
    a.key = "resample";
    const auto ratios = resample_noise_options();
    for (auto r : ratios) {
      std::ostringstream label;
      label << "round-" << r;
      a.option_labels.push_back(label.str());
    }
    a.apply = [ratios](SysNoiseConfig& cfg, int i) {
      cfg.resample_ratio = ratios[static_cast<std::size_t>(i)];
    };
    a.applies = [](const TaskTraits& t) { return t.kind == TaskKind::kTts; };
    a.combined_option = 0;  // the gentler 0.75 round trip drives Combined
    a.stage = "Pre-processing";
    a.tasks_label = "TTS";
    a.input_dependent = true;
    a.effect_level = "Middle";
    axes.push_back(std::move(a));
  }
  {
    NoiseAxis a;
    a.name = "Stft";
    a.key = "stft";
    // Option 0 swaps the STFT operator implementation (the Table 10
    // "STFT operator" column); options 1/2 perturb the window/hop geometry
    // while keeping the reference operator.
    a.option_labels = {audio::stft_impl_name(audio::StftImpl::kFastFixed),
                       "win-48", "hop-16"};
    a.apply = [](SysNoiseConfig& cfg, int i) {
      if (i == 0)
        cfg.stft_impl = audio::StftImpl::kFastFixed;
      else if (i == 1)
        cfg.stft_window = 48;
      else
        cfg.stft_hop = 16;
    };
    a.applies = [](const TaskTraits& t) { return t.kind == TaskKind::kTts; };
    a.combined_option = 0;  // implementation swap is the legacy combined row
    a.stage = "Pre-processing";
    a.tasks_label = "TTS";
    a.input_dependent = true;
    a.effect_level = "High";
    axes.push_back(std::move(a));
  }

  return axes;
}

SysNoiseConfig combined_config(const TaskTraits& traits,
                               const AxisRegistry& registry) {
  SysNoiseConfig cfg = SysNoiseConfig::training_default();
  for (const NoiseAxis* axis : registry.applicable(traits))
    axis->apply(cfg, axis->combined_option);
  return cfg;
}

SysNoiseConfig combined_config(const TaskTraits& traits) {
  return combined_config(traits, AxisRegistry::global());
}

SysNoiseConfig combined_config(bool has_maxpool, bool with_upsample,
                               bool with_postproc) {
  // Legacy-faithful: each flag gates its axis independently (the traits
  // form would also enable Upsample whenever Post-proc applies), over the
  // built-in axes only. The old runner was detection-flavored, so kind-
  // gated axes outside the three flags (e.g. the classification-only Crop)
  // follow detection applicability.
  SysNoiseConfig cfg = SysNoiseConfig::training_default();
  const TaskTraits legacy{TaskKind::kDetection, has_maxpool};
  for (const NoiseAxis& axis : builtin_axes()) {
    if ((axis.name == "Ceil Mode" && !has_maxpool) ||
        (axis.name == "Upsample" && !with_upsample) ||
        (axis.name == "Post-proc" && !with_postproc))
      continue;
    if (axis.name != "Upsample" && axis.name != "Post-proc" &&
        !axis.applies_to(legacy))
      continue;
    axis.apply(cfg, axis.combined_option);
  }
  return cfg;
}

}  // namespace sysnoise::core
