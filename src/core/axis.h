// First-class representation of the SysNoise taxonomy (Table 1): each
// deployment-noise axis is a NoiseAxis value in a registry instead of a
// hardcoded field of the old NoiseRow. New axes register themselves here
// and flow through the sweep engine, reports and benches untouched.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/noise_config.h"

namespace sysnoise::core {

enum class TaskKind { kClassification, kDetection, kSegmentation, kNlp, kTts };

const char* task_kind_name(TaskKind k);

// Modality buckets for axis gating: the three vision tasks share the image
// pre-processing pipeline; NLP and TTS bring their own front-ends, so
// image-only axes must never plan against them (and vice versa).
constexpr bool is_image_kind(TaskKind k) {
  return k == TaskKind::kClassification || k == TaskKind::kDetection ||
         k == TaskKind::kSegmentation;
}
// "image" | "text" | "audio" — documentation/reporting label.
const char* task_modality_name(TaskKind k);

// What the sweep engine knows about a model/task pair when deciding which
// axes apply (e.g. ceil-mode needs a stride-2 max-pool).
struct TaskTraits {
  TaskKind kind = TaskKind::kClassification;
  bool has_maxpool = false;
};

// One noise axis: a named set of deployment options that perturb the
// SysNoiseConfig away from the training default.
struct NoiseAxis {
  std::string name;        // table column header, e.g. "Decode"
  std::string key;         // machine/CSV key, e.g. "decode"
  std::string step_label;  // Fig. 3 cumulative-step label (defaults to name)
  std::vector<std::string> option_labels;  // one per deployment option
  std::function<bool(const TaskTraits&)> applies;
  std::function<void(SysNoiseConfig&, int)> apply;  // flip cfg to option i
  // Rendering hint: per-option axes (Precision) get one report column per
  // option; the rest render one cell ("mean (max)" when multi-option).
  bool per_option = false;
  // Option index used for the Combined column and Fig. 3 stepwise curve.
  int combined_option = 0;
  // Table 1 taxonomy metadata.
  std::string stage;         // "Pre-processing" | "Model inference" | ...
  std::string tasks_label;   // "Cls/Det/Seg" etc.
  bool input_dependent = false;
  std::string effect_level;  // "Middle" | "High" | "Very High"

  int num_options() const { return static_cast<int>(option_labels.size()); }
  // Option count as Table 1 reports it (deployment options + the training
  // default).
  int taxonomy_categories() const { return num_options() + 1; }
  bool applies_to(const TaskTraits& t) const { return !applies || applies(t); }
};

// Ordered axis registry. Registration order is report/step order.
class AxisRegistry {
 public:
  AxisRegistry() = default;

  // Process-wide registry, pre-populated with the Table 1 axes.
  static AxisRegistry& global();

  void add(NoiseAxis axis);
  const std::vector<NoiseAxis>& axes() const { return axes_; }
  // Lookup by display name (table header, e.g. "Color Mode").
  const NoiseAxis* find(const std::string& name) const;
  // Lookup by machine key (e.g. "color") — what CSV columns and serialized
  // SweepPlans reference axes by.
  const NoiseAxis* find_by_key(const std::string& key) const;
  std::vector<const NoiseAxis*> applicable(const TaskTraits& traits) const;

 private:
  std::vector<NoiseAxis> axes_;
};

// The built-in Table 1 axes in paper order (decode, resize, color,
// precision, ceil, upsample, post-proc). Used to seed global(); exposed so
// tests can build private registries.
std::vector<NoiseAxis> builtin_axes();

// Deployment config with every applicable axis flipped to its combined
// option (the Combined column; Fig. 3 adds them one at a time).
SysNoiseConfig combined_config(const TaskTraits& traits,
                               const AxisRegistry& registry);
SysNoiseConfig combined_config(const TaskTraits& traits);

// Back-compat flag form: (has_maxpool, with_upsample, with_postproc) maps
// to classification / segmentation / detection traits.
SysNoiseConfig combined_config(bool has_maxpool, bool with_upsample,
                               bool with_postproc);

}  // namespace sysnoise::core
