#include "resize/pillow_resize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "resize/filters.h"

namespace sysnoise {

namespace {

// Pillow's fixed-point precision for uint8 resampling (Resample.c).
constexpr int kPrecisionBits = 32 - 8 - 2;

struct FilterDef {
  double (*fn)(double);
  double support;
};

double cubic_pillow(double x) { return filter_cubic(x, -0.5); }
double lanczos3(double x) { return filter_lanczos(x, 3); }

FilterDef filter_def(PillowFilter f) {
  switch (f) {
    case PillowFilter::kBox: return {filter_box, 0.5};
    case PillowFilter::kBilinear: return {filter_triangle, 1.0};
    case PillowFilter::kHamming: return {filter_hamming, 1.0};
    case PillowFilter::kBicubic: return {cubic_pillow, 2.0};
    case PillowFilter::kLanczos: return {lanczos3, 3.0};
    case PillowFilter::kNearest: break;
  }
  throw std::logic_error("filter_def: nearest has no kernel");
}

// Precomputed bounds + normalized fixed-point coefficients for one axis
// (PIL precompute_coeffs).
struct AxisCoeffs {
  std::vector<int> xmin;                 // first source index per output
  std::vector<int> xsize;                // tap count per output
  std::vector<std::vector<int>> coeffs;  // fixed-point weights per output
};

AxisCoeffs precompute(int in_size, int out_size, const FilterDef& fd) {
  AxisCoeffs ac;
  ac.xmin.resize(static_cast<std::size_t>(out_size));
  ac.xsize.resize(static_cast<std::size_t>(out_size));
  ac.coeffs.resize(static_cast<std::size_t>(out_size));

  const double scale = static_cast<double>(in_size) / out_size;
  const double filterscale = std::max(scale, 1.0);  // antialias on downscale
  const double support = fd.support * filterscale;

  std::vector<double> w;
  for (int xx = 0; xx < out_size; ++xx) {
    const double center = (xx + 0.5) * scale;
    int xmin = static_cast<int>(center - support + 0.5);
    if (xmin < 0) xmin = 0;
    int xmax = static_cast<int>(center + support + 0.5);
    if (xmax > in_size) xmax = in_size;
    const int n = xmax - xmin;

    w.assign(static_cast<std::size_t>(n), 0.0);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double val = fd.fn((xmin + i + 0.5 - center) / filterscale);
      w[static_cast<std::size_t>(i)] = val;
      total += val;
    }
    std::vector<int> fixed(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double norm = total != 0.0 ? w[static_cast<std::size_t>(i)] / total : 0.0;
      // Pillow rounds half away from zero when quantizing coefficients.
      fixed[static_cast<std::size_t>(i)] =
          static_cast<int>(std::round(norm * (1 << kPrecisionBits)));
    }
    ac.xmin[static_cast<std::size_t>(xx)] = xmin;
    ac.xsize[static_cast<std::size_t>(xx)] = n;
    ac.coeffs[static_cast<std::size_t>(xx)] = std::move(fixed);
  }
  return ac;
}

std::uint8_t clip8(std::int64_t acc) {
  // Pillow: add half, shift, clamp.
  const std::int64_t v = (acc + (1ll << (kPrecisionBits - 1))) >> kPrecisionBits;
  return clamp_u8(static_cast<int>(std::clamp<std::int64_t>(v, 0, 255)));
}

ImageU8 resample_horizontal(const ImageU8& src, int out_w, const AxisCoeffs& ac) {
  const int h = src.height(), c = src.channels();
  ImageU8 out(h, out_w, c);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < out_w; ++x) {
      const int xmin = ac.xmin[static_cast<std::size_t>(x)];
      const auto& cf = ac.coeffs[static_cast<std::size_t>(x)];
      for (int ch = 0; ch < c; ++ch) {
        std::int64_t acc = 0;
        for (int i = 0; i < ac.xsize[static_cast<std::size_t>(x)]; ++i)
          acc += static_cast<std::int64_t>(cf[static_cast<std::size_t>(i)]) *
                 src.at(y, xmin + i, ch);
        out.at(y, x, ch) = clip8(acc);
      }
    }
  return out;
}

ImageU8 resample_vertical(const ImageU8& src, int out_h, const AxisCoeffs& ac) {
  const int w = src.width(), c = src.channels();
  ImageU8 out(out_h, w, c);
  for (int y = 0; y < out_h; ++y) {
    const int ymin = ac.xmin[static_cast<std::size_t>(y)];
    const auto& cf = ac.coeffs[static_cast<std::size_t>(y)];
    for (int x = 0; x < w; ++x)
      for (int ch = 0; ch < c; ++ch) {
        std::int64_t acc = 0;
        for (int i = 0; i < ac.xsize[static_cast<std::size_t>(y)]; ++i)
          acc += static_cast<std::int64_t>(cf[static_cast<std::size_t>(i)]) *
                 src.at(ymin + i, x, ch);
        out.at(y, x, ch) = clip8(acc);
      }
  }
  return out;
}

ImageU8 nearest_resize(const ImageU8& src, int out_h, int out_w) {
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  ImageU8 out(out_h, out_w, src.channels());
  for (int y = 0; y < out_h; ++y) {
    const int iy = std::min(static_cast<int>((y + 0.5) * sy), src.height() - 1);
    for (int x = 0; x < out_w; ++x) {
      const int ix = std::min(static_cast<int>((x + 0.5) * sx), src.width() - 1);
      for (int ch = 0; ch < src.channels(); ++ch)
        out.at(y, x, ch) = src.at(iy, ix, ch);
    }
  }
  return out;
}

}  // namespace

ImageU8 pillow_resize(const ImageU8& src, int out_h, int out_w, PillowFilter f) {
  if (out_h <= 0 || out_w <= 0)
    throw std::invalid_argument("pillow_resize: bad output size");
  if (f == PillowFilter::kNearest) return nearest_resize(src, out_h, out_w);
  const FilterDef fd = filter_def(f);
  // Horizontal then vertical, with uint8 rounding between passes (as PIL).
  const AxisCoeffs hx = precompute(src.width(), out_w, fd);
  ImageU8 tmp = resample_horizontal(src, out_w, hx);
  const AxisCoeffs vx = precompute(src.height(), out_h, fd);
  return resample_vertical(tmp, out_h, vx);
}

}  // namespace sysnoise
