#include "resize/resize.h"

#include <cmath>
#include <stdexcept>

#include "resize/opencv_resize.h"
#include "resize/pillow_resize.h"

namespace sysnoise {

const char* resize_method_name(ResizeMethod m) {
  switch (m) {
    case ResizeMethod::kPillowBilinear: return "Pillow-bilinear";
    case ResizeMethod::kPillowNearest: return "Pillow-nearest";
    case ResizeMethod::kPillowBox: return "Pillow-box";
    case ResizeMethod::kPillowHamming: return "Pillow-hamming";
    case ResizeMethod::kPillowBicubic: return "Pillow-cubic";
    case ResizeMethod::kPillowLanczos: return "Pillow-lanczos";
    case ResizeMethod::kOpenCVBilinear: return "OpenCV-bilinear";
    case ResizeMethod::kOpenCVNearest: return "OpenCV-nearest";
    case ResizeMethod::kOpenCVArea: return "OpenCV-area";
    case ResizeMethod::kOpenCVBicubic: return "OpenCV-cubic";
    case ResizeMethod::kOpenCVLanczos4: return "OpenCV-lanczos";
  }
  return "?";
}

const std::vector<ResizeMethod>& all_resize_methods() {
  static const std::vector<ResizeMethod> all = {
      ResizeMethod::kPillowBilinear, ResizeMethod::kPillowNearest,
      ResizeMethod::kPillowBox,      ResizeMethod::kPillowHamming,
      ResizeMethod::kPillowBicubic,  ResizeMethod::kPillowLanczos,
      ResizeMethod::kOpenCVBilinear, ResizeMethod::kOpenCVNearest,
      ResizeMethod::kOpenCVArea,     ResizeMethod::kOpenCVBicubic,
      ResizeMethod::kOpenCVLanczos4};
  return all;
}

ImageU8 resize(const ImageU8& src, int out_h, int out_w, ResizeMethod method) {
  switch (method) {
    case ResizeMethod::kPillowBilinear:
      return pillow_resize(src, out_h, out_w, PillowFilter::kBilinear);
    case ResizeMethod::kPillowNearest:
      return pillow_resize(src, out_h, out_w, PillowFilter::kNearest);
    case ResizeMethod::kPillowBox:
      return pillow_resize(src, out_h, out_w, PillowFilter::kBox);
    case ResizeMethod::kPillowHamming:
      return pillow_resize(src, out_h, out_w, PillowFilter::kHamming);
    case ResizeMethod::kPillowBicubic:
      return pillow_resize(src, out_h, out_w, PillowFilter::kBicubic);
    case ResizeMethod::kPillowLanczos:
      return pillow_resize(src, out_h, out_w, PillowFilter::kLanczos);
    case ResizeMethod::kOpenCVBilinear:
      return opencv_resize(src, out_h, out_w, CvInterp::kLinear);
    case ResizeMethod::kOpenCVNearest:
      return opencv_resize(src, out_h, out_w, CvInterp::kNearest);
    case ResizeMethod::kOpenCVArea:
      return opencv_resize(src, out_h, out_w, CvInterp::kArea);
    case ResizeMethod::kOpenCVBicubic:
      return opencv_resize(src, out_h, out_w, CvInterp::kCubic);
    case ResizeMethod::kOpenCVLanczos4:
      return opencv_resize(src, out_h, out_w, CvInterp::kLanczos4);
  }
  throw std::logic_error("resize: unknown method");
}

ImageU8 resize_shorter_side(const ImageU8& src, int shorter, ResizeMethod method) {
  const int h = src.height(), w = src.width();
  int oh, ow;
  if (h <= w) {
    oh = shorter;
    ow = static_cast<int>(std::lround(static_cast<double>(w) * shorter / h));
  } else {
    ow = shorter;
    oh = static_cast<int>(std::lround(static_cast<double>(h) * shorter / w));
  }
  return resize(src, oh, ow, method);
}

ImageU8 center_crop(const ImageU8& src, int crop_h, int crop_w) {
  if (crop_h > src.height() || crop_w > src.width())
    throw std::invalid_argument("center_crop: crop larger than image");
  const int y0 = (src.height() - crop_h) / 2;
  const int x0 = (src.width() - crop_w) / 2;
  ImageU8 out(crop_h, crop_w, src.channels());
  for (int y = 0; y < crop_h; ++y)
    for (int x = 0; x < crop_w; ++x)
      for (int ch = 0; ch < src.channels(); ++ch)
        out.at(y, x, ch) = src.at(y0 + y, x0 + x, ch);
  return out;
}

}  // namespace sysnoise
