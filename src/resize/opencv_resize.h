// OpenCV-style resampler (mirrors modules/imgproc/resize.cpp semantics):
//  * half-pixel mapping fx = (dst+0.5)*scale - 0.5,
//  * kernels have FIXED support regardless of scale (no antialias),
//  * bilinear runs in 11-bit fixed point (INTER_RESIZE_COEF_BITS),
//  * bicubic uses a = -0.75 (vs Pillow's -0.5), lanczos has 4 lobes (vs 3),
//  * INTER_AREA does exact fractional box coverage on downscale and falls
//    back to bilinear on upscale.
#pragma once

#include "image/image.h"

namespace sysnoise {

enum class CvInterp { kNearest, kLinear, kArea, kCubic, kLanczos4 };

ImageU8 opencv_resize(const ImageU8& src, int out_h, int out_w, CvInterp interp);

}  // namespace sysnoise
