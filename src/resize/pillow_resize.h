// Pillow-style separable resampler (mirrors PIL Resample.c):
//  * output pixel centers map to input as (i + 0.5) * scale,
//  * the kernel support is stretched by max(1, scale) => antialiasing when
//    downscaling,
//  * coefficients are normalized then quantized to fixed point with
//    Pillow's PRECISION_BITS, and each of the two passes rounds back to
//    uint8 (double rounding, faithful to Pillow).
#pragma once

#include "image/image.h"

namespace sysnoise {

enum class PillowFilter { kNearest, kBox, kBilinear, kHamming, kBicubic, kLanczos };

ImageU8 pillow_resize(const ImageU8& src, int out_h, int out_w, PillowFilter f);

}  // namespace sysnoise
