// Image resize — the paper's highest-impact pre-processing noise.
//
// Eleven methods (Table 1: "Number of Categories = 11") drawn from two
// package styles that really do disagree:
//  * Pillow-style: separable resampling where the filter support is
//    stretched by the scale factor when downscaling (antialiasing), with
//    Pillow's 8-bit fixed-point coefficient accumulation.
//  * OpenCV-style: fixed-size kernels independent of scale (no antialias),
//    half-pixel coordinate mapping, fixed-point bilinear, plus INTER_AREA
//    box averaging.
// Even the *same named* interpolation (e.g. bilinear) differs across the
// two styles — exactly the package-level mismatch described in Sec. 3.1.
#pragma once

#include <string>
#include <vector>

#include "image/image.h"

namespace sysnoise {

enum class ResizeMethod {
  kPillowBilinear = 0,
  kPillowNearest = 1,
  kPillowBox = 2,
  kPillowHamming = 3,
  kPillowBicubic = 4,
  kPillowLanczos = 5,
  kOpenCVBilinear = 6,
  kOpenCVNearest = 7,
  kOpenCVArea = 8,
  kOpenCVBicubic = 9,
  kOpenCVLanczos4 = 10,
};
constexpr int kNumResizeMethods = 11;

const char* resize_method_name(ResizeMethod m);

// All methods, in the enum order above (the paper's option set).
const std::vector<ResizeMethod>& all_resize_methods();

// Resize to (out_h, out_w) with the given method.
ImageU8 resize(const ImageU8& src, int out_h, int out_w, ResizeMethod method);

// "Shorter side to S, keep aspect" used by classification preprocessing
// (resize so min(h,w)==S), followed by a center crop to (crop_h, crop_w).
ImageU8 resize_shorter_side(const ImageU8& src, int shorter, ResizeMethod method);
ImageU8 center_crop(const ImageU8& src, int crop_h, int crop_w);

}  // namespace sysnoise
