#include "resize/opencv_resize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "resize/filters.h"

namespace sysnoise {

namespace {

constexpr int kCoefBits = 11;  // OpenCV INTER_RESIZE_COEF_BITS
constexpr int kCoefScale = 1 << kCoefBits;

ImageU8 cv_nearest(const ImageU8& src, int out_h, int out_w) {
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  ImageU8 out(out_h, out_w, src.channels());
  for (int y = 0; y < out_h; ++y) {
    // OpenCV INTER_NEAREST: floor(dst * scale) — no half-pixel shift,
    // a deliberate asymmetry vs Pillow's center-based nearest.
    const int iy = std::min(static_cast<int>(y * sy), src.height() - 1);
    for (int x = 0; x < out_w; ++x) {
      const int ix = std::min(static_cast<int>(x * sx), src.width() - 1);
      for (int ch = 0; ch < src.channels(); ++ch)
        out.at(y, x, ch) = src.at(iy, ix, ch);
    }
  }
  return out;
}

ImageU8 cv_linear(const ImageU8& src, int out_h, int out_w) {
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  const int c = src.channels();
  ImageU8 out(out_h, out_w, c);
  for (int y = 0; y < out_h; ++y) {
    double fy = (y + 0.5) * sy - 0.5;
    int iy = static_cast<int>(std::floor(fy));
    fy -= iy;
    if (iy < 0) { iy = 0; fy = 0.0; }
    if (iy >= src.height() - 1) { iy = src.height() - 1; fy = 0.0; }
    const int wy1 = static_cast<int>(std::lround(fy * kCoefScale));
    const int wy0 = kCoefScale - wy1;
    for (int x = 0; x < out_w; ++x) {
      double fx = (x + 0.5) * sx - 0.5;
      int ix = static_cast<int>(std::floor(fx));
      fx -= ix;
      if (ix < 0) { ix = 0; fx = 0.0; }
      if (ix >= src.width() - 1) { ix = src.width() - 1; fx = 0.0; }
      const int wx1 = static_cast<int>(std::lround(fx * kCoefScale));
      const int wx0 = kCoefScale - wx1;
      const int iy1 = std::min(iy + 1, src.height() - 1);
      const int ix1 = std::min(ix + 1, src.width() - 1);
      for (int ch = 0; ch < c; ++ch) {
        const std::int64_t acc =
            static_cast<std::int64_t>(wy0) * (wx0 * src.at(iy, ix, ch) + wx1 * src.at(iy, ix1, ch)) +
            static_cast<std::int64_t>(wy1) * (wx0 * src.at(iy1, ix, ch) + wx1 * src.at(iy1, ix1, ch));
        out.at(y, x, ch) = clamp_u8(
            static_cast<int>((acc + (1ll << (2 * kCoefBits - 1))) >> (2 * kCoefBits)));
      }
    }
  }
  return out;
}

// Generic float-kernel sampler with fixed taps (cubic: 4, lanczos4: 8).
ImageU8 cv_kernel(const ImageU8& src, int out_h, int out_w, int taps,
                  double (*kernel)(double)) {
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  const int c = src.channels();
  const int half = taps / 2;
  ImageU8 out(out_h, out_w, c);
  std::vector<double> wy(static_cast<std::size_t>(taps)),
      wx(static_cast<std::size_t>(taps));
  for (int y = 0; y < out_h; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int iy = static_cast<int>(std::floor(fy));
    double sumy = 0.0;
    for (int i = 0; i < taps; ++i) {
      wy[static_cast<std::size_t>(i)] = kernel(fy - (iy - half + 1 + i));
      sumy += wy[static_cast<std::size_t>(i)];
    }
    for (auto& v : wy) v /= sumy;
    for (int x = 0; x < out_w; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int ix = static_cast<int>(std::floor(fx));
      double sumx = 0.0;
      for (int i = 0; i < taps; ++i) {
        wx[static_cast<std::size_t>(i)] = kernel(fx - (ix - half + 1 + i));
        sumx += wx[static_cast<std::size_t>(i)];
      }
      for (auto& v : wx) v /= sumx;
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0;
        for (int i = 0; i < taps; ++i) {
          const int yy = iy - half + 1 + i;
          double row = 0.0;
          for (int j = 0; j < taps; ++j) {
            const int xx = ix - half + 1 + j;
            row += wx[static_cast<std::size_t>(j)] * src.at_clamped(yy, xx, ch);
          }
          acc += wy[static_cast<std::size_t>(i)] * row;
        }
        out.at(y, x, ch) = clamp_u8f(static_cast<float>(acc));
      }
    }
  }
  return out;
}

double cubic_cv(double x) { return filter_cubic(x, -0.75); }
double lanczos4(double x) { return filter_lanczos(x, 4); }

// Exact fractional box coverage for downscale (INTER_AREA).
ImageU8 cv_area_down(const ImageU8& src, int out_h, int out_w) {
  const double sy = static_cast<double>(src.height()) / out_h;
  const double sx = static_cast<double>(src.width()) / out_w;
  const int c = src.channels();
  ImageU8 out(out_h, out_w, c);
  for (int y = 0; y < out_h; ++y) {
    const double y0 = y * sy, y1 = (y + 1) * sy;
    const int iy0 = static_cast<int>(std::floor(y0));
    const int iy1 = std::min(static_cast<int>(std::ceil(y1)), src.height());
    for (int x = 0; x < out_w; ++x) {
      const double x0 = x * sx, x1 = (x + 1) * sx;
      const int ix0 = static_cast<int>(std::floor(x0));
      const int ix1 = std::min(static_cast<int>(std::ceil(x1)), src.width());
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0, area = 0.0;
        for (int yy = iy0; yy < iy1; ++yy) {
          const double hy = std::min<double>(yy + 1, y1) - std::max<double>(yy, y0);
          for (int xx = ix0; xx < ix1; ++xx) {
            const double wxp = std::min<double>(xx + 1, x1) - std::max<double>(xx, x0);
            acc += hy * wxp * src.at(yy, xx, ch);
            area += hy * wxp;
          }
        }
        out.at(y, x, ch) = clamp_u8f(static_cast<float>(acc / area));
      }
    }
  }
  return out;
}

}  // namespace

ImageU8 opencv_resize(const ImageU8& src, int out_h, int out_w, CvInterp interp) {
  if (out_h <= 0 || out_w <= 0)
    throw std::invalid_argument("opencv_resize: bad output size");
  switch (interp) {
    case CvInterp::kNearest:
      return cv_nearest(src, out_h, out_w);
    case CvInterp::kLinear:
      return cv_linear(src, out_h, out_w);
    case CvInterp::kCubic:
      return cv_kernel(src, out_h, out_w, 4, cubic_cv);
    case CvInterp::kLanczos4:
      return cv_kernel(src, out_h, out_w, 8, lanczos4);
    case CvInterp::kArea:
      if (out_h <= src.height() && out_w <= src.width())
        return cv_area_down(src, out_h, out_w);
      return cv_linear(src, out_h, out_w);  // OpenCV's upscale fallback
  }
  throw std::logic_error("opencv_resize: unknown interp");
}

}  // namespace sysnoise
