// Interpolation kernel functions shared by the two resampler styles.
// Formulas follow the paper's Appendix A and the reference implementations
// (Pillow's Resample.c, OpenCV's resize.cpp).
#pragma once

#include <cmath>
#include <numbers>

namespace sysnoise {

inline double sinc(double x) {
  if (x == 0.0) return 1.0;
  x *= std::numbers::pi;
  return std::sin(x) / x;
}

// Triangle / bilinear kernel, support 1.
inline double filter_triangle(double x) {
  x = std::fabs(x);
  return x < 1.0 ? 1.0 - x : 0.0;
}

// Box kernel, support 0.5 (Pillow's BOX).
inline double filter_box(double x) {
  return (x > -0.5 && x <= 0.5) ? 1.0 : 0.0;
}

// Hamming-windowed sinc, support 1 (Pillow's HAMMING).
inline double filter_hamming(double x) {
  x = std::fabs(x);
  if (x == 0.0) return 1.0;
  if (x >= 1.0) return 0.0;
  x *= std::numbers::pi;
  return std::sin(x) / x * (0.54 + 0.46 * std::cos(x));
}

// Keys cubic kernel with free parameter a; support 2.
// Pillow uses a = -0.5, OpenCV uses a = -0.75 — one of the "same name,
// different numbers" package mismatches the paper highlights.
inline double filter_cubic(double x, double a) {
  x = std::fabs(x);
  if (x < 1.0) return ((a + 2.0) * x - (a + 3.0)) * x * x + 1.0;
  if (x < 2.0) return (((x - 5.0) * x + 8.0) * x - 4.0) * a;
  return 0.0;
}

// Lanczos kernel with lobe count `n` (Pillow: 3, OpenCV: 4).
inline double filter_lanczos(double x, int n) {
  if (std::fabs(x) >= static_cast<double>(n)) return 0.0;
  return sinc(x) * sinc(x / static_cast<double>(n));
}

}  // namespace sysnoise
