#include "audio/tts.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "audio/frontend.h"
#include "nn/ops_extra.h"
#include "nn/optim.h"

namespace sysnoise::audio {

using namespace sysnoise::nn;

namespace {

std::vector<float> synthesize(const std::vector<int>& tokens, int samples_per_note,
                              int vocab, Rng& rng) {
  std::vector<float> audio;
  audio.reserve(tokens.size() * static_cast<std::size_t>(samples_per_note));
  float phase = rng.uniform_f(0.0f, 2.0f * std::numbers::pi_v<float>);
  for (int tok : tokens) {
    // Note frequency ladder: normalized angular frequency per sample.
    const float omega = 2.0f * std::numbers::pi_v<float> *
                        (0.03f + 0.035f * static_cast<float>(tok) /
                                     static_cast<float>(vocab) * 10.0f);
    for (int i = 0; i < samples_per_note; ++i) {
      const float v = std::sin(phase) + 0.3f * std::sin(2.0f * phase);
      audio.push_back(0.6f * v);
      phase += omega;
    }
  }
  return audio;
}

}  // namespace

TtsDataset make_tts_dataset(const TtsDatasetSpec& spec) {
  Rng rng(spec.seed);
  TtsDataset ds;
  ds.spec = spec;
  ds.stft = StftSpec{.n_fft = 64, .hop = 32};
  auto emit = [&](std::vector<TtsSample>& out, int count) {
    for (int i = 0; i < count; ++i) {
      TtsSample s;
      s.tokens.resize(static_cast<std::size_t>(spec.seq_len));
      for (auto& t : s.tokens) t = rng.uniform_int(spec.vocab);
      s.audio = synthesize(s.tokens, spec.samples_per_note, spec.vocab, rng);
      out.push_back(std::move(s));
    }
  };
  emit(ds.train, spec.train_items);
  emit(ds.eval, spec.eval_items);
  return ds;
}

namespace {

int spec_frames(const TtsDataset& ds) {
  const int audio_len = ds.spec.seq_len * ds.spec.samples_per_note;
  return 1 + (audio_len - ds.stft.n_fft) / ds.stft.hop;
}

int spec_bins(const TtsDataset& ds) { return ds.stft.n_fft / 2 + 1; }

class FastSpeechMini : public TtsModel {
 public:
  FastSpeechMini(int vocab, int out_dim, Rng& rng)
      : embed_(vocab, 32, rng),
        pos_(Tensor({1, 64, 32})),
        block_(32, 4, rng, "fs.blk"),
        ln_(32),
        head_(32, out_dim, rng, "fs.head") {
    for (float& v : pos_.value.vec()) v = rng.normal_f(0.0f, 0.02f);
  }
  Node* forward(Tape& t, const std::vector<int>& tokens, int batch, int seq,
                BnMode) override {
    Node* x = embed_(t, tokens, batch, seq);
    x = add_pos(t, x, seq);
    x = block_(t, x);
    x = ln_(t, x);
    Node* pooled = mean_tokens(t, x);  // [B, 32]
    return head_(t, pooled);
  }
  void collect(ParamRefs& out) override {
    embed_.collect(out);
    out.push_back(&pos_);
    block_.collect(out);
    ln_.collect(out);
    head_.collect(out);
  }

 private:
  // Adds the first `seq` rows of the positional table.
  Node* add_pos(Tape& t, Node* x, int seq) {
    const int b = x->value.dim(0), d = x->value.dim(2);
    Tensor out = x->value;
    for (int bi = 0; bi < b; ++bi)
      for (int ti = 0; ti < seq; ++ti)
        for (int di = 0; di < d; ++di)
          out.at3(bi, ti, di) += pos_.value.at3(0, ti, di);
    Node* y = t.make(std::move(out));
    Node* xn = x;
    Param* pp = &pos_;
    y->backprop = [y, xn, pp, b, seq, d]() {
      for (int bi = 0; bi < b; ++bi)
        for (int ti = 0; ti < seq; ++ti)
          for (int di = 0; di < d; ++di) {
            const float g = y->grad.at3(bi, ti, di);
            pp->grad.at3(0, ti, di) += g;
            if (xn->requires_grad) xn->grad.at3(bi, ti, di) += g;
          }
    };
    return y;
  }

  struct Block {
    LayerNorm ln1, ln2;
    MultiHeadAttention attn;
    Linear mlp1, mlp2;
    Block(int dim, int heads, Rng& rng, const std::string& id)
        : ln1(dim), ln2(dim), attn(dim, heads, false, rng, id + ".attn"),
          mlp1(dim, 2 * dim, rng, id + ".mlp1"),
          mlp2(2 * dim, dim, rng, id + ".mlp2") {}
    Node* operator()(Tape& t, Node* x) {
      x = add(t, x, attn(t, ln1(t, x)));
      return add(t, x, mlp2(t, gelu(t, mlp1(t, ln2(t, x)))));
    }
    void collect(ParamRefs& out) {
      ln1.collect(out);
      ln2.collect(out);
      attn.collect(out);
      mlp1.collect(out);
      mlp2.collect(out);
    }
  };

  Embedding embed_;
  Param pos_;
  Block block_;
  LayerNorm ln_;
  Linear head_;
};

class TacotronMini : public TtsModel {
 public:
  TacotronMini(int vocab, int out_dim, Rng& rng)
      : embed_(vocab, 16, rng),
        conv1_(16, 24, 3, 1, 1, rng, "tc.c1"),
        bn1_(24),
        conv2_(24, 24, 3, 1, 1, rng, "tc.c2"),
        bn2_(24),
        head_(24, out_dim, rng, "tc.head") {}
  Node* forward(Tape& t, const std::vector<int>& tokens, int batch, int seq,
                BnMode bn) override {
    Node* x = embed_(t, tokens, batch, seq);                // [B, T, 16]
    Node* img = reshape(t, nchw_from_btd(t, x), {batch, 16, 1, seq});
    Node* y = relu(t, bn1_(t, conv1_(t, img), bn));
    y = relu(t, bn2_(t, conv2_(t, y), bn));
    Node* pooled = global_avgpool(t, y);                    // [B, 24]
    return head_(t, pooled);
  }
  void collect(ParamRefs& out) override {
    embed_.collect(out);
    conv1_.collect(out);
    bn1_.collect(out);
    conv2_.collect(out);
    bn2_.collect(out);
    head_.collect(out);
  }

 private:
  // [B, T, D] -> [B, D, T] (flat; caller reshapes to [B, D, 1, T]).
  static Node* nchw_from_btd(Tape& t, Node* x) {
    const int b = x->value.dim(0), tt = x->value.dim(1), d = x->value.dim(2);
    Tensor out({b, d, tt});
    for (int bi = 0; bi < b; ++bi)
      for (int ti = 0; ti < tt; ++ti)
        for (int di = 0; di < d; ++di)
          out.at3(bi, di, ti) = x->value.at3(bi, ti, di);
    Node* y = t.make(std::move(out));
    Node* xn = x;
    y->backprop = [y, xn, b, tt, d]() {
      if (!xn->requires_grad) return;
      for (int bi = 0; bi < b; ++bi)
        for (int ti = 0; ti < tt; ++ti)
          for (int di = 0; di < d; ++di)
            xn->grad.at3(bi, ti, di) += y->grad.at3(bi, di, ti);
    };
    return y;
  }

  Embedding embed_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  Linear head_;
};

Tensor ground_truth_spec(const TtsSample& s, const TtsDataset& ds, StftImpl impl) {
  return stft_magnitude(s.audio, ds.stft, impl);
}

std::vector<int> flatten_tokens(const std::vector<const TtsSample*>& batch) {
  std::vector<int> out;
  for (const auto* s : batch)
    out.insert(out.end(), s->tokens.begin(), s->tokens.end());
  return out;
}

}  // namespace

std::unique_ptr<TtsModel> make_tts_model(const std::string& name,
                                         const TtsDataset& ds, Rng& rng) {
  const int out_dim = spec_frames(ds) * spec_bins(ds);
  if (name == "FastSpeech-mini")
    return std::make_unique<FastSpeechMini>(ds.spec.vocab, out_dim, rng);
  if (name == "Tacotron-mini")
    return std::make_unique<TacotronMini>(ds.spec.vocab, out_dim, rng);
  throw std::invalid_argument("make_tts_model: unknown model " + name);
}

float train_tts(TtsModel& model, const TtsDataset& ds, int epochs, float lr,
                std::uint64_t seed) {
  ParamRefs params;
  model.collect(params);
  Adam opt(params, lr);
  Rng rng(seed);
  const int n = static_cast<int>(ds.train.size());
  const int bs = 8;
  float last = 0.0f;
  for (int e = 0; e < epochs; ++e) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += bs) {
      const int cur = std::min(bs, n - b);
      std::vector<const TtsSample*> batch;
      for (int i = 0; i < cur; ++i)
        batch.push_back(&ds.train[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])]);
      Tensor target({cur, spec_frames(ds) * spec_bins(ds)});
      for (int i = 0; i < cur; ++i) {
        const Tensor gt = ground_truth_spec(*batch[static_cast<std::size_t>(i)], ds,
                                            StftImpl::kReference);
        target.set_front(i, gt.reshaped({static_cast<int>(gt.size())}));
      }
      Tape t;
      t.training = true;
      opt.zero_grad();
      Node* pred = model.forward(t, flatten_tokens(batch), cur, ds.spec.seq_len,
                                 BnMode::kTrain);
      Node* loss = mse_loss(t, pred, target);
      t.backward(loss);
      opt.step();
      last = loss->value[0];
    }
  }
  return last;
}

double eval_tts_mse(TtsModel& model, const TtsDataset& ds, Precision precision,
                    StftImpl deploy_stft, ActRanges* ranges) {
  double total = 0.0;
  for (const auto& s : ds.eval) {
    Tape t;
    t.ctx.precision = precision;
    t.ctx.ranges = ranges;
    Node* pred = model.forward(t, s.tokens, 1, ds.spec.seq_len, BnMode::kEval);
    const Tensor gt = ground_truth_spec(s, ds, deploy_stft);
    total += mse(pred->value, gt.reshaped({1, static_cast<int>(gt.size())}));
  }
  return total / static_cast<double>(ds.eval.size());
}

double tts_system_discrepancy(TtsModel& model, const TtsDataset& ds,
                              Precision precision, StftImpl deploy_stft,
                              ActRanges* ranges) {
  double total = 0.0;
  for (const auto& s : ds.eval) {
    // Training-side pipeline output: FP32 prediction residual against the
    // reference-STFT features.
    Tape t0;
    t0.ctx.precision = Precision::kFP32;
    t0.ctx.ranges = ranges;
    Node* ref_pred = model.forward(t0, s.tokens, 1, ds.spec.seq_len, BnMode::kEval);
    const Tensor ref_feat = ground_truth_spec(s, ds, StftImpl::kReference);

    // Deployment-side pipeline output.
    Tape t1;
    t1.ctx.precision = precision;
    t1.ctx.ranges = ranges;
    Node* dep_pred = model.forward(t1, s.tokens, 1, ds.spec.seq_len, BnMode::kEval);
    const Tensor dep_feat = ground_truth_spec(s, ds, deploy_stft);

    // Residual the downstream vocoder consumes: prediction minus features.
    Tensor r_train = ref_pred->value;
    r_train.sub_(ref_feat.reshaped({1, static_cast<int>(ref_feat.size())}));
    Tensor r_deploy = dep_pred->value;
    r_deploy.sub_(dep_feat.reshaped({1, static_cast<int>(dep_feat.size())}));
    total += mse(r_deploy, r_train);
  }
  return total / static_cast<double>(ds.eval.size());
}

double tts_system_discrepancy(TtsModel& model, const TtsDataset& ds,
                              const SysNoiseConfig& cfg, ActRanges* ranges) {
  double total = 0.0;
  for (const auto& s : ds.eval) {
    Tape t0;
    t0.ctx.precision = Precision::kFP32;
    t0.ctx.ranges = ranges;
    Node* ref_pred = model.forward(t0, s.tokens, 1, ds.spec.seq_len, BnMode::kEval);
    const Tensor ref_feat = ground_truth_spec(s, ds, StftImpl::kReference);

    Tape t1;
    t1.ctx = cfg.inference_ctx(ranges);
    Node* dep_pred = model.forward(t1, s.tokens, 1, ds.spec.seq_len, BnMode::kEval);
    const Tensor dep_feat = deployment_features(s.audio, ds.stft, cfg);

    Tensor r_train = ref_pred->value;
    r_train.sub_(ref_feat.reshaped({1, static_cast<int>(ref_feat.size())}));
    Tensor r_deploy = dep_pred->value;
    r_deploy.sub_(dep_feat.reshaped({1, static_cast<int>(dep_feat.size())}));
    total += mse(r_deploy, r_train);
  }
  return total / static_cast<double>(ds.eval.size());
}

Tensor tts_reference_features(const TtsSample& s, const TtsDataset& ds) {
  return ground_truth_spec(s, ds, StftImpl::kReference);
}

void calibrate_tts(TtsModel& model, const TtsDataset& ds, ActRanges& ranges) {
  for (std::size_t i = 0; i < ds.train.size() && i < 16; ++i) {
    Tape t;
    t.ctx.calibrating = true;
    t.ctx.ranges = &ranges;
    model.forward(t, ds.train[i].tokens, 1, ds.spec.seq_len, BnMode::kEval);
  }
}

}  // namespace sysnoise::audio
