// Text-to-speech SysNoise substrate (Appendix C / Table 10).
//
// The LJSpeech + FastSpeech2/Tacotron2 stack is replaced with: synthetic
// "utterances" (note-id sequences) whose waveform is a sum of sinusoids,
// a ground-truth spectrogram extracted by STFT, and two tiny spectrogram
// predictors — a feed-forward transformer ("FastSpeech-mini") and a
// convolutional one ("Tacotron-mini"). Deployment noise: model precision
// (FP16 / INT8) and the STFT operator used by the feature/vocoder path.
#pragma once

#include <memory>
#include <vector>

#include "audio/stft.h"
#include "data/noise_config.h"
#include "nn/layers.h"

namespace sysnoise::audio {

struct TtsSample {
  std::vector<int> tokens;     // note ids, fixed length
  std::vector<float> audio;    // synthesized waveform
};

struct TtsDatasetSpec {
  int vocab = 12;
  int seq_len = 8;           // notes per utterance
  int samples_per_note = 64; // waveform samples per note
  int train_items = 48;
  int eval_items = 16;
  std::uint64_t seed = 555;
};

struct TtsDataset {
  std::vector<TtsSample> train;
  std::vector<TtsSample> eval;
  TtsDatasetSpec spec;
  StftSpec stft;
};

TtsDataset make_tts_dataset(const TtsDatasetSpec& spec = {});

class TtsModel {
 public:
  virtual ~TtsModel() = default;
  // tokens (batch of sequences) -> spectrogram [B, frames*bins].
  virtual nn::Node* forward(nn::Tape& t, const std::vector<int>& tokens, int batch,
                            int seq, nn::BnMode bn) = 0;
  virtual void collect(nn::ParamRefs& out) = 0;
};

// name: "FastSpeech-mini" (transformer) | "Tacotron-mini" (conv).
std::unique_ptr<TtsModel> make_tts_model(const std::string& name,
                                         const TtsDataset& ds, Rng& rng);

// Train by MSE against reference-STFT spectrograms; returns final loss.
float train_tts(TtsModel& model, const TtsDataset& ds, int epochs, float lr,
                std::uint64_t seed = 3);

// Mean squared error of predictions vs ground-truth spectrograms where the
// deployment side may flip model precision and/or the STFT implementation.
double eval_tts_mse(TtsModel& model, const TtsDataset& ds, nn::Precision precision,
                    StftImpl deploy_stft, nn::ActRanges* ranges);

// The Table 10 metric: MSE between the *deployment* pipeline output and
// the *training* pipeline output (model at `precision`, features extracted
// with `deploy_stft`, versus FP32 + reference STFT). Zero when the two
// systems agree; grows with each injected mismatch.
double tts_system_discrepancy(TtsModel& model, const TtsDataset& ds,
                              nn::Precision precision, StftImpl deploy_stft,
                              nn::ActRanges* ranges);

// Config-driven generalization: the deployment side runs the model under
// the config's full InferenceCtx (precision/backend) and extracts features
// through the deployment front-end (audio/frontend.h: resample round trip,
// STFT impl/window/hop). With only precision + stft_impl flipped this is
// bit-identical to the overload above.
double tts_system_discrepancy(TtsModel& model, const TtsDataset& ds,
                              const SysNoiseConfig& cfg,
                              nn::ActRanges* ranges);

// Ground-truth/deployment feature accessor used by the staged adapter:
// stft_magnitude of the sample's waveform under the dataset spec.
Tensor tts_reference_features(const TtsSample& s, const TtsDataset& ds);

// Record activation ranges for INT8.
void calibrate_tts(TtsModel& model, const TtsDataset& ds, nn::ActRanges& ranges);

}  // namespace sysnoise::audio
