// FFT kernels. Two implementations with different numerics — the raw
// material of the paper's Appendix-C "STFT operator" SysNoise: vendors
// disagree on FFT algorithm and window precision.
#pragma once

#include <complex>
#include <vector>

namespace sysnoise::audio {

// In-place radix-2 Cooley-Tukey FFT (float). Size must be a power of two.
void fft_radix2(std::vector<std::complex<float>>& data, bool inverse = false);

// Naive O(N^2) DFT in double precision (reference implementation).
std::vector<std::complex<double>> dft_reference(
    const std::vector<std::complex<double>>& in, bool inverse = false);

bool is_power_of_two(int n);

}  // namespace sysnoise::audio
