// STFT with two vendor implementations (Appendix C, Table 10): a
// double-precision reference DFT with an exact Hann window, and a fast
// float radix-2 FFT with a Q15 fixed-point window — the kind of kernel a
// DSP vocoder ships.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace sysnoise::audio {

enum class StftImpl {
  kReference = 0,  // double DFT + exact float window (training side)
  kFastFixed = 1,  // float radix-2 FFT + Q15 window (deployment side)
};
const char* stft_impl_name(StftImpl s);

struct StftSpec {
  int n_fft = 64;
  int hop = 32;
};

// Hann window; fixed_point quantizes coefficients to Q15.
std::vector<float> hann_window(int n, bool fixed_point);

// Magnitude spectrogram [frames, n_fft/2 + 1].
Tensor stft_magnitude(const std::vector<float>& audio, const StftSpec& spec,
                      StftImpl impl);

// Generalized form with explicit window length and hop: the frame is still
// spec.n_fft samples (the radix-2 FFT size cannot change), but only the
// first win_length samples are tapered by a Hann window of that length, the
// rest zeroed — the window-geometry mismatch of a deployment front-end.
// win_length == n_fft and hop == spec.hop reproduces stft_magnitude
// bit-identically.
Tensor stft_magnitude_ex(const std::vector<float>& audio, const StftSpec& spec,
                         StftImpl impl, int win_length, int hop);

}  // namespace sysnoise::audio
