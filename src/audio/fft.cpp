#include "audio/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sysnoise::audio {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_radix2(std::vector<std::complex<float>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(static_cast<int>(n)))
    throw std::invalid_argument("fft_radix2: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const float ang = 2.0f * std::numbers::pi_v<float> /
                      static_cast<float>(len) * (inverse ? 1.0f : -1.0f);
    const std::complex<float> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<float> u = data[i + j];
        const std::complex<float> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse)
    for (auto& v : data) v /= static_cast<float>(n);
}

std::vector<std::complex<double>> dft_reference(
    const std::vector<std::complex<double>>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<std::complex<double>> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(t) / static_cast<double>(n);
      acc += in[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace sysnoise::audio
