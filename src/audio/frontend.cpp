#include "audio/frontend.h"

#include <cmath>
#include <stdexcept>

namespace sysnoise::audio {

std::vector<float> resample_linear(const std::vector<float>& audio,
                                   std::size_t out_len) {
  if (audio.size() < 2 || out_len < 2)
    throw std::invalid_argument("resample_linear: need >= 2 samples");
  if (out_len == audio.size()) return audio;
  std::vector<float> out(out_len);
  const double scale = static_cast<double>(audio.size() - 1) /
                       static_cast<double>(out_len - 1);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const std::size_t i0 =
        std::min(static_cast<std::size_t>(pos), audio.size() - 2);
    const double frac = pos - static_cast<double>(i0);
    out[i] = static_cast<float>((1.0 - frac) * audio[i0] + frac * audio[i0 + 1]);
  }
  return out;
}

std::vector<float> resample_round_trip(const std::vector<float>& audio,
                                       float ratio) {
  if (ratio == 1.0f) return audio;
  if (!(ratio > 0.0f) || ratio > 1.0f)
    throw std::invalid_argument("resample_round_trip: ratio must be in (0, 1]");
  const auto down_len = static_cast<std::size_t>(std::lround(
      static_cast<double>(ratio) * static_cast<double>(audio.size())));
  return resample_linear(resample_linear(audio, down_len), audio.size());
}

Tensor resample_frame_axis(const Tensor& spec, int out_frames) {
  const int in_frames = spec.shape()[0];
  const int bins = spec.shape()[1];
  if (in_frames < 2 || out_frames < 2)
    throw std::invalid_argument("resample_frame_axis: need >= 2 frames");
  Tensor out({out_frames, bins});
  const double scale = static_cast<double>(in_frames - 1) /
                       static_cast<double>(out_frames - 1);
  for (int f = 0; f < out_frames; ++f) {
    const double pos = static_cast<double>(f) * scale;
    const int f0 = std::min(static_cast<int>(pos), in_frames - 2);
    const double frac = pos - static_cast<double>(f0);
    for (int b = 0; b < bins; ++b)
      out.at2(f, b) = static_cast<float>((1.0 - frac) * spec.at2(f0, b) +
                                         frac * spec.at2(f0 + 1, b));
  }
  return out;
}

int stft_frames(std::size_t audio_len, const StftSpec& spec) {
  return audio_len >= static_cast<std::size_t>(spec.n_fft)
             ? 1 + static_cast<int>(
                       (audio_len - static_cast<std::size_t>(spec.n_fft)) /
                       static_cast<std::size_t>(spec.hop))
             : 0;
}

Tensor deployment_features(const std::vector<float>& audio,
                           const StftSpec& spec, const SysNoiseConfig& cfg) {
  const std::vector<float>* wave = &audio;
  std::vector<float> round_tripped;
  if (cfg.resample_ratio != 1.0f) {
    round_tripped = resample_round_trip(audio, cfg.resample_ratio);
    wave = &round_tripped;
  }
  const int win = cfg.stft_window > 0 ? cfg.stft_window : spec.n_fft;
  const int hop = cfg.stft_hop > 0 ? cfg.stft_hop : spec.hop;
  // The training-default geometry takes the legacy entry point so the
  // baseline features are bit-identical to what train_tts targeted.
  if (win == spec.n_fft && hop == spec.hop)
    return stft_magnitude(*wave, spec, cfg.stft_impl);
  Tensor feat = stft_magnitude_ex(*wave, spec, cfg.stft_impl, win, hop);
  if (hop != spec.hop)
    feat = resample_frame_axis(feat, stft_frames(audio.size(), spec));
  return feat;
}

}  // namespace sysnoise::audio
