// StagedEvalTask adapter for the Table 10 TTS benchmark: a trained
// spectrogram predictor measured by system discrepancy (MSE between the
// deployment pipeline's prediction residual and the training pipeline's),
// factored into the three-stage split — preprocess = deployment feature
// extraction (Resample/Stft axes, audio/frontend.h), forward = per-item
// model predictions under the config's InferenceCtx (precision/backend
// axes), postprocess = residual MSE against the lazily-computed
// training-side reference. evaluate() reproduces tts_system_discrepancy()
// bit-identically (tested), so the legacy Table 10 numbers are unchanged.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "audio/tts.h"
#include "core/staged_eval.h"

namespace sysnoise::audio {

// A trained TTS model plus its dataset and INT8 calibration ranges,
// reproduced exactly like bench_table10_tts trains one (dataset seed 555,
// init Rng 21/22, 30 epochs at 2e-3, calibration over the train head).
// Deterministic, so dist workers hold bit-identical weights.
struct TrainedTts {
  std::string name;
  TtsDataset ds;
  std::unique_ptr<TtsModel> model;
  nn::ActRanges ranges;
};

TrainedTts get_tts(const std::string& name);
// The Table 10 row models, in bench order.
std::vector<std::string> tts_model_names();

class TtsTask : public core::StagedEvalTask {
 public:
  explicit TtsTask(TrainedTts& tt) : tt_(tt) {}
  const std::string& name() const override { return tt_.name; }
  core::TaskTraits traits() const override {
    return {core::TaskKind::kTts, false};
  }
  // Training-default discrepancy is identically zero (deployment == training
  // pipeline); callers may seed a SweepCache with it.
  double trained_metric() const { return 0.0; }

  std::string preprocess_key(const SysNoiseConfig& cfg) const override;
  std::string forward_key(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_preprocess(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_forward(const SysNoiseConfig& cfg,
                                 const core::StageProduct& pre) const override;
  double run_postprocess(const SysNoiseConfig& cfg,
                         const core::StageProduct& fwd) const override;

  // Model predictions depend only on the inference knobs, not on the
  // feature front-end, so every preprocess variant of one inference config
  // shares this key (and, internally, one memoized prediction set).
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override;

 private:
  // Deployment predictions for one inference-knob suffix, memoized: the
  // forward stage is keyed preprocess_key + suffix per the staged contract,
  // but the network never reads the features — recomputing per front-end
  // variant would only repeat bit-identical work.
  std::shared_ptr<const std::vector<Tensor>> predictions(
      const SysNoiseConfig& cfg) const;
  // Training-side residuals (FP32 predictions minus reference features),
  // config-independent, computed once.
  std::shared_ptr<const std::vector<Tensor>> reference_residuals() const;

  TrainedTts& tt_;
  mutable std::mutex mu_;
  mutable std::map<std::string, std::shared_ptr<const std::vector<Tensor>>>
      preds_by_suffix_;
  mutable std::shared_ptr<const std::vector<Tensor>> ref_residuals_;
};

}  // namespace sysnoise::audio
