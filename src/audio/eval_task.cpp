#include "audio/eval_task.h"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "audio/frontend.h"

namespace sysnoise::audio {

namespace {

struct TtsForward {
  std::shared_ptr<const std::vector<Tensor>> features;     // per eval item
  std::shared_ptr<const std::vector<Tensor>> predictions;  // per eval item
};

}  // namespace

std::vector<std::string> tts_model_names() {
  return {"FastSpeech-mini", "Tacotron-mini"};
}

TrainedTts get_tts(const std::string& name) {
  TrainedTts out;
  out.name = name;
  out.ds = make_tts_dataset();
  Rng rng(name == "FastSpeech-mini" ? 21u : 22u);
  out.model = make_tts_model(name, out.ds, rng);  // throws on unknown name
  train_tts(*out.model, out.ds, /*epochs=*/30, 2e-3f);
  calibrate_tts(*out.model, out.ds, out.ranges);
  return out;
}

std::string TtsTask::preprocess_key(const SysNoiseConfig& cfg) const {
  // Every config knob the audio front-end reads (audio/frontend.h), with
  // round-trip float precision — injective over the Resample/Stft option
  // grids.
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "tts|resample=" << cfg.resample_ratio
     << "|stft=" << stft_impl_name(cfg.stft_impl) << ",w" << cfg.stft_window
     << ",h" << cfg.stft_hop;
  return os.str();
}

std::string TtsTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct TtsTask::run_preprocess(const SysNoiseConfig& cfg) const {
  auto feats = std::make_shared<std::vector<Tensor>>();
  feats->reserve(tt_.ds.eval.size());
  for (const TtsSample& s : tt_.ds.eval)
    feats->push_back(deployment_features(s.audio, tt_.ds.stft, cfg));
  return feats;
}

std::shared_ptr<const std::vector<Tensor>> TtsTask::predictions(
    const SysNoiseConfig& cfg) const {
  const std::string suffix = core::forward_key_suffix(cfg);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = preds_by_suffix_[suffix];
  if (!slot) {
    auto preds = std::make_shared<std::vector<Tensor>>();
    preds->reserve(tt_.ds.eval.size());
    for (const TtsSample& s : tt_.ds.eval) {
      nn::Tape t;
      t.ctx = cfg.inference_ctx(&tt_.ranges);
      nn::Node* pred = tt_.model->forward(t, s.tokens, 1, tt_.ds.spec.seq_len,
                                          nn::BnMode::kEval);
      preds->push_back(pred->value);
    }
    slot = std::move(preds);
  }
  return slot;
}

std::shared_ptr<const std::vector<Tensor>> TtsTask::reference_residuals()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ref_residuals_) {
    auto res = std::make_shared<std::vector<Tensor>>();
    res->reserve(tt_.ds.eval.size());
    for (const TtsSample& s : tt_.ds.eval) {
      nn::Tape t0;
      t0.ctx.precision = nn::Precision::kFP32;
      t0.ctx.ranges = &tt_.ranges;
      nn::Node* ref_pred = tt_.model->forward(t0, s.tokens, 1,
                                              tt_.ds.spec.seq_len,
                                              nn::BnMode::kEval);
      const Tensor ref_feat = tts_reference_features(s, tt_.ds);
      Tensor r_train = ref_pred->value;
      r_train.sub_(ref_feat.reshaped({1, static_cast<int>(ref_feat.size())}));
      res->push_back(std::move(r_train));
    }
    ref_residuals_ = std::move(res);
  }
  return ref_residuals_;
}

core::StageProduct TtsTask::run_forward(const SysNoiseConfig& cfg,
                                        const core::StageProduct& pre) const {
  auto fwd = std::make_shared<TtsForward>();
  fwd->features =
      std::static_pointer_cast<const std::vector<Tensor>>(pre);
  fwd->predictions = predictions(cfg);
  return fwd;
}

double TtsTask::run_postprocess(const SysNoiseConfig& cfg,
                                const core::StageProduct& fwd) const {
  (void)cfg;
  const auto& f = *static_cast<const TtsForward*>(fwd.get());
  const auto ref = reference_residuals();
  const std::size_t n = tt_.ds.eval.size();
  if (f.features->size() != n || f.predictions->size() != n)
    throw std::logic_error("TtsTask: stage product size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor& feat = (*f.features)[i];
    Tensor r_deploy = (*f.predictions)[i];
    r_deploy.sub_(feat.reshaped({1, static_cast<int>(feat.size())}));
    total += mse(r_deploy, (*ref)[i]);
  }
  return total / static_cast<double>(n);
}

std::string TtsTask::forward_batch_key(const SysNoiseConfig& cfg) const {
  return tt_.name + "|batch" + core::forward_key_suffix(cfg);
}

}  // namespace sysnoise::audio
