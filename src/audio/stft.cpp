#include "audio/stft.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "audio/fft.h"

namespace sysnoise::audio {

const char* stft_impl_name(StftImpl s) {
  return s == StftImpl::kReference ? "reference-dft" : "fast-fixed-fft";
}

std::vector<float> hann_window(int n, bool fixed_point) {
  std::vector<float> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double v =
        0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * i / (n - 1));
    if (fixed_point) {
      // Q15: round to 1/32768 steps, as DSP window ROMs do.
      w[static_cast<std::size_t>(i)] =
          static_cast<float>(std::lround(v * 32768.0) / 32768.0);
    } else {
      w[static_cast<std::size_t>(i)] = static_cast<float>(v);
    }
  }
  return w;
}

Tensor stft_magnitude(const std::vector<float>& audio, const StftSpec& spec,
                      StftImpl impl) {
  return stft_magnitude_ex(audio, spec, impl, spec.n_fft, spec.hop);
}

Tensor stft_magnitude_ex(const std::vector<float>& audio, const StftSpec& spec,
                         StftImpl impl, int win_length, int hop) {
  const int n_fft = spec.n_fft;
  if (win_length <= 0 || win_length > n_fft)
    throw std::invalid_argument("stft_magnitude_ex: bad window length");
  if (hop <= 0) throw std::invalid_argument("stft_magnitude_ex: bad hop");
  const int frames =
      audio.size() >= static_cast<std::size_t>(n_fft)
          ? 1 + static_cast<int>((audio.size() - static_cast<std::size_t>(n_fft)) /
                                 static_cast<std::size_t>(hop))
          : 0;
  const int bins = n_fft / 2 + 1;
  Tensor out({std::max(frames, 1), bins});
  if (frames == 0) return out;

  // Hann taper over the first win_length samples, zero-padded to the FFT
  // frame (identical to the legacy full-frame window when win_length ==
  // n_fft).
  std::vector<float> window =
      hann_window(win_length, impl == StftImpl::kFastFixed);
  window.resize(static_cast<std::size_t>(n_fft), 0.0f);

  for (int f = 0; f < frames; ++f) {
    const std::size_t off = static_cast<std::size_t>(f) * hop;
    if (impl == StftImpl::kReference) {
      std::vector<std::complex<double>> buf(static_cast<std::size_t>(n_fft));
      for (int i = 0; i < n_fft; ++i)
        buf[static_cast<std::size_t>(i)] =
            static_cast<double>(audio[off + static_cast<std::size_t>(i)]) *
            window[static_cast<std::size_t>(i)];
      const auto spec_out = dft_reference(buf);
      for (int b = 0; b < bins; ++b)
        out.at2(f, b) = static_cast<float>(std::abs(spec_out[static_cast<std::size_t>(b)]));
    } else {
      std::vector<std::complex<float>> buf(static_cast<std::size_t>(n_fft));
      for (int i = 0; i < n_fft; ++i)
        buf[static_cast<std::size_t>(i)] =
            audio[off + static_cast<std::size_t>(i)] * window[static_cast<std::size_t>(i)];
      fft_radix2(buf);
      for (int b = 0; b < bins; ++b) {
        // Alpha-max-beta-min magnitude approximation — the classic DSP
        // shortcut that avoids the sqrt (and is the operator-level
        // mismatch the paper's STFT noise describes).
        const float re = std::fabs(buf[static_cast<std::size_t>(b)].real());
        const float im = std::fabs(buf[static_cast<std::size_t>(b)].imag());
        const float mx = std::max(re, im), mn = std::min(re, im);
        out.at2(f, b) = 0.96043387f * mx + 0.39782473f * mn;
      }
    }
  }
  return out;
}

}  // namespace sysnoise::audio
