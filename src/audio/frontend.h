// Deployment audio front-end: the SysNoiseConfig audio knobs applied to
// feature extraction. Training extracts spectrograms with the reference
// STFT straight from the native-rate waveform; a deployed TTS/vocoder stack
// may resample the waveform (rate mismatch), taper with a different window
// length, frame with a different hop, or swap the STFT operator
// implementation. deployment_features() composes all four; with a
// training-default config it reproduces the training features
// bit-identically.
#pragma once

#include <vector>

#include "audio/stft.h"
#include "data/noise_config.h"

namespace sysnoise::audio {

// Linear-interpolation resample to an explicit output length (out_len >= 2).
std::vector<float> resample_linear(const std::vector<float>& audio,
                                   std::size_t out_len);

// Rate-mismatch round trip: linearly resample to ratio * len samples and
// back to len — the audio cousin of the NV12 color round trip. ratio 1.0
// returns the input unchanged.
std::vector<float> resample_round_trip(const std::vector<float>& audio,
                                       float ratio);

// Linearly resample a [frames, bins] spectrogram along the frame axis.
Tensor resample_frame_axis(const Tensor& spec, int out_frames);

// Frame count stft_magnitude produces for this audio length and spec.
int stft_frames(std::size_t audio_len, const StftSpec& spec);

// Feature extraction under the config's audio knobs (resample_ratio,
// stft_impl, stft_window, stft_hop). A non-default hop is computed at the
// deployment hop and resampled back to the training frame count, so the
// output shape always matches the training-side features.
Tensor deployment_features(const std::vector<float>& audio,
                           const StftSpec& spec, const SysNoiseConfig& cfg);

}  // namespace sysnoise::audio
