// 8-bit interleaved RGB image — the unit of currency of the pre-processing
// pipeline (decoder output, resize input/output, color round-trip target).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sysnoise {

class ImageU8 {
 public:
  ImageU8() = default;
  ImageU8(int height, int width, int channels = 3)
      : h_(height), w_(width), c_(channels),
        data_(static_cast<std::size_t>(height) * width * channels, 0) {}

  int height() const { return h_; }
  int width() const { return w_; }
  int channels() const { return c_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::vector<std::uint8_t>& vec() { return data_; }
  const std::vector<std::uint8_t>& vec() const { return data_; }

  std::uint8_t& at(int y, int x, int ch) {
    return data_[(static_cast<std::size_t>(y) * w_ + x) * c_ + ch];
  }
  std::uint8_t at(int y, int x, int ch) const {
    return data_[(static_cast<std::size_t>(y) * w_ + x) * c_ + ch];
  }

  // Clamped accessor (replicate border) used by resamplers.
  std::uint8_t at_clamped(int y, int x, int ch) const;

 private:
  int h_ = 0;
  int w_ = 0;
  int c_ = 0;
  std::vector<std::uint8_t> data_;
};

std::uint8_t clamp_u8(int v);
std::uint8_t clamp_u8f(float v);

// HWC uint8 -> CHW float tensor, normalized as (v/255 - mean) / std per channel.
// mean/std must have `channels` entries.
Tensor image_to_tensor(const ImageU8& img, const std::vector<float>& mean,
                       const std::vector<float>& stddev);

// Unnormalized conversion: CHW float in [0, 255].
Tensor image_to_tensor_raw(const ImageU8& img);

// CHW float in [0,255] -> HWC uint8 with rounding + clamping.
ImageU8 tensor_to_image(const Tensor& chw);

}  // namespace sysnoise
