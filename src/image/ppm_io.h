// Minimal binary PPM/PGM writer+reader, used to dump Fig. 5 visualizations
// and example outputs without any external image dependency.
#pragma once

#include <string>

#include "image/image.h"

namespace sysnoise {

// Writes P6 (3-channel) or P5 (1-channel). Throws on I/O failure.
void write_ppm(const std::string& path, const ImageU8& img);

// Reads a P6/P5 file written by write_ppm.
ImageU8 read_ppm(const std::string& path);

}  // namespace sysnoise
