// Image difference metrics (used by tests and the Fig. 5 visualization).
#pragma once

#include "image/image.h"

namespace sysnoise {

// Mean absolute per-channel difference (same-size images).
double image_mae(const ImageU8& a, const ImageU8& b);

// Peak signal-to-noise ratio in dB; returns +inf for identical images.
double image_psnr(const ImageU8& a, const ImageU8& b);

// Largest absolute per-channel difference.
int image_max_diff(const ImageU8& a, const ImageU8& b);

// Fraction of pixels with any channel differing.
double image_diff_fraction(const ImageU8& a, const ImageU8& b);

// |a-b| scaled so the max difference maps to 255 (the paper's Fig. 5
// visualization: "to make the noise more perceptible, we scale it to
// [0, 255]").
ImageU8 image_diff_visual(const ImageU8& a, const ImageU8& b);

}  // namespace sysnoise
