// Procedural rendering primitives for the synthetic datasets.
//
// The paper evaluates on ImageNet / COCO / CityScapes; those are replaced
// (see DESIGN.md §2) with procedurally generated scenes whose class signal
// lives in textures, shapes and colors. Textures deliberately contain
// high-frequency content so pixel-level SysNoise (decode/resize/color)
// measurably perturbs classifier margins, as it does on natural images.
#pragma once

#include "image/image.h"
#include "tensor/rng.h"

namespace sysnoise {

// Parameters of a class-conditioned texture. Neighbouring class ids get
// nearby frequencies/orientations so decision margins are finite.
struct TextureParams {
  float freq_x = 0.1f;       // cycles per pixel
  float freq_y = 0.05f;
  float orientation = 0.0f;  // radians
  float phase = 0.0f;
  float rgb[3] = {200.0f, 120.0f, 80.0f};
  float bg[3] = {40.0f, 60.0f, 90.0f};
  int pattern = 0;           // 0 grating, 1 checker, 2 radial, 3 blob field
  float contrast = 1.0f;
};

// Derive texture parameters for a class id with per-instance jitter.
TextureParams class_texture(int class_id, int num_classes, Rng& instance_rng);

// Render a full-frame texture image.
ImageU8 render_texture(const TextureParams& p, int height, int width, Rng& rng);

// Filled-shape kinds used by detection / segmentation scenes.
enum class ShapeKind { kCircle = 0, kSquare = 1, kTriangle = 2 };
constexpr int kNumShapeKinds = 3;

// Paint `kind` with the given texture into img at center (cy,cx), size
// `radius`; returns nothing, writes pixels in place.
void draw_shape(ImageU8& img, ShapeKind kind, int cy, int cx, int radius,
                const TextureParams& texture, Rng& rng);

// Paint the same shape footprint into an integer mask (class id + 1).
void draw_shape_mask(std::vector<int>& mask, int h, int w, ShapeKind kind,
                     int cy, int cx, int radius, int label);

// Additive Gaussian pixel noise (sensor noise), clamped to [0,255].
void add_pixel_noise(ImageU8& img, float stddev, Rng& rng);

}  // namespace sysnoise
