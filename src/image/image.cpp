#include "image/image.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sysnoise {

std::uint8_t ImageU8::at_clamped(int y, int x, int ch) const {
  y = std::clamp(y, 0, h_ - 1);
  x = std::clamp(x, 0, w_ - 1);
  return at(y, x, ch);
}

std::uint8_t clamp_u8(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

std::uint8_t clamp_u8f(float v) {
  return clamp_u8(static_cast<int>(std::lround(v)));
}

Tensor image_to_tensor(const ImageU8& img, const std::vector<float>& mean,
                       const std::vector<float>& stddev) {
  const int c = img.channels(), h = img.height(), w = img.width();
  if (static_cast<int>(mean.size()) != c || static_cast<int>(stddev.size()) != c)
    throw std::invalid_argument("image_to_tensor: mean/std size mismatch");
  Tensor t({1, c, h, w});
  for (int ch = 0; ch < c; ++ch) {
    const float m = mean[static_cast<std::size_t>(ch)];
    const float s = stddev[static_cast<std::size_t>(ch)];
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        t.at4(0, ch, y, x) = (static_cast<float>(img.at(y, x, ch)) / 255.0f - m) / s;
  }
  return t;
}

Tensor image_to_tensor_raw(const ImageU8& img) {
  const int c = img.channels(), h = img.height(), w = img.width();
  Tensor t({1, c, h, w});
  for (int ch = 0; ch < c; ++ch)
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        t.at4(0, ch, y, x) = static_cast<float>(img.at(y, x, ch));
  return t;
}

ImageU8 tensor_to_image(const Tensor& chw) {
  if (chw.rank() != 4 || chw.dim(0) != 1)
    throw std::invalid_argument("tensor_to_image: expected [1,C,H,W]");
  const int c = chw.dim(1), h = chw.dim(2), w = chw.dim(3);
  ImageU8 img(h, w, c);
  for (int ch = 0; ch < c; ++ch)
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        img.at(y, x, ch) = clamp_u8f(chw.at4(0, ch, y, x));
  return img;
}

}  // namespace sysnoise
