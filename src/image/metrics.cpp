#include "image/metrics.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sysnoise {

namespace {
void check_same(const ImageU8& a, const ImageU8& b) {
  if (a.height() != b.height() || a.width() != b.width() ||
      a.channels() != b.channels())
    throw std::invalid_argument("image metric: size mismatch");
}
}  // namespace

double image_mae(const ImageU8& a, const ImageU8& b) {
  check_same(a, b);
  if (a.size() == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += std::abs(static_cast<int>(a.vec()[i]) - static_cast<int>(b.vec()[i]));
  return s / static_cast<double>(a.size());
}

double image_psnr(const ImageU8& a, const ImageU8& b) {
  check_same(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.vec()[i]) - b.vec()[i];
    s += d * d;
  }
  if (s == 0.0) return std::numeric_limits<double>::infinity();
  const double mse_v = s / static_cast<double>(a.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse_v);
}

int image_max_diff(const ImageU8& a, const ImageU8& b) {
  check_same(a, b);
  int m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<int>(a.vec()[i]) - static_cast<int>(b.vec()[i])));
  return m;
}

double image_diff_fraction(const ImageU8& a, const ImageU8& b) {
  check_same(a, b);
  const int c = a.channels();
  const std::size_t pixels = a.size() / static_cast<std::size_t>(c);
  if (pixels == 0) return 0.0;
  std::size_t differing = 0;
  for (std::size_t p = 0; p < pixels; ++p) {
    for (int ch = 0; ch < c; ++ch) {
      if (a.vec()[p * c + ch] != b.vec()[p * c + ch]) {
        ++differing;
        break;
      }
    }
  }
  return static_cast<double>(differing) / static_cast<double>(pixels);
}

ImageU8 image_diff_visual(const ImageU8& a, const ImageU8& b) {
  check_same(a, b);
  const int md = image_max_diff(a, b);
  ImageU8 out(a.height(), a.width(), a.channels());
  if (md == 0) return out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int d = std::abs(static_cast<int>(a.vec()[i]) - static_cast<int>(b.vec()[i]));
    out.vec()[i] = static_cast<std::uint8_t>(d * 255 / md);
  }
  return out;
}

}  // namespace sysnoise
