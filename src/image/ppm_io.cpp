#include "image/ppm_io.h"

#include <fstream>
#include <stdexcept>

namespace sysnoise {

void write_ppm(const std::string& path, const ImageU8& img) {
  if (img.channels() != 3 && img.channels() != 1)
    throw std::invalid_argument("write_ppm: need 1 or 3 channels");
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_ppm: cannot open " + path);
  f << (img.channels() == 3 ? "P6" : "P5") << "\n"
    << img.width() << " " << img.height() << "\n255\n";
  f.write(reinterpret_cast<const char*>(img.data()),
          static_cast<std::streamsize>(img.size()));
  if (!f) throw std::runtime_error("write_ppm: write failed " + path);
}

ImageU8 read_ppm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  f >> magic >> w >> h >> maxv;
  if ((magic != "P6" && magic != "P5") || maxv != 255 || w <= 0 || h <= 0)
    throw std::runtime_error("read_ppm: unsupported header in " + path);
  f.get();  // single whitespace after header
  ImageU8 img(h, w, magic == "P6" ? 3 : 1);
  f.read(reinterpret_cast<char*>(img.data()), static_cast<std::streamsize>(img.size()));
  if (!f) throw std::runtime_error("read_ppm: truncated file " + path);
  return img;
}

}  // namespace sysnoise
