#include "image/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sysnoise {

namespace {

float pattern_value(const TextureParams& p, float y, float x) {
  const float c = std::cos(p.orientation), s = std::sin(p.orientation);
  const float u = c * x - s * y;
  const float v = s * x + c * y;
  constexpr float kTau = 2.0f * std::numbers::pi_v<float>;
  switch (p.pattern) {
    case 0:  // sinusoidal grating
      return 0.5f + 0.5f * std::sin(kTau * (p.freq_x * u + p.freq_y * v) + p.phase);
    case 1: {  // checkerboard
      const int a = static_cast<int>(std::floor(u * p.freq_x * 4.0f + p.phase));
      const int b = static_cast<int>(std::floor(v * p.freq_y * 4.0f));
      return ((a + b) & 1) ? 1.0f : 0.0f;
    }
    case 2: {  // radial rings
      const float r = std::sqrt(u * u + v * v);
      return 0.5f + 0.5f * std::sin(kTau * p.freq_x * r + p.phase);
    }
    default: {  // blob field: product of two low-frequency sinusoids, thresholded softly
      const float a = std::sin(kTau * p.freq_x * u + p.phase);
      const float b = std::sin(kTau * p.freq_y * v + 0.7f * p.phase);
      const float m = a * b;
      return 1.0f / (1.0f + std::exp(-6.0f * m));
    }
  }
}

}  // namespace

TextureParams class_texture(int class_id, int num_classes, Rng& instance_rng) {
  TextureParams p;
  const float t = static_cast<float>(class_id) / std::max(1, num_classes);
  p.pattern = class_id % 4;
  // Base frequency rises with class id inside each pattern group. The jitter
  // is deliberately large relative to inter-class spacing so instances of
  // neighbouring classes overlap: trained classifiers end up with finite
  // decision margins (paper models are at 63-84% top-1, not 100%), which is
  // what makes pixel-level SysNoise measurable.
  const float base_freq = 0.06f + 0.22f * t;
  p.freq_x = base_freq * (1.0f + instance_rng.uniform_f(-0.22f, 0.22f));
  p.freq_y = 0.5f * base_freq * (1.0f + instance_rng.uniform_f(-0.22f, 0.22f));
  p.orientation = t * std::numbers::pi_v<float> +
                  instance_rng.uniform_f(-0.25f, 0.25f);
  p.phase = instance_rng.uniform_f(0.0f, 2.0f * std::numbers::pi_v<float>);
  // Class-conditioned colors: hue walks around the color wheel with class
  // id; the wide jitter makes adjacent classes' palettes overlap.
  const float hue = 2.0f * std::numbers::pi_v<float> * t +
                    instance_rng.uniform_f(-0.5f, 0.5f);
  p.rgb[0] = 140.0f + 70.0f * std::cos(hue) + instance_rng.uniform_f(-25.0f, 25.0f);
  p.rgb[1] = 140.0f + 70.0f * std::cos(hue + 2.1f) + instance_rng.uniform_f(-25.0f, 25.0f);
  p.rgb[2] = 140.0f + 70.0f * std::cos(hue + 4.2f) + instance_rng.uniform_f(-25.0f, 25.0f);
  p.bg[0] = 80.0f + instance_rng.uniform_f(-40.0f, 40.0f);
  p.bg[1] = 80.0f + instance_rng.uniform_f(-40.0f, 40.0f);
  p.bg[2] = 80.0f + instance_rng.uniform_f(-40.0f, 40.0f);
  p.contrast = 0.45f + instance_rng.uniform_f(0.0f, 0.5f);
  return p;
}

ImageU8 render_texture(const TextureParams& p, int height, int width, Rng& rng) {
  ImageU8 img(height, width, 3);
  // Random sub-pixel offset so the grating phase is instance-specific.
  const float oy = rng.uniform_f(0.0f, 8.0f);
  const float ox = rng.uniform_f(0.0f, 8.0f);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float m =
          p.contrast * pattern_value(p, static_cast<float>(y) + oy,
                                     static_cast<float>(x) + ox);
      for (int ch = 0; ch < 3; ++ch) {
        const float v = p.bg[ch] + m * (p.rgb[ch] - p.bg[ch]);
        img.at(y, x, ch) = clamp_u8f(v);
      }
    }
  }
  return img;
}

namespace {

bool inside_shape(ShapeKind kind, int y, int x, int cy, int cx, int radius) {
  const int dy = y - cy, dx = x - cx;
  switch (kind) {
    case ShapeKind::kCircle:
      return dy * dy + dx * dx <= radius * radius;
    case ShapeKind::kSquare:
      return std::abs(dy) <= radius && std::abs(dx) <= radius;
    case ShapeKind::kTriangle:
      // Upward triangle: |dx| grows linearly with depth below apex.
      return dy >= -radius && dy <= radius &&
             std::abs(dx) <= (dy + radius) / 2;
  }
  return false;
}

}  // namespace

void draw_shape(ImageU8& img, ShapeKind kind, int cy, int cx, int radius,
                const TextureParams& texture, Rng& rng) {
  const float oy = rng.uniform_f(0.0f, 4.0f), ox = rng.uniform_f(0.0f, 4.0f);
  const int y0 = std::max(0, cy - radius), y1 = std::min(img.height() - 1, cy + radius);
  const int x0 = std::max(0, cx - radius), x1 = std::min(img.width() - 1, cx + radius);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (!inside_shape(kind, y, x, cy, cx, radius)) continue;
      const float m = texture.contrast *
                      pattern_value(texture, static_cast<float>(y) + oy,
                                    static_cast<float>(x) + ox);
      for (int ch = 0; ch < 3; ++ch) {
        const float v = texture.bg[ch] + m * (texture.rgb[ch] - texture.bg[ch]);
        img.at(y, x, ch) = clamp_u8f(v);
      }
    }
  }
}

void draw_shape_mask(std::vector<int>& mask, int h, int w, ShapeKind kind,
                     int cy, int cx, int radius, int label) {
  const int y0 = std::max(0, cy - radius), y1 = std::min(h - 1, cy + radius);
  const int x0 = std::max(0, cx - radius), x1 = std::min(w - 1, cx + radius);
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x)
      if (inside_shape(kind, y, x, cy, cx, radius))
        mask[static_cast<std::size_t>(y) * w + x] = label;
}

void add_pixel_noise(ImageU8& img, float stddev, Rng& rng) {
  for (auto& v : img.vec()) {
    const float nv = static_cast<float>(v) + rng.normal_f(0.0f, stddev);
    v = clamp_u8f(nv);
  }
}

}  // namespace sysnoise
