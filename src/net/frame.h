// Length-prefixed JSON framing over a TcpSocket: every coordinator/worker
// message is one util::Json document serialized compact and prefixed with a
// 4-byte big-endian length. Framing (not newline delimiting) keeps the
// protocol payload-agnostic — metric maps with arbitrary strings, encoded
// plans, multi-megabyte documents — and makes truncated messages detectable
// instead of silently mergeable.
#pragma once

#include "net/socket.h"
#include "util/json.h"

namespace sysnoise::net {

// Frames larger than this are treated as protocol corruption (a stray
// client speaking something else would otherwise ask us to allocate 4 GB).
constexpr std::size_t kMaxFrameBytes = 256u << 20;

// Serialize `message` compact and send it as one frame. Returns false when
// the peer is gone.
bool send_json(TcpSocket& sock, const util::Json& message);

// Receive one frame and parse it. Returns false on EOF/timeout/oversized
// frame; throws std::runtime_error on unparseable payload (a framing error,
// not a clean shutdown).
bool recv_json(TcpSocket& sock, util::Json* message);

}  // namespace sysnoise::net
