#include "net/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace sysnoise::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

bool parse_host_port(const std::string& hostport, std::string* host,
                     int* port) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size())
    return false;
  int value = 0;
  for (std::size_t i = colon + 1; i < hostport.size(); ++i) {
    const char c = hostport[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  if (value <= 0) return false;
  *host = hostport.substr(0, colon);
  *port = value;
  return true;
}

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::~TcpSocket() { close(); }

std::string TcpSocket::peer() const {
  if (fd_ < 0) return "?";
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET)
    return "?";
  char ip[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip)) == nullptr)
    return "?";
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("TcpSocket::connect: cannot resolve " + host +
                             ": " + gai_strerror(rc));
  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = last_errno;
    throw_errno("TcpSocket::connect: cannot connect to " + host + ":" +
                service);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(fd);
}

void TcpSocket::set_recv_timeout_ms(int ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool TcpSocket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpSocket::recv_all(void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd_, p, size, 0);
    if (n == 0) return false;  // orderly shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // error or SO_RCVTIMEO expiry
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener TcpListener::listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("TcpListener::listen: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("TcpListener::listen: bind to port " + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("TcpListener::listen: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("TcpListener::listen: getsockname");
  }
  TcpListener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

TcpSocket TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return TcpSocket();
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return TcpSocket();  // timeout or error: caller re-checks
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return TcpSocket();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpSocket(fd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sysnoise::net
