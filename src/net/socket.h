// Minimal blocking TCP wrapper for the distributed sweep runtime: an
// RAII-owned connected socket (TcpSocket) and a listening socket
// (TcpListener) with a poll-based accept timeout so accept loops can check
// a stop flag instead of blocking forever. IPv4, Linux-only, no TLS — the
// coordinator/worker protocol is trusted-network tooling, like the shard
// files it replaces.
#pragma once

#include <cstddef>
#include <string>

namespace sysnoise::net {

// Parse "host:port" (the last ':' splits, so bare IPv6 is out of scope —
// the runtime is IPv4-only). Returns false unless the host is non-empty and
// the port is all digits in [1, 65535]. The one parser behind every
// --connect flag, so they cannot drift apart.
bool parse_host_port(const std::string& hostport, std::string* host,
                     int* port);

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // Connect to host:port ("127.0.0.1", "some-host"). Throws
  // std::runtime_error on resolution/connection failure.
  static TcpSocket connect(const std::string& host, int port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // The peer's "ip:port" (for logs and the sweep service's worker roster);
  // "?" when the socket is invalid or the peer is already gone.
  std::string peer() const;

  // Cap how long a recv may wait for bytes (0 = wait forever). The
  // coordinator uses this as its dead-worker tripwire: a live worker is
  // never silent for longer than its heartbeat interval.
  void set_recv_timeout_ms(int ms);

  // Send the whole buffer (retrying partial writes, SIGPIPE suppressed).
  // Returns false when the peer is gone.
  bool send_all(const void* data, std::size_t size);
  // Receive exactly `size` bytes. Returns false on EOF, timeout or error.
  bool recv_all(void* data, std::size_t size);

  void close();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Bind + listen on all interfaces. `port` 0 picks an ephemeral port;
  // port() reports the actual one. Throws std::runtime_error on failure.
  static TcpListener listen(int port);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  // Accept one connection, waiting at most `timeout_ms`. Returns an invalid
  // socket on timeout or on a closed listener.
  TcpSocket accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace sysnoise::net
