#include "net/frame.h"

#include <cstdint>
#include <string>

namespace sysnoise::net {

bool send_json(TcpSocket& sock, const util::Json& message) {
  const std::string payload = message.dump();
  const auto size = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(size >> 24),
      static_cast<unsigned char>(size >> 16),
      static_cast<unsigned char>(size >> 8),
      static_cast<unsigned char>(size),
  };
  return sock.send_all(header, sizeof(header)) &&
         sock.send_all(payload.data(), payload.size());
}

bool recv_json(TcpSocket& sock, util::Json* message) {
  unsigned char header[4];
  if (!sock.recv_all(header, sizeof(header))) return false;
  const std::uint32_t size = (static_cast<std::uint32_t>(header[0]) << 24) |
                             (static_cast<std::uint32_t>(header[1]) << 16) |
                             (static_cast<std::uint32_t>(header[2]) << 8) |
                             static_cast<std::uint32_t>(header[3]);
  if (size > kMaxFrameBytes) return false;
  std::string payload(size, '\0');
  if (!sock.recv_all(payload.data(), payload.size())) return false;
  *message = util::Json::parse(payload);
  return true;
}

}  // namespace sysnoise::net
