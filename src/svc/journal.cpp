#include "svc/journal.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysnoise::svc {

Journal::Journal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error("Journal: cannot open " + path_ + ": " +
                             std::strerror(errno));
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const util::Json& record, bool sync) {
  // One write() call per record: O_APPEND makes concurrent appends from
  // this process land whole, and the torn-tail tolerance in replay() covers
  // the one write a crash can interrupt.
  const std::string line = record.dump() + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("Journal: write to " + path_ + " failed: " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (sync) {
    const auto fsync_start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0)
      throw std::runtime_error("Journal: fsync of " + path_ + " failed: " +
                               std::strerror(errno));
    if (obs::trace_enabled()) {
      // The durability tax per journaled record — the first suspect when a
      // service's result intake stalls on slow storage.
      obs::metrics().observe_ms(
          "svc.journal.fsync_ms",
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - fsync_start)
              .count());
    }
  }
  ++appended_;
}

std::size_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

ReplayResult Journal::replay(const std::string& path) {
  ReplayResult out;
  std::ifstream f(path, std::ios::binary);
  if (!f) return out;  // no journal yet: a fresh service
  std::ostringstream os;
  os << f.rdbuf();
  const std::string text = os.str();

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    // A line without its terminating newline is the write a crash cut off.
    const bool torn = nl == std::string::npos;
    const std::string line =
        text.substr(pos, torn ? std::string::npos : nl - pos);
    pos = torn ? text.size() : nl + 1;
    try {
      util::Json record = util::Json::parse(line);
      if (!record.is_object()) throw std::runtime_error("not an object");
      if (torn) throw std::runtime_error("missing newline");
      out.records.push_back(std::move(record));
    } catch (const std::exception& e) {
      if (pos >= text.size()) {
        // Torn tail: the expected crash artifact. Drop it — the unit (or
        // submission) it would have recorded is simply redone.
        out.dropped_torn_tail = true;
        std::fprintf(stderr,
                     "[journal] dropping torn final record (line %zu) of %s\n",
                     line_no, path.c_str());
        return out;
      }
      throw std::runtime_error("Journal: " + path + " line " +
                               std::to_string(line_no) +
                               " is corrupt (not a crash artifact — later "
                               "records follow): " +
                               e.what());
    }
  }
  return out;
}

util::Json Journal::make_record(const char* rec) {
  util::Json j = util::Json::object();
  j.set("rec", rec);
  return j;
}

}  // namespace sysnoise::svc
