// The resident sweep service: the long-lived successor of the one-shot
// Coordinator (dist/coordinator.h). Where a coordinator serves one fixed
// job list per run() and forgets everything on exit, the service accepts
// serialized SweepPlans over the wire for as long as it lives, queues them
// with priorities, leases their work units to authenticated workers through
// the same LeaseScheduler policy, and journals every submission, lease
// grant and completed unit result (svc/journal.h) — so a service killed at
// any instant replays its journal on restart and resumes every in-flight
// sweep without re-running completed units, producing merged results
// bit-identical to an uninterrupted run.
//
// One TCP listener serves both planes (dist/protocol.h vocabulary):
// workers introduce themselves with hello and speak the coordinator's
// lease/heartbeat/result loop (plus job_request for jobs submitted after
// they joined); control clients (svc/client.h, sysnoise_ctl) send
// submit/cancel/status/fetch/watch requests. When the service was started
// with an auth token, both planes must present it and are rejected loudly
// otherwise.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>

#include "core/plan.h"
#include "util/json.h"

namespace sysnoise::svc {

struct ServiceOptions {
  int port = 0;              // 0 = ephemeral; port() reports the actual one
  std::string journal_path;  // "" = volatile (no persistence, no resume)
  std::string auth_token;    // "" = open; else hello/control token required
  std::chrono::milliseconds lease_timeout{10000};
  std::chrono::milliseconds heartbeat_interval{1000};
  bool verbose = false;
  // Fault-injection hook for tests: after journaling this many unit
  // results, drop every connection and stop serving WITHOUT any graceful
  // drain — the in-process stand-in for kill -9 at a chosen journal
  // position. -1 = never.
  int crash_after_results = -1;
  // Structured one-line JSON event stream (obs/event_log.h): job
  // submitted/started/done, worker join/leave, lease expiry — each line
  // carries a monotonic "seq". null = no events (the library default;
  // sysnoise_svc points it at stderr). Not owned.
  std::FILE* event_sink = nullptr;
};

struct ServiceStats {
  std::size_t workers_joined = 0;   // ever, across the service lifetime
  std::size_t workers_active = 0;
  std::size_t results_received = 0; // this process (replayed ones excluded)
  std::size_t results_replayed = 0; // units restored from the journal
  std::size_t auth_rejections = 0;
  std::size_t worker_errors = 0;
  std::size_t handlers_live = 0;  // connection handlers currently running
  bool crash_hook_fired = false;
};

class SweepService {
 public:
  // Binds the listener (so port() is valid), replays the journal when one
  // is configured — throwing on corruption — and starts serving. stop()
  // (or destruction) shuts down gracefully: attached workers get `done` on
  // their next request, queued work stays in the journal for the next
  // incarnation.
  explicit SweepService(ServiceOptions opts);
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  int port() const;

  // Stop accepting and close every connection; idempotent. Returns once all
  // handler threads have exited.
  void stop();

  // The status document served to `status` requests: per-job progress,
  // worker roster, queue depth.
  util::Json status() const;

  // Block until every submitted job is terminal (done/canceled/failed) —
  // test convenience; a real deployment never drains.
  bool wait_idle(std::chrono::milliseconds timeout) const;

  ServiceStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace sysnoise::svc
