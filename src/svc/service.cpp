#include "svc/service.h"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>

#include "dist/protocol.h"
#include "dist/result_merge.h"
#include "dist/scheduler.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/journal.h"
#include "tensor/backend.h"

namespace sysnoise::svc {

using dist::LeaseScheduler;
using dist::WorkUnit;
using dist::make_message;
using dist::message_type;
namespace msg = dist::msg;

namespace {

util::Json metrics_to_json(const core::MetricMap& metrics) {
  util::Json j = util::Json::object();
  for (const auto& [key, value] : metrics) j.set(key, value);
  return j;
}

}  // namespace

// One submitted sweep. Unit indices are scheduler-global on the wire
// (workers echo what their lease said) but job-local in the journal, so a
// replayed journal is valid no matter how unit_base shifts across restarts
// (terminal jobs' units are still re-added, but order could drift if that
// ever changes).
struct JobState {
  int id = 0;
  std::string name;
  int priority = 0;
  util::Json task_spec;
  core::SweepPlan plan;

  std::size_t unit_base = 0;  // scheduler index of this job's first unit
  std::vector<bool> unit_done;
  std::vector<std::size_t> unit_configs;  // config count per local unit
  std::size_t units_done = 0;
  std::size_t configs_total = 0;
  std::size_t configs_done = 0;
  core::MetricMap merged;
  bool canceled = false;
  std::string error;  // non-empty = failed (e.g. workers disagreed)
  bool started = false;  // first lease granted (the job_started event)
  std::chrono::steady_clock::time_point registered_at{};

  std::size_t unit_count() const { return unit_done.size(); }
  bool terminal() const {
    return canceled || !error.empty() || units_done == unit_count();
  }
  const char* state() const {
    if (canceled) return "canceled";
    if (!error.empty()) return "failed";
    if (units_done == unit_count()) return "done";
    return units_done > 0 ? "running" : "queued";
  }
};

struct SweepService::Impl {
  ServiceOptions opts;
  net::TcpListener listener;
  std::unique_ptr<Journal> journal;  // null = volatile service
  std::unique_ptr<LeaseScheduler> scheduler;
  std::unique_ptr<obs::EventLog> events;  // no-op when opts.event_sink null

  mutable std::mutex mu;  // jobs, next_job_id, roster, idem_to_job
  std::map<int, JobState> jobs;
  int next_job_id = 1;
  std::map<int, std::string> roster;  // worker id -> peer "ip:port"
  // Submit idempotency keys -> job ids, rebuilt from the journal on replay:
  // a client retrying a submit whose reply was lost (even to a crash) gets
  // the job the first attempt registered instead of a duplicate sweep.
  std::map<std::string, int> idem_to_job;

  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  std::atomic<bool> crashed{false};
  std::atomic<int> next_worker_id{0};
  std::atomic<std::size_t> workers_joined{0};
  std::atomic<std::size_t> workers_active{0};
  std::atomic<std::size_t> results_received{0};
  std::atomic<std::size_t> auth_rejections{0};
  std::atomic<std::size_t> worker_errors{0};
  std::size_t results_replayed = 0;  // written once before serving starts

  std::mutex conns_mu;
  std::set<int> conns;
  std::atomic<int> active_handlers{0};
  std::thread accept_thread;
  // Handler threads, touched only by the accept loop and stop() (which runs
  // after the accept loop is joined). A finished handler flips its `done`
  // flag and is joined by the accept loop's next pass — a resident service
  // must not accumulate one dead std::thread per connection it ever served.
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Handler> handlers;

  void log(const char* fmt, ...) const;
  void replay();
  int register_job(std::string name, int priority, util::Json task_spec,
                   core::SweepPlan plan, int forced_id, bool journal_it,
                   const std::string& idem);
  void crash_now();
  util::Json status_json() const;
  util::Json job_result_json(const JobState& job) const;
  util::Json progress_json(const JobState& job) const;

  void accept_loop();
  void reap_handlers();
  void handle(net::TcpSocket sock);
  void serve_worker(net::TcpSocket& sock, const util::Json& hello);
  void serve_control(net::TcpSocket& sock, const util::Json& request);
  // Returns false when the connection must be dropped (protocol/merge
  // failure already reported, or the crash hook fired mid-result).
  bool handle_result(const util::Json& m, int worker_id);
};

void SweepService::Impl::log(const char* fmt, ...) const {
  if (!opts.verbose) return;
  va_list args;
  va_start(args, fmt);
  std::printf("[svc] ");
  std::vprintf(fmt, args);
  std::printf("\n");
  std::fflush(stdout);
  va_end(args);
}

// Register a job (fresh submission or journal replay) and put its units on
// offer. Caller must NOT hold mu.
int SweepService::Impl::register_job(std::string name, int priority,
                                     util::Json task_spec, core::SweepPlan plan,
                                     int forced_id, bool journal_it,
                                     const std::string& idem) {
  core::WorkUnitOptions unit_opts;
  unit_opts.merge_batch_compatible = true;
  std::vector<std::vector<std::size_t>> groups =
      core::plan_work_units(plan, unit_opts);

  std::lock_guard<std::mutex> lock(mu);
  if (!idem.empty()) {
    const auto dup = idem_to_job.find(idem);
    if (dup != idem_to_job.end()) {
      // A retried submit whose original reply was lost: hand back the job
      // the first attempt registered instead of starting a duplicate sweep.
      log("submit with known idempotency key \"%s\" -> existing job %d",
          idem.c_str(), dup->second);
      return dup->second;
    }
  }
  const int id = forced_id > 0 ? forced_id : next_job_id;
  next_job_id = std::max(next_job_id, id + 1);

  // Journal the submission BEFORE it becomes leasable: once a client sees
  // `submitted`, a restart must still know the job.
  if (journal_it && journal != nullptr) {
    util::Json rec = Journal::make_record(rec::kSubmit);
    rec.set("job", id);
    rec.set("name", name);
    rec.set("priority", priority);
    if (!idem.empty()) rec.set("idem", idem);
    rec.set("task", task_spec);
    rec.set("plan", plan.to_json());
    journal->append(rec);
  }
  if (!idem.empty()) idem_to_job[idem] = id;

  JobState job;
  job.id = id;
  job.name = std::move(name);
  job.priority = priority;
  job.task_spec = std::move(task_spec);
  job.plan = std::move(plan);
  job.configs_total = job.plan.configs.size();
  job.unit_done.assign(groups.size(), false);
  job.unit_configs.reserve(groups.size());
  for (const std::vector<std::size_t>& group : groups)
    job.unit_configs.push_back(group.size());

  std::vector<WorkUnit> units;
  units.reserve(groups.size());
  for (std::vector<std::size_t>& group : groups)
    units.push_back({id, std::move(group), priority});
  job.unit_base = scheduler->add_units(std::move(units));

  log("job %d \"%s\" registered: %zu units, %zu configs, priority %d", id,
      job.name.c_str(), job.unit_count(), job.configs_total, priority);
  {
    util::Json fields = util::Json::object();
    fields.set("job", id);
    fields.set("name", job.name);
    fields.set("units", job.unit_count());
    fields.set("configs", job.configs_total);
    fields.set("priority", priority);
    if (!journal_it) fields.set("replayed", true);
    events->emit("job_submitted", std::move(fields));
  }
  job.registered_at = std::chrono::steady_clock::now();
  jobs.emplace(id, std::move(job));
  return id;
}

void SweepService::Impl::replay() {
  const ReplayResult rr = Journal::replay(opts.journal_path);
  for (const util::Json& record : rr.records) {
    const util::Json* recp = record.get("rec");
    const std::string rec =
        recp != nullptr && recp->is_string() ? recp->as_string() : "";
    if (rec == rec::kSubmit) {
      const util::Json* idem = record.get("idem");
      register_job(record.at("name").as_string(),
                   record.at("priority").as_int(), record.at("task"),
                   core::SweepPlan::from_json(record.at("plan")),
                   record.at("job").as_int(), /*journal_it=*/false,
                   idem != nullptr && idem->is_string() ? idem->as_string()
                                                        : "");
    } else if (rec == rec::kLease) {
      // Lease grants are observability-only; the units they name are either
      // re-leased (no result record followed) or covered by one.
    } else if (rec == rec::kResult || rec == rec::kCancel) {
      const int id = record.at("job").as_int();
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it == jobs.end())
        throw std::runtime_error("SweepService: journal " + opts.journal_path +
                                 " references unknown job " +
                                 std::to_string(id));
      JobState& job = it->second;
      if (rec == rec::kCancel) {
        job.canceled = true;
        scheduler->drop_job(id);
        continue;
      }
      const std::size_t local =
          static_cast<std::size_t>(record.at("unit").as_int());
      if (local >= job.unit_count())
        throw std::runtime_error("SweepService: journal " + opts.journal_path +
                                 " has out-of-range unit for job " +
                                 std::to_string(id));
      if (job.unit_done[local]) continue;  // duplicate record: idempotent
      const std::string merge_error =
          dist::merge_metrics(job.merged, record.at("metrics"));
      if (!merge_error.empty())
        throw std::runtime_error(
            "SweepService: journal replay of job " + std::to_string(id) +
            " failed: " + merge_error);
      scheduler->complete(job.unit_base + local);
      job.unit_done[local] = true;
      ++job.units_done;
      job.configs_done += job.unit_configs[local];
      ++results_replayed;
    } else {
      throw std::runtime_error("SweepService: journal " + opts.journal_path +
                               " has unknown record type \"" + rec + "\"");
    }
  }
  std::lock_guard<std::mutex> lock(mu);
  log("replayed %zu journal records: %zu jobs, %zu completed units%s",
      rr.records.size(), jobs.size(), results_replayed,
      rr.dropped_torn_tail ? " (dropped torn tail)" : "");
}

// The kill -9 stand-in: everything already journaled stays, everything else
// — in-flight results, attached workers, pending replies — is dropped on
// the floor with no goodbye of any kind.
void SweepService::Impl::crash_now() {
  crashed.store(true);
  // The accept thread owns the listener fd and closes it on its way out
  // (within one 100 ms poll tick of seeing `stopping`): closing it from
  // this thread would race the accept loop's concurrent poll/accept.
  stopping.store(true);
  std::lock_guard<std::mutex> lock(conns_mu);
  for (const int fd : conns) ::shutdown(fd, SHUT_RDWR);
  log("crash hook fired: dropped %zu connections", conns.size());
}

util::Json SweepService::Impl::progress_json(const JobState& job) const {
  util::Json j = make_message(msg::kProgress);
  j.set("job", job.id);
  j.set("name", job.name);
  j.set("state", job.state());
  j.set("units_done", job.units_done);
  j.set("units_total", job.unit_count());
  j.set("configs_done", job.configs_done);
  j.set("configs_total", job.configs_total);
  return j;
}

util::Json SweepService::Impl::job_result_json(const JobState& job) const {
  util::Json j = make_message(msg::kJobResult);
  j.set("job", job.id);
  j.set("state", job.state());
  if (!job.error.empty()) j.set("error", job.error);
  if (job.terminal() && job.error.empty() && !job.canceled)
    j.set("metrics", metrics_to_json(job.merged));
  return j;
}

util::Json SweepService::Impl::status_json() const {
  util::Json j = make_message(msg::kStatusReport);
  j.set("queue_depth", scheduler->remaining());
  // Runtime fingerprint of the machine the service computes on: which SIMD
  // ISA the kSimd backend dispatches to, how many hardware threads exist,
  // and the process-default compute backend — so `sysnoise_ctl status`
  // answers "what will these jobs actually run on" without a shell on the
  // box.
  util::Json runtime = util::Json::object();
  runtime.set("simd_isa", simd_isa_name());
  runtime.set("hardware_threads",
              static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  runtime.set("default_backend", backend_name(default_backend()));
  j.set("runtime", std::move(runtime));
  // Observability state, so `sysnoise_ctl status` answers "is this service
  // tracing, and what has it measured" without a shell on the box. The
  // metrics snapshot is only attached while tracing to keep the common
  // status reply small.
  util::Json obs_section = util::Json::object();
  obs_section.set("tracing", obs::trace_enabled());
  obs_section.set("events_emitted", events->events_emitted());
  if (obs::trace_enabled()) obs_section.set("metrics", obs::metrics().snapshot());
  j.set("obs", std::move(obs_section));
  std::lock_guard<std::mutex> lock(mu);
  util::Json workers = util::Json::object();
  workers.set("joined", workers_joined.load());
  workers.set("active", workers_active.load());
  util::Json peers = util::Json::array();
  for (const auto& [id, peer] : roster) {
    util::Json w = util::Json::object();
    w.set("worker", id);
    w.set("peer", peer);
    peers.push_back(std::move(w));
  }
  workers.set("peers", std::move(peers));
  j.set("workers", std::move(workers));
  util::Json jjobs = util::Json::array();
  for (const auto& [id, job] : jobs) {
    util::Json jj = util::Json::object();
    jj.set("job", id);
    jj.set("name", job.name);
    jj.set("priority", job.priority);
    jj.set("state", job.state());
    jj.set("units_done", job.units_done);
    jj.set("units_total", job.unit_count());
    jj.set("configs_done", job.configs_done);
    jj.set("configs_total", job.configs_total);
    jjobs.push_back(std::move(jj));
  }
  j.set("jobs", std::move(jjobs));
  return j;
}

bool SweepService::Impl::handle_result(const util::Json& m, int worker_id) {
  dist::ParsedResult parsed;
  std::string error = dist::parse_result_frame(m, &parsed);
  {
    std::lock_guard<std::mutex> lock(mu);
    JobState* job = nullptr;
    if (error.empty()) {
      const auto it = jobs.find(parsed.job);
      if (it == jobs.end() ||
          parsed.unit < it->second.unit_base ||
          parsed.unit >= it->second.unit_base + it->second.unit_count())
        error = "result for unknown job/unit";
      else
        job = &it->second;
    }
    if (error.empty() && job->canceled) {
      // The job was canceled while this worker was evaluating: accept the
      // frame politely (the worker did nothing wrong) and drop the result.
      log("dropping result for canceled job %d from worker %d", parsed.job,
          worker_id);
      return true;
    }
    if (error.empty()) {
      const std::string merge_error =
          dist::merge_metrics(job->merged, *parsed.metrics);
      if (!merge_error.empty()) {
        // Bit-exactness violation: fail THIS JOB loudly (the merged map is
        // poisoned) but keep serving the others.
        job->error = merge_error;
        scheduler->drop_job(job->id);
        error = merge_error;
        util::Json fields = util::Json::object();
        fields.set("job", job->id);
        fields.set("error", merge_error);
        events->emit("job_failed", std::move(fields));
      }
    }
    if (!error.empty()) {
      log("result from worker %d rejected: %s", worker_id, error.c_str());
      return false;
    }
    if (scheduler->complete(parsed.unit)) {
      const std::size_t local = parsed.unit - job->unit_base;
      if (journal != nullptr) {
        util::Json rec = Journal::make_record(rec::kResult);
        rec.set("job", job->id);
        rec.set("unit", local);
        rec.set("metrics", *parsed.metrics);
        journal->append(rec);  // fsync'd: the resume contract depends on it
      }
      job->unit_done[local] = true;
      ++job->units_done;
      job->configs_done += job->unit_configs[local];
      results_received.fetch_add(1);
      log("result job=%d unit=%zu from worker %d (%zu/%zu units)", job->id,
          parsed.unit, worker_id, job->units_done, job->unit_count());
      if (job->units_done == job->unit_count()) {
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - job->registered_at)
                .count();
        if (obs::trace_enabled())
          obs::metrics().gauge_add("svc.job_wall_ms", wall_ms);
        util::Json fields = util::Json::object();
        fields.set("job", job->id);
        fields.set("units", job->unit_count());
        fields.set("configs", job->configs_total);
        fields.set("wall_ms", wall_ms);
        events->emit("job_done", std::move(fields));
      }
    } else {
      log("duplicate result job=%d unit=%zu from worker %d", parsed.job,
          parsed.unit, worker_id);
    }
  }
  if (opts.crash_after_results >= 0 && !crashed.load() &&
      results_received.load() >=
          static_cast<std::size_t>(opts.crash_after_results)) {
    crash_now();
    return false;  // no ok reply: the worker never learns we took it
  }
  return true;
}

void SweepService::Impl::serve_worker(net::TcpSocket& sock,
                                      const util::Json& hello) {
  using Clock = LeaseScheduler::Clock;
  const std::string hello_error = dist::check_hello(hello, opts.auth_token);
  if (!hello_error.empty()) {
    if (hello_error.find("auth rejected") != std::string::npos)
      auth_rejections.fetch_add(1);
    else
      worker_errors.fetch_add(1);
    std::fprintf(stderr, "[svc] rejected worker %s: %s\n",
                 sock.peer().c_str(), hello_error.c_str());
    util::Json err = make_message(msg::kError);
    err.set("message", hello_error);
    net::send_json(sock, err);
    return;
  }
  const int worker_id = next_worker_id.fetch_add(1);
  workers_joined.fetch_add(1);
  workers_active.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mu);
    roster[worker_id] = sock.peer();
  }
  log("worker %d joined from %s", worker_id, sock.peer().c_str());
  {
    util::Json fields = util::Json::object();
    fields.set("worker", worker_id);
    fields.set("peer", sock.peer());
    events->emit("worker_join", std::move(fields));
  }
  if (obs::trace_enabled()) obs::metrics().counter_add("svc.workers_joined");

  // Unlike the coordinator, the welcome carries no jobs: they arrive while
  // workers are already attached, fetched on demand via job_request.
  util::Json welcome = make_message(msg::kWelcome);
  welcome.set("protocol", dist::kProtocolVersion);
  welcome.set("heartbeat_ms",
              static_cast<int>(opts.heartbeat_interval.count()));
  welcome.set("jobs", util::Json::array());

  const int wait_ms = static_cast<int>(opts.heartbeat_interval.count());
  util::Json m;
  if (net::send_json(sock, welcome)) {
    while (true) {
      if (!net::recv_json(sock, &m)) break;
      const std::string type = message_type(m);
      if (type == msg::kLeaseRequest) {
        util::Json reply;
        if (stopping.load()) {
          net::send_json(sock, make_message(msg::kDone));
          break;
        }
        if (obs::trace_enabled())
          obs::metrics().gauge_add(
              "svc.queue_depth", static_cast<double>(scheduler->remaining()));
        if (const std::optional<std::size_t> unit =
                scheduler->acquire(worker_id, Clock::now())) {
          // Copy, not a reference: a concurrent submit's add_units may
          // reallocate the scheduler's unit vector while we read.
          const WorkUnit wu = scheduler->unit_at(*unit);
          reply = make_message(msg::kLease);
          reply.set("job", wu.job);
          reply.set("unit", static_cast<int>(*unit));
          util::Json configs = util::Json::array();
          for (const std::size_t c : wu.configs)
            configs.push_back(static_cast<int>(c));
          reply.set("configs", std::move(configs));
          // Correlates with the worker's "worker.lease" span by lease id.
          obs::TraceSpan grant_span("svc.lease_grant");
          if (grant_span.active()) {
            grant_span.attr("lease", "j" + std::to_string(wu.job) + "u" +
                                         std::to_string(*unit));
            grant_span.attr("worker", worker_id);
          }
          std::lock_guard<std::mutex> lock(mu);
          const auto it = jobs.find(wu.job);
          if (it != jobs.end() && !it->second.started) {
            it->second.started = true;
            util::Json fields = util::Json::object();
            fields.set("job", wu.job);
            fields.set("worker", worker_id);
            events->emit("job_started", std::move(fields));
          }
          log("lease unit %zu (job %d, %zu configs) -> worker %d", *unit,
              wu.job, wu.configs.size(), worker_id);
          if (journal != nullptr && it != jobs.end()) {
            util::Json rec = Journal::make_record(rec::kLease);
            rec.set("job", wu.job);
            rec.set("unit", *unit - it->second.unit_base);
            rec.set("worker", worker_id);
            // Observability-only (priority-order audits, post-mortems):
            // losing a grant to a crash costs nothing, so skip the fsync.
            journal->append(rec, /*sync=*/false);
          }
        } else {
          // A drained queue is NOT "done" for a resident service — the next
          // submission may be seconds away. Workers idle on wait forever.
          reply = make_message(msg::kWait);
          reply.set("ms", wait_ms);
        }
        if (!net::send_json(sock, reply)) break;
      } else if (type == msg::kHeartbeat) {
        scheduler->heartbeat(worker_id, Clock::now());
        if (!net::send_json(sock, make_message(msg::kOk))) break;
      } else if (type == msg::kResult) {
        if (!handle_result(m, worker_id)) {
          if (!crashed.load()) {
            worker_errors.fetch_add(1);
            util::Json err = make_message(msg::kError);
            err.set("message", "result rejected");
            net::send_json(sock, err);
          }
          break;
        }
        if (!net::send_json(sock, make_message(msg::kOk))) break;
      } else if (type == msg::kJobRequest) {
        util::Json reply;
        {
          std::lock_guard<std::mutex> lock(mu);
          const auto it = jobs.find(m.at("job").as_int());
          if (it == jobs.end()) {
            reply = make_message(msg::kError);
            reply.set("message", "unknown job");
          } else {
            reply = make_message(msg::kJobInfo);
            reply.set("job", it->second.id);
            reply.set("task", it->second.task_spec);
            reply.set("plan", it->second.plan.to_json());
          }
        }
        if (!net::send_json(sock, reply)) break;
      } else if (type == msg::kError) {
        const util::Json* message = m.get("message");
        log("worker %d error: %s", worker_id,
            message != nullptr ? message->as_string().c_str() : "?");
        worker_errors.fetch_add(1);
        break;
      } else {
        worker_errors.fetch_add(1);
        break;  // protocol violation
      }
    }
  }
  scheduler->release_worker(worker_id);
  workers_active.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(mu);
    roster.erase(worker_id);
  }
  log("worker %d left", worker_id);
  {
    util::Json fields = util::Json::object();
    fields.set("worker", worker_id);
    events->emit("worker_leave", std::move(fields));
  }
}

void SweepService::Impl::serve_control(net::TcpSocket& sock,
                                       const util::Json& request) {
  const std::string type = message_type(request);
  auto reply_error = [&](const std::string& message) {
    util::Json err = make_message(msg::kError);
    err.set("message", message);
    net::send_json(sock, err);
  };

  if (!opts.auth_token.empty()) {
    const util::Json* token = request.get("token");
    if (token == nullptr || !token->is_string() ||
        token->as_string() != opts.auth_token) {
      auth_rejections.fetch_add(1);
      std::fprintf(stderr,
                   "[svc] rejected control request \"%s\" from %s: bad or "
                   "missing token\n",
                   type.c_str(), sock.peer().c_str());
      reply_error("auth rejected: bad or missing token");
      return;
    }
  }

  if (type == msg::kSubmit) {
    int id = -1;
    try {
      const util::Json* name = request.get("name");
      const util::Json* priority = request.get("priority");
      const util::Json* idem = request.get("idem");
      id = register_job(
          name != nullptr && name->is_string() ? name->as_string() : "",
          priority != nullptr && priority->is_number() ? priority->as_int()
                                                       : 0,
          request.at("task"), core::SweepPlan::from_json(request.at("plan")),
          /*forced_id=*/0, /*journal_it=*/true,
          idem != nullptr && idem->is_string() ? idem->as_string() : "");
    } catch (const std::exception& e) {
      // A malformed plan must come back as a diagnostic, not a dropped
      // connection the client would pointlessly retry.
      reply_error(std::string("submit rejected: ") + e.what());
      return;
    }
    util::Json reply = make_message(msg::kSubmitted);
    reply.set("job", id);
    net::send_json(sock, reply);
  } else if (type == msg::kCancel) {
    const int id = request.at("job").as_int();
    std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
      reply_error("unknown job " + std::to_string(id));
      return;
    }
    if (it->second.terminal()) {
      reply_error("job " + std::to_string(id) + " already " +
                  it->second.state());
      return;
    }
    if (journal != nullptr) {
      util::Json rec = Journal::make_record(rec::kCancel);
      rec.set("job", id);
      journal->append(rec);
    }
    it->second.canceled = true;
    scheduler->drop_job(id);
    log("job %d canceled", id);
    {
      util::Json fields = util::Json::object();
      fields.set("job", id);
      events->emit("job_canceled", std::move(fields));
    }
    net::send_json(sock, make_message(msg::kOk));
  } else if (type == msg::kStatus) {
    net::send_json(sock, status_json());
  } else if (type == msg::kFetch) {
    const int id = request.at("job").as_int();
    std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end())
      reply_error("unknown job " + std::to_string(id));
    else
      net::send_json(sock, job_result_json(it->second));
  } else if (type == msg::kWatch) {
    const int id = request.at("job").as_int();
    // Re-send the current frame at least every kKeepaliveTicks sleeps even
    // when nothing changed: the keepalive is what detects a dead watcher of
    // a stalled job (a send into a reset connection fails) so its handler
    // thread and fd are reclaimed long before stop(), and it keeps a live
    // watcher's ride-out deadline fresh while a job waits for workers.
    constexpr int kKeepaliveTicks = 20;  // x 50 ms sleep = 1 s
    std::string last_sent;
    int ticks_since_send = 0;
    while (!stopping.load()) {
      util::Json frame;
      bool terminal = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = jobs.find(id);
        if (it == jobs.end()) {
          reply_error("unknown job " + std::to_string(id));
          return;
        }
        terminal = it->second.terminal();
        frame = terminal ? job_result_json(it->second)
                         : progress_json(it->second);
      }
      const std::string bytes = frame.dump();
      if (bytes != last_sent || ++ticks_since_send >= kKeepaliveTicks) {
        if (!net::send_json(sock, frame)) return;
        last_sent = bytes;
        ticks_since_send = 0;
      }
      if (terminal) return;
      // Watchers never speak again after the request, so a readable socket
      // is an EOF/reset (or protocol garbage) — the watcher is gone.
      struct pollfd pfd = {sock.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    reply_error("unknown request \"" + type + "\"");
  }
}

void SweepService::Impl::handle(net::TcpSocket sock) {
  const int recv_timeout_ms = static_cast<int>(
      std::max<std::int64_t>(opts.lease_timeout.count() * 2, 1000));
  sock.set_recv_timeout_ms(recv_timeout_ms);

  active_handlers.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    conns.insert(sock.fd());
  }
  struct ConnGuard {
    Impl* im;
    int fd;
    ~ConnGuard() {
      {
        std::lock_guard<std::mutex> lock(im->conns_mu);
        im->conns.erase(fd);
      }
      im->active_handlers.fetch_sub(1);
    }
  } guard{this, sock.fd()};

  // Peers are untrusted: recv_json throws on a length-valid non-JSON frame
  // and field accessors throw on shape violations. An escaped exception in
  // a handler thread would take down the whole service — contain them here.
  try {
    util::Json first;
    if (!net::recv_json(sock, &first)) return;
    if (message_type(first) == msg::kHello)
      serve_worker(sock, first);
    else
      serve_control(sock, first);
  } catch (const std::exception& e) {
    worker_errors.fetch_add(1);
    log("connection error: %s", e.what());
  }
}

// Join handler threads whose handler already returned (their `done` flag is
// up, so the join is immediate). Runs on every accept pass — including the
// 100 ms accept timeouts — so an idle service carries no thread backlog.
void SweepService::Impl::reap_handlers() {
  for (auto it = handlers.begin(); it != handlers.end();) {
    if (it->done->load()) {
      it->thread.join();
      it = handlers.erase(it);
    } else {
      ++it;
    }
  }
}

void SweepService::Impl::accept_loop() {
  while (!stopping.load()) {
    net::TcpSocket sock = listener.accept(100);
    reap_handlers();
    if (stopping.load()) break;  // raced with stop/crash: drop sock unserved
    if (!sock.valid()) continue;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread(
        [this, done](net::TcpSocket s) {
          handle(std::move(s));
          done->store(true);
        },
        std::move(sock));
    handlers.push_back({std::move(thread), std::move(done)});
  }
  // This thread owns the listener: stop()/crash_now() never touch it, they
  // only raise `stopping`, so the close cannot race a concurrent accept.
  listener.close();
}

SweepService::SweepService(ServiceOptions opts) : impl_(new Impl) {
  Impl& im = *impl_;
  im.opts = std::move(opts);
  im.events = std::make_unique<obs::EventLog>(im.opts.event_sink);
  im.scheduler = std::make_unique<LeaseScheduler>(std::vector<WorkUnit>{},
                                                  im.opts.lease_timeout);
  im.scheduler->set_on_expire([&im](std::size_t unit, int job, int worker) {
    util::Json fields = util::Json::object();
    fields.set("job", job);
    fields.set("unit", static_cast<int>(unit));
    fields.set("worker", worker);
    im.events->emit("lease_expired", std::move(fields));
  });
  if (!im.opts.journal_path.empty()) {
    try {
      im.replay();  // resume everything the previous incarnation recorded
      im.journal = std::make_unique<Journal>(im.opts.journal_path);
    } catch (...) {
      delete impl_;
      throw;
    }
  }
  try {
    im.listener = net::TcpListener::listen(im.opts.port);
  } catch (...) {
    delete impl_;
    throw;
  }
  im.log("serving on port %d (journal: %s)", im.listener.port(),
         im.opts.journal_path.empty() ? "none" : im.opts.journal_path.c_str());
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
}

SweepService::~SweepService() {
  stop();
  delete impl_;
}

int SweepService::port() const { return impl_->listener.port(); }

void SweepService::stop() {
  Impl& im = *impl_;
  if (im.stopped.exchange(true)) return;
  im.stopping.store(true);
  // The accept loop notices `stopping` within one 100 ms poll tick, closes
  // the listener (it owns the fd — see accept_loop) and exits.
  if (im.accept_thread.joinable()) im.accept_thread.join();
  // Attached workers get `done` on their next request (at most a heartbeat
  // interval away); give them that window, then nudge whatever is left off
  // its blocking recv. A crash_now() skipped the courtesy on purpose.
  if (!im.crashed.load()) {
    const auto grace_deadline =
        std::chrono::steady_clock::now() +
        std::max<std::chrono::milliseconds>(3 * im.opts.heartbeat_interval,
                                            std::chrono::milliseconds(500));
    while (im.active_handlers.load() > 0 &&
           std::chrono::steady_clock::now() < grace_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (const int fd : im.conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (Impl::Handler& h : im.handlers) h.thread.join();
  im.handlers.clear();
}

util::Json SweepService::status() const { return impl_->status_json(); }

bool SweepService::wait_idle(std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      bool idle = true;
      for (const auto& [id, job] : impl_->jobs)
        if (!job.terminal()) idle = false;
      if (idle) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

ServiceStats SweepService::stats() const {
  ServiceStats s;
  s.workers_joined = impl_->workers_joined.load();
  s.workers_active = impl_->workers_active.load();
  s.results_received = impl_->results_received.load();
  s.results_replayed = impl_->results_replayed;
  s.auth_rejections = impl_->auth_rejections.load();
  s.worker_errors = impl_->worker_errors.load();
  s.handlers_live = static_cast<std::size_t>(impl_->active_handlers.load());
  s.crash_hook_fired = impl_->crashed.load();
  return s;
}

}  // namespace sysnoise::svc
