// Control-plane client of the resident sweep service (svc/service.h):
// submit serialized SweepPlans, poll status, stream per-job progress and
// collect merged results over the dist/protocol.h control vocabulary. One
// TCP connection per request (the service closes after replying), with
// capped-backoff reconnection — a client watching a job survives the
// service being killed and restarted mid-sweep, which is exactly the
// journaled-resume scenario the service exists for. Used by sysnoise_ctl
// and by benches running with --submit.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "core/plan.h"
#include "util/json.h"

namespace sysnoise::svc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string token;  // shared secret; sent with every request when set
  // Total budget for connect retries (per request) and for riding out a
  // service restart mid-watch. Connection refused/reset retries with capped
  // exponential backoff until this deadline.
  std::chrono::seconds retry_timeout{120};
  bool verbose = false;
};

class ServiceClient {
 public:
  explicit ServiceClient(ClientOptions opts) : opts_(std::move(opts)) {}

  // Submit one sweep; returns the service-assigned job id. Throws
  // std::runtime_error on rejection (bad plan, auth).
  int submit(const util::Json& task_spec, const core::SweepPlan& plan,
             int priority = 0, const std::string& name = "");

  // The service's status_report frame (queue depth, worker roster, per-job
  // progress).
  util::Json status();

  // Cancel a queued/running job. Throws if the job is unknown or terminal.
  void cancel(int job);

  // The job's job_result frame right now (state + metrics when done).
  util::Json fetch(int job);

  // Block until `job` is terminal, invoking `on_progress` for every
  // progress frame, reconnecting (and re-watching — idempotent) whenever
  // the connection drops, e.g. across a service kill + restart. Returns the
  // final job_result frame.
  util::Json watch(int job,
                   const std::function<void(const util::Json&)>& on_progress =
                       nullptr);

  // watch() + unwrap: the merged MetricMap of a job that finished "done".
  // Throws when the job ended canceled/failed instead.
  core::MetricMap collect(int job,
                          const std::function<void(const util::Json&)>&
                              on_progress = nullptr);

 private:
  // One request/reply round trip (connect, send, receive). Throws on
  // exhausted retries and on error replies.
  util::Json request(const util::Json& message);

  ClientOptions opts_;
};

}  // namespace sysnoise::svc
