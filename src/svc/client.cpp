#include "svc/client.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "dist/protocol.h"
#include "net/frame.h"
#include "net/socket.h"

namespace sysnoise::svc {

using dist::make_message;
using dist::message_type;
namespace msg = dist::msg;

namespace {

void clog(const ClientOptions& opts, const std::string& line) {
  if (!opts.verbose) return;
  std::printf("[ctl] %s\n", line.c_str());
  std::fflush(stdout);
}

[[noreturn]] void throw_error_reply(const util::Json& reply) {
  const util::Json* message = reply.get("message");
  throw std::runtime_error("service error: " +
                           (message != nullptr && message->is_string()
                                ? message->as_string()
                                : std::string("(no message)")));
}

// Connect with capped exponential backoff until `deadline`: the service may
// still be binding, or may be mid-restart after a crash.
net::TcpSocket connect_retrying(const ClientOptions& opts,
                                std::chrono::steady_clock::time_point deadline) {
  std::chrono::milliseconds delay{250};
  constexpr std::chrono::milliseconds kMaxDelay{5000};
  int attempts = 0;
  while (true) {
    try {
      return net::TcpSocket::connect(opts.host, opts.port);
    } catch (const std::exception& e) {
      ++attempts;
      if (std::chrono::steady_clock::now() >= deadline)
        throw std::runtime_error(
            std::string(e.what()) + " (gave up after " +
            std::to_string(attempts) + " attempts over " +
            std::to_string(opts.retry_timeout.count()) + "s)");
      clog(opts, std::string(e.what()) + "; attempt " +
                     std::to_string(attempts) + ", retrying in " +
                     std::to_string(delay.count()) + "ms...");
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
    }
  }
}

// 128 bits from the system entropy source: a collision would silently alias
// two different submissions to one job, so /dev/urandom-grade it is.
std::string random_nonce() {
  std::random_device rd;
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%08x%08x%08x%08x", rd(), rd(), rd(), rd());
  return buf;
}

}  // namespace

util::Json ServiceClient::request(const util::Json& message) {
  const auto deadline = std::chrono::steady_clock::now() + opts_.retry_timeout;
  util::Json framed = message;
  if (!opts_.token.empty()) framed.set("token", opts_.token);
  while (true) {
    net::TcpSocket sock = connect_retrying(opts_, deadline);
    util::Json reply;
    if (net::send_json(sock, framed) && net::recv_json(sock, &reply)) {
      if (message_type(reply) == msg::kError) throw_error_reply(reply);
      return reply;
    }
    // Connected but the reply never came: the service died between accept
    // and answer. Retrying is safe for every request type: status and fetch
    // are read-only, a cancel the first attempt already applied comes back
    // as a clean "already canceled" error, and submits carry an idempotency
    // key the service dedupes on (journaled, so it holds even when the
    // first attempt was registered and the crash ate the reply).
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("service at " + opts_.host + ":" +
                               std::to_string(opts_.port) +
                               " dropped the connection before replying");
    clog(opts_, "connection dropped mid-request, retrying...");
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
}

int ServiceClient::submit(const util::Json& task_spec,
                          const core::SweepPlan& plan, int priority,
                          const std::string& name) {
  util::Json req = make_message(msg::kSubmit);
  req.set("task", task_spec);
  req.set("plan", plan.to_json());
  req.set("priority", priority);
  req.set("name", name);
  // One nonce per submit call, reused verbatim by every retry inside
  // request(): the service dedupes on it, so a retried submit whose first
  // reply was lost resolves to the job already registered instead of a
  // duplicate sweep.
  req.set("idem", name + "#" + random_nonce());
  const util::Json reply = request(req);
  if (message_type(reply) != msg::kSubmitted)
    throw std::runtime_error("unexpected reply \"" + message_type(reply) +
                             "\" to submit");
  const int job = reply.at("job").as_int();
  clog(opts_, "submitted job " + std::to_string(job) + " (\"" + name +
                  "\", priority " + std::to_string(priority) + ")");
  return job;
}

util::Json ServiceClient::status() {
  util::Json reply = request(make_message(msg::kStatus));
  if (message_type(reply) != msg::kStatusReport)
    throw std::runtime_error("unexpected reply \"" + message_type(reply) +
                             "\" to status");
  return reply;
}

void ServiceClient::cancel(int job) {
  util::Json req = make_message(msg::kCancel);
  req.set("job", job);
  request(req);  // ok or thrown error
}

util::Json ServiceClient::fetch(int job) {
  util::Json req = make_message(msg::kFetch);
  req.set("job", job);
  util::Json reply = request(req);
  if (message_type(reply) != msg::kJobResult)
    throw std::runtime_error("unexpected reply \"" + message_type(reply) +
                             "\" to fetch");
  return reply;
}

util::Json ServiceClient::watch(
    int job, const std::function<void(const util::Json&)>& on_progress) {
  util::Json req = make_message(msg::kWatch);
  req.set("job", job);
  if (!opts_.token.empty()) req.set("token", opts_.token);
  auto deadline = std::chrono::steady_clock::now() + opts_.retry_timeout;
  while (true) {
    net::TcpSocket sock = connect_retrying(opts_, deadline);
    // Progress frames only flow on change, so a quiet stretch is normal:
    // treat a long silence like a drop and re-watch (idempotent) rather
    // than hanging forever on a wedged service.
    sock.set_recv_timeout_ms(10000);
    if (!net::send_json(sock, req)) continue;
    util::Json frame;
    while (net::recv_json(sock, &frame)) {
      // A live frame proves the service is up: restart the ride-out budget.
      deadline = std::chrono::steady_clock::now() + opts_.retry_timeout;
      const std::string type = message_type(frame);
      if (type == msg::kError) throw_error_reply(frame);
      if (type == msg::kJobResult) return frame;
      if (type == msg::kProgress && on_progress) on_progress(frame);
    }
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("watch of job " + std::to_string(job) +
                               " lost the service at " + opts_.host + ":" +
                               std::to_string(opts_.port) + " for over " +
                               std::to_string(opts_.retry_timeout.count()) +
                               "s");
    clog(opts_, "watch stream dropped (service restarting?), re-watching "
                "job " + std::to_string(job) + "...");
  }
}

core::MetricMap ServiceClient::collect(
    int job, const std::function<void(const util::Json&)>& on_progress) {
  const util::Json final_frame = watch(job, on_progress);
  const std::string state = final_frame.at("state").as_string();
  if (state != "done") {
    const util::Json* error = final_frame.get("error");
    throw std::runtime_error(
        "job " + std::to_string(job) + " ended " + state +
        (error != nullptr && error->is_string() ? ": " + error->as_string()
                                                : std::string()));
  }
  core::MetricMap metrics;
  for (const auto& [key, value] : final_frame.at("metrics").items())
    metrics[key] = value.as_number();
  return metrics;
}

}  // namespace sysnoise::svc
