// Write-ahead journal of the resident sweep service: an append-only file of
// newline-delimited compact JSON records (util/json.h), fsync'd per append,
// so a service killed at any instant can replay exactly the submissions,
// cancellations and completed work-unit results it had durably recorded and
// resume every in-flight sweep without re-running completed units.
//
// Crash tolerance is asymmetric by design: a torn FINAL record (the append
// the crash interrupted) is expected and silently dropped on replay — the
// unit it would have recorded is simply re-evaluated, and bit-identical
// executors make that invisible in the merged report. Corruption anywhere
// EARLIER is not a crash artifact but a damaged file, and replay throws
// rather than resuming from a silently-wrong history.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace sysnoise::svc {

// Record type strings (the "rec" field; "type" is the wire vocabulary).
namespace rec {
inline constexpr const char* kSubmit = "submit";
inline constexpr const char* kLease = "lease";
inline constexpr const char* kResult = "result";
inline constexpr const char* kCancel = "cancel";
}  // namespace rec

// The outcome of replaying a journal file.
struct ReplayResult {
  std::vector<util::Json> records;
  bool dropped_torn_tail = false;  // final record was incomplete/unparseable
};

class Journal {
 public:
  // Opens (creating if absent) `path` for appending. Throws
  // std::runtime_error when the file cannot be opened.
  explicit Journal(std::string path);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  // Append one record as a single compact-JSON line. `sync` fsyncs before
  // returning — mandatory for records the service must not lose (submit,
  // result, cancel); lease grants are observability-only and may skip it.
  // Thread-safe. Appends are best-effort durable: a failed write is
  // reported by throwing, since silently dropping a submit would break the
  // resume contract.
  void append(const util::Json& record, bool sync = true);

  std::size_t appended() const;

  // Parse `path` into records. A missing file replays as empty (a fresh
  // service). A torn final record is dropped (ReplayResult::
  // dropped_torn_tail); a malformed record anywhere earlier throws
  // std::runtime_error naming the offending line.
  static ReplayResult replay(const std::string& path);

  // Convenience record builders, so every journal site spells fields the
  // same way.
  static util::Json make_record(const char* rec);

 private:
  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::size_t appended_ = 0;
};

}  // namespace sysnoise::svc
