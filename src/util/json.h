// Minimal JSON value tree (parse + dump) backing the serializable
// measurement API: SweepPlans, shard result files and AxisReport round
// trips all flow through here. Deliberately tiny — objects preserve
// insertion order, numbers are doubles printed with round-trip precision
// (max_digits10), and parse errors throw std::runtime_error with an offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sysnoise::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}              // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                     // NOLINT
  Json(std::size_t v) : Json(static_cast<double>(v)) {}             // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                     // NOLINT

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  int as_int() const;
  const std::string& as_string() const;

  // Array access.
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  // Object access. get() returns nullptr when the key is absent; at()
  // throws. set() appends or overwrites, preserving first-insertion order.
  const Json* get(const std::string& key) const;
  const Json& at(const std::string& key) const;
  void set(const std::string& key, Json v);
  const std::vector<std::pair<std::string, Json>>& items() const;

  // Serialize. indent < 0 renders compact one-line JSON; indent >= 0
  // pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  // Parse a complete JSON document (trailing non-space input is an error).
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void dump_to(std::string* out, int indent, int depth) const;
};

// FNV-1a 64-bit over a byte string — the stable content hash used for plan
// fingerprints and disk-cache file names.
std::uint64_t fnv1a64(const std::string& bytes);
std::string fnv1a64_hex(const std::string& bytes);

}  // namespace sysnoise::util
