#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sysnoise::util {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want +
                           ", got type " + std::to_string(static_cast<int>(got)));
}

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

int Json::as_int() const { return static_cast<int>(as_number()); }

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (i >= array_.size()) throw std::runtime_error("Json: array index out of range");
  return array_[i];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr) throw std::runtime_error("Json: missing key \"" + key + "\"");
  return *v;
}

void Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : object_)
    if (k == key) {
      existing = std::move(v);
      return;
    }
  object_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

// ---------------------------------------------------------------------------
// Dump
// ---------------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_number(double v, std::string* out) {
  if (!std::isfinite(v)) throw std::runtime_error("Json: non-finite number");
  // Integers print without an exponent/decimal point; everything else with
  // max_digits10 so the double round-trips bit-exactly through parse().
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    *out += os.str();
    return;
  }
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  *out += os.str();
}

void newline_indent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: dump_number(number_, out); return;
    case Type::kString: dump_string(string_, out); return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(out, indent, depth + 1);
        dump_string(object_[i].first, out);
        *out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("Json::parse: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number \"" + tok + "\"");
    return Json(v);
  }
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a64_hex(const std::string& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(bytes)));
  return buf;
}

}  // namespace sysnoise::util
