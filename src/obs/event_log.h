// Structured one-line JSON event logging for long-running daemons.
//
// Each emit() renders exactly one line of compact JSON to the sink with a
// monotonic per-log sequence number, so consumers (humans with grep, CI
// assertions, log shippers) can parse, order, and detect gaps without
// guessing at printf formats:
//
//   {"seq":12,"ev":"lease_expired","job":3,"unit":7,"worker":2}
//
// The sequence number is the ordering authority — lines are written under
// one mutex, so seq order IS emission order even with concurrent emitters.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "util/json.h"

namespace sysnoise::obs {

class EventLog {
 public:
  // Events go to `sink` (not owned; stderr for daemons, a tmpfile in
  // tests). A null sink makes every emit a no-op, so call sites need no
  // branching.
  explicit EventLog(std::FILE* sink = nullptr) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }

  // Renders {"seq":n,"ev":type,...fields} — `fields` must be an object;
  // its entries keep their insertion order after the two header keys.
  void emit(const std::string& type, util::Json fields = util::Json::object());

  std::uint64_t events_emitted() const;

 private:
  std::FILE* sink_;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
};

}  // namespace sysnoise::obs
