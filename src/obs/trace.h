// Low-overhead span tracing: the flight recorder half of the obs layer.
//
// TraceSpan is an RAII scope marker: construction records a "B" (begin)
// event, destruction an "E" (end) event, into a per-thread buffer — so
// spans nest naturally, pairs are balanced by construction, and recording
// never contends across threads (the per-buffer mutex is only taken by the
// final drain). Timestamps are microseconds on one process-wide
// steady_clock epoch, so per-thread event streams are non-decreasing and
// cross-thread ordering is meaningful within a process.
//
// Tracing is OFF by default and provably inert: every span site costs one
// relaxed atomic load when disabled, and instrumentation only reads clocks
// and appends to buffers — it never feeds back into any computation, so
// enabling it cannot change a single output byte (CI diffs traced vs
// untraced reports to enforce exactly that).
//
// Enable via TraceSession — explicitly with a directory, or from the
// SYSNOISE_TRACE=<dir> environment variable. On destruction the session
// writes three files into the directory, names suffixed with the pid so
// concurrent processes (a coordinator and its workers) never collide:
//
//   <name>_<pid>_trace.json    Chrome trace_event JSON ("traceEvents"
//                              array) — load in chrome://tracing or
//                              https://ui.perfetto.dev
//   <name>_<pid>_metrics.json  obs::metrics() snapshot
//   <name>_<pid>_summary.json  compact per-sweep summary: per-span-name
//                              count/total time, wall span, thread count,
//                              the metrics snapshot, plus caller extras
//                              (e.g. StageStats)
//
// `tools/sysnoise_trace` merges the per-process files of a distributed
// sweep into one timeline and validates the stream (balanced B/E,
// non-decreasing per-thread timestamps).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace sysnoise::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

// The per-span-site guard: one relaxed atomic load.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// RAII span. Inert (one relaxed load, no allocation) when tracing is
// disabled at construction; the matching "E" is emitted even if tracing is
// disabled mid-span, keeping drained streams balanced. Attributes attach
// to the "E" event (the Chrome trace format merges B/E args per slice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void attr(const char* key, std::string value);
  void attr(const char* key, std::int64_t value);
  void attr(const char* key, std::size_t value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  void attr(const char* key, int value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  bool active() const { return active_; }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  std::vector<std::pair<std::string, std::string>> args_;
};

// Enables recording (spans sites start appending). reset() drops every
// buffered event; drain() collects all buffered events from every thread
// into a Chrome trace JSON value {"traceEvents": [...]} and clears the
// buffers. Call drain only when no spans are in flight (end of a sweep /
// after joins) — live spans would export unbalanced.
void trace_enable();
void trace_disable();
void trace_reset();
util::Json trace_drain();

// Per-span-name aggregation over a {"traceEvents": [...]} value:
// {"spans": {name: {"count": n, "total_ms": t}}, "threads": n,
//  "events": n, "wall_us": last_ts - first_ts,
//  "top_level_ms": sum of depth-0 span durations}. Shared by TraceSession
// summaries and the sysnoise_trace merge tool.
util::Json summarize_events(const util::Json& trace);

// RAII enable + flush-to-directory. Inactive (default-constructed or empty
// dir) sessions are no-ops everywhere, so call sites need no branching.
class TraceSession {
 public:
  TraceSession() = default;
  // Resets the tracer and the global metrics registry (per-sweep
  // isolation), then enables recording.
  TraceSession(std::string dir, std::string name);
  // Active iff SYSNOISE_TRACE is set to a non-empty directory.
  static TraceSession from_env(std::string name);

  TraceSession(TraceSession&& other) noexcept;
  TraceSession& operator=(TraceSession&& other) noexcept;
  ~TraceSession();

  bool active() const { return !dir_.empty() && !finished_; }
  // Extra summary sections ("stage_stats": StageStats::to_json(), ...).
  void add_summary(const std::string& key, util::Json value);
  // Writes the three files, disables tracing, returns the summary.
  // Idempotent; the destructor calls it for active sessions.
  util::Json finish();
  std::string trace_path() const;

 private:
  std::string dir_;
  std::string name_;
  util::Json extras_ = util::Json::object();
  bool finished_ = false;
};

}  // namespace sysnoise::obs
