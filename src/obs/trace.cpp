#include "obs/trace.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace sysnoise::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

// One steady epoch per process: every thread's timestamps share it, so
// per-thread streams are non-decreasing and cross-thread deltas are real.
std::uint64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

struct TraceEvent {
  const char* name;  // span-site string literals; never freed
  char ph;           // 'B' or 'E'
  std::uint64_t ts_us;
  std::vector<std::pair<std::string, std::string>> args;
};

// Buffers are shared_ptr so a thread can exit before the drain: the
// registry keeps its events alive until they are collected.
struct ThreadBuffer {
  std::mutex mu;  // only the drain ever contends with the owning thread
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

BufferRegistry& registry() {
  static auto* r = new BufferRegistry();  // never destroyed: threads may
  return *r;                              // outlive static teardown order
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void append_event(TraceEvent ev) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

// Temp + rename so concurrent readers (CI polling for trace files) never
// see a partial document.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

TraceSpan::TraceSpan(const char* name) {
  if (!trace_enabled()) return;  // the whole disabled cost: one relaxed load
  active_ = true;
  name_ = name;
  append_event(TraceEvent{name, 'B', now_us(), {}});
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  append_event(TraceEvent{name_, 'E', now_us(), std::move(args_)});
}

void TraceSpan::attr(const char* key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void TraceSpan::attr(const char* key, std::int64_t value) {
  if (!active_) return;
  args_.emplace_back(key, std::to_string(value));
}

void trace_enable() {
  now_us();  // pin the epoch before any span can race the static init
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void trace_reset() {
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
  }
}

util::Json trace_drain() {
  struct Tagged {
    int tid;
    TraceEvent ev;
  };
  std::vector<Tagged> all;
  {
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& buf : r.buffers) {
      std::vector<TraceEvent> events;
      {
        std::lock_guard<std::mutex> blk(buf->mu);
        events.swap(buf->events);
      }
      for (auto& ev : events) all.push_back(Tagged{buf->tid, std::move(ev)});
    }
  }
  // Stable by timestamp: within a thread events were appended in
  // non-decreasing ts order, so their relative order survives and B/E
  // balance per thread is preserved.
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.ev.ts_us < b.ev.ts_us;
                   });
  const int pid = static_cast<int>(::getpid());
  util::Json events = util::Json::array();
  for (const auto& t : all) {
    util::Json e = util::Json::object();
    e.set("name", t.ev.name);
    e.set("cat", "sysnoise");
    e.set("ph", std::string(1, t.ev.ph));
    e.set("ts", t.ev.ts_us);
    e.set("pid", pid);
    e.set("tid", t.tid);
    if (!t.ev.args.empty()) {
      util::Json args = util::Json::object();
      for (const auto& [k, v] : t.ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    events.push_back(std::move(e));
  }
  util::Json trace = util::Json::object();
  trace.set("traceEvents", std::move(events));
  return trace;
}

util::Json summarize_events(const util::Json& trace) {
  struct Open {
    std::string name;
    std::uint64_t ts;
  };
  struct Agg {
    std::size_t count = 0;
    double total_ms = 0.0;
  };
  std::map<std::pair<int, int>, std::vector<Open>> stacks;
  std::map<std::string, Agg> spans;
  double top_level_ms = 0.0;
  std::uint64_t min_ts = 0, max_ts = 0;
  bool any = false;
  const util::Json& events = trace.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    const auto ts = static_cast<std::uint64_t>(e.at("ts").as_number());
    if (!any || ts < min_ts) min_ts = ts;
    if (!any || ts > max_ts) max_ts = ts;
    any = true;
    const auto key = std::make_pair(e.at("pid").as_int(), e.at("tid").as_int());
    auto& stack = stacks[key];
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") {
      stack.push_back(Open{e.at("name").as_string(), ts});
    } else if (ph == "E" && !stack.empty()) {
      const Open open = stack.back();
      stack.pop_back();
      const double ms = static_cast<double>(ts - open.ts) / 1000.0;
      Agg& agg = spans[open.name];
      agg.count += 1;
      agg.total_ms += ms;
      if (stack.empty()) top_level_ms += ms;
    }
  }
  util::Json j = util::Json::object();
  j.set("events", events.size());
  j.set("threads", stacks.size());
  j.set("wall_us", any ? max_ts - min_ts : 0);
  j.set("top_level_ms", top_level_ms);
  util::Json span_json = util::Json::object();
  for (const auto& [name, agg] : spans) {
    util::Json s = util::Json::object();
    s.set("count", agg.count);
    s.set("total_ms", agg.total_ms);
    span_json.set(name, std::move(s));
  }
  j.set("spans", std::move(span_json));
  return j;
}

TraceSession::TraceSession(std::string dir, std::string name)
    : dir_(std::move(dir)), name_(std::move(name)) {
  if (dir_.empty()) return;
  ::mkdir(dir_.c_str(), 0777);  // best effort; EEXIST is the common case
  trace_reset();
  metrics().reset();
  trace_enable();
}

TraceSession TraceSession::from_env(std::string name) {
  const char* dir = std::getenv("SYSNOISE_TRACE");
  if (dir == nullptr || dir[0] == '\0') return TraceSession();
  return TraceSession(dir, std::move(name));
}

TraceSession::TraceSession(TraceSession&& other) noexcept
    : dir_(std::move(other.dir_)),
      name_(std::move(other.name_)),
      extras_(std::move(other.extras_)),
      finished_(other.finished_) {
  other.dir_.clear();
  other.finished_ = true;
}

TraceSession& TraceSession::operator=(TraceSession&& other) noexcept {
  if (this == &other) return *this;
  if (active()) finish();
  dir_ = std::move(other.dir_);
  name_ = std::move(other.name_);
  extras_ = std::move(other.extras_);
  finished_ = other.finished_;
  other.dir_.clear();
  other.finished_ = true;
  return *this;
}

TraceSession::~TraceSession() {
  if (active()) finish();
}

void TraceSession::add_summary(const std::string& key, util::Json value) {
  if (active()) extras_.set(key, std::move(value));
}

std::string TraceSession::trace_path() const {
  return dir_ + "/" + name_ + "_" + std::to_string(::getpid()) +
         "_trace.json";
}

util::Json TraceSession::finish() {
  if (!active()) return util::Json::object();
  finished_ = true;
  trace_disable();
  const util::Json trace = trace_drain();
  const util::Json snap = metrics().snapshot();
  util::Json summary = summarize_events(trace);
  summary.set("metrics", snap);
  for (const auto& [key, value] : extras_.items()) summary.set(key, value);
  const std::string base =
      dir_ + "/" + name_ + "_" + std::to_string(::getpid());
  write_file_atomic(base + "_trace.json", trace.dump(1) + "\n");
  write_file_atomic(base + "_metrics.json", snap.dump(1) + "\n");
  write_file_atomic(base + "_summary.json", summary.dump(1) + "\n");
  return summary;
}

}  // namespace sysnoise::obs
