#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace sysnoise::obs {

namespace {

// Quarter-octave geometric grid from 1 microsecond to ~2 minutes: bound[i] =
// 0.001 * 2^(i/4) ms. 108 bounds puts the last finite one at
// 0.001 * 2^26.75 ≈ 1.1e5 ms; anything slower lands in the overflow bucket.
constexpr int kNumBounds = 108;

std::vector<double> make_bounds() {
  std::vector<double> bounds;
  bounds.reserve(kNumBounds);
  for (int i = 0; i < kNumBounds; ++i)
    bounds.push_back(0.001 * std::pow(2.0, static_cast<double>(i) / 4.0));
  return bounds;
}

}  // namespace

const std::vector<double>& LatencyHistogram::bucket_bounds() {
  static const std::vector<double> bounds = make_bounds();
  return bounds;
}

LatencyHistogram::LatencyHistogram()
    : counts_(bucket_bounds().size() + 1, 0) {}

void LatencyHistogram::record(double ms) {
  const auto& bounds = bucket_bounds();
  // First bucket whose upper bound is >= ms; values above every finite
  // bound land in the overflow bucket at index bounds.size().
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
  counts_[static_cast<std::size_t>(it - bounds.begin())] += 1;
  total_ += 1;
  sum_ms_ += ms;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ms_ += other.sum_ms_;
}

double LatencyHistogram::quantile_bound(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based: ceil(q * total), at least 1.
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(total_))));
  const auto& bounds = bucket_bounds();
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

util::Json LatencyHistogram::to_json() const {
  util::Json j = util::Json::object();
  j.set("total", total_);
  j.set("sum_ms", sum_ms_);
  j.set("mean_ms", mean_ms());
  j.set("p50_ms", quantile_bound(0.50));
  j.set("p95_ms", quantile_bound(0.95));
  j.set("p99_ms", quantile_bound(0.99));
  const auto& bounds = bucket_bounds();
  util::Json buckets = util::Json::array();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    util::Json b = util::Json::object();
    b.set("le_ms", i < bounds.size() ? bounds[i] : -1.0);  // -1 = overflow
    b.set("count", counts_[i]);
    buckets.push_back(std::move(b));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

LatencyHistogram LatencyHistogram::from_json(const util::Json& j) {
  LatencyHistogram h;
  const auto& bounds = bucket_bounds();
  const util::Json& buckets = j.at("buckets");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const util::Json& b = buckets.at(i);
    const double le = b.at("le_ms").as_number();
    const auto count = static_cast<std::size_t>(b.at("count").as_number());
    std::size_t idx;
    if (le < 0) {
      idx = bounds.size();  // overflow bucket
    } else {
      // The grid is fixed, so the serialized bound is bit-identical to a
      // grid entry after a JSON round trip; lower_bound re-finds its slot.
      const auto it = std::lower_bound(bounds.begin(), bounds.end(), le);
      idx = static_cast<std::size_t>(it - bounds.begin());
    }
    h.counts_[idx] += count;
    h.total_ += count;
  }
  h.sum_ms_ = j.at("sum_ms").as_number();
  return h;
}

void GaugeStats::add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += v;
}

void GaugeStats::merge(const GaugeStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

util::Json GaugeStats::to_json() const {
  util::Json j = util::Json::object();
  j.set("count", count);
  j.set("sum", sum);
  j.set("min", min);
  j.set("mean", mean());
  j.set("max", max);
  return j;
}

GaugeStats GaugeStats::from_json(const util::Json& j) {
  GaugeStats g;
  g.count = static_cast<std::size_t>(j.at("count").as_number());
  // Older dumps (pre-obs serve/metrics) lacked "sum"; reconstruct from the
  // mean so merges stay exact for them too.
  g.sum = j.get("sum") != nullptr ? j.at("sum").as_number()
                       : j.at("mean").as_number() * static_cast<double>(g.count);
  g.min = j.at("min").as_number();
  g.max = j.at("max").as_number();
  return g;
}

void MetricsRegistry::counter_add(const std::string& name,
                                  std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::gauge_add(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name].add(value);
}

void MetricsRegistry::observe_ms(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].record(ms);
}

util::Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::Json j = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  j.set("counters", std::move(counters));
  util::Json gauges = util::Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g.to_json());
  j.set("gauges", std::move(gauges));
  util::Json histograms = util::Json::object();
  for (const auto& [name, h] : histograms_) histograms.set(name, h.to_json());
  j.set("histograms", std::move(histograms));
  return j;
}

void MetricsRegistry::merge_snapshot(const util::Json& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snap.get("counters") != nullptr) {
    for (const auto& [name, value] : snap.at("counters").items())
      counters_[name] += static_cast<std::uint64_t>(value.as_number());
  }
  if (snap.get("gauges") != nullptr) {
    for (const auto& [name, g] : snap.at("gauges").items())
      gauges_[name].merge(GaugeStats::from_json(g));
  }
  if (snap.get("histograms") != nullptr) {
    for (const auto& [name, h] : snap.at("histograms").items())
      histograms_[name].merge(LatencyHistogram::from_json(h));
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

util::Json merge_snapshots(const util::Json& a, const util::Json& b) {
  MetricsRegistry r;
  r.merge_snapshot(a);
  r.merge_snapshot(b);
  return r.snapshot();
}

}  // namespace sysnoise::obs
