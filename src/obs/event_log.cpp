#include "obs/event_log.h"

namespace sysnoise::obs {

void EventLog::emit(const std::string& type, util::Json fields) {
  if (sink_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  seq_ += 1;
  util::Json line = util::Json::object();
  line.set("seq", seq_);
  line.set("ev", type);
  for (const auto& [key, value] : fields.items()) line.set(key, value);
  const std::string text = line.dump() + "\n";
  std::fwrite(text.data(), 1, text.size(), sink_);
  std::fflush(sink_);
}

std::uint64_t EventLog::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace sysnoise::obs
