// Process-wide measurement primitives and the metrics registry.
//
// The histogram/gauge types originated in serve/metrics.h (which now
// re-exports them) and keep their contracts: the histogram's bucket bounds
// are a fixed, process-wide geometric grid (quarter-octave steps from 1
// microsecond up, plus an overflow bucket), so histograms recorded by
// different workers, replay cells or processes merge by adding counts — no
// rebinning, no information loss relative to either input. Quantiles are
// reported as exact bucket upper bounds (the bound of the bucket holding
// the ceil(q * total)-th smallest sample), which makes p50/p95/p99
// deterministic, merge-stable, and bit-exact across runs: the same
// recorded multiset always yields the same quantile, and
// merge(a, b).quantile == concat(a, b).quantile by construction.
//
// On top of them, MetricsRegistry is the process-wide named-instrument
// store every layer records into (counters, gauges, latency histograms).
// Snapshots serialize to JSON and merge across processes — a dist worker
// ships its snapshot with each result frame, and the coordinator folds it
// into a fleet-wide view — so the per-sweep flight-recorder summary covers
// every process that touched the sweep.
//
// Naming convention: "<layer>.<thing>[.<detail>]" with layers
// staged / gemm / dist / svc / serve (e.g. "staged.forward_disk_hits",
// "dist.lease.granted", "svc.journal.fsync_ms"). Counters are monotonic
// event counts, gauges are sampled series (min/mean/max), histograms are
// latency distributions in milliseconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace sysnoise::obs {

class LatencyHistogram {
 public:
  LatencyHistogram();

  // The shared bucket grid: bucket i covers (bounds[i-1], bounds[i]] with
  // bounds[0] the smallest, plus one overflow bucket above the last bound.
  static const std::vector<double>& bucket_bounds();

  void record(double ms);
  // Adds `other`'s counts bucket-for-bucket (same fixed grid by
  // construction).
  void merge(const LatencyHistogram& other);

  std::size_t total() const { return total_; }
  double sum_ms() const { return sum_ms_; }
  double mean_ms() const { return total_ == 0 ? 0.0 : sum_ms_ / total_; }

  // Exact quantile bucket bound: the upper bound of the bucket containing
  // the ceil(q * total)-th smallest recorded value (q clamped to (0, 1]).
  // Returns 0 on an empty histogram. The overflow bucket reports the last
  // finite bound.
  double quantile_bound(double q) const;

  const std::vector<std::size_t>& counts() const { return counts_; }

  // {"total": n, "sum_ms": s, "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
  //  "buckets": [{"le_ms": bound, "count": c}, ...]} — only non-empty
  // buckets are listed, so the dump stays compact and merge-order-free.
  util::Json to_json() const;
  // Rebuilds a histogram from its to_json() form (bucket counts matched to
  // the fixed grid by le_ms; -1 = overflow). The round-trip is exact, so a
  // snapshot shipped across processes merges as if recorded locally.
  static LatencyHistogram from_json(const util::Json& j);

 private:
  std::vector<std::size_t> counts_;  // bucket_bounds().size() + 1 (overflow)
  std::size_t total_ = 0;
  double sum_ms_ = 0.0;
};

// Min/mean/max over a sampled series (queue depths at admission, batch
// occupancy per dispatch). Mergeable like the histogram.
struct GaugeStats {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double v);
  void merge(const GaugeStats& other);
  double mean() const { return count == 0 ? 0.0 : sum / count; }

  util::Json to_json() const;
  static GaugeStats from_json(const util::Json& j);
};

// The process-wide named-instrument store. Thread-safe; instruments are
// created on first use. Every operation is one short mutex acquisition —
// instrumentation sites record per work unit / lease / request, not per
// element, so contention is negligible; truly hot sites gate on
// obs::trace_enabled() first and pay nothing when observability is off.
class MetricsRegistry {
 public:
  // Monotonic event count. The returned reference is stable for the life
  // of the registry.
  void counter_add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter_value(const std::string& name) const;

  // Sampled series (min/mean/max).
  void gauge_add(const std::string& name, double value);
  // Latency sample in milliseconds.
  void observe_ms(const std::string& name, double ms);

  // {"counters": {name: n}, "gauges": {name: {...}},
  //  "histograms": {name: {...}}} — maps are name-sorted, so equal
  // contents dump byte-identically regardless of creation order.
  util::Json snapshot() const;

  // Folds a snapshot() from another registry/process into this one
  // (counters add, gauges/histograms merge). Unknown names are created.
  void merge_snapshot(const util::Json& snap);

  // Drops every instrument (tests and per-sweep isolation).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, GaugeStats> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

// The process-global registry all instrumentation records into.
MetricsRegistry& metrics();

// Pure-JSON snapshot merge (same semantics as MetricsRegistry::merge applied
// to two snapshots) for mergers that never materialize a registry — e.g.
// the trace-merge tool folding per-process metrics files.
util::Json merge_snapshots(const util::Json& a, const util::Json& b);

}  // namespace sysnoise::obs
