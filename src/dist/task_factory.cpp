#include "dist/task_factory.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "audio/eval_task.h"
#include "core/axis.h"
#include "models/eval_tasks.h"
#include "models/zoo.h"
#include "nlp/eval_task.h"

namespace sysnoise::dist {

namespace {

// Owns the trained model a task adapter borrows; heap-allocated (and never
// moved) so the adapter's reference stays valid for the worker's lifetime.
template <typename Trained, typename Task>
struct Holder {
  Trained trained;
  Task task;
  explicit Holder(Trained t) : trained(std::move(t)), task(trained) {}
};

template <typename Trained, typename Task>
ResolvedWorkerTask resolved(Trained trained, double trained_metric,
                            bool seed_baseline) {
  auto holder =
      std::make_shared<Holder<Trained, Task>>(std::move(trained));
  ResolvedWorkerTask out;
  out.task = &holder->task;
  if (seed_baseline)
    out.seeds.emplace(core::SweepCache::key_for(
                          holder->task, SysNoiseConfig::training_default()),
                      trained_metric);
  out.owner = std::move(holder);
  return out;
}

// NlpChoiceTask takes (trained, subtask), so the generic Holder's one-arg
// construction doesn't fit.
struct NlpHolder {
  nlp::TrainedLm trained;
  nlp::NlpChoiceTask task;
  NlpHolder(nlp::TrainedLm t, nlp::TaskKind k)
      : trained(std::move(t)), task(trained, k) {}
};

}  // namespace

TaskSpec classifier_spec(const std::string& model, const std::string& tag) {
  TaskSpec spec;
  spec.kind = core::task_kind_name(core::TaskKind::kClassification);
  spec.model = model;
  spec.tag = tag;
  return spec;
}

TaskSpec detector_spec(const std::string& model) {
  TaskSpec spec;
  spec.kind = core::task_kind_name(core::TaskKind::kDetection);
  spec.model = model;
  return spec;
}

TaskSpec segmenter_spec(const std::string& model) {
  TaskSpec spec;
  spec.kind = core::task_kind_name(core::TaskKind::kSegmentation);
  spec.model = model;
  return spec;
}

TaskSpec nlp_spec(const std::string& model, const std::string& subtask) {
  TaskSpec spec;
  spec.kind = core::task_kind_name(core::TaskKind::kNlp);
  spec.model = model;
  spec.tag = subtask;
  spec.seed_baseline = false;
  return spec;
}

TaskSpec tts_spec(const std::string& model) {
  TaskSpec spec;
  spec.kind = core::task_kind_name(core::TaskKind::kTts);
  spec.model = model;
  spec.seed_baseline = false;
  return spec;
}

ResolvedWorkerTask resolve_zoo_task(const util::Json& spec_json) {
  const TaskSpec spec = TaskSpec::from_json(spec_json);
  if (spec.kind == core::task_kind_name(core::TaskKind::kClassification)) {
    auto tc = models::get_classifier(spec.model, spec.tag);
    const double metric = tc.trained_acc;
    return resolved<models::TrainedClassifier, models::ClassifierTask>(
        std::move(tc), metric, spec.seed_baseline);
  }
  if (spec.kind == core::task_kind_name(core::TaskKind::kDetection)) {
    auto td = models::get_detector(spec.model);
    const double metric = td.trained_map;
    return resolved<models::TrainedDetector, models::DetectorTask>(
        std::move(td), metric, spec.seed_baseline);
  }
  if (spec.kind == core::task_kind_name(core::TaskKind::kSegmentation)) {
    auto ts = models::get_segmenter(spec.model);
    const double metric = ts.trained_miou;
    return resolved<models::TrainedSegmenter, models::SegmenterTask>(
        std::move(ts), metric, spec.seed_baseline);
  }
  if (spec.kind == core::task_kind_name(core::TaskKind::kNlp)) {
    auto holder = std::make_shared<NlpHolder>(nlp::get_lm(spec.model),
                                              nlp::task_from_name(spec.tag));
    ResolvedWorkerTask out;
    out.task = &holder->task;
    out.owner = std::move(holder);
    return out;
  }
  if (spec.kind == core::task_kind_name(core::TaskKind::kTts)) {
    auto tt = audio::get_tts(spec.model);
    return resolved<audio::TrainedTts, audio::TtsTask>(
        std::move(tt), /*trained_metric=*/0.0, spec.seed_baseline);
  }
  throw std::invalid_argument("resolve_zoo_task: unknown task kind \"" +
                              spec.kind + "\"");
}

TaskResolver zoo_task_resolver() {
  return [](const util::Json& spec) { return resolve_zoo_task(spec); };
}

}  // namespace sysnoise::dist
