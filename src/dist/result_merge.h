// The merge/verify core shared by the one-shot Coordinator and the
// resident sweep service (svc/service.h): validating a worker's result
// frame and folding its metric map into the merged per-job results with
// bit-exact disagreement detection. Executors are required to be
// bit-identical, so two workers reporting different values for one metric
// key means non-determinism somewhere — that must fail the sweep loudly,
// never average out. Factored out of the coordinator so the service cannot
// drift from the contract the tests pin.
#pragma once

#include <cstddef>
#include <string>

#include "core/plan.h"
#include "util/json.h"

namespace sysnoise::dist {

// The (job, unit, metrics) triple of a validated result frame. `metrics`
// points into the frame and is only valid while it lives.
struct ParsedResult {
  int job = -1;
  std::size_t unit = 0;
  const util::Json* metrics = nullptr;
};

// Shape-check a result frame ({job, unit, metrics-object} present, job and
// unit non-negative). Returns "" and fills *out on success, else a
// diagnostic. Range checks (does the job/unit exist?) stay with the caller,
// which owns that bookkeeping.
std::string parse_result_frame(const util::Json& m, ParsedResult* out);

// Fold a metrics object into `merged`, verifying every value is numeric and
// that re-reported keys (a unit completed by both the original and a
// replacement worker) agree bit-exactly. Returns "" on success, else the
// diagnostic; on failure `merged` may hold a prefix of the frame's keys —
// callers treat any failure as poisoning the job, so the partial state is
// never served.
std::string merge_metrics(core::MetricMap& merged, const util::Json& jmetrics);

}  // namespace sysnoise::dist
