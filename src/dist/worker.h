// The worker half of the distributed sweep runtime: connect to a
// coordinator (or a resident sweep service), reconstruct the jobs'
// EvalTasks from the task specs in the welcome frame — or fetch them on
// demand with job_request when a lease names a job submitted after this
// worker joined — then pull leases until the server says done. Each
// lease (a stage-key work unit: plan config indices) is evaluated through
// the existing StagedExecutor — optionally backed by the shared disk
// StageCache, so workers on one machine (or one shared filesystem) reuse
// each other's pre-processed batches and forward products — while a
// background heartbeat keeps the lease alive.
//
// Task resolution is pluggable so the runtime stays model-agnostic: the
// worker binary and bench `--connect` mode resolve zoo models
// (dist/task_factory.h), tests resolve in-process synthetic tasks.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "core/disk_stage_cache.h"
#include "core/plan.h"
#include "core/staged_eval.h"
#include "util/json.h"

namespace sysnoise::dist {

// A resolved task spec: the live task plus the SweepCache entries to
// preload (the zoo's trained-baseline metric, mirroring the seeding of the
// single-process benches, so reports stay bit-identical without the worker
// re-evaluating the baseline). `owner` keeps whatever the task borrows
// (trained models, datasets) alive for the worker's lifetime.
struct ResolvedWorkerTask {
  const core::EvalTask* task = nullptr;
  core::MetricMap seeds;
  std::shared_ptr<void> owner;
};

// Resolve an opaque task-spec JSON to a live task. Throwing (or a null
// task) makes the worker report an error to the coordinator and stop.
using TaskResolver = std::function<ResolvedWorkerTask(const util::Json& spec)>;

struct WorkerOptions {
  int threads = 0;  // SweepOptions::threads for lease evaluation
  core::StageStats* stats = nullptr;    // optional stage-cache accounting
  core::DiskStageCache* disk = nullptr; // optional shared product store
  // Shared-secret sent in the hello frame (sweep services on untrusted
  // networks require it; coordinators/services without one ignore it).
  std::string auth_token;
  // The coordinator answers every request promptly (wait/lease/ok are
  // immediate; only the worker itself computes for long), so a reply this
  // late means the coordinator host died without closing the connection —
  // give up instead of blocking forever.
  int recv_timeout_ms = 120000;
  // Fault-injection hook for tests: complete this many leases, then accept
  // one more lease and vanish without returning its result (the connection
  // drops, simulating a worker killed mid-lease). -1 = never.
  int abandon_after_leases = -1;
  bool verbose = false;
};

struct WorkerRunStats {
  std::size_t leases_completed = 0;
  std::size_t configs_evaluated = 0;  // sum of lease slice sizes
  std::size_t heartbeats_sent = 0;
  bool done = false;         // coordinator said done (clean finish)
  bool abandoned = false;    // fault-injection hook fired
  bool disconnected = false; // connection lost mid-run (coordinator gone)
  std::string error;         // non-empty when the worker gave up on an error
};

// Run one worker session against host:port. Returns when the coordinator
// reports done, the connection is lost (stats.disconnected), or anything
// else fails (stats.error — including a rejected handshake, which retrying
// cannot fix). Throws only on TCP connection failure, the one error worth
// retrying while a coordinator is still starting up.
WorkerRunStats run_worker(const std::string& host, int port,
                          const TaskResolver& resolver,
                          const WorkerOptions& opts = {});

// run_worker with connection retries: TCP connect failures (the coordinator
// may still be training/loading the models it is about to serve) retry with
// capped exponential backoff (250ms doubling to 5s) until `connect_timeout`
// elapses, then report the connect error — including the attempt count —
// through stats.error instead of throwing. Everything else behaves like
// run_worker. The one retry loop behind the worker binary and every bench
// --connect mode.
WorkerRunStats run_worker_retrying(const std::string& host, int port,
                                   const TaskResolver& resolver,
                                   const WorkerOptions& opts,
                                   std::chrono::seconds connect_timeout);

}  // namespace sysnoise::dist
