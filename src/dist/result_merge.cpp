#include "dist/result_merge.h"

namespace sysnoise::dist {

std::string parse_result_frame(const util::Json& m, ParsedResult* out) {
  const util::Json* jjob = m.get("job");
  const util::Json* junit = m.get("unit");
  const util::Json* jmetrics = m.get("metrics");
  if (jjob == nullptr || !jjob->is_number() || junit == nullptr ||
      !junit->is_number() || jmetrics == nullptr || !jmetrics->is_object())
    return "malformed result frame";
  const int job = jjob->as_int();
  const int unit = junit->as_int();
  if (job < 0 || unit < 0) return "result for negative job/unit";
  out->job = job;
  out->unit = static_cast<std::size_t>(unit);
  out->metrics = jmetrics;
  return "";
}

std::string merge_metrics(core::MetricMap& merged, const util::Json& jmetrics) {
  for (const auto& [key, value] : jmetrics.items()) {
    if (!value.is_number()) return "non-numeric metric \"" + key + "\"";
    const auto [it, inserted] = merged.emplace(key, value.as_number());
    if (!inserted && it->second != value.as_number())
      return "workers disagree on \"" + key + "\"";
  }
  return "";
}

}  // namespace sysnoise::dist
