// DistExecutor: the distributed runtime behind the standard Executor seam.
// execute() hands the plan (with an opaque task spec for the workers) to a
// Coordinator and blocks until connected workers have evaluated every work
// unit — so swapping ThreadPoolExecutor/StagedExecutor for DistExecutor
// changes where the evaluations run, never the results (bit-identity is the
// executor contract, and the coordinator enforces it on merge).
//
// Note the inversion the distributed runtime forces: the `task` argument is
// never evaluated locally — workers rebuild their own instance from the
// task spec. The local SweepOptions only contribute their cross-call cache,
// which is populated with the remote results so later local sweeps memoize.
#pragma once

#include "core/executor.h"
#include "dist/coordinator.h"

namespace sysnoise::dist {

class DistExecutor : public core::Executor {
 public:
  // `coordinator` must outlive the executor. `task_spec` is what workers
  // resolve (dist/task_factory.h for zoo models).
  DistExecutor(Coordinator& coordinator, util::Json task_spec)
      : coordinator_(coordinator), task_spec_(std::move(task_spec)) {}

  const char* name() const override { return "dist"; }
  core::MetricMap execute(const core::EvalTask& task,
                          const core::SweepPlan& plan,
                          const core::SweepOptions& opts = {}) const override;

 private:
  Coordinator& coordinator_;
  util::Json task_spec_;
};

}  // namespace sysnoise::dist
