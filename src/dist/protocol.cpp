#include "dist/protocol.h"

namespace sysnoise::dist {

util::Json make_message(const char* type) {
  util::Json j = util::Json::object();
  j.set("type", type);
  return j;
}

std::string message_type(const util::Json& j) {
  if (!j.is_object()) return "";
  const util::Json* t = j.get("type");
  return t != nullptr && t->is_string() ? t->as_string() : "";
}

std::string check_hello(const util::Json& m, const std::string& auth_token) {
  if (message_type(m) != msg::kHello || m.get("protocol") == nullptr ||
      !m.at("protocol").is_number() ||
      m.at("protocol").as_int() != kProtocolVersion)
    return "bad hello (protocol mismatch?)";
  if (!auth_token.empty()) {
    const util::Json* token = m.get("token");
    if (token == nullptr || !token->is_string() ||
        token->as_string() != auth_token)
      return "auth rejected: bad or missing token";
  }
  return "";
}

util::Json TaskSpec::to_json() const {
  util::Json j = util::Json::object();
  j.set("kind", kind);
  j.set("model", model);
  if (!tag.empty()) j.set("tag", tag);
  j.set("seed_baseline", seed_baseline);
  return j;
}

TaskSpec TaskSpec::from_json(const util::Json& j) {
  TaskSpec spec;
  spec.kind = j.at("kind").as_string();
  spec.model = j.at("model").as_string();
  if (const util::Json* t = j.get("tag")) spec.tag = t->as_string();
  if (const util::Json* s = j.get("seed_baseline"))
    spec.seed_baseline = s->as_bool();
  return spec;
}

}  // namespace sysnoise::dist
