#include "dist/dist_executor.h"

#include <utility>

namespace sysnoise::dist {

core::MetricMap DistExecutor::execute(const core::EvalTask& task,
                                      const core::SweepPlan& plan,
                                      const core::SweepOptions& opts) const {
  (void)task;  // evaluated by workers, from the spec
  std::vector<core::MetricMap> results =
      coordinator_.run({DistJob{task_spec_, plan}});
  core::MetricMap metrics = std::move(results.front());
  if (opts.memoize && opts.cache != nullptr)
    for (const auto& [key, value] : metrics) opts.cache->store(key, value);
  return metrics;
}

}  // namespace sysnoise::dist
