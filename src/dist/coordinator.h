// The coordinator half of the distributed sweep runtime: owns a sequence of
// (task-spec, SweepPlan) jobs, leases stage-key-grouped work units to TCP
// workers (dist/worker.h, tools/sysnoise_worker.cpp) over the
// dist/protocol.h message vocabulary, and incrementally merges the streamed
// partial MetricMaps into per-job results that are bit-identical to a
// single-process sweep — the dynamic, fault-tolerant successor to the
// static `--shard i/N` + `--merge` workflow.
//
// Scheduling is pull-based work stealing: workers ask for a lease whenever
// they are idle, so fast workers naturally evaluate more units. Fault
// tolerance is lease-based: every lease expires unless the owning worker
// heartbeats, a dropped connection returns its leases immediately, and an
// expired/returned unit is simply re-leased to the next hungry worker. The
// merge verifies that overlapping results (a unit completed by both the
// original and the replacement worker) agree bit-exactly.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "core/plan.h"
#include "dist/scheduler.h"
#include "util/json.h"

namespace sysnoise::dist {

// One schedulable sweep: an opaque task spec the workers resolve (the
// coordinator never interprets it — tests resolve synthetic tasks, the
// worker binary resolves zoo models via dist/task_factory.h) plus the plan
// to evaluate.
struct DistJob {
  util::Json task_spec;
  core::SweepPlan plan;
};

struct CoordinatorOptions {
  int port = 0;          // 0 = ephemeral; port() reports the actual one
  int min_workers = 1;   // hold leases until this many workers ever joined
  // Fail the run loudly when min_workers have not joined within this many
  // seconds of run() starting, instead of holding leases forever for
  // workers that will never come (a typo'd port, a dead launcher). 0 waits
  // forever; once the quorum is ever met the timeout is disarmed.
  int min_workers_timeout_s = 0;
  // Shared-secret worker auth: when non-empty, a hello without a matching
  // "token" field is rejected loudly (error frame + disconnect).
  std::string auth_token;
  // A lease not refreshed within this window is considered abandoned and
  // goes back on offer. Workers heartbeat every heartbeat_interval, so the
  // timeout should be a few intervals.
  std::chrono::milliseconds lease_timeout{10000};
  std::chrono::milliseconds heartbeat_interval{1000};
  bool verbose = false;  // one line per connection/lease/result on stdout
};

struct CoordinatorStats {
  SchedulerStats scheduler;
  std::size_t workers_joined = 0;
  std::size_t results_received = 0;
  std::size_t worker_errors = 0;  // error messages + protocol violations
};

class Coordinator {
 public:
  // Binds the listener immediately so port() is valid (and workers can
  // start connecting) before run() is entered.
  explicit Coordinator(CoordinatorOptions opts = {});
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  int port() const;

  // Serve the jobs until every work unit of every plan is complete, then
  // return one full MetricMap per job (job order). Throws std::runtime_error
  // if workers disagreed bit-exactly on a metric or a result was malformed.
  // Callable repeatedly; each call is an independent sweep (workers from a
  // finished run were told "done" and have disconnected).
  std::vector<core::MetricMap> run(const std::vector<DistJob>& jobs);

  // Accounting of the most recent run().
  CoordinatorStats stats() const;

  // Merged cumulative obs::metrics snapshots the most recent run()'s
  // workers shipped with their result frames (only populated while tracing;
  // {} otherwise). Deliberately NOT folded into this process's registry:
  // per-process metrics files stay process-local and sum without double
  // counting, and callers wanting one fleet view attach
  // obs::merge_snapshots(obs::metrics().snapshot(), worker_metrics()) to
  // their trace summary.
  util::Json worker_metrics() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace sysnoise::dist
