// Wire protocol of the distributed sweep runtime: message vocabulary and
// the task-spec workers reconstruct their EvalTask from.
//
// Transport: length-prefixed compact JSON frames (net/frame.h) over one TCP
// connection per worker, strict request/response lockstep driven by the
// worker:
//
//   worker -> coordinator          coordinator -> worker
//   ---------------------          ---------------------
//   hello {protocol, worker}       welcome {protocol, heartbeat_ms,
//                                           jobs: [{task, plan}, ...]}
//   lease_request {}               lease {job, unit, configs: [i...]}
//                                  | wait {ms}       (nothing leasable yet)
//                                  | done {}         (sweep complete)
//   heartbeat {}                   ok {}             (refreshes leases)
//   result {job, unit,             ok {}
//           metrics: {key: v}}
//   error {message}                (connection closed)
//
// The worker always speaks next; while evaluating a lease it keeps the
// conversation alive with heartbeats, so a worker silent for longer than a
// few heartbeat intervals is dead by definition — that silence (or a raw
// disconnect) is what expires its leases back to the scheduler.
#pragma once

#include <string>

#include "util/json.h"

namespace sysnoise::dist {

// Bump on incompatible message changes; hello/welcome verify it.
constexpr int kProtocolVersion = 1;

// Message type strings.
namespace msg {
inline constexpr const char* kHello = "hello";
inline constexpr const char* kWelcome = "welcome";
inline constexpr const char* kLeaseRequest = "lease_request";
inline constexpr const char* kLease = "lease";
inline constexpr const char* kWait = "wait";
inline constexpr const char* kDone = "done";
inline constexpr const char* kHeartbeat = "heartbeat";
inline constexpr const char* kResult = "result";
inline constexpr const char* kOk = "ok";
inline constexpr const char* kError = "error";
}  // namespace msg

// Build a message envelope {"type": type}.
util::Json make_message(const char* type);
// The "type" of a parsed message ("" when absent/malformed).
std::string message_type(const util::Json& j);

// What a worker needs to rebuild the coordinator's EvalTask: the task
// family plus the zoo model name (training is deterministic and disk-
// cached, so "same name" means "same weights" on every machine sharing a
// SYSNOISE_CACHE_DIR convention — and bit-identical weights even without
// sharing one). `kind` matches task_kind_name(); `tag` is the classifier
// retrained-variant tag. seed_baseline carries the zoo's clean-pipeline
// metric so the worker's SweepCache starts out exactly like a seeded
// single-process sweep and never re-evaluates the baseline.
struct TaskSpec {
  std::string kind;  // "classification" | "detection" | "segmentation"
  std::string model;
  std::string tag;
  bool seed_baseline = true;

  util::Json to_json() const;
  static TaskSpec from_json(const util::Json& j);
};

}  // namespace sysnoise::dist
