// Wire protocol of the distributed sweep runtime: message vocabulary and
// the task-spec workers reconstruct their EvalTask from.
//
// Transport: length-prefixed compact JSON frames (net/frame.h) over one TCP
// connection per worker, strict request/response lockstep driven by the
// worker:
//
//   worker -> coordinator          coordinator -> worker
//   ---------------------          ---------------------
//   hello {protocol, worker}       welcome {protocol, heartbeat_ms,
//                                           jobs: [{task, plan}, ...]}
//   lease_request {}               lease {job, unit, configs: [i...]}
//                                  | wait {ms}       (nothing leasable yet)
//                                  | done {}         (sweep complete)
//   heartbeat {}                   ok {}             (refreshes leases)
//   result {job, unit,             ok {}
//           metrics: {key: v}}
//   error {message}                (connection closed)
//
// The worker always speaks next; while evaluating a lease it keeps the
// conversation alive with heartbeats, so a worker silent for longer than a
// few heartbeat intervals is dead by definition — that silence (or a raw
// disconnect) is what expires its leases back to the scheduler.
//
// The resident sweep service (svc/service.h) speaks a superset of this
// vocabulary on the same framing. Worker sessions gain dynamic job
// discovery (the service's welcome carries no jobs — a lease may name a job
// the worker has never seen, fetched on demand):
//
//   job_request {job}              job_info {job, task, plan}
//
// and control clients (svc/client.h, sysnoise_ctl) open a connection, send
// one request — authenticated by a "token" field when the service was
// started with a shared secret — and read the reply:
//
//   client -> service              service -> client
//   -----------------              -----------------
//   submit {task, plan,            submitted {job}
//           priority, name,
//           idem?}
//     (idem: optional idempotency key, journaled with the submission; a
//      retried submit with a known key returns the job it registered the
//      first time instead of creating a duplicate sweep)
//   cancel {job}                   ok {} | error {message}
//   status {}                      status_report {queue_depth, workers,
//                                                 jobs: [...]}
//   fetch {job}                    job_result {job, state, metrics?}
//   watch {job}                    progress {job, state, ...} stream, then
//                                  job_result {job, state, metrics?}
//
// Worker hello frames carry the same optional "token"; a service started
// with a secret rejects token-less or wrong-token peers loudly.
#pragma once

#include <string>

#include "util/json.h"

namespace sysnoise::dist {

// Bump on incompatible message changes; hello/welcome verify it. (The
// service/control additions are a compatible superset: version 1 peers
// never send them.)
constexpr int kProtocolVersion = 1;

// Message type strings.
namespace msg {
inline constexpr const char* kHello = "hello";
inline constexpr const char* kWelcome = "welcome";
inline constexpr const char* kLeaseRequest = "lease_request";
inline constexpr const char* kLease = "lease";
inline constexpr const char* kWait = "wait";
inline constexpr const char* kDone = "done";
inline constexpr const char* kHeartbeat = "heartbeat";
inline constexpr const char* kResult = "result";
inline constexpr const char* kOk = "ok";
inline constexpr const char* kError = "error";
// Dynamic job discovery (worker <-> service).
inline constexpr const char* kJobRequest = "job_request";
inline constexpr const char* kJobInfo = "job_info";
// Control plane (client <-> service).
inline constexpr const char* kSubmit = "submit";
inline constexpr const char* kSubmitted = "submitted";
inline constexpr const char* kCancel = "cancel";
inline constexpr const char* kStatus = "status";
inline constexpr const char* kStatusReport = "status_report";
inline constexpr const char* kFetch = "fetch";
inline constexpr const char* kWatch = "watch";
inline constexpr const char* kProgress = "progress";
inline constexpr const char* kJobResult = "job_result";
}  // namespace msg

// Build a message envelope {"type": type}.
util::Json make_message(const char* type);
// The "type" of a parsed message ("" when absent/malformed).
std::string message_type(const util::Json& j);

// Validate a hello frame: right type, matching protocol version, and — when
// `auth_token` is non-empty — a matching shared-secret "token" field.
// Returns "" when acceptable, else the diagnostic for the error reply. The
// one handshake check behind the coordinator and the sweep service, so auth
// cannot drift between them.
std::string check_hello(const util::Json& m, const std::string& auth_token);

// What a worker needs to rebuild the coordinator's EvalTask: the task
// family plus the zoo model name (training is deterministic and disk-
// cached, so "same name" means "same weights" on every machine sharing a
// SYSNOISE_CACHE_DIR convention — and bit-identical weights even without
// sharing one). `kind` matches task_kind_name(); `tag` is the classifier
// retrained-variant tag. seed_baseline carries the zoo's clean-pipeline
// metric so the worker's SweepCache starts out exactly like a seeded
// single-process sweep and never re-evaluates the baseline.
struct TaskSpec {
  std::string kind;  // "classification" | "detection" | "segmentation"
  std::string model;
  std::string tag;
  bool seed_baseline = true;

  util::Json to_json() const;
  static TaskSpec from_json(const util::Json& j);
};

}  // namespace sysnoise::dist
