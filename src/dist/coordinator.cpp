#include "dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include <sys/socket.h>

#include "dist/protocol.h"
#include "dist/result_merge.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysnoise::dist {

namespace {

util::Json metrics_to_json(const core::MetricMap& metrics) {
  util::Json j = util::Json::object();
  for (const auto& [key, value] : metrics) j.set(key, value);
  return j;
}

}  // namespace

struct Coordinator::Impl {
  CoordinatorOptions opts;
  net::TcpListener listener;

  // Per-run state (reset by run()).
  std::unique_ptr<LeaseScheduler> scheduler;
  const std::vector<DistJob>* jobs = nullptr;
  util::Json welcome;  // prebuilt welcome frame shared by every worker

  mutable std::mutex results_mu;
  std::vector<core::MetricMap> results;
  std::string first_error;  // first merge/protocol failure, "" when clean

  std::atomic<int> next_worker_id{0};
  std::atomic<std::size_t> workers_joined{0};
  std::atomic<std::size_t> results_received{0};
  std::atomic<std::size_t> worker_errors{0};

  // Live connection fds, so run() can nudge zombie connections (a silent
  // worker whose leases already expired) off their blocking recv instead of
  // waiting out the receive timeout at join time. Handlers unregister
  // BEFORE closing, so a registered fd is never a recycled one.
  std::mutex conns_mu;
  std::set<int> conns;
  std::atomic<int> active_handlers{0};

  // Latest cumulative obs::metrics snapshot per worker (shipped with result
  // frames while tracing), surfaced through worker_metrics() so the
  // caller's flight-recorder summary can cover the whole fleet without
  // contaminating this process's own registry.
  std::mutex obs_mu;
  std::map<int, util::Json> worker_obs;

  void log(const char* fmt, ...) const;
  void record_error(const std::string& message);
  bool has_error() const {
    std::lock_guard<std::mutex> lock(results_mu);
    return !first_error.empty();
  }
  bool merge_result(const util::Json& m, int worker_id);
  void serve(net::TcpSocket sock);
};

void Coordinator::Impl::log(const char* fmt, ...) const {
  if (!opts.verbose) return;
  va_list args;
  va_start(args, fmt);
  std::printf("[coordinator] ");
  std::vprintf(fmt, args);
  std::printf("\n");
  std::fflush(stdout);
  va_end(args);
}

void Coordinator::Impl::record_error(const std::string& message) {
  std::lock_guard<std::mutex> lock(results_mu);
  if (first_error.empty()) first_error = message;
}

// Merge one result frame through the shared merge/verify core
// (dist/result_merge.h). Returns false when the frame is malformed or
// disagrees with previously-merged metrics (both poison the run).
bool Coordinator::Impl::merge_result(const util::Json& m, int worker_id) {
  ParsedResult parsed;
  std::string error = parse_result_frame(m, &parsed);
  if (error.empty() && (parsed.job >= static_cast<int>(results.size()) ||
                        parsed.unit >= scheduler->units().size()))
    error = "result for unknown job/unit";
  if (!error.empty()) {
    record_error(error + " from worker " + std::to_string(worker_id));
    return false;
  }
  if (const util::Json* snap = m.get("obs")) {
    std::lock_guard<std::mutex> lock(obs_mu);
    worker_obs[worker_id] = *snap;  // cumulative: latest wins
  }
  {
    // NOTE: record_error locks results_mu too — collect the failure and
    // report it after this scope.
    std::lock_guard<std::mutex> lock(results_mu);
    const std::string merge_error = merge_metrics(
        results[static_cast<std::size_t>(parsed.job)], *parsed.metrics);
    if (!merge_error.empty()) {
      if (first_error.empty()) first_error = merge_error;
      return false;
    }
  }
  results_received.fetch_add(1);
  const bool first = scheduler->complete(parsed.unit);
  log("result job=%d unit=%zu from worker %d%s", parsed.job, parsed.unit,
      worker_id, first ? "" : " (duplicate)");
  return true;
}

void Coordinator::Impl::serve(net::TcpSocket sock) {
  using Clock = LeaseScheduler::Clock;
  // A live worker is never silent longer than a heartbeat interval; give a
  // connection twice the lease timeout of slack before declaring it dead
  // (which also bounds how long a zombie handler can linger past the
  // shutdown nudge).
  const int recv_timeout_ms = static_cast<int>(
      std::max<std::int64_t>(opts.lease_timeout.count() * 2, 1000));
  sock.set_recv_timeout_ms(recv_timeout_ms);

  active_handlers.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    conns.insert(sock.fd());
  }
  struct ConnGuard {
    Impl* im;
    int fd;
    ~ConnGuard() {
      {
        std::lock_guard<std::mutex> lock(im->conns_mu);
        im->conns.erase(fd);
      }
      im->active_handlers.fetch_sub(1);
    }
  } guard{this, sock.fd()};

  // Everything a peer sends is untrusted: recv_json throws on a frame that
  // is length-valid but not JSON, and field accessors throw on shape
  // violations. An escaped exception in a handler thread would terminate
  // the whole coordinator, so contain them here.
  int worker_id = -1;
  try {
    util::Json m;
    std::string hello_error = "bad hello (protocol mismatch?)";
    if (!net::recv_json(sock, &m) ||
        !(hello_error = check_hello(m, opts.auth_token)).empty()) {
      worker_errors.fetch_add(1);
      log("rejected connection: %s", hello_error.c_str());
      util::Json err = make_message(msg::kError);
      err.set("message", hello_error);
      net::send_json(sock, err);
      return;
    }
    worker_id = next_worker_id.fetch_add(1);
    workers_joined.fetch_add(1);
    log("worker %d joined", worker_id);
    if (obs::trace_enabled()) obs::metrics().counter_add("coord.workers_joined");
    if (!net::send_json(sock, welcome)) {
      scheduler->release_worker(worker_id);
      return;
    }

    const auto wait_ms =
        static_cast<int>(opts.heartbeat_interval.count());
    std::optional<Clock::time_point> last_heartbeat;
    while (true) {
      if (!net::recv_json(sock, &m)) break;  // death, timeout or clean close
      const std::string type = message_type(m);
      if (type == msg::kLeaseRequest) {
        util::Json reply;
        if (workers_joined.load() < static_cast<std::size_t>(opts.min_workers)) {
          reply = make_message(msg::kWait);
          reply.set("ms", wait_ms);
        } else if (const std::optional<std::size_t> unit =
                       scheduler->acquire(worker_id, Clock::now())) {
          const WorkUnit& wu = scheduler->units()[*unit];
          // Correlates with the worker's "worker.lease" span via the shared
          // "j<job>u<unit>" lease id derived from the same frame fields.
          obs::TraceSpan grant_span("coord.lease_grant");
          if (grant_span.active()) {
            grant_span.attr("lease", "j" + std::to_string(wu.job) + "u" +
                                         std::to_string(*unit));
            grant_span.attr("worker", worker_id);
            grant_span.attr("configs", wu.configs.size());
          }
          reply = make_message(msg::kLease);
          reply.set("job", wu.job);
          reply.set("unit", static_cast<int>(*unit));
          util::Json configs = util::Json::array();
          for (const std::size_t c : wu.configs)
            configs.push_back(static_cast<int>(c));
          reply.set("configs", std::move(configs));
          log("lease unit %zu (job %d, %zu configs) -> worker %d", *unit,
              wu.job, wu.configs.size(), worker_id);
        } else if (scheduler->all_done()) {
          // The conversation is over: answer done and hang up — waiting for
          // the worker's close would race run()'s shutdown nudge.
          net::send_json(sock, make_message(msg::kDone));
          break;
        } else {
          reply = make_message(msg::kWait);
          reply.set("ms", wait_ms);
        }
        if (!net::send_json(sock, reply)) break;
      } else if (type == msg::kHeartbeat) {
        const auto now = Clock::now();
        scheduler->heartbeat(worker_id, now);
        if (obs::trace_enabled()) {
          // Gap between consecutive heartbeats from this worker: the gauge
          // a post-mortem reads to see how close a worker ran to its lease
          // deadline before it expired.
          if (last_heartbeat.has_value())
            obs::metrics().gauge_add(
                "coord.heartbeat_gap_ms",
                std::chrono::duration<double, std::milli>(now -
                                                          *last_heartbeat)
                    .count());
          last_heartbeat = now;
        }
        if (!net::send_json(sock, make_message(msg::kOk))) break;
      } else if (type == msg::kResult) {
        obs::TraceSpan merge_span("coord.result_merge");
        if (merge_span.active()) {
          const util::Json* rj = m.get("job");
          const util::Json* ru = m.get("unit");
          if (rj != nullptr && rj->is_number() && ru != nullptr &&
              ru->is_number())
            merge_span.attr("lease", "j" + std::to_string(rj->as_int()) +
                                         "u" + std::to_string(ru->as_int()));
          merge_span.attr("worker", worker_id);
        }
        if (!merge_result(m, worker_id)) {
          worker_errors.fetch_add(1);
          break;
        }
        if (obs::trace_enabled())
          obs::metrics().counter_add("coord.results_merged");
        if (!net::send_json(sock, make_message(msg::kOk))) break;
      } else if (type == msg::kError) {
        const util::Json* message = m.get("message");
        log("worker %d error: %s", worker_id,
            message != nullptr ? message->as_string().c_str() : "?");
        worker_errors.fetch_add(1);
        break;
      } else {
        worker_errors.fetch_add(1);
        break;  // protocol violation
      }
    }
  } catch (const std::exception& e) {
    worker_errors.fetch_add(1);
    log("connection error: %s", e.what());
  }
  // Whatever this worker still held goes straight back on offer.
  if (worker_id >= 0) {
    scheduler->release_worker(worker_id);
    log("worker %d left", worker_id);
  }
}

Coordinator::Coordinator(CoordinatorOptions opts) : impl_(new Impl) {
  impl_->opts = opts;
  impl_->listener = net::TcpListener::listen(opts.port);
}

Coordinator::~Coordinator() { delete impl_; }

int Coordinator::port() const { return impl_->listener.port(); }

std::vector<core::MetricMap> Coordinator::run(const std::vector<DistJob>& jobs) {
  Impl& im = *impl_;
  // Per-run reset.
  im.jobs = &jobs;
  im.results.assign(jobs.size(), {});
  im.first_error.clear();
  im.workers_joined.store(0);
  im.results_received.store(0);
  im.worker_errors.store(0);
  {
    std::lock_guard<std::mutex> lock(im.obs_mu);
    im.worker_obs.clear();
  }

  std::vector<WorkUnit> units;
  // Lease forward-batch-compatible groups together: the whole set lands on
  // one worker, whose StagedExecutor pushes the groups' stacked batches
  // through a single forward call (bit-identical either way — merging only
  // changes invocation counts and lease granularity).
  core::WorkUnitOptions unit_opts;
  unit_opts.merge_batch_compatible = true;
  for (std::size_t j = 0; j < jobs.size(); ++j)
    for (std::vector<std::size_t>& group :
         core::plan_work_units(jobs[j].plan, unit_opts))
      units.push_back({static_cast<int>(j), std::move(group)});
  im.scheduler = std::make_unique<LeaseScheduler>(std::move(units),
                                                  im.opts.lease_timeout);

  im.welcome = make_message(msg::kWelcome);
  im.welcome.set("protocol", kProtocolVersion);
  im.welcome.set("heartbeat_ms",
                 static_cast<int>(im.opts.heartbeat_interval.count()));
  util::Json jjobs = util::Json::array();
  for (const DistJob& job : jobs) {
    util::Json jj = util::Json::object();
    jj.set("task", job.task_spec);
    jj.set("plan", job.plan.to_json());
    jjobs.push_back(std::move(jj));
  }
  im.welcome.set("jobs", std::move(jjobs));

  im.log("serving %zu jobs / %zu units on port %d",
         jobs.size(), im.scheduler->units().size(), port());

  std::vector<std::thread> handlers;
  // A recorded merge/protocol error poisons the run: its unit may never
  // complete (the offending worker was cut off), so stop serving and
  // surface the diagnostic instead of waiting for an all_done() that can't
  // come. Same for a min-workers quorum that never arrives within the
  // join timeout — fail loudly instead of holding leases forever.
  const auto join_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(im.opts.min_workers_timeout_s);
  bool quorum_met = false;
  while (!im.scheduler->all_done() && !im.has_error()) {
    if (!quorum_met) {
      if (im.workers_joined.load() >=
          static_cast<std::size_t>(im.opts.min_workers)) {
        quorum_met = true;
      } else if (im.opts.min_workers_timeout_s > 0 &&
                 std::chrono::steady_clock::now() >= join_deadline) {
        im.record_error(
            "only " + std::to_string(im.workers_joined.load()) + " of " +
            std::to_string(im.opts.min_workers) +
            " required workers joined within " +
            std::to_string(im.opts.min_workers_timeout_s) + "s");
        break;
      }
    }
    net::TcpSocket sock = im.listener.accept(100);
    if (!sock.valid()) continue;
    handlers.emplace_back(
        [&im](net::TcpSocket s) { im.serve(std::move(s)); }, std::move(sock));
  }
  // Workers still attached get "done" on their next request (at most one
  // heartbeat interval away) and their handlers hang up — give them that
  // window before nudging. What remains after the grace period is a zombie
  // (a worker that died silently after its leases were re-leased) whose
  // handler would only exit on recv timeout: shut those sockets down so
  // join is prompt.
  const auto grace_deadline =
      std::chrono::steady_clock::now() +
      std::max<std::chrono::milliseconds>(3 * im.opts.heartbeat_interval,
                                          std::chrono::milliseconds(500));
  while (im.active_handlers.load() > 0 &&
         std::chrono::steady_clock::now() < grace_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (const int fd : im.conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : handlers) t.join();
  im.jobs = nullptr;

  if (!im.first_error.empty())
    throw std::runtime_error("Coordinator: " + im.first_error);
  // all_done() guarantees unit coverage; double-check the metric maps cover
  // their plans so assembly cannot throw later.
  for (std::size_t j = 0; j < jobs.size(); ++j)
    for (const core::PlannedConfig& p : jobs[j].plan.configs)
      if (im.results[j].find(p.metric_key) == im.results[j].end())
        throw std::runtime_error(
            "Coordinator: completed run left no metric for \"" +
            p.metric_key + "\"");
  return std::move(im.results);
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats s;
  if (impl_->scheduler != nullptr) s.scheduler = impl_->scheduler->stats();
  s.workers_joined = impl_->workers_joined.load();
  s.results_received = impl_->results_received.load();
  s.worker_errors = impl_->worker_errors.load();
  return s;
}

util::Json Coordinator::worker_metrics() const {
  std::lock_guard<std::mutex> lock(impl_->obs_mu);
  util::Json merged = util::Json::object();
  bool first = true;
  for (const auto& [id, snap] : impl_->worker_obs) {
    merged = first ? snap : obs::merge_snapshots(merged, snap);
    first = false;
  }
  return merged;
}

}  // namespace sysnoise::dist
