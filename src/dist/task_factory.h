// Zoo-backed task resolution for distributed workers: turn a TaskSpec
// ({kind, model, tag}) into a live StagedEvalTask over the shared benchmark
// dataset, training or loading the model exactly like the bench binaries
// do. Training is deterministic, so a worker resolving "classification /
// ResNet-M" holds bit-identical weights to the coordinator that planned the
// sweep — which is what makes the distributed report byte-identical to the
// single-process one.
#pragma once

#include "dist/protocol.h"
#include "dist/worker.h"

namespace sysnoise::dist {

// Build the spec for a zoo model (the coordinator side of the contract).
TaskSpec classifier_spec(const std::string& model, const std::string& tag = "");
TaskSpec detector_spec(const std::string& model);
TaskSpec segmenter_spec(const std::string& model);
// NLP multiple-choice scoring (Table 5): `model` is an opt_mini_zoo name,
// `subtask` an nlp::task_name ("PIQA-like", ...), carried in the tag.
TaskSpec nlp_spec(const std::string& model, const std::string& subtask);
// TTS system discrepancy (Table 10): `model` is a tts_model_names entry.
TaskSpec tts_spec(const std::string& model);

// Resolve a TaskSpec JSON to a live task + baseline seed. Throws
// std::invalid_argument on an unknown kind/model.
ResolvedWorkerTask resolve_zoo_task(const util::Json& spec_json);

// The resolver the worker binary and bench --connect mode run with.
TaskResolver zoo_task_resolver();

}  // namespace sysnoise::dist
