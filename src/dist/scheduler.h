// Lease bookkeeping of the distributed sweep coordinator and the resident
// sweep service, factored out of the socket handling so the scheduling
// policy is testable without a network: work units (stage-key groups of
// plan config indices, tagged with their job) are leased to workers on
// demand — work-stealing style, fast workers simply come back for more —
// and every lease carries a deadline refreshed by the owning worker's
// heartbeats. A unit whose worker disconnects (release_worker) or falls
// silent past its deadline (acquire-time expiry sweep) goes back on offer
// and is re-leased to the next hungry worker; a late result from the
// original owner is still accepted, since executors are required to be
// bit-identical.
//
// For the service the pool is dynamic (add_units as jobs are submitted,
// drop_job on cancel) and prioritized: acquire leases the
// highest-priority pending unit, submission order within a priority.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace sysnoise::dist {

// One leasable unit: config indices of one stage-key group of one job.
struct WorkUnit {
  int job = 0;
  std::vector<std::size_t> configs;
  int priority = 0;  // higher leases first; ties go in unit order
};

struct SchedulerStats {
  std::size_t leases_granted = 0;  // including re-leases
  std::size_t re_leases = 0;       // grants of a previously-leased unit
  std::size_t expired = 0;         // deadline expiries (silent workers)
  std::size_t released = 0;        // units returned by disconnects
  std::size_t completed = 0;       // first completions
  std::size_t duplicate_results = 0;
  std::size_t canceled = 0;        // units voided by drop_job
};

class LeaseScheduler {
 public:
  using Clock = std::chrono::steady_clock;

  LeaseScheduler(std::vector<WorkUnit> units,
                 std::chrono::milliseconds lease_timeout);

  // Unsynchronized view of the pool: safe ONLY while no add_units can run
  // concurrently (the coordinator's fixed pool). With a dynamic pool,
  // add_units may reallocate the vector mid-read — use unit_at() instead.
  const std::vector<WorkUnit>& units() const { return units_; }

  // A copy of unit `i`, taken under the scheduler lock — the safe way to
  // read a unit while submissions may be growing the pool.
  WorkUnit unit_at(std::size_t i) const;

  // Append more leasable units (a newly-submitted service job). Returns the
  // index of the first one, so callers can map job-local unit indices to
  // scheduler-global ones.
  std::size_t add_units(std::vector<WorkUnit> more);

  // Lease the best available unit to `worker` (a connection-unique id):
  // the highest-priority pending unit, first-submitted within a priority,
  // where expired and disconnect-released units rejoin the pool before
  // being scanned. nullopt = nothing leasable right now (the caller answers
  // `wait` or `done` depending on all_done()).
  std::optional<std::size_t> acquire(int worker, Clock::time_point now);

  // Refresh the deadlines of every lease `worker` holds.
  void heartbeat(int worker, Clock::time_point now);

  // Mark `unit` complete. Returns true on the first completion, false for
  // a duplicate (unit re-leased after expiry, both workers finished) or a
  // unit voided by drop_job.
  bool complete(std::size_t unit);

  // The worker's connection died: put its incomplete leases back on offer.
  void release_worker(int worker);

  // Void every incomplete unit of `job` (service-side cancel): they are
  // never leased again and count as terminal for all_done(). Already-done
  // units stay done.
  void drop_job(int job);

  bool all_done() const;
  std::size_t remaining() const;
  SchedulerStats stats() const;

  // Observability hook fired for each deadline expiry, with the unit index,
  // its job, and the worker whose lease lapsed. Invoked under the scheduler
  // lock (from acquire's expiry sweep) — the callback must not call back
  // into this scheduler. Set once before serving; not thread-safe against
  // concurrent acquires.
  void set_on_expire(std::function<void(std::size_t, int, int)> fn) {
    on_expire_ = std::move(fn);
  }

 private:
  enum class State { kPending, kLeased, kDone, kCanceled };
  struct Slot {
    State state = State::kPending;
    int worker = -1;
    Clock::time_point deadline{};
    bool ever_leased = false;
  };

  mutable std::mutex mu_;
  std::vector<WorkUnit> units_;
  std::vector<Slot> slots_;
  std::chrono::milliseconds lease_timeout_;
  SchedulerStats stats_;
  std::function<void(std::size_t, int, int)> on_expire_;
};

}  // namespace sysnoise::dist
