#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/executor.h"
#include "core/sweep.h"
#include "dist/protocol.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysnoise::dist {

namespace {

// One job this worker knows about: preloaded from the welcome frame
// (coordinator) or fetched on demand via job_request (service, whose jobs
// arrive while workers are already attached). The resolved task lives here
// too, so resolution — possibly training a model — happens at most once per
// job.
struct KnownJob {
  util::Json task_spec;
  core::SweepPlan plan;
  std::optional<ResolvedWorkerTask> resolved;
};

void wlog(const WorkerOptions& opts, const std::string& line) {
  if (!opts.verbose) return;
  std::printf("[worker] %s\n", line.c_str());
  std::fflush(stdout);
}

// Send an error frame (best effort) so the coordinator can log why this
// worker is about to disappear.
void send_error(net::TcpSocket& sock, const std::string& message) {
  util::Json err = make_message(msg::kError);
  err.set("message", message);
  net::send_json(sock, err);
}

}  // namespace

WorkerRunStats run_worker(const std::string& host, int port,
                          const TaskResolver& resolver,
                          const WorkerOptions& opts) {
  WorkerRunStats stats;
  net::TcpSocket sock = net::TcpSocket::connect(host, port);
  sock.set_recv_timeout_ms(opts.recv_timeout_ms);

  // Handshake failures never throw: callers retry thrown connect errors,
  // and neither a vanished coordinator (stats.disconnected — maybe it
  // finished already) nor a rejected hello (stats.error — retrying a
  // protocol mismatch can only ever fail again) is retryable the same way.
  util::Json hello = make_message(msg::kHello);
  hello.set("protocol", kProtocolVersion);
  if (!opts.auth_token.empty()) hello.set("token", opts.auth_token);
  util::Json welcome;
  if (!net::send_json(sock, hello) || !net::recv_json(sock, &welcome)) {
    stats.disconnected = true;
    return stats;
  }
  if (message_type(welcome) == msg::kError) {
    const util::Json* message = welcome.get("message");
    stats.error = message != nullptr && message->is_string()
                      ? message->as_string()
                      : "coordinator rejected hello";
    return stats;
  }
  const util::Json* proto = welcome.get("protocol");
  if (message_type(welcome) != msg::kWelcome || proto == nullptr ||
      !proto->is_number() || proto->as_int() != kProtocolVersion) {
    stats.error = "bad welcome (protocol mismatch?)";
    return stats;
  }

  // Past the handshake nothing may throw out of here (test workers run on
  // bare threads, and the binary would retry a non-retryable failure):
  // recv_json throws on a corrupt frame, welcome-field accessors throw on
  // shape violations — all reported like any error.
  try {
    const int heartbeat_ms = welcome.at("heartbeat_ms").as_int();
    std::map<int, KnownJob> jobs;
    const util::Json& jjobs = welcome.at("jobs");
    for (std::size_t i = 0; i < jjobs.size(); ++i)
      jobs.emplace(static_cast<int>(i),
                   KnownJob{jjobs.at(i).at("task"),
                            core::SweepPlan::from_json(jjobs.at(i).at("plan")),
                            std::nullopt});
    wlog(opts, "joined: " + std::to_string(jobs.size()) + " jobs, heartbeat " +
                   std::to_string(heartbeat_ms) + "ms");

    core::SweepCache cache;  // worker-wide metric memo across leases
    const core::StagedExecutor executor(opts.stats, opts.disk);

    int leases_taken = 0;
    while (true) {
      if (!net::send_json(sock, make_message(msg::kLeaseRequest))) {
        stats.disconnected = true;
        return stats;
      }
      util::Json reply;
      if (!net::recv_json(sock, &reply)) {
        stats.disconnected = true;
        return stats;
      }
      const std::string type = message_type(reply);
      if (type == msg::kDone) {
        stats.done = true;
        wlog(opts, "done: " + std::to_string(stats.leases_completed) +
                       " leases, " + std::to_string(stats.configs_evaluated) +
                       " configs");
        return stats;
      }
      if (type == msg::kWait) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reply.at("ms").as_int()));
        continue;
      }
      if (type == msg::kError) {
        stats.error = reply.get("message") != nullptr
                          ? reply.at("message").as_string()
                          : "coordinator error";
        return stats;
      }
      if (type != msg::kLease) {
        stats.error = "unexpected frame \"" + type + "\"";
        return stats;
      }

      if (opts.abandon_after_leases >= 0 &&
          leases_taken >= opts.abandon_after_leases) {
        // Fault injection: hold the lease and die without a word.
        stats.abandoned = true;
        wlog(opts, "abandoning lease (fault injection)");
        return stats;
      }
      ++leases_taken;

      const int job = reply.at("job").as_int();
      const int unit = reply.at("unit").as_int();
      auto it = jobs.find(job);
      if (it == jobs.end()) {
        // A service job submitted after this worker's welcome: fetch its
        // spec and plan before evaluating the lease.
        util::Json req = make_message(msg::kJobRequest);
        req.set("job", job);
        util::Json info;
        if (!net::send_json(sock, req) || !net::recv_json(sock, &info)) {
          stats.disconnected = true;
          return stats;
        }
        if (message_type(info) != msg::kJobInfo ||
            info.at("job").as_int() != job) {
          send_error(sock, "lease for unknown job");
          stats.error = "lease for unknown job " + std::to_string(job);
          return stats;
        }
        it = jobs.emplace(job,
                          KnownJob{info.at("task"),
                                   core::SweepPlan::from_json(info.at("plan")),
                                   std::nullopt})
                 .first;
        wlog(opts, "fetched job " + std::to_string(job) + " (" +
                       it->second.plan.task + ")");
      }
      const util::Json& jconfigs = reply.at("configs");
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < jconfigs.size(); ++i)
        indices.push_back(static_cast<std::size_t>(jconfigs.at(i).as_int()));
      const core::SweepPlan slice = it->second.plan.slice(indices);
      wlog(opts, "lease job=" + std::to_string(job) + " unit=" +
                     std::to_string(unit) + " (" +
                     std::to_string(indices.size()) + " configs)");

      // Lease lifecycle span, correlated with the coordinator's grant span
      // by the shared "j<job>u<unit>" lease id (both sides derive it from
      // the lease frame — no extra protocol field needed).
      obs::TraceSpan lease_span("worker.lease");
      if (lease_span.active()) {
        lease_span.attr("lease", "j" + std::to_string(job) + "u" +
                                     std::to_string(unit));
        lease_span.attr("configs", indices.size());
      }

      // Resolve + evaluate on a helper thread while this one keeps the
      // lease alive: the coordinator treats silence longer than the lease
      // timeout as death, and both can take arbitrarily long — first-lease
      // resolution may TRAIN the model on a cold-cache machine, so it must
      // sit under the heartbeat loop too. Resolution failures surface
      // through the future like evaluation failures.
      core::SweepOptions sweep_opts;
      sweep_opts.threads = opts.threads;
      sweep_opts.cache = &cache;
      auto& slot = it->second.resolved;
      const util::Json& task_spec = it->second.task_spec;
      std::future<core::MetricMap> fut = std::async(
          std::launch::async,
          [&executor, &slot, &resolver, &task_spec, &cache, &slice,
           &sweep_opts] {
            if (!slot.has_value()) {
              slot = resolver(task_spec);
              if (!slot.has_value() || slot->task == nullptr)
                throw std::runtime_error("task resolution returned no task");
              for (const auto& [key, value] : slot->seeds)
                cache.store(key, value);
            }
            return executor.execute(*slot->task, slice, sweep_opts);
          });
      bool connection_lost = false;
      while (fut.wait_for(std::chrono::milliseconds(heartbeat_ms)) !=
             std::future_status::ready) {
        const auto hb_start = std::chrono::steady_clock::now();
        util::Json ok;
        if (!net::send_json(sock, make_message(msg::kHeartbeat)) ||
            !net::recv_json(sock, &ok) || message_type(ok) != msg::kOk) {
          connection_lost = true;
          break;
        }
        ++stats.heartbeats_sent;
        if (obs::trace_enabled()) {
          obs::metrics().observe_ms(
              "worker.heartbeat_rtt_ms",
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - hb_start)
                  .count());
        }
      }
      core::MetricMap metrics;
      try {
        metrics = fut.get();  // always drain the future, even disconnected
      } catch (const std::exception& e) {
        if (!connection_lost)
          send_error(sock, std::string("evaluation failed: ") + e.what());
        stats.error = e.what();
        return stats;
      }
      if (connection_lost) {
        stats.disconnected = true;
        return stats;
      }

      util::Json result = make_message(msg::kResult);
      result.set("job", job);
      result.set("unit", unit);
      util::Json jmetrics = util::Json::object();
      for (const auto& [key, value] : metrics) jmetrics.set(key, value);
      result.set("metrics", std::move(jmetrics));
      if (obs::trace_enabled()) {
        // Ship this worker's cumulative metric snapshot with the result so
        // the coordinator's per-sweep summary covers the whole fleet. The
        // field is absent when tracing is off — the frame bytes are
        // unchanged — and cumulative, so the coordinator keeps only the
        // latest snapshot per worker rather than summing.
        obs::metrics().counter_add("worker.leases_completed");
        obs::metrics().counter_add("worker.configs_evaluated",
                                   indices.size());
        result.set("obs", obs::metrics().snapshot());
      }
      const auto send_start = std::chrono::steady_clock::now();
      util::Json ok;
      if (!net::send_json(sock, result) || !net::recv_json(sock, &ok) ||
          message_type(ok) != msg::kOk) {
        stats.disconnected = true;
        return stats;
      }
      if (obs::trace_enabled()) {
        obs::metrics().observe_ms(
            "worker.result_rtt_ms",
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - send_start)
                .count());
      }
      ++stats.leases_completed;
      stats.configs_evaluated += indices.size();
    }
  } catch (const std::exception& e) {
    stats.error = e.what();
    return stats;
  }
}

WorkerRunStats run_worker_retrying(const std::string& host, int port,
                                   const TaskResolver& resolver,
                                   const WorkerOptions& opts,
                                   std::chrono::seconds connect_timeout) {
  const auto deadline = std::chrono::steady_clock::now() + connect_timeout;
  // Capped exponential backoff: quick retries while a coordinator is still
  // binding, without hammering a host that is down for minutes.
  std::chrono::milliseconds delay{250};
  constexpr std::chrono::milliseconds kMaxDelay{5000};
  int attempts = 0;
  while (true) {
    try {
      return run_worker(host, port, resolver, opts);
    } catch (const std::exception& e) {
      ++attempts;
      if (std::chrono::steady_clock::now() >= deadline) {
        WorkerRunStats stats;
        stats.error = std::string(e.what()) + " (gave up after " +
                      std::to_string(attempts) + " attempts over " +
                      std::to_string(connect_timeout.count()) + "s)";
        return stats;
      }
      wlog(opts, std::string(e.what()) + "; attempt " +
                     std::to_string(attempts) + ", retrying in " +
                     std::to_string(delay.count()) + "ms...");
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
    }
  }
}

}  // namespace sysnoise::dist
