#include "dist/scheduler.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysnoise::dist {

LeaseScheduler::LeaseScheduler(std::vector<WorkUnit> units,
                               std::chrono::milliseconds lease_timeout)
    : units_(std::move(units)),
      slots_(units_.size()),
      lease_timeout_(lease_timeout) {}

WorkUnit LeaseScheduler::unit_at(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return units_[i];
}

std::size_t LeaseScheduler::add_units(std::vector<WorkUnit> more) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t base = units_.size();
  for (WorkUnit& u : more) {
    units_.push_back(std::move(u));
    slots_.emplace_back();
  }
  return base;
}

std::optional<std::size_t> LeaseScheduler::acquire(int worker,
                                                   Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  // Expire silent leases first so their units are offerable below. Expiry
  // happens lazily here (not on a reaper thread): nothing observes a lease
  // between acquires, so this is exactly as prompt as it needs to be.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.state != State::kLeased || s.deadline > now) continue;
    const int lapsed_worker = s.worker;
    s.state = State::kPending;
    s.worker = -1;
    ++stats_.expired;
    if (obs::trace_enabled())
      obs::metrics().counter_add("dist.lease.expired");
    if (on_expire_) on_expire_(i, units_[i].job, lapsed_worker);
  }
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state != State::kPending) continue;
    if (!best.has_value() || units_[i].priority > units_[*best].priority)
      best = i;
  }
  if (!best.has_value()) return std::nullopt;
  Slot& s = slots_[*best];
  s.state = State::kLeased;
  s.worker = worker;
  s.deadline = now + lease_timeout_;
  ++stats_.leases_granted;
  if (s.ever_leased) ++stats_.re_leases;
  if (obs::trace_enabled()) {
    obs::metrics().counter_add("dist.lease.granted");
    if (s.ever_leased) obs::metrics().counter_add("dist.lease.re_leased");
  }
  s.ever_leased = true;
  return best;
}

void LeaseScheduler::heartbeat(int worker, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_)
    if (s.state == State::kLeased && s.worker == worker)
      s.deadline = now + lease_timeout_;
}

bool LeaseScheduler::complete(std::size_t unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[unit];
  if (s.state == State::kCanceled) return false;  // result for a voided unit
  if (s.state == State::kDone) {
    ++stats_.duplicate_results;
    return false;
  }
  s.state = State::kDone;
  s.worker = -1;
  ++stats_.completed;
  return true;
}

void LeaseScheduler::release_worker(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_)
    if (s.state == State::kLeased && s.worker == worker) {
      s.state = State::kPending;
      s.worker = -1;
      ++stats_.released;
    }
}

void LeaseScheduler::drop_job(int job) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (units_[i].job != job || s.state == State::kDone ||
        s.state == State::kCanceled)
      continue;
    s.state = State::kCanceled;
    s.worker = -1;
    ++stats_.canceled;
  }
}

bool LeaseScheduler::all_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& s : slots_)
    if (s.state != State::kDone && s.state != State::kCanceled) return false;
  return true;
}

std::size_t LeaseScheduler::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Slot& s : slots_)
    if (s.state != State::kDone && s.state != State::kCanceled) ++n;
  return n;
}

SchedulerStats LeaseScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sysnoise::dist
