// Color-space round-trip noise (Sec. 3.1 / Appendix A Eq. 5-7).
//
// Deployment stacks that feed video pipelines (DVPP on Ascend, DirectX VA)
// hand the network RGB that has been through an RGB -> YUV (often NV12
// 4:2:0) -> RGB conversion. BT.601 studio-swing conversion with rounding
// and clipping is lossy; chroma subsampling in NV12 loses more. We
// implement the paper's exact equations:
//   Eq. 5  float RGB->YUV (studio swing, +16/+128 offsets)
//   Eq. 6  float YUV->RGB with round+clip
//   Eq. 7  integer shift approximation of Eq. 6 ( (298*C + ...) >> 8 )
#pragma once

#include "image/image.h"

namespace sysnoise {

enum class ColorMode {
  kDirectRGB = 0,       // training reference: no conversion
  kYuv444RoundTrip = 1, // RGB -> YUV444 -> RGB (float Eq. 6)
  kNv12RoundTrip = 2,   // RGB -> NV12 (4:2:0) -> RGB (integer Eq. 7)
};
constexpr int kNumColorModes = 3;
const char* color_mode_name(ColorMode m);

// BT.601 studio-swing conversion of a single pixel (Eq. 5).
void rgb_to_yuv_bt601(std::uint8_t r, std::uint8_t g, std::uint8_t b,
                      std::uint8_t& y, std::uint8_t& u, std::uint8_t& v);

// Float inverse (Eq. 6): round + clip.
void yuv_to_rgb_bt601_float(std::uint8_t y, std::uint8_t u, std::uint8_t v,
                            std::uint8_t& r, std::uint8_t& g, std::uint8_t& b);

// Integer shift approximation (Eq. 7).
void yuv_to_rgb_bt601_int(std::uint8_t y, std::uint8_t u, std::uint8_t v,
                          std::uint8_t& r, std::uint8_t& g, std::uint8_t& b);

// NV12 frame: full-res Y plane + interleaved half-res UV plane.
struct Nv12Frame {
  int height = 0, width = 0;          // luma dimensions
  std::vector<std::uint8_t> y;        // h*w
  std::vector<std::uint8_t> uv;       // ceil(h/2)*ceil(w/2)*2, interleaved U,V
};

Nv12Frame rgb_to_nv12(const ImageU8& rgb);
// Upsamples chroma by replication (the common HW path) and converts with
// the integer approximation.
ImageU8 nv12_to_rgb(const Nv12Frame& frame);

// Apply the full color-mode round trip to an image (kDirectRGB = identity).
ImageU8 apply_color_mode(const ImageU8& rgb, ColorMode mode);

}  // namespace sysnoise
