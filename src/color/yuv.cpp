#include "color/yuv.h"

#include <cmath>

namespace sysnoise {

const char* color_mode_name(ColorMode m) {
  switch (m) {
    case ColorMode::kDirectRGB: return "RGB";
    case ColorMode::kYuv444RoundTrip: return "YUV444";
    case ColorMode::kNv12RoundTrip: return "NV12";
  }
  return "?";
}

void rgb_to_yuv_bt601(std::uint8_t r8, std::uint8_t g8, std::uint8_t b8,
                      std::uint8_t& y, std::uint8_t& u, std::uint8_t& v) {
  const float r = r8, g = g8, b = b8;
  // Paper Eq. 5 (BT.601 studio swing).
  y = clamp_u8(static_cast<int>(std::lround(0.256788f * r + 0.504129f * g +
                                            0.097906f * b)) + 16);
  u = clamp_u8(static_cast<int>(std::lround(-0.148223f * r - 0.290993f * g +
                                            0.439216f * b)) + 128);
  v = clamp_u8(static_cast<int>(std::lround(0.439216f * r - 0.367788f * g -
                                            0.071427f * b)) + 128);
}

void yuv_to_rgb_bt601_float(std::uint8_t y, std::uint8_t u, std::uint8_t v,
                            std::uint8_t& r, std::uint8_t& g, std::uint8_t& b) {
  // Paper Eq. 6.
  const float c = static_cast<float>(y) - 16.0f;
  const float d = static_cast<float>(u) - 128.0f;
  const float e = static_cast<float>(v) - 128.0f;
  r = clamp_u8(static_cast<int>(std::lround(1.164383f * c + 1.596027f * e)));
  g = clamp_u8(static_cast<int>(
      std::lround(1.164383f * c - 0.391762f * d - 0.812968f * e)));
  b = clamp_u8(static_cast<int>(std::lround(1.164383f * c + 2.017232f * d)));
}

void yuv_to_rgb_bt601_int(std::uint8_t y, std::uint8_t u, std::uint8_t v,
                          std::uint8_t& r, std::uint8_t& g, std::uint8_t& b) {
  // Paper Eq. 7 (the ">>8" hardware approximation).
  const int c = static_cast<int>(y) - 16;
  const int d = static_cast<int>(u) - 128;
  const int e = static_cast<int>(v) - 128;
  r = clamp_u8((298 * c + 409 * e + 128) >> 8);
  g = clamp_u8((298 * c - 100 * d - 208 * e + 128) >> 8);
  b = clamp_u8((298 * c + 516 * d + 128) >> 8);
}

Nv12Frame rgb_to_nv12(const ImageU8& rgb) {
  const int h = rgb.height(), w = rgb.width();
  const int ch = (h + 1) / 2, cw = (w + 1) / 2;
  Nv12Frame f;
  f.height = h;
  f.width = w;
  f.y.resize(static_cast<std::size_t>(h) * w);
  f.uv.resize(static_cast<std::size_t>(ch) * cw * 2);

  // Full-resolution U/V computed first, then 2x2 box-averaged (4:2:0).
  std::vector<std::uint8_t> up(static_cast<std::size_t>(h) * w),
      vp(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      std::uint8_t yy, uu, vv;
      rgb_to_yuv_bt601(rgb.at(y, x, 0), rgb.at(y, x, 1), rgb.at(y, x, 2), yy, uu, vv);
      f.y[static_cast<std::size_t>(y) * w + x] = yy;
      up[static_cast<std::size_t>(y) * w + x] = uu;
      vp[static_cast<std::size_t>(y) * w + x] = vv;
    }
  for (int cy = 0; cy < ch; ++cy)
    for (int cx = 0; cx < cw; ++cx) {
      int su = 0, sv = 0, n = 0;
      for (int dy = 0; dy < 2; ++dy)
        for (int dx = 0; dx < 2; ++dx) {
          const int yy = 2 * cy + dy, xx = 2 * cx + dx;
          if (yy >= h || xx >= w) continue;
          su += up[static_cast<std::size_t>(yy) * w + xx];
          sv += vp[static_cast<std::size_t>(yy) * w + xx];
          ++n;
        }
      // Integer average with round-half-up, as HW subsamplers do.
      f.uv[(static_cast<std::size_t>(cy) * cw + cx) * 2 + 0] =
          static_cast<std::uint8_t>((su + n / 2) / n);
      f.uv[(static_cast<std::size_t>(cy) * cw + cx) * 2 + 1] =
          static_cast<std::uint8_t>((sv + n / 2) / n);
    }
  return f;
}

ImageU8 nv12_to_rgb(const Nv12Frame& frame) {
  const int h = frame.height, w = frame.width;
  const int cw = (w + 1) / 2;
  ImageU8 out(h, w, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const std::uint8_t yy = frame.y[static_cast<std::size_t>(y) * w + x];
      const std::size_t ci = (static_cast<std::size_t>(y / 2) * cw + x / 2) * 2;
      std::uint8_t r, g, b;
      yuv_to_rgb_bt601_int(yy, frame.uv[ci], frame.uv[ci + 1], r, g, b);
      out.at(y, x, 0) = r;
      out.at(y, x, 1) = g;
      out.at(y, x, 2) = b;
    }
  return out;
}

ImageU8 apply_color_mode(const ImageU8& rgb, ColorMode mode) {
  switch (mode) {
    case ColorMode::kDirectRGB:
      return rgb;
    case ColorMode::kYuv444RoundTrip: {
      ImageU8 out(rgb.height(), rgb.width(), 3);
      for (int y = 0; y < rgb.height(); ++y)
        for (int x = 0; x < rgb.width(); ++x) {
          std::uint8_t yy, uu, vv, r, g, b;
          rgb_to_yuv_bt601(rgb.at(y, x, 0), rgb.at(y, x, 1), rgb.at(y, x, 2), yy, uu, vv);
          yuv_to_rgb_bt601_float(yy, uu, vv, r, g, b);
          out.at(y, x, 0) = r;
          out.at(y, x, 1) = g;
          out.at(y, x, 2) = b;
        }
      return out;
    }
    case ColorMode::kNv12RoundTrip:
      return nv12_to_rgb(rgb_to_nv12(rgb));
  }
  return rgb;
}

}  // namespace sysnoise
