#include "models/segmenters.h"

#include <stdexcept>
#include <vector>

namespace sysnoise::models {

using namespace sysnoise::nn;

namespace {

struct ConvBn {
  Conv2d conv;
  BatchNorm2d bn;
  ConvBn(int in, int out, int k, int s, int p, Rng& rng, const std::string& id)
      : conv(in, out, k, s, p, rng, id, 1, false), bn(out) {}
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    return relu(t, bn(t, conv(t, x), mode));
  }
  void collect(ParamRefs& out) {
    conv.collect(out);
    bn.collect(out);
  }
  void collect_state(StateRefs& out) { bn.collect_state(out); }
};

class DeepLabMini : public Segmenter {
 public:
  DeepLabMini(int depth, int num_classes, Rng& rng)
      : stem_(3, 16, 3, 1, 1, rng, "seg.stem"),
        d1_(16, 24, 3, 2, 1, rng, "seg.d1"),
        d2_(24, 32, 3, 2, 1, rng, "seg.d2"),
        classifier_(32, num_classes, 1, 1, 0, rng, "seg.cls") {
    for (int i = 0; i < depth; ++i)
      context_.push_back(std::make_unique<ConvBn>(32, 32, 3, 1, 1, rng,
                                                  "seg.ctx" + std::to_string(i)));
  }
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = stem_(t, x, bn);        // 64x64
    y = maxpool2d(t, y, 3, 2, 1);     // 32x32 (ceil knob)
    y = d1_(t, y, bn);                // 16x16
    y = d2_(t, y, bn);                // 8x8
    for (auto& c : context_) y = (*c)(t, y, bn);
    y = classifier_(t, y);            // [N, C, 8, 8]
    // Decode to full resolution; each step reads the upsample knob. A
    // ceil-mode stem changes intermediate sizes, so crop back if needed.
    for (int i = 0; i < 3; ++i) y = upsample2x(t, y);
    return crop_to(t, y, 64, 64);
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    d1_.collect(out);
    d2_.collect(out);
    for (auto& c : context_) c->collect(out);
    classifier_.collect(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    d1_.collect_state(out);
    d2_.collect_state(out);
    for (auto& c : context_) c->collect_state(out);
  }
  bool has_maxpool() const override { return true; }

 private:
  static Node* crop_to(Tape& t, Node* x, int h, int w) {
    if (x->value.dim(2) == h && x->value.dim(3) == w) return x;
    const int n = x->value.dim(0), c = x->value.dim(1);
    Tensor out({n, c, h, w});
    for (int ni = 0; ni < n; ++ni)
      for (int ci = 0; ci < c; ++ci)
        for (int y = 0; y < h; ++y)
          for (int xx = 0; xx < w; ++xx)
            out.at4(ni, ci, y, xx) = x->value.at4(ni, ci, y, xx);
    Node* yq = t.make(std::move(out));
    Node* xn = x;
    yq->backprop = [yq, xn, n, c, h, w]() {
      if (!xn->requires_grad) return;
      for (int ni = 0; ni < n; ++ni)
        for (int ci = 0; ci < c; ++ci)
          for (int y = 0; y < h; ++y)
            for (int xx = 0; xx < w; ++xx)
              xn->grad.at4(ni, ci, y, xx) += yq->grad.at4(ni, ci, y, xx);
    };
    return yq;
  }
  ConvBn stem_, d1_, d2_;
  std::vector<std::unique_ptr<ConvBn>> context_;
  Conv2d classifier_;
};

class UNetMini : public Segmenter {
 public:
  UNetMini(int num_classes, Rng& rng)
      : enc1_(3, 12, 3, 1, 1, rng, "un.e1"),
        enc2_(12, 24, 3, 2, 1, rng, "un.e2"),
        enc3_(24, 32, 3, 2, 1, rng, "un.e3"),
        mid_(32, 32, 3, 1, 1, rng, "un.mid"),
        dec2_(32 + 24, 24, 3, 1, 1, rng, "un.d2"),
        dec1_(24 + 12, 12, 3, 1, 1, rng, "un.d1"),
        head_(12, num_classes, 1, 1, 0, rng, "un.head") {}
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* e1 = enc1_(t, x, bn);   // 64
    Node* e2 = enc2_(t, e1, bn);  // 32
    Node* e3 = enc3_(t, e2, bn);  // 16
    Node* m = mid_(t, e3, bn);
    Node* d2 = dec2_(t, concat_channels(t, upsample2x(t, m), e2), bn);   // 32
    Node* d1 = dec1_(t, concat_channels(t, upsample2x(t, d2), e1), bn);  // 64
    return head_(t, d1);
  }
  void collect(ParamRefs& out) override {
    enc1_.collect(out);
    enc2_.collect(out);
    enc3_.collect(out);
    mid_.collect(out);
    dec2_.collect(out);
    dec1_.collect(out);
    head_.collect(out);
  }
  void collect_state(StateRefs& out) override {
    enc1_.collect_state(out);
    enc2_.collect_state(out);
    enc3_.collect_state(out);
    mid_.collect_state(out);
    dec2_.collect_state(out);
    dec1_.collect_state(out);
  }
  bool has_maxpool() const override { return false; }

 private:
  ConvBn enc1_, enc2_, enc3_, mid_, dec2_, dec1_;
  Conv2d head_;
};

}  // namespace

std::unique_ptr<Segmenter> make_segmenter(const std::string& name, int num_classes,
                                          Rng& rng) {
  if (name == "DeepLab-S") return std::make_unique<DeepLabMini>(1, num_classes, rng);
  if (name == "DeepLab-M") return std::make_unique<DeepLabMini>(2, num_classes, rng);
  if (name == "UNet") return std::make_unique<UNetMini>(num_classes, rng);
  throw std::invalid_argument("make_segmenter: unknown model " + name);
}

}  // namespace sysnoise::models
