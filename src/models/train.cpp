#include "models/train.h"

#include <algorithm>
#include <stdexcept>

#include "nn/optim.h"
#include "seg/miou.h"

namespace sysnoise::models {

using namespace sysnoise::nn;

Tensor stack_batch(const std::vector<Tensor>& items) { return stack_front(items); }

namespace {

// The multi-config loops stack aligned batch indices across configs, so
// every config's stage-1 product must carry the same batch layout (they all
// pre-process the same dataset with the same batch size — only the knobs
// differ).
void check_same_layout(const std::vector<const PreprocessedBatches*>& per_cfg) {
  const PreprocessedBatches* ref = per_cfg.front();
  for (const PreprocessedBatches* pc : per_cfg)
    if (pc == nullptr || pc->num_samples != ref->num_samples ||
        pc->batch_size != ref->batch_size ||
        pc->inputs.size() != ref->inputs.size())
      throw std::invalid_argument(
          "batched forward: configs' stage-1 batch layouts differ");
}

// Stack batch index `bi` of every config into one [sum(b_i), ...] tensor;
// `fronts` receives each config's contribution for the split on the way out.
Tensor stack_config_batch(const std::vector<const PreprocessedBatches*>& per_cfg,
                          std::size_t bi, std::vector<int>* fronts) {
  std::vector<const Tensor*> parts;
  parts.reserve(per_cfg.size());
  fronts->clear();
  for (const PreprocessedBatches* pc : per_cfg) {
    parts.push_back(&pc->inputs[bi]);
    fronts->push_back(pc->inputs[bi].dim(0));
  }
  return stack_parts(parts);
}

}  // namespace

ClsPreprocessor default_cls_preprocessor(const PipelineSpec& spec) {
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  return [spec, train_cfg](const data::ClsSample& s, Rng&) {
    return preprocess(s.jpeg, train_cfg, spec);
  };
}

float train_classifier(Classifier& model, const std::vector<data::ClsSample>& train,
                       int num_classes, const ClsPreprocessor& prep,
                       const TrainConfig& cfg) {
  (void)num_classes;
  ParamRefs params;
  model.collect(params);
  Sgd sgd(params, cfg.lr, cfg.momentum, cfg.weight_decay);
  Adam adam(params, cfg.lr, 0.9f, 0.999f, 1e-8f, cfg.weight_decay);
  Rng rng(cfg.seed);

  const int n = static_cast<int>(train.size());
  const int steps_per_epoch = (n + cfg.batch_size - 1) / cfg.batch_size;
  const int total_steps = cfg.epochs * steps_per_epoch;
  int step = 0;
  float last_loss = 0.0f;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += cfg.batch_size) {
      const int bs = std::min(cfg.batch_size, n - b);
      std::vector<Tensor> inputs;
      std::vector<int> labels;
      inputs.reserve(static_cast<std::size_t>(bs));
      for (int i = 0; i < bs; ++i) {
        const auto& s = train[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])];
        inputs.push_back(prep(s, rng));
        labels.push_back(s.label);
      }
      Tape t;
      t.training = true;
      const float lr = cosine_lr(cfg.lr, step, total_steps);
      sgd.set_lr(lr);
      adam.set_lr(lr);
      sgd.zero_grad();
      Node* x = t.input(stack_batch(inputs));
      Node* logits = model.forward(t, x, BnMode::kTrain);
      Node* loss = softmax_cross_entropy(t, logits, labels);
      t.backward(loss);
      clip_grad_norm(params, cfg.clip_norm);
      if (cfg.use_adam)
        adam.step();
      else
        sgd.step();
      last_loss = loss->value[0];
      ++step;
    }
  }
  return last_loss;
}

PreprocessedBatches preprocess_cls_batches(const std::vector<data::ClsSample>& eval,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec,
                                           int batch_size) {
  std::vector<const std::vector<std::uint8_t>*> jpegs;
  jpegs.reserve(eval.size());
  for (const auto& s : eval) jpegs.push_back(&s.jpeg);
  return preprocess_batches(jpegs, cfg, spec, batch_size);
}

double eval_classifier_batches(Classifier& model,
                               const PreprocessedBatches& batches,
                               const std::vector<data::ClsSample>& eval,
                               const SysNoiseConfig& cfg, ActRanges* ranges) {
  const int n = batches.num_samples;
  int correct = 0, b = 0;
  for (const Tensor& input : batches.inputs) {
    const int bs = input.dim(0);
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    Node* logits = model.forward(t, t.input(input), BnMode::kEval);
    for (int i = 0; i < bs; ++i) {
      int best = 0;
      for (int c = 1; c < logits->value.dim(1); ++c)
        if (logits->value.at2(i, c) > logits->value.at2(i, best)) best = c;
      if (best == eval[static_cast<std::size_t>(b + i)].label) ++correct;
    }
    b += bs;
  }
  return 100.0 * correct / std::max(1, n);
}

std::vector<double> eval_classifier_batches_multi(
    Classifier& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const std::vector<data::ClsSample>& eval, const SysNoiseConfig& cfg,
    ActRanges* ranges) {
  if (per_cfg.empty()) return {};
  check_same_layout(per_cfg);
  const std::size_t k = per_cfg.size();
  std::vector<int> correct(k, 0);
  int b = 0;
  std::vector<int> fronts;
  for (std::size_t bi = 0; bi < per_cfg.front()->inputs.size(); ++bi) {
    const Tensor input = stack_config_batch(per_cfg, bi, &fronts);
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    Node* logits = model.forward(t, t.input(input), BnMode::kEval);
    int row = 0;
    for (std::size_t ci = 0; ci < k; ++ci) {
      for (int i = 0; i < fronts[ci]; ++i) {
        int best = 0;
        for (int c = 1; c < logits->value.dim(1); ++c)
          if (logits->value.at2(row + i, c) > logits->value.at2(row + i, best))
            best = c;
        if (best == eval[static_cast<std::size_t>(b + i)].label) ++correct[ci];
      }
      row += fronts[ci];
    }
    b += fronts.front();
  }
  std::vector<double> accs;
  accs.reserve(k);
  for (std::size_t ci = 0; ci < k; ++ci)
    accs.push_back(100.0 * correct[ci] /
                   std::max(1, per_cfg[ci]->num_samples));
  return accs;
}

double eval_classifier(Classifier& model, const std::vector<data::ClsSample>& eval,
                       const SysNoiseConfig& cfg, const PipelineSpec& spec,
                       ActRanges* ranges, int batch_size) {
  return eval_classifier_batches(
      model, preprocess_cls_batches(eval, cfg, spec, batch_size), eval, cfg,
      ranges);
}

void calibrate_classifier(Classifier& model,
                          const std::vector<data::ClsSample>& calib,
                          const PipelineSpec& spec, ActRanges& ranges,
                          int max_samples) {
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  const int n = std::min<int>(max_samples, static_cast<int>(calib.size()));
  for (int b = 0; b < n; b += 8) {
    const int bs = std::min(8, n - b);
    std::vector<Tensor> inputs;
    for (int i = 0; i < bs; ++i)
      inputs.push_back(preprocess(calib[static_cast<std::size_t>(b + i)].jpeg, train_cfg, spec));
    Tape t;
    t.ctx.calibrating = true;
    t.ctx.ranges = &ranges;
    model.forward(t, t.input(stack_batch(inputs)), BnMode::kEval);
  }
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

float train_detector(Detector& model, const data::DetDataset& ds,
                     const PipelineSpec& spec, const TrainConfig& cfg) {
  ParamRefs params;
  model.collect(params);
  Sgd opt(params, cfg.lr, cfg.momentum, cfg.weight_decay);
  Rng rng(cfg.seed);
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();

  const int n = static_cast<int>(ds.train.size());
  const int steps_per_epoch = (n + cfg.batch_size - 1) / cfg.batch_size;
  const int total_steps = cfg.epochs * steps_per_epoch;
  int step = 0;
  float last_loss = 0.0f;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += cfg.batch_size) {
      const int bs = std::min(cfg.batch_size, n - b);
      std::vector<Tensor> inputs;
      std::vector<std::vector<detect::GtBox>> gts;
      for (int i = 0; i < bs; ++i) {
        const auto& s = ds.train[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])];
        inputs.push_back(preprocess(s.jpeg, train_cfg, spec));
        gts.push_back(s.boxes);
      }
      Tape t;
      t.training = true;
      opt.set_lr(cosine_lr(cfg.lr, step, total_steps));
      opt.zero_grad();
      DetectorOutput out = model.forward(t, t.input(stack_batch(inputs)), BnMode::kTrain);
      Node* loss = detection_loss(t, model, out, gts, rng);
      t.backward(loss);
      clip_grad_norm(params, cfg.clip_norm);
      opt.step();
      last_loss = loss->value[0];
      ++step;
    }
  }
  return last_loss;
}

PreprocessedBatches preprocess_det_batches(const data::DetDataset& ds,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec) {
  std::vector<const std::vector<std::uint8_t>*> jpegs;
  jpegs.reserve(ds.eval.size());
  for (const auto& s : ds.eval) jpegs.push_back(&s.jpeg);
  return preprocess_batches(jpegs, cfg, spec, /*batch_size=*/8);
}

RawDetections detector_forward_batches(Detector& model,
                                       const PreprocessedBatches& batches,
                                       const SysNoiseConfig& cfg,
                                       ActRanges* ranges) {
  RawDetections raw;
  raw.batches.reserve(batches.inputs.size());
  for (const Tensor& input : batches.inputs) {
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    DetectorOutput out = model.forward(t, t.input(input), BnMode::kEval);
    raw.batches.push_back(detach_detector_output(out));
  }
  return raw;
}

std::vector<RawDetections> detector_forward_batches_multi(
    Detector& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const SysNoiseConfig& cfg, ActRanges* ranges) {
  if (per_cfg.empty()) return {};
  check_same_layout(per_cfg);
  const std::size_t k = per_cfg.size();
  std::vector<RawDetections> out(k);
  for (RawDetections& r : out) r.batches.reserve(per_cfg.front()->inputs.size());
  std::vector<int> fronts;
  for (std::size_t bi = 0; bi < per_cfg.front()->inputs.size(); ++bi) {
    const Tensor input = stack_config_batch(per_cfg, bi, &fronts);
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    DetectorOutput o = model.forward(t, t.input(input), BnMode::kEval);
    const RawDetectorOutput raw = detach_detector_output(o);
    std::vector<RawDetectorOutput> subs(k);
    for (RawDetectorOutput& sub : subs) sub.shapes = raw.shapes;
    for (std::size_t l = 0; l < raw.cls.size(); ++l) {
      std::vector<Tensor> cls = unstack_parts(raw.cls[l], fronts);
      std::vector<Tensor> reg = unstack_parts(raw.reg[l], fronts);
      for (std::size_t ci = 0; ci < k; ++ci) {
        subs[ci].cls.push_back(std::move(cls[ci]));
        subs[ci].reg.push_back(std::move(reg[ci]));
      }
    }
    for (std::size_t ci = 0; ci < k; ++ci)
      out[ci].batches.push_back(std::move(subs[ci]));
  }
  return out;
}

double detector_map_from_raw(const Detector& model, const RawDetections& raw,
                             const data::DetDataset& ds,
                             const SysNoiseConfig& cfg) {
  std::vector<std::vector<detect::Detection>> all_dets;
  std::vector<std::vector<detect::GtBox>> all_gts;
  std::size_t sample = 0;
  for (const RawDetectorOutput& out : raw.batches) {
    auto dets = detection_postprocess(model, out, cfg, ds.input_size);
    for (auto& d : dets) {
      all_dets.push_back(std::move(d));
      all_gts.push_back(ds.eval[sample++].boxes);
    }
  }
  return 100.0 * detect::mean_average_precision(all_dets, all_gts, ds.num_classes);
}

double eval_detector(Detector& model, const data::DetDataset& ds,
                     const SysNoiseConfig& cfg, const PipelineSpec& spec,
                     ActRanges* ranges) {
  const RawDetections raw = detector_forward_batches(
      model, preprocess_det_batches(ds, cfg, spec), cfg, ranges);
  return detector_map_from_raw(model, raw, ds, cfg);
}

void calibrate_detector(Detector& model, const data::DetDataset& ds,
                        const PipelineSpec& spec, ActRanges& ranges,
                        int max_samples) {
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  const int n = std::min<int>(max_samples, static_cast<int>(ds.train.size()));
  for (int b = 0; b < n; b += 4) {
    const int bs = std::min(4, n - b);
    std::vector<Tensor> inputs;
    for (int i = 0; i < bs; ++i)
      inputs.push_back(preprocess(ds.train[static_cast<std::size_t>(b + i)].jpeg, train_cfg, spec));
    Tape t;
    t.ctx.calibrating = true;
    t.ctx.ranges = &ranges;
    model.forward(t, t.input(stack_batch(inputs)), BnMode::kEval);
  }
}

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

float train_segmenter(Segmenter& model, const data::SegDataset& ds,
                      const PipelineSpec& spec, const TrainConfig& cfg) {
  ParamRefs params;
  model.collect(params);
  Sgd opt(params, cfg.lr, cfg.momentum, cfg.weight_decay);
  Rng rng(cfg.seed);
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();

  const int n = static_cast<int>(ds.train.size());
  const int steps_per_epoch = (n + cfg.batch_size - 1) / cfg.batch_size;
  const int total_steps = cfg.epochs * steps_per_epoch;
  int step = 0;
  float last_loss = 0.0f;
  const int hw = ds.input_size * ds.input_size;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += cfg.batch_size) {
      const int bs = std::min(cfg.batch_size, n - b);
      std::vector<Tensor> inputs;
      std::vector<int> labels;
      labels.reserve(static_cast<std::size_t>(bs) * hw);
      for (int i = 0; i < bs; ++i) {
        const auto& s = ds.train[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])];
        inputs.push_back(preprocess(s.jpeg, train_cfg, spec));
        labels.insert(labels.end(), s.mask.begin(), s.mask.end());
      }
      Tape t;
      t.training = true;
      opt.set_lr(cosine_lr(cfg.lr, step, total_steps));
      opt.zero_grad();
      Node* logits = model.forward(t, t.input(stack_batch(inputs)), BnMode::kTrain);
      Node* rows = reshape(t, nchw_to_nhwc(t, logits),
                           {bs * hw, logits->value.dim(1)});
      Node* loss = softmax_cross_entropy(t, rows, labels);
      t.backward(loss);
      clip_grad_norm(params, cfg.clip_norm);
      opt.step();
      last_loss = loss->value[0];
      ++step;
    }
  }
  return last_loss;
}

PreprocessedBatches preprocess_seg_batches(const data::SegDataset& ds,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec) {
  std::vector<const std::vector<std::uint8_t>*> jpegs;
  jpegs.reserve(ds.eval.size());
  for (const auto& s : ds.eval) jpegs.push_back(&s.jpeg);
  return preprocess_batches(jpegs, cfg, spec, /*batch_size=*/4);
}

double eval_segmenter_batches(Segmenter& model,
                              const PreprocessedBatches& batches,
                              const data::SegDataset& ds,
                              const SysNoiseConfig& cfg, ActRanges* ranges) {
  std::vector<int> all_pred, all_gt;
  std::size_t sample = 0;
  for (const Tensor& input : batches.inputs) {
    const int bs = input.dim(0);
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    Node* logits = model.forward(t, t.input(input), BnMode::kEval);
    const int c = logits->value.dim(1), h = logits->value.dim(2),
              w = logits->value.dim(3);
    for (int i = 0; i < bs; ++i) {
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          int best = 0;
          for (int cc = 1; cc < c; ++cc)
            if (logits->value.at4(i, cc, y, x) > logits->value.at4(i, best, y, x))
              best = cc;
          all_pred.push_back(best);
        }
      const auto& mask = ds.eval[sample++].mask;
      all_gt.insert(all_gt.end(), mask.begin(), mask.end());
    }
  }
  return 100.0 * seg::mean_iou(all_pred, all_gt, ds.num_classes);
}

std::vector<double> eval_segmenter_batches_multi(
    Segmenter& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const data::SegDataset& ds, const SysNoiseConfig& cfg, ActRanges* ranges) {
  if (per_cfg.empty()) return {};
  check_same_layout(per_cfg);
  const std::size_t k = per_cfg.size();
  std::vector<std::vector<int>> all_pred(k);
  std::vector<int> all_gt;  // dataset order; identical for every config
  std::size_t sample = 0;
  std::vector<int> fronts;
  for (std::size_t bi = 0; bi < per_cfg.front()->inputs.size(); ++bi) {
    const Tensor input = stack_config_batch(per_cfg, bi, &fronts);
    Tape t;
    t.ctx = cfg.inference_ctx(ranges);
    Node* logits = model.forward(t, t.input(input), BnMode::kEval);
    const int c = logits->value.dim(1), h = logits->value.dim(2),
              w = logits->value.dim(3);
    int row = 0;
    for (std::size_t ci = 0; ci < k; ++ci) {
      for (int i = 0; i < fronts[ci]; ++i)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x) {
            int best = 0;
            for (int cc = 1; cc < c; ++cc)
              if (logits->value.at4(row + i, cc, y, x) >
                  logits->value.at4(row + i, best, y, x))
                best = cc;
            all_pred[ci].push_back(best);
          }
      row += fronts[ci];
    }
    for (int i = 0; i < fronts.front(); ++i) {
      const auto& mask = ds.eval[sample++].mask;
      all_gt.insert(all_gt.end(), mask.begin(), mask.end());
    }
  }
  std::vector<double> out;
  out.reserve(k);
  for (std::size_t ci = 0; ci < k; ++ci)
    out.push_back(100.0 * seg::mean_iou(all_pred[ci], all_gt, ds.num_classes));
  return out;
}

double eval_segmenter(Segmenter& model, const data::SegDataset& ds,
                      const SysNoiseConfig& cfg, const PipelineSpec& spec,
                      ActRanges* ranges) {
  return eval_segmenter_batches(model, preprocess_seg_batches(ds, cfg, spec),
                                ds, cfg, ranges);
}

void calibrate_segmenter(Segmenter& model, const data::SegDataset& ds,
                         const PipelineSpec& spec, ActRanges& ranges,
                         int max_samples) {
  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  const int n = std::min<int>(max_samples, static_cast<int>(ds.train.size()));
  for (int b = 0; b < n; b += 4) {
    const int bs = std::min(4, n - b);
    std::vector<Tensor> inputs;
    for (int i = 0; i < bs; ++i)
      inputs.push_back(preprocess(ds.train[static_cast<std::size_t>(b + i)].jpeg, train_cfg, spec));
    Tape t;
    t.ctx.calibrating = true;
    t.ctx.ranges = &ranges;
    model.forward(t, t.input(stack_batch(inputs)), BnMode::kEval);
  }
}

}  // namespace sysnoise::models
