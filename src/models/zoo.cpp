#include "models/zoo.h"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "nn/serialize.h"

namespace sysnoise::models {

namespace {
constexpr std::uint64_t kInitSeed = 2024;
constexpr const char* kCacheVersion = "v1";
}  // namespace

std::string cache_dir() {
  const char* env = std::getenv("SYSNOISE_CACHE_DIR");
  std::string dir = env != nullptr ? env : "/tmp/sysnoise_model_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

const data::ClsDataset& benchmark_cls_dataset() {
  static const data::ClsDataset ds = data::make_classification_dataset({});
  return ds;
}

const data::DetDataset& benchmark_det_dataset() {
  static const data::DetDataset ds = data::make_detection_dataset({});
  return ds;
}

const data::SegDataset& benchmark_seg_dataset() {
  static const data::SegDataset ds = data::make_segmentation_dataset({});
  return ds;
}

PipelineSpec cls_pipeline_spec() { return PipelineSpec{.out_h = 32, .out_w = 32}; }

PipelineSpec det_pipeline_spec() { return PipelineSpec{.out_h = 64, .out_w = 64}; }

PipelineSpec seg_pipeline_spec() { return PipelineSpec{.out_h = 64, .out_w = 64}; }

TrainedClassifier get_classifier(const std::string& name, const std::string& tag,
                                 const ClsPreprocessor* prep,
                                 const TrainConfig* train_override) {
  const auto& ds = benchmark_cls_dataset();
  const PipelineSpec spec = cls_pipeline_spec();

  TrainedClassifier out;
  out.name = name;
  out.tag = tag;
  Rng rng(kInitSeed);
  out.model = make_classifier(name, ds.num_classes, rng);

  nn::ParamRefs params;
  out.model->collect(params);
  nn::StateRefs state;
  out.model->collect_state(state);
  std::vector<const Tensor*> cstate(state.begin(), state.end());

  const std::string stem = cache_dir() + "/cls_" + name +
                           (tag.empty() ? "" : "_" + tag) + "_" + kCacheVersion;
  const std::string wpath = stem + ".weights";
  const std::string rpath = stem + ".ranges";

  if (!nn::load_params(wpath, params, state)) {
    TrainConfig cfg;
    // Transformers need the Adam recipe to converge from scratch at this
    // scale; convnets use SGD+momentum (both mirror common practice).
    if (name.rfind("ViT", 0) == 0 || name.rfind("Swin", 0) == 0) {
      cfg.use_adam = true;
      cfg.lr = 1.5e-3f;
      cfg.epochs = 30;
    }
    if (train_override != nullptr) cfg = *train_override;
    const ClsPreprocessor default_prep = default_cls_preprocessor(spec);
    train_classifier(*out.model, ds.train, ds.num_classes,
                     prep != nullptr ? *prep : default_prep, cfg);
    calibrate_classifier(*out.model, ds.train, spec, out.ranges);
    nn::save_params(wpath, params, cstate);
    nn::save_ranges(rpath, out.ranges);
  } else if (!nn::load_ranges(rpath, out.ranges)) {
    calibrate_classifier(*out.model, ds.train, spec, out.ranges);
    nn::save_ranges(rpath, out.ranges);
  }
  out.trained_acc = eval_classifier(*out.model, ds.eval,
                                    SysNoiseConfig::training_default(), spec,
                                    &out.ranges);
  return out;
}

TrainedDetector get_detector(const std::string& name) {
  const auto& ds = benchmark_det_dataset();
  const PipelineSpec spec = det_pipeline_spec();

  std::string backbone, head;
  if (name == "FasterRCNN-ResNet") {
    backbone = "resnet";
    head = "softmax";
  } else if (name == "FasterRCNN-MobileNet") {
    backbone = "mobilenet";
    head = "softmax";
  } else if (name == "RetinaNet-ResNet") {
    backbone = "resnet";
    head = "sigmoid";
  } else if (name == "RetinaNet-MobileNet") {
    backbone = "mobilenet";
    head = "sigmoid";
  } else {
    throw std::invalid_argument("get_detector: unknown model " + name);
  }

  TrainedDetector out;
  out.name = name;
  Rng rng(kInitSeed + 1);
  out.model = std::make_unique<Detector>(backbone, head == "softmax",
                                         ds.num_classes, rng);

  nn::ParamRefs params;
  out.model->collect(params);
  nn::StateRefs state;
  out.model->collect_state(state);
  std::vector<const Tensor*> cstate(state.begin(), state.end());

  const std::string stem = cache_dir() + "/det_" + name + "_" + kCacheVersion;
  if (!nn::load_params(stem + ".weights", params, state)) {
    TrainConfig cfg;
    cfg.epochs = 16;
    cfg.batch_size = 8;
    cfg.lr = 0.02f;
    train_detector(*out.model, ds, spec, cfg);
    calibrate_detector(*out.model, ds, spec, out.ranges);
    nn::save_params(stem + ".weights", params, cstate);
    nn::save_ranges(stem + ".ranges", out.ranges);
  } else if (!nn::load_ranges(stem + ".ranges", out.ranges)) {
    calibrate_detector(*out.model, ds, spec, out.ranges);
    nn::save_ranges(stem + ".ranges", out.ranges);
  }
  out.trained_map = eval_detector(*out.model, ds, SysNoiseConfig::training_default(),
                                  spec, &out.ranges);
  return out;
}

TrainedSegmenter get_segmenter(const std::string& name) {
  const auto& ds = benchmark_seg_dataset();
  const PipelineSpec spec = seg_pipeline_spec();

  TrainedSegmenter out;
  out.name = name;
  Rng rng(kInitSeed + 2);
  out.model = make_segmenter(name, ds.num_classes, rng);

  nn::ParamRefs params;
  out.model->collect(params);
  nn::StateRefs state;
  out.model->collect_state(state);
  std::vector<const Tensor*> cstate(state.begin(), state.end());

  const std::string stem = cache_dir() + "/seg_" + name + "_" + kCacheVersion;
  if (!nn::load_params(stem + ".weights", params, state)) {
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batch_size = 8;
    cfg.lr = 0.05f;
    train_segmenter(*out.model, ds, spec, cfg);
    calibrate_segmenter(*out.model, ds, spec, out.ranges);
    nn::save_params(stem + ".weights", params, cstate);
    nn::save_ranges(stem + ".ranges", out.ranges);
  } else if (!nn::load_ranges(stem + ".ranges", out.ranges)) {
    calibrate_segmenter(*out.model, ds, spec, out.ranges);
    nn::save_ranges(stem + ".ranges", out.ranges);
  }
  out.trained_miou = eval_segmenter(*out.model, ds, SysNoiseConfig::training_default(),
                                    spec, &out.ranges);
  return out;
}

}  // namespace sysnoise::models
