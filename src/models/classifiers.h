// Classification model zoo mirroring the paper's Table 2 families at
// laptop scale: MCUNet, ResNet, MobileNetV2, RegNetX, EfficientNet, ViT,
// Swin. All take [N,3,32,32] inputs and emit [N,num_classes] logits.
//
// Family-defining traits preserved from the originals:
//  * ResNet: stride-2 3x3 max-pool stem  => ceil-mode noise applies;
//  * MobileNetV2: inverted residuals with depthwise convs, no max-pool;
//  * RegNetX: grouped 3x3 convs in residual bottlenecks;
//  * EfficientNet: MBConv with squeeze-excitation and SiLU;
//  * ViT: patch embedding + full self-attention + mean-token head;
//  * Swin: windowed attention + 2x2 patch merging between stages;
//  * MCUNet: extremely small depthwise pipeline (the paper's most fragile
//    model — 320KB-class).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/ops_extra.h"

namespace sysnoise::models {

class Classifier {
 public:
  virtual ~Classifier() = default;
  // bn: kTrain during optimization, kEval at test, kAdapt for TENT.
  virtual nn::Node* forward(nn::Tape& t, nn::Node* x, nn::BnMode bn) = 0;
  virtual void collect(nn::ParamRefs& out) = 0;
  // Affine BN params only (what TENT updates); empty for norm-free models.
  virtual void collect_bn_affine(nn::ParamRefs& out) { (void)out; }
  // Persistent non-trainable state (BN running stats); empty by default.
  virtual void collect_state(nn::StateRefs& out) { (void)out; }
  // Whether the architecture contains a stride-2 max-pool (Table 2 "-"
  // entries in the Ceil Mode column are models without one).
  virtual bool has_maxpool() const { return false; }
};

struct ClassifierSpec {
  std::string name;    // paper-style row name, e.g. "ResNet-M"
  std::string family;  // "resnet", "vit", ...
  int num_classes = 10;
};

// Families and sizes available (the Table 2 rows of this reproduction).
std::vector<ClassifierSpec> classifier_zoo();

// Instantiate by name with deterministic init.
std::unique_ptr<Classifier> make_classifier(const std::string& name, int num_classes,
                                            Rng& rng);

}  // namespace sysnoise::models
