// Training and evaluation loops for the three vision task families.
//
// Pre-processing is injected as a callback so mitigation strategies
// (mix-training Algo. 1, data augmentation, adversarial training) can
// perturb the pipeline per sample without touching the loops.
#pragma once

#include <functional>

#include "data/datasets.h"
#include "data/pipeline.h"
#include "models/classifiers.h"
#include "models/detectors.h"
#include "models/segmenters.h"

namespace sysnoise::models {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  float clip_norm = 5.0f;
  bool use_adam = false;  // transformers train with Adam, convnets with SGD
  std::uint64_t seed = 7;
};

// sample -> [1,3,H,W] input tensor (rng allows stochastic augmentation).
using ClsPreprocessor = std::function<Tensor(const data::ClsSample&, Rng&)>;

// The plain training-default preprocessor.
ClsPreprocessor default_cls_preprocessor(const PipelineSpec& spec);

// Trains in place; returns final training loss.
float train_classifier(Classifier& model, const std::vector<data::ClsSample>& train,
                       int num_classes, const ClsPreprocessor& prep,
                       const TrainConfig& cfg);

// Top-1 accuracy (%) under a deployment config.
double eval_classifier(Classifier& model, const std::vector<data::ClsSample>& eval,
                       const SysNoiseConfig& cfg, const PipelineSpec& spec,
                       nn::ActRanges* ranges, int batch_size = 16);

// Staged form: forward+metric over already-materialized stage-1 batches
// (`cfg` supplies only the inference-side knobs here). eval_classifier() is
// exactly preprocess_cls_batches + this, so the two paths are bit-identical.
double eval_classifier_batches(Classifier& model,
                               const PreprocessedBatches& batches,
                               const std::vector<data::ClsSample>& eval,
                               const SysNoiseConfig& cfg, nn::ActRanges* ranges);

// Cross-config batched form: `per_cfg` holds one stage-1 product per config
// (same dataset, same batch layout, different pre-processing knobs; `cfg`
// supplies the shared inference knobs). Aligned batches are stacked along
// the leading axis and pushed through ONE forward pass per batch index,
// then split back per config — every op in the network is per-sample, so
// each config's metric is bit-identical to eval_classifier_batches run
// alone. Throws std::invalid_argument on batch-layout mismatch.
std::vector<double> eval_classifier_batches_multi(
    Classifier& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const std::vector<data::ClsSample>& eval, const SysNoiseConfig& cfg,
    nn::ActRanges* ranges);

// Stage-1 materialization for each task family, with the same batch sizes
// the monolithic eval loops use (cls 16, det 8, seg 4).
PreprocessedBatches preprocess_cls_batches(const std::vector<data::ClsSample>& eval,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec,
                                           int batch_size = 16);
PreprocessedBatches preprocess_det_batches(const data::DetDataset& ds,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec);
PreprocessedBatches preprocess_seg_batches(const data::SegDataset& ds,
                                           const SysNoiseConfig& cfg,
                                           const PipelineSpec& spec);

// Record activation ranges for INT8 (run on a calibration subset with the
// training-default pipeline).
void calibrate_classifier(Classifier& model,
                          const std::vector<data::ClsSample>& calib,
                          const PipelineSpec& spec, nn::ActRanges& ranges,
                          int max_samples = 32);

// ---- detection ----

float train_detector(Detector& model, const data::DetDataset& ds,
                     const PipelineSpec& spec, const TrainConfig& cfg);

// mAP@[.5:.95] (x100, COCO convention) under a deployment config.
double eval_detector(Detector& model, const data::DetDataset& ds,
                     const SysNoiseConfig& cfg, const PipelineSpec& spec,
                     nn::ActRanges* ranges);

// Staged detection split: forward -> RawDetections -> postprocess(offset)
// -> mAP. The post-processing SysNoise axis (proposal_offset) only touches
// the last step, so sweeps re-decode boxes from cached forward outputs
// instead of re-running the network.
struct RawDetections {
  std::vector<RawDetectorOutput> batches;  // forward outputs per eval batch
};

RawDetections detector_forward_batches(Detector& model,
                                       const PreprocessedBatches& batches,
                                       const SysNoiseConfig& cfg,
                                       nn::ActRanges* ranges);

// Cross-config batched form: one forward per aligned batch index over the
// stacked configs, the per-level output tensors split back per config —
// bit-identical RawDetections to running detector_forward_batches per
// config (see eval_classifier_batches_multi).
std::vector<RawDetections> detector_forward_batches_multi(
    Detector& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const SysNoiseConfig& cfg, nn::ActRanges* ranges);

double detector_map_from_raw(const Detector& model, const RawDetections& raw,
                             const data::DetDataset& ds,
                             const SysNoiseConfig& cfg);

void calibrate_detector(Detector& model, const data::DetDataset& ds,
                        const PipelineSpec& spec, nn::ActRanges& ranges,
                        int max_samples = 16);

// ---- segmentation ----

float train_segmenter(Segmenter& model, const data::SegDataset& ds,
                      const PipelineSpec& spec, const TrainConfig& cfg);

// mIoU (%) under a deployment config.
double eval_segmenter(Segmenter& model, const data::SegDataset& ds,
                      const SysNoiseConfig& cfg, const PipelineSpec& spec,
                      nn::ActRanges* ranges);

// Staged form over materialized stage-1 batches.
double eval_segmenter_batches(Segmenter& model,
                              const PreprocessedBatches& batches,
                              const data::SegDataset& ds,
                              const SysNoiseConfig& cfg, nn::ActRanges* ranges);

// Cross-config batched form (see eval_classifier_batches_multi).
std::vector<double> eval_segmenter_batches_multi(
    Segmenter& model, const std::vector<const PreprocessedBatches*>& per_cfg,
    const data::SegDataset& ds, const SysNoiseConfig& cfg,
    nn::ActRanges* ranges);

void calibrate_segmenter(Segmenter& model, const data::SegDataset& ds,
                         const PipelineSpec& spec, nn::ActRanges& ranges,
                         int max_samples = 16);

// Assemble a batch tensor from per-sample [1,C,H,W] tensors.
Tensor stack_batch(const std::vector<Tensor>& items);

}  // namespace sysnoise::models
