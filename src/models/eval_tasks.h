// EvalTask adapters binding the trained model families to the generic
// sweep engine: each wraps a zoo model plus the shared benchmark dataset
// and pipeline spec behind core::StagedEvalTask, exposing the three-stage
// split (preprocess -> forward -> postprocess) with per-stage cache keys so
// core::staged_sweep() can share pre-processed batches across inference-
// side configs and (for detection) forward outputs across post-processing
// configs. Every adapter still works with the monolithic core::sweep().
#pragma once

#include <mutex>

#include "core/disk_stage_cache.h"
#include "core/staged_eval.h"
#include "core/sweep.h"
#include "models/zoo.h"

namespace sysnoise::models {

// Binary round trip for the stage-1 product (stacked input batches), shared
// by every adapter so pre-processed work persists in the disk StageCache
// across bench binaries. Returns false / nullopt-like nullptr on a
// malformed payload.
std::string encode_batches(const PreprocessedBatches& batches);
bool decode_batches(const std::string& bytes, PreprocessedBatches* out);

// Binary round trip for the detection stage-2 product (tape-free forward
// outputs), so the post-processing axis of a warm/distributed run re-decodes
// boxes from disk without re-running the network.
std::string encode_raw_detections(const RawDetections& raw);
bool decode_raw_detections(const std::string& bytes, RawDetections* out);

class ClassifierTask : public core::StagedEvalTask {
 public:
  explicit ClassifierTask(TrainedClassifier& tc) : tc_(tc) {}
  const std::string& name() const override { return tc_.name; }
  core::TaskTraits traits() const override;
  // Retrained variants (mitigation tags) share a display name but not
  // weights — fold the tag in so a shared SweepCache keeps them apart.
  std::string cache_identity() const override {
    return tc_.tag.empty() ? tc_.name : tc_.name + "#" + tc_.tag;
  }
  // Clean-pipeline metric already computed by the zoo at load time; seed a
  // SweepCache with it to skip re-evaluating the trained baseline.
  double trained_metric() const { return tc_.trained_acc; }

  // Staged split: classification has no post-processing knobs, so the
  // forward stage carries the metric and stage 3 just unwraps it.
  std::string preprocess_key(const SysNoiseConfig& cfg) const override;
  std::string forward_key(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_preprocess(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_forward(const SysNoiseConfig& cfg,
                                 const core::StageProduct& pre) const override;
  double run_postprocess(const SysNoiseConfig& cfg,
                         const core::StageProduct& fwd) const override;

  // Cross-config batching: configs sharing the weights fingerprint + the
  // inference knobs stack their stage-1 batches through one forward pass
  // (eval_classifier_batches_multi), bit-identical per config.
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override;
  std::vector<core::StageProduct> run_forward_batched(
      const std::vector<const SysNoiseConfig*>& cfgs,
      const std::vector<core::StageProduct>& pres) const override;

  // Disk persistence: batches depend on the dataset + spec, not the model,
  // so every classifier shares one scope (and one set of disk entries).
  std::string preprocess_scope() const override;
  bool encode_preprocess(const core::StageProduct& product,
                         std::string* bytes) const override;
  core::StageProduct decode_preprocess(const std::string& bytes) const override;

  // Forward products additionally depend on the weights, which
  // cache_identity alone does not pin (a retrained zoo keeps its names) —
  // the scope folds in a fingerprint of the loaded parameters.
  std::string forward_scope() const override;
  bool encode_forward(const core::StageProduct& product,
                      std::string* bytes) const override;
  core::StageProduct decode_forward(const std::string& bytes) const override;

 private:
  TrainedClassifier& tc_;
  mutable std::once_flag weights_fp_once_;
  mutable std::string weights_fp_;  // lazily computed fingerprint
};

class DetectorTask : public core::StagedEvalTask {
 public:
  explicit DetectorTask(TrainedDetector& td) : td_(td) {}
  const std::string& name() const override { return td_.name; }
  core::TaskTraits traits() const override;
  double trained_metric() const { return td_.trained_map; }

  // Staged split: stage 2 materializes RawDetections, stage 3 applies the
  // box-decode offset + NMS + mAP — the post-processing axis re-runs only
  // stage 3.
  std::string preprocess_key(const SysNoiseConfig& cfg) const override;
  std::string forward_key(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_preprocess(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_forward(const SysNoiseConfig& cfg,
                                 const core::StageProduct& pre) const override;
  double run_postprocess(const SysNoiseConfig& cfg,
                         const core::StageProduct& fwd) const override;

  // Cross-config batching (detector_forward_batches_multi): the stacked
  // forward's per-level outputs split back into per-config RawDetections.
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override;
  std::vector<core::StageProduct> run_forward_batched(
      const std::vector<const SysNoiseConfig*>& cfgs,
      const std::vector<core::StageProduct>& pres) const override;

  std::string preprocess_scope() const override;
  bool encode_preprocess(const core::StageProduct& product,
                         std::string* bytes) const override;
  core::StageProduct decode_preprocess(const std::string& bytes) const override;

  std::string forward_scope() const override;
  bool encode_forward(const core::StageProduct& product,
                      std::string* bytes) const override;
  core::StageProduct decode_forward(const std::string& bytes) const override;

 private:
  TrainedDetector& td_;
  mutable std::once_flag weights_fp_once_;
  mutable std::string weights_fp_;
};

class SegmenterTask : public core::StagedEvalTask {
 public:
  explicit SegmenterTask(TrainedSegmenter& ts) : ts_(ts) {}
  const std::string& name() const override { return ts_.name; }
  core::TaskTraits traits() const override;
  double trained_metric() const { return ts_.trained_miou; }

  std::string preprocess_key(const SysNoiseConfig& cfg) const override;
  std::string forward_key(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_preprocess(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_forward(const SysNoiseConfig& cfg,
                                 const core::StageProduct& pre) const override;
  double run_postprocess(const SysNoiseConfig& cfg,
                         const core::StageProduct& fwd) const override;

  // Cross-config batching (eval_segmenter_batches_multi).
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override;
  std::vector<core::StageProduct> run_forward_batched(
      const std::vector<const SysNoiseConfig*>& cfgs,
      const std::vector<core::StageProduct>& pres) const override;

  std::string preprocess_scope() const override;
  bool encode_preprocess(const core::StageProduct& product,
                         std::string* bytes) const override;
  core::StageProduct decode_preprocess(const std::string& bytes) const override;

  std::string forward_scope() const override;
  bool encode_forward(const core::StageProduct& product,
                      std::string* bytes) const override;
  core::StageProduct decode_forward(const std::string& bytes) const override;

 private:
  TrainedSegmenter& ts_;
  mutable std::once_flag weights_fp_once_;
  mutable std::string weights_fp_;
};

// Seed `cache` with `trained_metric` (the clean-pipeline number the zoo
// already computed at load time) for the training-default config, then run
// the sweep through the cache — the baseline eval is never recomputed.
core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache,
                              core::SweepOptions opts = {});

// Staged counterpart: same seeding, but evaluated through a
// core::StagedExecutor so stage intermediates are shared too. This is what
// the table benches drive; `stats` (optional) surfaces stage-cache
// accounting next to the SweepCache stats, and `disk` (optional) persists
// pre-processed batches across processes through the disk StageCache.
core::AxisReport staged_sweep_seeded(const core::StagedEvalTask& task,
                                     double trained_metric,
                                     core::SweepCache& cache,
                                     core::SweepOptions opts = {},
                                     core::StageStats* stats = nullptr,
                                     core::DiskStageCache* disk = nullptr);

}  // namespace sysnoise::models
