// EvalTask adapters binding the trained model families to the generic
// sweep engine: each wraps a zoo model plus the shared benchmark dataset
// and pipeline spec behind core::EvalTask.
#pragma once

#include "core/sweep.h"
#include "models/zoo.h"

namespace sysnoise::models {

class ClassifierTask : public core::EvalTask {
 public:
  explicit ClassifierTask(TrainedClassifier& tc) : tc_(tc) {}
  const std::string& name() const override { return tc_.name; }
  core::TaskTraits traits() const override;
  double evaluate(const SysNoiseConfig& cfg) const override;
  // Retrained variants (mitigation tags) share a display name but not
  // weights — fold the tag in so a shared SweepCache keeps them apart.
  std::string cache_identity() const override {
    return tc_.tag.empty() ? tc_.name : tc_.name + "#" + tc_.tag;
  }
  // Clean-pipeline metric already computed by the zoo at load time; seed a
  // SweepCache with it to skip re-evaluating the trained baseline.
  double trained_metric() const { return tc_.trained_acc; }

 private:
  TrainedClassifier& tc_;
};

class DetectorTask : public core::EvalTask {
 public:
  explicit DetectorTask(TrainedDetector& td) : td_(td) {}
  const std::string& name() const override { return td_.name; }
  core::TaskTraits traits() const override;
  double evaluate(const SysNoiseConfig& cfg) const override;
  double trained_metric() const { return td_.trained_map; }

 private:
  TrainedDetector& td_;
};

class SegmenterTask : public core::EvalTask {
 public:
  explicit SegmenterTask(TrainedSegmenter& ts) : ts_(ts) {}
  const std::string& name() const override { return ts_.name; }
  core::TaskTraits traits() const override;
  double evaluate(const SysNoiseConfig& cfg) const override;
  double trained_metric() const { return ts_.trained_miou; }

 private:
  TrainedSegmenter& ts_;
};

// Seed `cache` with `trained_metric` (the clean-pipeline number the zoo
// already computed at load time) for the training-default config, then run
// the sweep through the cache — the baseline eval is never recomputed.
core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache,
                              core::SweepOptions opts = {});

}  // namespace sysnoise::models
