#include "models/eval_tasks.h"

namespace sysnoise::models {

core::TaskTraits ClassifierTask::traits() const {
  return {core::TaskKind::kClassification, tc_.model->has_maxpool()};
}

double ClassifierTask::evaluate(const SysNoiseConfig& cfg) const {
  return eval_classifier(*tc_.model, benchmark_cls_dataset().eval, cfg,
                         cls_pipeline_spec(), &tc_.ranges);
}

core::TaskTraits DetectorTask::traits() const {
  return {core::TaskKind::kDetection, td_.model->has_maxpool()};
}

double DetectorTask::evaluate(const SysNoiseConfig& cfg) const {
  return eval_detector(*td_.model, benchmark_det_dataset(), cfg,
                       det_pipeline_spec(), &td_.ranges);
}

core::TaskTraits SegmenterTask::traits() const {
  return {core::TaskKind::kSegmentation, ts_.model->has_maxpool()};
}

double SegmenterTask::evaluate(const SysNoiseConfig& cfg) const {
  return eval_segmenter(*ts_.model, benchmark_seg_dataset(), cfg,
                        seg_pipeline_spec(), &ts_.ranges);
}

core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache, core::SweepOptions opts) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  return core::sweep(task, opts);
}

}  // namespace sysnoise::models
