#include "models/eval_tasks.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "core/executor.h"
#include "core/plan.h"

namespace sysnoise::models {

// ---------------------------------------------------------------------------
// Stage-1 product (de)serialization for the disk StageCache
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kBatchesMagic = 0x53504231;    // "SPB1"
constexpr std::uint32_t kRawDetsMagic = 0x53504431;    // "SPD1"
constexpr std::uint32_t kMetricMagic = 0x53504D31;     // "SPM1"

void put_u32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool get_u32(const std::string& in, std::size_t* pos, std::uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

void put_tensor(std::string* out, const Tensor& t) {
  put_u32(out, static_cast<std::uint32_t>(t.rank()));
  for (const int d : t.shape()) put_u32(out, static_cast<std::uint32_t>(d));
  out->append(reinterpret_cast<const char*>(t.data()),
              t.size() * sizeof(float));
}

// Bounded like decode_batches: dims are capped by what the remaining
// payload could hold, so a malformed payload reads as `false`, never UB.
bool get_tensor(const std::string& in, std::size_t* pos, Tensor* t) {
  std::uint32_t rank = 0;
  if (!get_u32(in, pos, &rank) || rank > 8) return false;
  const std::size_t max_elems = in.size() / sizeof(float);
  std::vector<int> shape;
  std::size_t elems = 1;
  for (std::uint32_t r = 0; r < rank; ++r) {
    std::uint32_t d = 0;
    if (!get_u32(in, pos, &d)) return false;
    if (d == 0 || d > 0x7fffffffu || d > max_elems || elems > max_elems / d)
      return false;
    shape.push_back(static_cast<int>(d));
    elems *= d;
  }
  if (*pos + elems * sizeof(float) > in.size()) return false;
  std::vector<float> data(elems);
  std::memcpy(data.data(), in.data() + *pos, elems * sizeof(float));
  *pos += elems * sizeof(float);
  *t = Tensor::from_vector(std::move(shape), std::move(data));
  return true;
}

// Dataset/pipeline-spec identity the (dataset-agnostic) preprocess_key is
// relative to. The eval-set size is a cheap tripwire against pairing one
// benchmark dataset's products with another's.
std::string batches_scope(const char* task_kind, std::size_t num_samples,
                          const PipelineSpec& spec) {
  std::ostringstream os;
  os << "bench-" << task_kind << "|n=" << num_samples << "|out=" << spec.out_h
     << "x" << spec.out_w << "|v1";
  return os.str();
}

}  // namespace

std::string encode_batches(const PreprocessedBatches& batches) {
  std::string out;
  put_u32(&out, kBatchesMagic);
  put_u32(&out, static_cast<std::uint32_t>(batches.batch_size));
  put_u32(&out, static_cast<std::uint32_t>(batches.num_samples));
  put_u32(&out, static_cast<std::uint32_t>(batches.inputs.size()));
  for (const Tensor& t : batches.inputs) {
    put_u32(&out, static_cast<std::uint32_t>(t.rank()));
    for (const int d : t.shape()) put_u32(&out, static_cast<std::uint32_t>(d));
    out.append(reinterpret_cast<const char*>(t.data()),
               t.size() * sizeof(float));
  }
  return out;
}

bool decode_batches(const std::string& bytes, PreprocessedBatches* out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, batch_size = 0, num_samples = 0, count = 0;
  if (!get_u32(bytes, &pos, &magic) || magic != kBatchesMagic ||
      !get_u32(bytes, &pos, &batch_size) ||
      !get_u32(bytes, &pos, &num_samples) || !get_u32(bytes, &pos, &count))
    return false;
  out->batch_size = static_cast<int>(batch_size);
  out->num_samples = static_cast<int>(num_samples);
  out->inputs.clear();
  // A malformed payload must read as `false`, never throw: dims are bounded
  // by what the remaining payload could possibly hold, so `elems` cannot
  // overflow and Tensor::from_vector cannot see a shape/data mismatch.
  const std::size_t max_elems = bytes.size() / sizeof(float);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t rank = 0;
    if (!get_u32(bytes, &pos, &rank) || rank > 8) return false;
    std::vector<int> shape;
    std::size_t elems = 1;
    for (std::uint32_t r = 0; r < rank; ++r) {
      std::uint32_t d = 0;
      if (!get_u32(bytes, &pos, &d)) return false;
      if (d == 0 || d > 0x7fffffffu || d > max_elems || elems > max_elems / d)
        return false;
      shape.push_back(static_cast<int>(d));
      elems *= d;
    }
    if (pos + elems * sizeof(float) > bytes.size()) return false;
    std::vector<float> data(elems);
    std::memcpy(data.data(), bytes.data() + pos, elems * sizeof(float));
    pos += elems * sizeof(float);
    out->inputs.push_back(Tensor::from_vector(std::move(shape), std::move(data)));
  }
  return pos == bytes.size();
}

std::string encode_raw_detections(const RawDetections& raw) {
  std::string out;
  put_u32(&out, kRawDetsMagic);
  put_u32(&out, static_cast<std::uint32_t>(raw.batches.size()));
  for (const RawDetectorOutput& b : raw.batches) {
    if (b.cls.size() != b.reg.size() || b.cls.size() != b.shapes.size())
      return std::string();  // malformed product: refuse to persist
    put_u32(&out, static_cast<std::uint32_t>(b.cls.size()));
    for (std::size_t l = 0; l < b.cls.size(); ++l) {
      put_u32(&out, static_cast<std::uint32_t>(b.shapes[l].first));
      put_u32(&out, static_cast<std::uint32_t>(b.shapes[l].second));
      put_tensor(&out, b.cls[l]);
      put_tensor(&out, b.reg[l]);
    }
  }
  return out;
}

bool decode_raw_detections(const std::string& bytes, RawDetections* out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, nbatches = 0;
  if (!get_u32(bytes, &pos, &magic) || magic != kRawDetsMagic ||
      !get_u32(bytes, &pos, &nbatches))
    return false;
  out->batches.clear();
  for (std::uint32_t b = 0; b < nbatches; ++b) {
    std::uint32_t nlevels = 0;
    if (!get_u32(bytes, &pos, &nlevels) || nlevels > 64) return false;
    RawDetectorOutput batch;
    for (std::uint32_t l = 0; l < nlevels; ++l) {
      std::uint32_t h = 0, w = 0;
      Tensor cls, reg;
      if (!get_u32(bytes, &pos, &h) || !get_u32(bytes, &pos, &w) ||
          !get_tensor(bytes, &pos, &cls) || !get_tensor(bytes, &pos, &reg))
        return false;
      batch.shapes.emplace_back(static_cast<int>(h), static_cast<int>(w));
      batch.cls.push_back(std::move(cls));
      batch.reg.push_back(std::move(reg));
    }
    out->batches.push_back(std::move(batch));
  }
  return pos == bytes.size();
}

namespace {

bool encode_batches_product(const core::StageProduct& product,
                            std::string* bytes) {
  *bytes = encode_batches(
      *static_cast<const PreprocessedBatches*>(product.get()));
  return true;
}

core::StageProduct decode_batches_product(const std::string& bytes) {
  auto batches = std::make_shared<PreprocessedBatches>();
  if (!decode_batches(bytes, batches.get())) return nullptr;
  return std::shared_ptr<const PreprocessedBatches>(std::move(batches));
}

// Classification/segmentation forward products are the bare metric double;
// persist it with exact bits.
bool encode_metric_product(const core::StageProduct& product,
                           std::string* bytes) {
  bytes->clear();
  put_u32(bytes, kMetricMagic);
  const double v = *static_cast<const double*>(product.get());
  bytes->append(reinterpret_cast<const char*>(&v), sizeof(v));
  return true;
}

core::StageProduct decode_metric_product(const std::string& bytes) {
  std::size_t pos = 0;
  std::uint32_t magic = 0;
  if (!get_u32(bytes, &pos, &magic) || magic != kMetricMagic ||
      bytes.size() != pos + sizeof(double))
    return nullptr;
  double v = 0.0;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  return std::make_shared<const double>(v);
}

// Stable fingerprint of a model's loaded parameters, BN state and INT8
// calibration ranges: forward products must never outlive the numbers that
// produced them, and the zoo's model names stay the same across retrains.
template <typename Model>
std::string weights_fingerprint(Model& model, const nn::ActRanges& ranges) {
  nn::ParamRefs params;
  model.collect(params);
  nn::StateRefs state;
  model.collect_state(state);
  std::uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_tensor = [&](const Tensor& t) {
    for (const int d : t.shape()) mix_bytes(&d, sizeof(d));
    mix_bytes(t.data(), t.size() * sizeof(float));
  };
  for (const nn::Param* p : params) mix_tensor(p->value);
  for (const Tensor* t : state) mix_tensor(*t);
  for (const auto& [key, obs] : ranges) {
    mix_bytes(key.data(), key.size());
    mix_bytes(&obs.lo, sizeof(obs.lo));
    mix_bytes(&obs.hi, sizeof(obs.hi));
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

// The lazily-computed (call_once) fingerprint shared by forward_scope and
// forward_batch_key: both must pin the exact weights the outputs came from.
template <typename Trained>
const std::string& cached_weights_fp(Trained& trained, std::once_flag& once,
                                     std::string* fp) {
  std::call_once(once, [&] {
    *fp = weights_fingerprint(*trained.model, trained.ranges);
  });
  return *fp;
}

// One scope builder for all three adapters, so the format (and the cached
// call_once fingerprint discipline) cannot drift between task kinds.
template <typename Trained>
std::string cached_forward_scope(const core::StagedEvalTask& task,
                                 Trained& trained, std::once_flag& once,
                                 std::string* fp) {
  return task.preprocess_scope() + "|fwd=" + task.cache_identity() + "#w" +
         cached_weights_fp(trained, once, fp);
}

// Forward-batch compatibility: the network invocation's identity is the
// weights (fingerprint — zoo names survive retrains) plus the inference
// knobs; pre-processing deliberately stays out, that is what gets stacked.
template <typename Trained>
std::string cached_batch_key(const core::StagedEvalTask& task, Trained& trained,
                             std::once_flag& once, std::string* fp,
                             const SysNoiseConfig& cfg) {
  return task.cache_identity() + "#w" + cached_weights_fp(trained, once, fp) +
         core::forward_key_suffix(cfg);
}

std::vector<const PreprocessedBatches*> batches_of(
    const std::vector<core::StageProduct>& pres) {
  std::vector<const PreprocessedBatches*> out;
  out.reserve(pres.size());
  for (const core::StageProduct& p : pres)
    out.push_back(static_cast<const PreprocessedBatches*>(p.get()));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

core::TaskTraits ClassifierTask::traits() const {
  return {core::TaskKind::kClassification, tc_.model->has_maxpool()};
}

std::string ClassifierTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, cls_pipeline_spec());
}

std::string ClassifierTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct ClassifierTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(preprocess_cls_batches(
      benchmark_cls_dataset().eval, cfg, cls_pipeline_spec()));
}

core::StageProduct ClassifierTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_classifier_batches(
      *tc_.model, batches, benchmark_cls_dataset().eval, cfg, &tc_.ranges));
}

double ClassifierTask::run_postprocess(const SysNoiseConfig&,
                                       const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

std::string ClassifierTask::forward_batch_key(const SysNoiseConfig& cfg) const {
  return cached_batch_key(*this, tc_, weights_fp_once_, &weights_fp_, cfg);
}

std::vector<core::StageProduct> ClassifierTask::run_forward_batched(
    const std::vector<const SysNoiseConfig*>& cfgs,
    const std::vector<core::StageProduct>& pres) const {
  const std::vector<double> accs = eval_classifier_batches_multi(
      *tc_.model, batches_of(pres), benchmark_cls_dataset().eval,
      *cfgs.front(), &tc_.ranges);
  std::vector<core::StageProduct> out;
  out.reserve(accs.size());
  for (const double acc : accs) out.push_back(std::make_shared<const double>(acc));
  return out;
}

std::string ClassifierTask::preprocess_scope() const {
  return batches_scope("cls", benchmark_cls_dataset().eval.size(),
                       cls_pipeline_spec());
}

bool ClassifierTask::encode_preprocess(const core::StageProduct& product,
                                       std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct ClassifierTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

std::string ClassifierTask::forward_scope() const {
  return cached_forward_scope(*this, tc_, weights_fp_once_, &weights_fp_);
}

bool ClassifierTask::encode_forward(const core::StageProduct& product,
                                    std::string* bytes) const {
  return encode_metric_product(product, bytes);
}

core::StageProduct ClassifierTask::decode_forward(
    const std::string& bytes) const {
  return decode_metric_product(bytes);
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

core::TaskTraits DetectorTask::traits() const {
  return {core::TaskKind::kDetection, td_.model->has_maxpool()};
}

std::string DetectorTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, det_pipeline_spec());
}

std::string DetectorTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct DetectorTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_det_batches(benchmark_det_dataset(), cfg, det_pipeline_spec()));
}

core::StageProduct DetectorTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const RawDetections>(
      detector_forward_batches(*td_.model, batches, cfg, &td_.ranges));
}

double DetectorTask::run_postprocess(const SysNoiseConfig& cfg,
                                     const core::StageProduct& fwd) const {
  const auto& raw = *static_cast<const RawDetections*>(fwd.get());
  return detector_map_from_raw(*td_.model, raw, benchmark_det_dataset(), cfg);
}

std::string DetectorTask::forward_batch_key(const SysNoiseConfig& cfg) const {
  return cached_batch_key(*this, td_, weights_fp_once_, &weights_fp_, cfg);
}

std::vector<core::StageProduct> DetectorTask::run_forward_batched(
    const std::vector<const SysNoiseConfig*>& cfgs,
    const std::vector<core::StageProduct>& pres) const {
  std::vector<RawDetections> raws = detector_forward_batches_multi(
      *td_.model, batches_of(pres), *cfgs.front(), &td_.ranges);
  std::vector<core::StageProduct> out;
  out.reserve(raws.size());
  for (RawDetections& raw : raws)
    out.push_back(std::make_shared<const RawDetections>(std::move(raw)));
  return out;
}

std::string DetectorTask::preprocess_scope() const {
  return batches_scope("det", benchmark_det_dataset().eval.size(),
                       det_pipeline_spec());
}

bool DetectorTask::encode_preprocess(const core::StageProduct& product,
                                     std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct DetectorTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

std::string DetectorTask::forward_scope() const {
  return cached_forward_scope(*this, td_, weights_fp_once_, &weights_fp_);
}

bool DetectorTask::encode_forward(const core::StageProduct& product,
                                  std::string* bytes) const {
  *bytes =
      encode_raw_detections(*static_cast<const RawDetections*>(product.get()));
  return !bytes->empty();
}

core::StageProduct DetectorTask::decode_forward(const std::string& bytes) const {
  auto raw = std::make_shared<RawDetections>();
  if (!decode_raw_detections(bytes, raw.get())) return nullptr;
  return std::shared_ptr<const RawDetections>(std::move(raw));
}

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

core::TaskTraits SegmenterTask::traits() const {
  return {core::TaskKind::kSegmentation, ts_.model->has_maxpool()};
}

std::string SegmenterTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, seg_pipeline_spec());
}

std::string SegmenterTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct SegmenterTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_seg_batches(benchmark_seg_dataset(), cfg, seg_pipeline_spec()));
}

core::StageProduct SegmenterTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_segmenter_batches(
      *ts_.model, batches, benchmark_seg_dataset(), cfg, &ts_.ranges));
}

double SegmenterTask::run_postprocess(const SysNoiseConfig&,
                                      const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

std::string SegmenterTask::forward_batch_key(const SysNoiseConfig& cfg) const {
  return cached_batch_key(*this, ts_, weights_fp_once_, &weights_fp_, cfg);
}

std::vector<core::StageProduct> SegmenterTask::run_forward_batched(
    const std::vector<const SysNoiseConfig*>& cfgs,
    const std::vector<core::StageProduct>& pres) const {
  const std::vector<double> mious = eval_segmenter_batches_multi(
      *ts_.model, batches_of(pres), benchmark_seg_dataset(), *cfgs.front(),
      &ts_.ranges);
  std::vector<core::StageProduct> out;
  out.reserve(mious.size());
  for (const double miou : mious)
    out.push_back(std::make_shared<const double>(miou));
  return out;
}

std::string SegmenterTask::preprocess_scope() const {
  return batches_scope("seg", benchmark_seg_dataset().eval.size(),
                       seg_pipeline_spec());
}

bool SegmenterTask::encode_preprocess(const core::StageProduct& product,
                                      std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct SegmenterTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

std::string SegmenterTask::forward_scope() const {
  return cached_forward_scope(*this, ts_, weights_fp_once_, &weights_fp_);
}

bool SegmenterTask::encode_forward(const core::StageProduct& product,
                                   std::string* bytes) const {
  return encode_metric_product(product, bytes);
}

core::StageProduct SegmenterTask::decode_forward(
    const std::string& bytes) const {
  return decode_metric_product(bytes);
}

// ---------------------------------------------------------------------------
// Seeded sweeps
// ---------------------------------------------------------------------------

core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache, core::SweepOptions opts) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  return core::sweep(task, opts);
}

core::AxisReport staged_sweep_seeded(const core::StagedEvalTask& task,
                                     double trained_metric,
                                     core::SweepCache& cache,
                                     core::SweepOptions opts,
                                     core::StageStats* stats,
                                     core::DiskStageCache* disk) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  const core::SweepPlan plan =
      core::plan_sweep(task, core::registry_or_global(opts));
  return core::assemble_report(
      plan, core::StagedExecutor(stats, disk).execute(task, plan, opts));
}

}  // namespace sysnoise::models
