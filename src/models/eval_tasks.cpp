#include "models/eval_tasks.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "core/executor.h"
#include "core/plan.h"

namespace sysnoise::models {

// ---------------------------------------------------------------------------
// Stage-1 product (de)serialization for the disk StageCache
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kBatchesMagic = 0x53504231;  // "SPB1"

void put_u32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool get_u32(const std::string& in, std::size_t* pos, std::uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

// Dataset/pipeline-spec identity the (dataset-agnostic) preprocess_key is
// relative to. The eval-set size is a cheap tripwire against pairing one
// benchmark dataset's products with another's.
std::string batches_scope(const char* task_kind, std::size_t num_samples,
                          const PipelineSpec& spec) {
  std::ostringstream os;
  os << "bench-" << task_kind << "|n=" << num_samples << "|out=" << spec.out_h
     << "x" << spec.out_w << "|v1";
  return os.str();
}

}  // namespace

std::string encode_batches(const PreprocessedBatches& batches) {
  std::string out;
  put_u32(&out, kBatchesMagic);
  put_u32(&out, static_cast<std::uint32_t>(batches.batch_size));
  put_u32(&out, static_cast<std::uint32_t>(batches.num_samples));
  put_u32(&out, static_cast<std::uint32_t>(batches.inputs.size()));
  for (const Tensor& t : batches.inputs) {
    put_u32(&out, static_cast<std::uint32_t>(t.rank()));
    for (const int d : t.shape()) put_u32(&out, static_cast<std::uint32_t>(d));
    out.append(reinterpret_cast<const char*>(t.data()),
               t.size() * sizeof(float));
  }
  return out;
}

bool decode_batches(const std::string& bytes, PreprocessedBatches* out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, batch_size = 0, num_samples = 0, count = 0;
  if (!get_u32(bytes, &pos, &magic) || magic != kBatchesMagic ||
      !get_u32(bytes, &pos, &batch_size) ||
      !get_u32(bytes, &pos, &num_samples) || !get_u32(bytes, &pos, &count))
    return false;
  out->batch_size = static_cast<int>(batch_size);
  out->num_samples = static_cast<int>(num_samples);
  out->inputs.clear();
  // A malformed payload must read as `false`, never throw: dims are bounded
  // by what the remaining payload could possibly hold, so `elems` cannot
  // overflow and Tensor::from_vector cannot see a shape/data mismatch.
  const std::size_t max_elems = bytes.size() / sizeof(float);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t rank = 0;
    if (!get_u32(bytes, &pos, &rank) || rank > 8) return false;
    std::vector<int> shape;
    std::size_t elems = 1;
    for (std::uint32_t r = 0; r < rank; ++r) {
      std::uint32_t d = 0;
      if (!get_u32(bytes, &pos, &d)) return false;
      if (d == 0 || d > 0x7fffffffu || d > max_elems || elems > max_elems / d)
        return false;
      shape.push_back(static_cast<int>(d));
      elems *= d;
    }
    if (pos + elems * sizeof(float) > bytes.size()) return false;
    std::vector<float> data(elems);
    std::memcpy(data.data(), bytes.data() + pos, elems * sizeof(float));
    pos += elems * sizeof(float);
    out->inputs.push_back(Tensor::from_vector(std::move(shape), std::move(data)));
  }
  return pos == bytes.size();
}

namespace {

bool encode_batches_product(const core::StageProduct& product,
                            std::string* bytes) {
  *bytes = encode_batches(
      *static_cast<const PreprocessedBatches*>(product.get()));
  return true;
}

core::StageProduct decode_batches_product(const std::string& bytes) {
  auto batches = std::make_shared<PreprocessedBatches>();
  if (!decode_batches(bytes, batches.get())) return nullptr;
  return std::shared_ptr<const PreprocessedBatches>(std::move(batches));
}

}  // namespace

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

core::TaskTraits ClassifierTask::traits() const {
  return {core::TaskKind::kClassification, tc_.model->has_maxpool()};
}

std::string ClassifierTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, cls_pipeline_spec());
}

std::string ClassifierTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct ClassifierTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(preprocess_cls_batches(
      benchmark_cls_dataset().eval, cfg, cls_pipeline_spec()));
}

core::StageProduct ClassifierTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_classifier_batches(
      *tc_.model, batches, benchmark_cls_dataset().eval, cfg, &tc_.ranges));
}

double ClassifierTask::run_postprocess(const SysNoiseConfig&,
                                       const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

std::string ClassifierTask::preprocess_scope() const {
  return batches_scope("cls", benchmark_cls_dataset().eval.size(),
                       cls_pipeline_spec());
}

bool ClassifierTask::encode_preprocess(const core::StageProduct& product,
                                       std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct ClassifierTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

core::TaskTraits DetectorTask::traits() const {
  return {core::TaskKind::kDetection, td_.model->has_maxpool()};
}

std::string DetectorTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, det_pipeline_spec());
}

std::string DetectorTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct DetectorTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_det_batches(benchmark_det_dataset(), cfg, det_pipeline_spec()));
}

core::StageProduct DetectorTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const RawDetections>(
      detector_forward_batches(*td_.model, batches, cfg, &td_.ranges));
}

double DetectorTask::run_postprocess(const SysNoiseConfig& cfg,
                                     const core::StageProduct& fwd) const {
  const auto& raw = *static_cast<const RawDetections*>(fwd.get());
  return detector_map_from_raw(*td_.model, raw, benchmark_det_dataset(), cfg);
}

std::string DetectorTask::preprocess_scope() const {
  return batches_scope("det", benchmark_det_dataset().eval.size(),
                       det_pipeline_spec());
}

bool DetectorTask::encode_preprocess(const core::StageProduct& product,
                                     std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct DetectorTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

core::TaskTraits SegmenterTask::traits() const {
  return {core::TaskKind::kSegmentation, ts_.model->has_maxpool()};
}

std::string SegmenterTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, seg_pipeline_spec());
}

std::string SegmenterTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct SegmenterTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_seg_batches(benchmark_seg_dataset(), cfg, seg_pipeline_spec()));
}

core::StageProduct SegmenterTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_segmenter_batches(
      *ts_.model, batches, benchmark_seg_dataset(), cfg, &ts_.ranges));
}

double SegmenterTask::run_postprocess(const SysNoiseConfig&,
                                      const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

std::string SegmenterTask::preprocess_scope() const {
  return batches_scope("seg", benchmark_seg_dataset().eval.size(),
                       seg_pipeline_spec());
}

bool SegmenterTask::encode_preprocess(const core::StageProduct& product,
                                      std::string* bytes) const {
  return encode_batches_product(product, bytes);
}

core::StageProduct SegmenterTask::decode_preprocess(
    const std::string& bytes) const {
  return decode_batches_product(bytes);
}

// ---------------------------------------------------------------------------
// Seeded sweeps
// ---------------------------------------------------------------------------

core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache, core::SweepOptions opts) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  return core::sweep(task, opts);
}

core::AxisReport staged_sweep_seeded(const core::StagedEvalTask& task,
                                     double trained_metric,
                                     core::SweepCache& cache,
                                     core::SweepOptions opts,
                                     core::StageStats* stats,
                                     core::DiskStageCache* disk) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  const core::SweepPlan plan =
      core::plan_sweep(task, core::registry_or_global(opts));
  return core::assemble_report(
      plan, core::StagedExecutor(stats, disk).execute(task, plan, opts));
}

}  // namespace sysnoise::models
