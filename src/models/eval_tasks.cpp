#include "models/eval_tasks.h"

#include <memory>
#include <utility>

namespace sysnoise::models {

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

core::TaskTraits ClassifierTask::traits() const {
  return {core::TaskKind::kClassification, tc_.model->has_maxpool()};
}

std::string ClassifierTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, cls_pipeline_spec());
}

std::string ClassifierTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct ClassifierTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(preprocess_cls_batches(
      benchmark_cls_dataset().eval, cfg, cls_pipeline_spec()));
}

core::StageProduct ClassifierTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_classifier_batches(
      *tc_.model, batches, benchmark_cls_dataset().eval, cfg, &tc_.ranges));
}

double ClassifierTask::run_postprocess(const SysNoiseConfig&,
                                       const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

core::TaskTraits DetectorTask::traits() const {
  return {core::TaskKind::kDetection, td_.model->has_maxpool()};
}

std::string DetectorTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, det_pipeline_spec());
}

std::string DetectorTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct DetectorTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_det_batches(benchmark_det_dataset(), cfg, det_pipeline_spec()));
}

core::StageProduct DetectorTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const RawDetections>(
      detector_forward_batches(*td_.model, batches, cfg, &td_.ranges));
}

double DetectorTask::run_postprocess(const SysNoiseConfig& cfg,
                                     const core::StageProduct& fwd) const {
  const auto& raw = *static_cast<const RawDetections*>(fwd.get());
  return detector_map_from_raw(*td_.model, raw, benchmark_det_dataset(), cfg);
}

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

core::TaskTraits SegmenterTask::traits() const {
  return {core::TaskKind::kSegmentation, ts_.model->has_maxpool()};
}

std::string SegmenterTask::preprocess_key(const SysNoiseConfig& cfg) const {
  return sysnoise::preprocess_key(cfg, seg_pipeline_spec());
}

std::string SegmenterTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct SegmenterTask::run_preprocess(const SysNoiseConfig& cfg) const {
  return std::make_shared<const PreprocessedBatches>(
      preprocess_seg_batches(benchmark_seg_dataset(), cfg, seg_pipeline_spec()));
}

core::StageProduct SegmenterTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& batches = *static_cast<const PreprocessedBatches*>(pre.get());
  return std::make_shared<const double>(eval_segmenter_batches(
      *ts_.model, batches, benchmark_seg_dataset(), cfg, &ts_.ranges));
}

double SegmenterTask::run_postprocess(const SysNoiseConfig&,
                                      const core::StageProduct& fwd) const {
  return *static_cast<const double*>(fwd.get());
}

// ---------------------------------------------------------------------------
// Seeded sweeps
// ---------------------------------------------------------------------------

core::AxisReport sweep_seeded(const core::EvalTask& task, double trained_metric,
                              core::SweepCache& cache, core::SweepOptions opts) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  return core::sweep(task, opts);
}

core::AxisReport staged_sweep_seeded(const core::StagedEvalTask& task,
                                     double trained_metric,
                                     core::SweepCache& cache,
                                     core::SweepOptions opts,
                                     core::StageStats* stats) {
  cache.seed(task, SysNoiseConfig::training_default(), trained_metric);
  opts.cache = &cache;
  return core::staged_sweep(task, opts, stats);
}

}  // namespace sysnoise::models
