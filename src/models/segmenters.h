// Segmentation models (CityScapes-substitute, Table 4).
//  * DeepLab-mini: max-pool stem backbone (ceil-mode noise applies, like
//    the paper's ResNet-50/101 DeepLabV3), context convs, 1x1 classifier,
//    then three 2x upsampling steps back to full resolution — each one
//    reading the upsample-interpolation SysNoise knob.
//  * UNet-mini: strided-conv encoder (no max-pool, matching the paper's
//    "-" ceil entry for U-Net), skip connections, upsampling decoder.
#pragma once

#include <memory>
#include <string>

#include "nn/layers.h"

namespace sysnoise::models {

class Segmenter {
 public:
  virtual ~Segmenter() = default;
  // Returns per-pixel logits [N, num_classes, H, W] at input resolution.
  virtual nn::Node* forward(nn::Tape& t, nn::Node* x, nn::BnMode bn) = 0;
  virtual void collect(nn::ParamRefs& out) = 0;
  virtual void collect_state(nn::StateRefs& out) = 0;
  virtual bool has_maxpool() const = 0;
};

// name: "DeepLab-S" | "DeepLab-M" (deeper) | "UNet".
std::unique_ptr<Segmenter> make_segmenter(const std::string& name, int num_classes,
                                          Rng& rng);

}  // namespace sysnoise::models
