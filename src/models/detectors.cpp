#include "models/detectors.h"

#include <algorithm>
#include <cmath>

#include "nn/ops_extra.h"

namespace sysnoise::models {

using namespace sysnoise::nn;
using detect::AnchorGrid;
using detect::Box;
using detect::BoxCoder;
using detect::Detection;
using detect::GtBox;

namespace {

struct ConvBn {
  Conv2d conv;
  BatchNorm2d bn;
  ConvBn(int in, int out, int k, int s, int p, Rng& rng, const std::string& id,
         int groups = 1)
      : conv(in, out, k, s, p, rng, id, groups, false), bn(out) {}
  Node* operator()(Tape& t, Node* x, BnMode mode, bool act = true) {
    Node* y = bn(t, conv(t, x), mode);
    return act ? relu(t, y) : y;
  }
  void collect(ParamRefs& out) {
    conv.collect(out);
    bn.collect(out);
  }
  void collect_state(StateRefs& out) { bn.collect_state(out); }
};

struct ResBlock {
  ConvBn c1;
  Conv2d c2;
  BatchNorm2d bn2;
  std::unique_ptr<ConvBn> down;
  ResBlock(int in, int out, int stride, Rng& rng, const std::string& id)
      : c1(in, out, 3, stride, 1, rng, id + ".c1"),
        c2(out, out, 3, 1, 1, rng, id + ".c2", 1, false),
        bn2(out) {
    if (stride != 1 || in != out)
      down = std::make_unique<ConvBn>(in, out, 1, stride, 0, rng, id + ".dn");
  }
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    Node* y = bn2(t, c2(t, c1(t, x, mode)), mode);
    Node* skip = down ? (*down)(t, x, mode, false) : x;
    return relu(t, add(t, y, skip));
  }
  void collect(ParamRefs& out) {
    c1.collect(out);
    c2.collect(out);
    bn2.collect(out);
    if (down) down->collect(out);
  }
  void collect_state(StateRefs& out) {
    c1.collect_state(out);
    bn2.collect_state(out);
    if (down) down->collect_state(out);
  }
};

constexpr int kFpnCh = 24;

}  // namespace

struct Detector::Impl {
  // Backbone producing C3 (s4), C4 (s8), C5 (s16) features.
  std::unique_ptr<ConvBn> stem;
  bool stem_maxpool = false;
  std::vector<std::unique_ptr<ResBlock>> stages;  // one block per stage
  // FPN laterals + smoothing.
  std::vector<std::unique_ptr<Conv2d>> lateral;
  std::vector<std::unique_ptr<Conv2d>> smooth;
  // Shared head tower + predictors.
  std::unique_ptr<ConvBn> tower;
  std::unique_ptr<Conv2d> cls_pred;
  std::unique_ptr<Conv2d> reg_pred;
};

Detector::Detector(const std::string& backbone, bool softmax_head, int num_classes,
                   Rng& rng)
    : impl_(std::make_shared<Impl>()),
      softmax_head_(softmax_head),
      num_classes_(num_classes) {
  const std::vector<int> chans = {16, 24, 32, 48};
  if (backbone == "resnet") {
    // Stem keeps full resolution, max-pool halves it (ceil-mode knob).
    impl_->stem = std::make_unique<ConvBn>(3, chans[0], 3, 1, 1, rng, "det.stem");
    impl_->stem_maxpool = true;
    has_maxpool_ = true;
  } else {  // mobilenet-style: strided conv stem, no pooling
    impl_->stem = std::make_unique<ConvBn>(3, chans[0], 3, 2, 1, rng, "det.stem");
  }
  for (int s = 0; s < 3; ++s)
    impl_->stages.push_back(std::make_unique<ResBlock>(
        chans[static_cast<std::size_t>(s)], chans[static_cast<std::size_t>(s + 1)], 2, rng,
        "det.s" + std::to_string(s)));
  for (int lvl = 0; lvl < 3; ++lvl) {
    impl_->lateral.push_back(std::make_unique<Conv2d>(
        chans[static_cast<std::size_t>(lvl + 1)], kFpnCh, 1, 1, 0, rng,
        "det.lat" + std::to_string(lvl)));
    impl_->smooth.push_back(std::make_unique<Conv2d>(
        kFpnCh, kFpnCh, 3, 1, 1, rng, "det.smooth" + std::to_string(lvl)));
  }
  impl_->tower = std::make_unique<ConvBn>(kFpnCh, kFpnCh, 3, 1, 1, rng, "det.tower");
  const int cls_ch = softmax_head_ ? num_classes_ + 1 : num_classes_;
  impl_->cls_pred =
      std::make_unique<Conv2d>(kFpnCh, cls_ch, 3, 1, 1, rng, "det.cls");
  impl_->reg_pred = std::make_unique<Conv2d>(kFpnCh, 4, 3, 1, 1, rng, "det.reg");
  // Focal-loss style prior: bias classification outputs toward background.
  if (!softmax_head_) impl_->cls_pred->b.value.fill(-2.0f);
}

DetectorOutput Detector::forward(Tape& t, Node* x, BnMode bn) {
  Node* y = (*impl_->stem)(t, x, bn);
  if (impl_->stem_maxpool) y = maxpool2d(t, y, 3, 2, 1);
  std::vector<Node*> feats;
  for (auto& st : impl_->stages) {
    y = (*st)(t, y, bn);
    feats.push_back(y);
  }
  // Top-down FPN (the upsample2x ctx knob acts here; trained with nearest).
  std::vector<Node*> pyr(3, nullptr);
  pyr[2] = (*impl_->lateral[2])(t, feats[2]);
  for (int lvl = 1; lvl >= 0; --lvl) {
    Node* lat = (*impl_->lateral[static_cast<std::size_t>(lvl)])(t, feats[static_cast<std::size_t>(lvl)]);
    Node* up = upsample2x(t, pyr[static_cast<std::size_t>(lvl + 1)]);
    // Ceil-mode pooling can shift feature sizes off by one; crop to match.
    if (up->value.dim(2) != lat->value.dim(2) ||
        up->value.dim(3) != lat->value.dim(3)) {
      const int n = up->value.dim(0), c = up->value.dim(1);
      const int h = std::min(up->value.dim(2), lat->value.dim(2));
      const int w = std::min(up->value.dim(3), lat->value.dim(3));
      Tensor cropped({n, c, h, w});
      for (int ni = 0; ni < n; ++ni)
        for (int ci = 0; ci < c; ++ci)
          for (int yy = 0; yy < h; ++yy)
            for (int xx = 0; xx < w; ++xx)
              cropped.at4(ni, ci, yy, xx) = up->value.at4(ni, ci, yy, xx);
      Node* up_src = up;
      up = t.make(std::move(cropped));
      up->backprop = [up, up_src, n, c, h, w]() {
        for (int ni = 0; ni < n; ++ni)
          for (int ci = 0; ci < c; ++ci)
            for (int yy = 0; yy < h; ++yy)
              for (int xx = 0; xx < w; ++xx)
                up_src->grad.at4(ni, ci, yy, xx) += up->grad.at4(ni, ci, yy, xx);
      };
      if (lat->value.dim(2) != h || lat->value.dim(3) != w) {
        Tensor lcrop({n, c, h, w});
        for (int ni = 0; ni < n; ++ni)
          for (int ci = 0; ci < c; ++ci)
            for (int yy = 0; yy < h; ++yy)
              for (int xx = 0; xx < w; ++xx)
                lcrop.at4(ni, ci, yy, xx) = lat->value.at4(ni, ci, yy, xx);
        Node* lat_src = lat;
        lat = t.make(std::move(lcrop));
        lat->backprop = [lat, lat_src, n, c, h, w]() {
          for (int ni = 0; ni < n; ++ni)
            for (int ci = 0; ci < c; ++ci)
              for (int yy = 0; yy < h; ++yy)
                for (int xx = 0; xx < w; ++xx)
                  lat_src->grad.at4(ni, ci, yy, xx) += lat->grad.at4(ni, ci, yy, xx);
        };
      }
    }
    pyr[static_cast<std::size_t>(lvl)] = add(t, lat, up);
  }
  DetectorOutput out;
  for (int lvl = 0; lvl < 3; ++lvl) {
    Node* p = (*impl_->smooth[static_cast<std::size_t>(lvl)])(t, pyr[static_cast<std::size_t>(lvl)]);
    Node* tw = (*impl_->tower)(t, p, bn);
    out.cls.push_back((*impl_->cls_pred)(t, tw));
    out.reg.push_back((*impl_->reg_pred)(t, tw));
    out.shapes.emplace_back(p->value.dim(2), p->value.dim(3));
  }
  return out;
}

void Detector::collect(ParamRefs& out) {
  impl_->stem->collect(out);
  for (auto& s : impl_->stages) s->collect(out);
  for (auto& l : impl_->lateral) l->collect(out);
  for (auto& s : impl_->smooth) s->collect(out);
  impl_->tower->collect(out);
  impl_->cls_pred->collect(out);
  impl_->reg_pred->collect(out);
}

void Detector::collect_state(StateRefs& out) {
  impl_->stem->collect_state(out);
  for (auto& s : impl_->stages) s->collect_state(out);
  impl_->tower->collect_state(out);
}

namespace {

// Per-anchor assignment: returns label (-1 ignore, 0..C-1 positive class,
// C = background) and matched GT index for positives.
struct Assignment {
  std::vector<int> label;
  std::vector<int> gt_index;
};

Assignment assign_anchors(const AnchorGrid& grid, const std::vector<GtBox>& gts,
                          int background_label) {
  Assignment a;
  const std::size_t n = grid.anchors.size();
  a.label.assign(n, background_label);
  a.gt_index.assign(n, -1);
  std::vector<float> best_iou(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t g = 0; g < gts.size(); ++g) {
      const float v = detect::iou(grid.anchors[i], gts[g].box);
      if (v > best_iou[i]) {
        best_iou[i] = v;
        a.gt_index[i] = static_cast<int>(g);
      }
    }
    if (best_iou[i] >= 0.5f)
      a.label[i] = gts[static_cast<std::size_t>(a.gt_index[i])].label;
    else if (best_iou[i] >= 0.4f)
      a.label[i] = -1;  // ignore band
    else
      a.gt_index[i] = -1;
  }
  // Force-match each GT's best anchor so no object is unsupervised.
  for (std::size_t g = 0; g < gts.size(); ++g) {
    float best = 0.0f;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float v = detect::iou(grid.anchors[i], gts[g].box);
      if (v > best) {
        best = v;
        best_i = i;
      }
    }
    if (best > 0.0f) {
      a.label[best_i] = gts[g].label;
      a.gt_index[best_i] = static_cast<int>(g);
    }
  }
  return a;
}

}  // namespace

Node* detection_loss(Tape& t, Detector& det, const DetectorOutput& out,
                     const std::vector<std::vector<GtBox>>& gts, Rng& sample_rng) {
  const int batch = out.cls[0]->value.dim(0);
  const int num_classes = det.num_classes();
  const bool softmax = det.softmax_head();
  const int cls_ch = softmax ? num_classes + 1 : num_classes;
  const BoxCoder coder{0.0f};  // training convention

  const AnchorGrid grid = detect::make_anchors(
      out.shapes, det.strides(), det.anchor_sizes());

  // Per-level anchor offsets into the flattened grid.
  std::vector<std::size_t> level_begin(out.shapes.size() + 1, 0);
  for (std::size_t lvl = 0; lvl < out.shapes.size(); ++lvl)
    level_begin[lvl + 1] =
        level_begin[lvl] +
        static_cast<std::size_t>(out.shapes[lvl].first) * out.shapes[lvl].second;

  Node* total = nullptr;
  for (std::size_t lvl = 0; lvl < out.cls.size(); ++lvl) {
    const int h = out.shapes[lvl].first, w = out.shapes[lvl].second;
    const int cells = h * w;
    // Reorder heads to [N, H*W, C'] for row-wise losses.
    Node* cls = reshape(t, nchw_to_nhwc(t, out.cls[lvl]), {batch, cells, cls_ch});
    Node* reg = reshape(t, nchw_to_nhwc(t, out.reg[lvl]), {batch, cells, 4});

    // Build targets across the batch.
    Tensor cls_target({batch, cells, cls_ch});
    Tensor cls_mask({batch, cells, cls_ch});
    std::vector<int> ce_labels(static_cast<std::size_t>(batch) * cells, 0);
    std::vector<float> ce_mask(static_cast<std::size_t>(batch) * cells, 0.0f);
    Tensor reg_target({batch, cells, 4});
    Tensor reg_mask({batch, cells, 4});
    int num_pos = 0;

    for (int b = 0; b < batch; ++b) {
      const Assignment a = assign_anchors(grid, gts[static_cast<std::size_t>(b)], num_classes);
      for (int cidx = 0; cidx < cells; ++cidx) {
        const std::size_t ai = level_begin[lvl] + static_cast<std::size_t>(cidx);
        const int lbl = a.label[ai];
        const std::size_t row = static_cast<std::size_t>(b) * cells + cidx;
        if (softmax) {
          ce_labels[row] = lbl < 0 ? num_classes : lbl;
          if (lbl >= 0 && lbl < num_classes) {
            ce_mask[row] = 1.0f;  // positive
          } else if (lbl == num_classes) {
            // Sample ~30% of negatives (R-CNN-style balancing).
            ce_mask[row] = sample_rng.bernoulli(0.3) ? 1.0f : 0.0f;
          }
        } else {
          if (lbl == -1) continue;  // ignore: mask stays 0
          for (int c = 0; c < num_classes; ++c) {
            cls_mask.at3(b, cidx, c) = 1.0f;
            cls_target.at3(b, cidx, c) = (lbl == c) ? 1.0f : 0.0f;
          }
        }
        if (lbl >= 0 && lbl < num_classes) {
          ++num_pos;
          float delta[4];
          coder.encode(grid.anchors[ai],
                       gts[static_cast<std::size_t>(b)][static_cast<std::size_t>(a.gt_index[ai])].box,
                       delta);
          for (int d = 0; d < 4; ++d) {
            reg_target.at3(b, cidx, d) = delta[d];
            reg_mask.at3(b, cidx, d) = 1.0f;
          }
        }
      }
    }

    const float norm = std::max(1, num_pos);
    Node* lcls = softmax
                     ? softmax_cross_entropy_masked(t, cls, ce_labels, ce_mask, norm)
                     : sigmoid_focal_loss(t, cls, cls_target, cls_mask, 0.25f, 2.0f,
                                          norm);
    Node* lreg = smooth_l1_loss(t, reg, reg_target, reg_mask, norm);
    Node* lvl_loss = add(t, lcls, lreg);
    total = total == nullptr ? lvl_loss : add(t, total, lvl_loss);
  }
  return total;
}

namespace {

// Shared decode core: both the tape-backed and the detached overloads view
// their per-level outputs as plain tensors.
std::vector<std::vector<Detection>> postprocess_tensors(
    const Detector& det, const std::vector<const Tensor*>& cls,
    const std::vector<const Tensor*>& reg,
    const std::vector<std::pair<int, int>>& shapes, const SysNoiseConfig& cfg,
    int image_size, float score_threshold, float nms_iou, int max_dets) {
  const int batch = cls[0]->dim(0);
  const int num_classes = det.num_classes();
  const bool softmax = det.softmax_head();
  const int cls_ch = softmax ? num_classes + 1 : num_classes;
  const BoxCoder coder{cfg.proposal_offset};  // deployment knob
  const AnchorGrid grid =
      detect::make_anchors(shapes, det.strides(), det.anchor_sizes());

  std::vector<std::size_t> level_begin(shapes.size() + 1, 0);
  for (std::size_t lvl = 0; lvl < shapes.size(); ++lvl)
    level_begin[lvl + 1] =
        level_begin[lvl] +
        static_cast<std::size_t>(shapes[lvl].first) * shapes[lvl].second;

  std::vector<std::vector<Detection>> results(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    std::vector<Detection> cands;
    for (std::size_t lvl = 0; lvl < cls.size(); ++lvl) {
      const int h = shapes[lvl].first, w = shapes[lvl].second;
      for (int cidx = 0; cidx < h * w; ++cidx) {
        const int cy = cidx / w, cx = cidx % w;
        // Per-anchor scores.
        float best_score = 0.0f;
        int best_label = -1;
        if (softmax) {
          // Softmax over classes+background.
          float mx = -1e30f;
          for (int c = 0; c < cls_ch; ++c)
            mx = std::max(mx, cls[lvl]->at4(b, c, cy, cx));
          double denom = 0.0;
          for (int c = 0; c < cls_ch; ++c)
            denom += std::exp(cls[lvl]->at4(b, c, cy, cx) - mx);
          for (int c = 0; c < num_classes; ++c) {
            const float p = static_cast<float>(
                std::exp(cls[lvl]->at4(b, c, cy, cx) - mx) / denom);
            if (p > best_score) {
              best_score = p;
              best_label = c;
            }
          }
        } else {
          for (int c = 0; c < num_classes; ++c) {
            const float z = cls[lvl]->at4(b, c, cy, cx);
            const float p = 1.0f / (1.0f + std::exp(-z));
            if (p > best_score) {
              best_score = p;
              best_label = c;
            }
          }
        }
        if (best_score < score_threshold || best_label < 0) continue;
        float delta[4];
        for (int d = 0; d < 4; ++d) delta[d] = reg[lvl]->at4(b, d, cy, cx);
        Box box = coder.decode(grid.anchors[level_begin[lvl] + static_cast<std::size_t>(cidx)],
                               delta);
        box.x1 = std::clamp(box.x1, 0.0f, static_cast<float>(image_size));
        box.y1 = std::clamp(box.y1, 0.0f, static_cast<float>(image_size));
        box.x2 = std::clamp(box.x2, 0.0f, static_cast<float>(image_size));
        box.y2 = std::clamp(box.y2, 0.0f, static_cast<float>(image_size));
        if (box.area() <= 0.0f) continue;
        cands.push_back({box, best_label, best_score});
      }
    }
    const std::vector<int> keep = detect::nms(cands, nms_iou);
    for (std::size_t i = 0; i < keep.size() && i < static_cast<std::size_t>(max_dets); ++i)
      results[static_cast<std::size_t>(b)].push_back(cands[static_cast<std::size_t>(keep[i])]);
  }
  return results;
}

}  // namespace

RawDetectorOutput detach_detector_output(const DetectorOutput& out) {
  RawDetectorOutput raw;
  raw.shapes = out.shapes;
  raw.cls.reserve(out.cls.size());
  raw.reg.reserve(out.reg.size());
  for (const nn::Node* n : out.cls) raw.cls.push_back(n->value);
  for (const nn::Node* n : out.reg) raw.reg.push_back(n->value);
  return raw;
}

std::vector<std::vector<Detection>> detection_postprocess(
    const Detector& det, const DetectorOutput& out, const SysNoiseConfig& cfg,
    int image_size, float score_threshold, float nms_iou, int max_dets) {
  std::vector<const Tensor*> cls, reg;
  for (const nn::Node* n : out.cls) cls.push_back(&n->value);
  for (const nn::Node* n : out.reg) reg.push_back(&n->value);
  return postprocess_tensors(det, cls, reg, out.shapes, cfg, image_size,
                             score_threshold, nms_iou, max_dets);
}

std::vector<std::vector<Detection>> detection_postprocess(
    const Detector& det, const RawDetectorOutput& out, const SysNoiseConfig& cfg,
    int image_size, float score_threshold, float nms_iou, int max_dets) {
  std::vector<const Tensor*> cls, reg;
  for (const Tensor& t : out.cls) cls.push_back(&t);
  for (const Tensor& t : out.reg) reg.push_back(&t);
  return postprocess_tensors(det, cls, reg, out.shapes, cfg, image_size,
                             score_threshold, nms_iou, max_dets);
}

}  // namespace sysnoise::models
