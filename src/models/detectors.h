// Detection models (COCO-substitute, Table 3): FPN over a small backbone
// with a one-stage anchor head.
//
// Two head styles mirror the paper's two detector families:
//  * "retinanet": per-anchor sigmoid classification trained with focal loss
//    (RetinaNet, Lin et al. 2017c);
//  * "faster_rcnn": per-anchor softmax over classes+background trained with
//    sampled cross-entropy (the R-CNN-family classification convention).
// See DESIGN.md §2 for why this one-stage simplification of Faster R-CNN
// preserves the SysNoise mechanisms (FPN upsampling, ceil-mode pooling,
// box-decode offset, precision) that Table 3 measures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "data/noise_config.h"
#include "detect/box.h"
#include "nn/layers.h"

namespace sysnoise::models {

struct DetectorOutput {
  std::vector<nn::Node*> cls;               // per level [N, C', H, W]
  std::vector<nn::Node*> reg;               // per level [N, 4, H, W]
  std::vector<std::pair<int, int>> shapes;  // feature map sizes per level
};

class Detector {
 public:
  // backbone: "resnet" (max-pool stem => ceil noise applies) or "mobilenet".
  Detector(const std::string& backbone, bool softmax_head, int num_classes,
           Rng& rng);

  DetectorOutput forward(nn::Tape& t, nn::Node* x, nn::BnMode bn);
  void collect(nn::ParamRefs& out);
  void collect_state(nn::StateRefs& out);
  bool has_maxpool() const { return has_maxpool_; }
  bool softmax_head() const { return softmax_head_; }
  int num_classes() const { return num_classes_; }
  const std::vector<int>& strides() const { return strides_; }
  const std::vector<float>& anchor_sizes() const { return anchor_sizes_; }

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  bool has_maxpool_ = false;
  bool softmax_head_ = false;
  int num_classes_ = 0;
  std::vector<int> strides_{4, 8, 16};
  std::vector<float> anchor_sizes_{12.0f, 24.0f, 48.0f};
};

// Build the training loss for a batch (targets assigned with IoU rules,
// boxes encoded with the training-side coder offset 0).
nn::Node* detection_loss(nn::Tape& t, Detector& det, const DetectorOutput& out,
                         const std::vector<std::vector<detect::GtBox>>& gts,
                         Rng& sample_rng);

// Tape-free forward outputs: the stage-2 intermediate of the staged
// evaluation split. Holds plain tensors so post-processing (the stage that
// reads proposal_offset) can re-run without re-running the forward pass.
struct RawDetectorOutput {
  std::vector<Tensor> cls;                  // per level [N, C', H, W]
  std::vector<Tensor> reg;                  // per level [N, 4, H, W]
  std::vector<std::pair<int, int>> shapes;  // feature map sizes per level
};

// Materialize a DetectorOutput's values off the tape.
RawDetectorOutput detach_detector_output(const DetectorOutput& out);

// Decode predictions into final detections under the given deployment
// config (proposal_offset is the post-processing SysNoise knob).
std::vector<std::vector<detect::Detection>> detection_postprocess(
    const Detector& det, const DetectorOutput& out, const SysNoiseConfig& cfg,
    int image_size, float score_threshold = 0.05f, float nms_iou = 0.5f,
    int max_dets = 20);

// Same decode over detached forward outputs (staged path).
std::vector<std::vector<detect::Detection>> detection_postprocess(
    const Detector& det, const RawDetectorOutput& out, const SysNoiseConfig& cfg,
    int image_size, float score_threshold = 0.05f, float nms_iou = 0.5f,
    int max_dets = 20);

}  // namespace sysnoise::models
