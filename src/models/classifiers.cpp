#include "models/classifiers.h"

#include <stdexcept>

namespace sysnoise::models {

using namespace sysnoise::nn;

namespace {

// ---------------------------------------------------------------------------
// Shared building blocks
// ---------------------------------------------------------------------------

struct ConvBn {
  Conv2d conv;
  BatchNorm2d bn;
  ConvBn(int in, int out, int k, int s, int p, Rng& rng, const std::string& id,
         int groups = 1)
      : conv(in, out, k, s, p, rng, id, groups, /*bias=*/false), bn(out) {}
  Node* operator()(Tape& t, Node* x, BnMode mode, bool act = true) {
    Node* y = bn(t, conv(t, x), mode);
    return act ? relu(t, y) : y;
  }
  void collect(ParamRefs& out) {
    conv.collect(out);
    bn.collect(out);
  }
  void collect_bn(ParamRefs& out) { bn.collect_affine(out); }
  void collect_state(StateRefs& out) { bn.collect_state(out); }
};

struct BasicBlock {
  ConvBn c1;
  Conv2d c2;
  BatchNorm2d bn2;
  std::unique_ptr<ConvBn> down;  // 1x1 projection when shape changes
  BasicBlock(int in, int out, int stride, Rng& rng, const std::string& id)
      : c1(in, out, 3, stride, 1, rng, id + ".c1"),
        c2(out, out, 3, 1, 1, rng, id + ".c2", 1, false),
        bn2(out) {
    if (stride != 1 || in != out)
      down = std::make_unique<ConvBn>(in, out, 1, stride, 0, rng, id + ".down");
  }
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    Node* y = c1(t, x, mode);
    y = bn2(t, c2(t, y), mode);
    Node* skip = down ? (*down)(t, x, mode, /*act=*/false) : x;
    return relu(t, add(t, y, skip));
  }
  void collect(ParamRefs& out) {
    c1.collect(out);
    c2.collect(out);
    bn2.collect(out);
    if (down) down->collect(out);
  }
  void collect_bn(ParamRefs& out) {
    c1.collect_bn(out);
    bn2.collect_affine(out);
    if (down) down->collect_bn(out);
  }
  void collect_state(StateRefs& out) {
    c1.collect_state(out);
    bn2.collect_state(out);
    if (down) down->collect_state(out);
  }
};

// ---------------------------------------------------------------------------
// ResNet-mini (stride-2 max-pool stem => ceil-mode noise applies)
// ---------------------------------------------------------------------------

class ResNetMini : public Classifier {
 public:
  ResNetMini(std::vector<int> widths, std::vector<int> depths, int num_classes,
             Rng& rng)
      : stem_(3, widths[0], 3, 1, 1, rng, "stem") {
    int in = widths[0];
    for (std::size_t s = 0; s < widths.size(); ++s) {
      for (int b = 0; b < depths[s]; ++b) {
        const int stride = (s > 0 && b == 0) ? 2 : 1;
        blocks_.push_back(std::make_unique<BasicBlock>(
            in, widths[s], stride, rng,
            "s" + std::to_string(s) + "b" + std::to_string(b)));
        in = widths[s];
      }
    }
    head_ = Linear(in, num_classes, rng, "head");
  }

  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = stem_(t, x, bn);
    y = maxpool2d(t, y, 3, 2, 1);  // ceil-mode knob acts here
    for (auto& b : blocks_) y = (*b)(t, y, bn);
    return head_(t, global_avgpool(t, y));
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    for (auto& b : blocks_) b->collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    stem_.collect_bn(out);
    for (auto& b : blocks_) b->collect_bn(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    for (auto& b : blocks_) b->collect_state(out);
  }
  bool has_maxpool() const override { return true; }

 private:
  ConvBn stem_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  Linear head_;
};

// ---------------------------------------------------------------------------
// MobileNetV2-mini (inverted residuals, depthwise convs, no max-pool)
// ---------------------------------------------------------------------------

struct InvertedResidual {
  std::unique_ptr<ConvBn> expand;  // 1x1 (skipped when t == 1)
  ConvBn dw;
  Conv2d project;
  BatchNorm2d bn_p;
  bool use_skip;
  InvertedResidual(int in, int out, int stride, int expand_ratio, Rng& rng,
                   const std::string& id)
      : dw(in * expand_ratio, in * expand_ratio, 3, stride, 1, rng, id + ".dw",
           /*groups=*/in * expand_ratio),
        project(in * expand_ratio, out, 1, 1, 0, rng, id + ".proj", 1, false),
        bn_p(out),
        use_skip(stride == 1 && in == out) {
    if (expand_ratio != 1)
      expand = std::make_unique<ConvBn>(in, in * expand_ratio, 1, 1, 0, rng,
                                        id + ".exp");
  }
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    Node* y = expand ? (*expand)(t, x, mode) : x;
    y = dw(t, y, mode);
    y = bn_p(t, project(t, y), mode);  // linear bottleneck: no activation
    return use_skip ? add(t, y, x) : y;
  }
  void collect(ParamRefs& out) {
    if (expand) expand->collect(out);
    dw.collect(out);
    project.collect(out);
    bn_p.collect(out);
  }
  void collect_bn(ParamRefs& out) {
    if (expand) expand->collect_bn(out);
    dw.collect_bn(out);
    bn_p.collect_affine(out);
  }
  void collect_state(StateRefs& out) {
    if (expand) expand->collect_state(out);
    dw.collect_state(out);
    bn_p.collect_state(out);
  }
};

class MobileNetMini : public Classifier {
 public:
  MobileNetMini(float width, int num_classes, Rng& rng)
      : stem_(3, ch(8, width), 3, 1, 1, rng, "stem") {
    const int c0 = ch(8, width), c1 = ch(16, width), c2 = ch(24, width),
              c3 = ch(32, width);
    blocks_.push_back(std::make_unique<InvertedResidual>(c0, c1, 2, 2, rng, "b0"));
    blocks_.push_back(std::make_unique<InvertedResidual>(c1, c1, 1, 2, rng, "b1"));
    blocks_.push_back(std::make_unique<InvertedResidual>(c1, c2, 2, 2, rng, "b2"));
    blocks_.push_back(std::make_unique<InvertedResidual>(c2, c2, 1, 2, rng, "b3"));
    blocks_.push_back(std::make_unique<InvertedResidual>(c2, c3, 2, 2, rng, "b4"));
    head_ = Linear(c3, num_classes, rng, "head");
  }
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = stem_(t, x, bn);
    for (auto& b : blocks_) y = (*b)(t, y, bn);
    return head_(t, global_avgpool(t, y));
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    for (auto& b : blocks_) b->collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    stem_.collect_bn(out);
    for (auto& b : blocks_) b->collect_bn(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    for (auto& b : blocks_) b->collect_state(out);
  }

 private:
  static int ch(int base, float width) {
    return std::max(4, static_cast<int>(base * width + 0.5f));
  }
  ConvBn stem_;
  std::vector<std::unique_ptr<InvertedResidual>> blocks_;
  Linear head_;
};

// ---------------------------------------------------------------------------
// RegNetX-mini (grouped-conv residual bottlenecks)
// ---------------------------------------------------------------------------

struct XBlock {
  ConvBn a;  // 1x1
  ConvBn b;  // 3x3 grouped
  Conv2d c;  // 1x1
  BatchNorm2d bn_c;
  std::unique_ptr<ConvBn> down;
  XBlock(int in, int out, int stride, int group_width, Rng& rng,
         const std::string& id)
      : a(in, out, 1, 1, 0, rng, id + ".a"),
        b(out, out, 3, stride, 1, rng, id + ".b", std::max(1, out / group_width)),
        c(out, out, 1, 1, 0, rng, id + ".c", 1, false),
        bn_c(out) {
    if (stride != 1 || in != out)
      down = std::make_unique<ConvBn>(in, out, 1, stride, 0, rng, id + ".down");
  }
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    Node* y = a(t, x, mode);
    y = b(t, y, mode);
    y = bn_c(t, c(t, y), mode);
    Node* skip = down ? (*down)(t, x, mode, false) : x;
    return relu(t, add(t, y, skip));
  }
  void collect(ParamRefs& out) {
    a.collect(out);
    b.collect(out);
    c.collect(out);
    bn_c.collect(out);
    if (down) down->collect(out);
  }
  void collect_bn(ParamRefs& out) {
    a.collect_bn(out);
    b.collect_bn(out);
    bn_c.collect_affine(out);
    if (down) down->collect_bn(out);
  }
  void collect_state(StateRefs& out) {
    a.collect_state(out);
    b.collect_state(out);
    bn_c.collect_state(out);
    if (down) down->collect_state(out);
  }
};

class RegNetMini : public Classifier {
 public:
  RegNetMini(int base_width, int depth, int num_classes, Rng& rng)
      : stem_(3, base_width, 3, 2, 1, rng, "stem") {
    int in = base_width;
    for (int i = 0; i < depth; ++i) {
      const int out = (i >= depth / 2) ? base_width * 2 : base_width;
      const int stride = (i == depth / 2) ? 2 : 1;
      blocks_.push_back(std::make_unique<XBlock>(in, out, stride, 8, rng,
                                                 "x" + std::to_string(i)));
      in = out;
    }
    head_ = Linear(in, num_classes, rng, "head");
  }
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = stem_(t, x, bn);
    for (auto& b : blocks_) y = (*b)(t, y, bn);
    return head_(t, global_avgpool(t, y));
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    for (auto& b : blocks_) b->collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    stem_.collect_bn(out);
    for (auto& b : blocks_) b->collect_bn(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    for (auto& b : blocks_) b->collect_state(out);
  }

 private:
  ConvBn stem_;
  std::vector<std::unique_ptr<XBlock>> blocks_;
  Linear head_;
};

// ---------------------------------------------------------------------------
// EfficientNet-mini (MBConv with squeeze-excitation and SiLU)
// ---------------------------------------------------------------------------

struct MbConvSe {
  ConvBn expand;
  ConvBn dw;
  Linear se_fc1, se_fc2;
  Conv2d project;
  BatchNorm2d bn_p;
  bool use_skip;
  MbConvSe(int in, int out, int stride, int expand_ratio, Rng& rng,
           const std::string& id)
      : expand(in, in * expand_ratio, 1, 1, 0, rng, id + ".exp"),
        dw(in * expand_ratio, in * expand_ratio, 3, stride, 1, rng, id + ".dw",
           in * expand_ratio),
        se_fc1(in * expand_ratio, std::max(2, in / 4), rng, id + ".se1"),
        se_fc2(std::max(2, in / 4), in * expand_ratio, rng, id + ".se2"),
        project(in * expand_ratio, out, 1, 1, 0, rng, id + ".proj", 1, false),
        bn_p(out),
        use_skip(stride == 1 && in == out) {}
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    Node* y = silu(t, expand(t, x, mode, /*act=*/false));
    y = silu(t, dw(t, y, mode, /*act=*/false));
    // Squeeze-excitation gate.
    Node* s = global_avgpool(t, y);
    s = sigmoid(t, se_fc2(t, silu(t, se_fc1(t, s))));
    y = channel_scale(t, y, s);
    y = bn_p(t, project(t, y), mode);
    return use_skip ? add(t, y, x) : y;
  }
  void collect(ParamRefs& out) {
    expand.collect(out);
    dw.collect(out);
    se_fc1.collect(out);
    se_fc2.collect(out);
    project.collect(out);
    bn_p.collect(out);
  }
  void collect_bn(ParamRefs& out) {
    expand.collect_bn(out);
    dw.collect_bn(out);
    bn_p.collect_affine(out);
  }
  void collect_state(StateRefs& out) {
    expand.collect_state(out);
    dw.collect_state(out);
    bn_p.collect_state(out);
  }
};

class EffNetMini : public Classifier {
 public:
  EffNetMini(float width, int num_classes, Rng& rng)
      : stem_(3, ch(8, width), 3, 1, 1, rng, "stem") {
    const int c0 = ch(8, width), c1 = ch(16, width), c2 = ch(32, width);
    blocks_.push_back(std::make_unique<MbConvSe>(c0, c1, 2, 2, rng, "m0"));
    blocks_.push_back(std::make_unique<MbConvSe>(c1, c1, 1, 2, rng, "m1"));
    blocks_.push_back(std::make_unique<MbConvSe>(c1, c2, 2, 2, rng, "m2"));
    blocks_.push_back(std::make_unique<MbConvSe>(c2, c2, 1, 2, rng, "m3"));
    head_ = Linear(c2, num_classes, rng, "head");
  }
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = silu(t, stem_(t, x, bn, false));
    for (auto& b : blocks_) y = (*b)(t, y, bn);
    return head_(t, global_avgpool(t, y));
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    for (auto& b : blocks_) b->collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    stem_.collect_bn(out);
    for (auto& b : blocks_) b->collect_bn(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    for (auto& b : blocks_) b->collect_state(out);
  }

 private:
  static int ch(int base, float width) {
    return std::max(4, static_cast<int>(base * width + 0.5f));
  }
  ConvBn stem_;
  std::vector<std::unique_ptr<MbConvSe>> blocks_;
  Linear head_;
};

// ---------------------------------------------------------------------------
// MCUNet-mini (the paper's most fragile, tiniest model)
// ---------------------------------------------------------------------------

class McuNetMini : public Classifier {
 public:
  McuNetMini(int num_classes, Rng& rng)
      : stem_(3, 8, 3, 2, 1, rng, "stem"),
        b0_(8, 12, 2, 1, rng, "b0"),
        b1_(12, 16, 1, 2, rng, "b1"),
        head_(16, num_classes, rng, "head") {}
  Node* forward(Tape& t, Node* x, BnMode bn) override {
    Node* y = stem_(t, x, bn);
    y = b0_(t, y, bn);
    y = b1_(t, y, bn);
    return head_(t, global_avgpool(t, y));
  }
  void collect(ParamRefs& out) override {
    stem_.collect(out);
    b0_.collect(out);
    b1_.collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    stem_.collect_bn(out);
    b0_.collect_bn(out);
    b1_.collect_bn(out);
  }
  void collect_state(StateRefs& out) override {
    stem_.collect_state(out);
    b0_.collect_state(out);
    b1_.collect_state(out);
  }

 private:
  ConvBn stem_;
  InvertedResidual b0_, b1_;
  Linear head_;
};

// ---------------------------------------------------------------------------
// ViT-mini
// ---------------------------------------------------------------------------

struct VitBlock {
  LayerNorm ln1, ln2;
  MultiHeadAttention attn;
  Linear mlp1, mlp2;
  VitBlock(int dim, int heads, Rng& rng, const std::string& id)
      : ln1(dim), ln2(dim),
        attn(dim, heads, /*causal=*/false, rng, id + ".attn"),
        mlp1(dim, 2 * dim, rng, id + ".mlp1"),
        mlp2(2 * dim, dim, rng, id + ".mlp2") {}
  Node* operator()(Tape& t, Node* x) {
    x = add(t, x, attn(t, ln1(t, x)));
    Node* m = mlp2(t, gelu(t, mlp1(t, ln2(t, x))));
    return add(t, x, m);
  }
  void collect(ParamRefs& out) {
    ln1.collect(out);
    ln2.collect(out);
    attn.collect(out);
    mlp1.collect(out);
    mlp2.collect(out);
  }
};

class VitMini : public Classifier {
 public:
  VitMini(int dim, int depth, int heads, int num_classes, Rng& rng)
      : patch_(3, dim, 4, 4, 0, rng, "patch"),
        pos_(Tensor({1, 64, dim})),
        norm_(dim),
        head_(dim, num_classes, rng, "head"),
        dim_(dim) {
    for (float& v : pos_.value.vec()) v = rng.normal_f(0.0f, 0.02f);
    for (int i = 0; i < depth; ++i)
      blocks_.push_back(std::make_unique<VitBlock>(dim, heads, rng,
                                                   "blk" + std::to_string(i)));
  }
  Node* forward(Tape& t, Node* x, BnMode) override {
    Node* y = patch_(t, x);  // [N, dim, 8, 8]
    const int n = y->value.dim(0);
    y = nchw_to_nhwc(t, y);
    y = reshape(t, y, {n, 64, dim_});
    y = add_pos_embedding(t, y, pos_);
    for (auto& b : blocks_) y = (*b)(t, y);
    y = norm_(t, y);
    return head_(t, mean_tokens(t, y));
  }
  void collect(ParamRefs& out) override {
    patch_.collect(out);
    out.push_back(&pos_);
    for (auto& b : blocks_) b->collect(out);
    norm_.collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    // TENT on transformers adapts the LayerNorm affine parameters.
    for (auto& b : blocks_) {
      b->ln1.collect(out);
      b->ln2.collect(out);
    }
    norm_.collect(out);
  }

 private:
  Conv2d patch_;
  Param pos_;
  std::vector<std::unique_ptr<VitBlock>> blocks_;
  LayerNorm norm_;
  Linear head_;
  int dim_;
};

// ---------------------------------------------------------------------------
// Swin-mini (windowed attention + patch merging)
// ---------------------------------------------------------------------------

class SwinMini : public Classifier {
 public:
  SwinMini(int dim, int depth1, int depth2, int heads, int num_classes, Rng& rng)
      : patch_(3, dim, 4, 4, 0, rng, "patch"),
        merge_fc_(4 * dim, 2 * dim, rng, "merge"),
        norm_(2 * dim),
        head_(2 * dim, num_classes, rng, "head"),
        dim_(dim) {
    for (int i = 0; i < depth1; ++i)
      stage1_.push_back(std::make_unique<VitBlock>(dim, heads, rng,
                                                   "s1b" + std::to_string(i)));
    for (int i = 0; i < depth2; ++i)
      stage2_.push_back(std::make_unique<VitBlock>(2 * dim, heads, rng,
                                                   "s2b" + std::to_string(i)));
  }
  Node* forward(Tape& t, Node* x, BnMode) override {
    Node* y = patch_(t, x);  // [N, dim, 8, 8]
    const int n = y->value.dim(0);
    y = nchw_to_nhwc(t, y);
    y = reshape(t, y, {n, 64, dim_});
    // Stage 1: attention inside 4x4 windows of the 8x8 token map.
    for (auto& b : stage1_) {
      Node* wtok = window_partition(t, y, 8, 8, 4);
      wtok = (*b)(t, wtok);
      y = window_merge(t, wtok, 8, 8, 4, n);
    }
    // Patch merging: 8x8 -> 4x4 tokens at twice the dim.
    y = merge_fc_(t, patch_merge(t, y, 8, 8));
    // Stage 2: one 4x4 window covers the map.
    for (auto& b : stage2_) y = (*b)(t, y);
    y = norm_(t, y);
    return head_(t, mean_tokens(t, y));
  }
  void collect(ParamRefs& out) override {
    patch_.collect(out);
    for (auto& b : stage1_) b->collect(out);
    merge_fc_.collect(out);
    for (auto& b : stage2_) b->collect(out);
    norm_.collect(out);
    head_.collect(out);
  }
  void collect_bn_affine(ParamRefs& out) override {
    for (auto& b : stage1_) {
      b->ln1.collect(out);
      b->ln2.collect(out);
    }
    for (auto& b : stage2_) {
      b->ln1.collect(out);
      b->ln2.collect(out);
    }
    norm_.collect(out);
  }

 private:
  Conv2d patch_;
  std::vector<std::unique_ptr<VitBlock>> stage1_, stage2_;
  Linear merge_fc_;
  LayerNorm norm_;
  Linear head_;
  int dim_;
};

}  // namespace

std::vector<ClassifierSpec> classifier_zoo() {
  return {
      {"MCUNet", "mcunet"},
      {"ResNet-XS", "resnet"},
      {"ResNet-S", "resnet"},
      {"ResNet-M", "resnet"},
      {"ResNet-L", "resnet"},
      {"MobileNetV2-0.5", "mobilenet"},
      {"MobileNetV2-1.0", "mobilenet"},
      {"RegNetX-S", "regnet"},
      {"RegNetX-M", "regnet"},
      {"EffNet-S", "effnet"},
      {"EffNet-M", "effnet"},
      {"ViT-T", "vit"},
      {"ViT-S", "vit"},
      {"Swin-T", "swin"},
      {"Swin-S", "swin"},
  };
}

std::unique_ptr<Classifier> make_classifier(const std::string& name, int num_classes,
                                            Rng& rng) {
  if (name == "MCUNet") return std::make_unique<McuNetMini>(num_classes, rng);
  if (name == "ResNet-XS")
    return std::make_unique<ResNetMini>(std::vector<int>{8, 16, 32},
                                        std::vector<int>{1, 1, 1}, num_classes, rng);
  if (name == "ResNet-S")
    return std::make_unique<ResNetMini>(std::vector<int>{12, 24, 48},
                                        std::vector<int>{1, 1, 1}, num_classes, rng);
  if (name == "ResNet-M")
    return std::make_unique<ResNetMini>(std::vector<int>{16, 32, 64},
                                        std::vector<int>{2, 2, 2}, num_classes, rng);
  if (name == "ResNet-L")
    return std::make_unique<ResNetMini>(std::vector<int>{24, 48, 96},
                                        std::vector<int>{2, 2, 2}, num_classes, rng);
  if (name == "MobileNetV2-0.5")
    return std::make_unique<MobileNetMini>(0.5f, num_classes, rng);
  if (name == "MobileNetV2-1.0")
    return std::make_unique<MobileNetMini>(1.0f, num_classes, rng);
  if (name == "RegNetX-S") return std::make_unique<RegNetMini>(16, 2, num_classes, rng);
  if (name == "RegNetX-M") return std::make_unique<RegNetMini>(24, 4, num_classes, rng);
  if (name == "EffNet-S") return std::make_unique<EffNetMini>(1.0f, num_classes, rng);
  if (name == "EffNet-M") return std::make_unique<EffNetMini>(1.5f, num_classes, rng);
  if (name == "ViT-T") return std::make_unique<VitMini>(32, 2, 4, num_classes, rng);
  if (name == "ViT-S") return std::make_unique<VitMini>(48, 3, 4, num_classes, rng);
  if (name == "Swin-T") return std::make_unique<SwinMini>(24, 1, 1, 4, num_classes, rng);
  if (name == "Swin-S") return std::make_unique<SwinMini>(32, 2, 1, 4, num_classes, rng);
  throw std::invalid_argument("make_classifier: unknown model " + name);
}

}  // namespace sysnoise::models
