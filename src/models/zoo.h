// Model zoo with a disk cache: every (model, dataset) pair is trained once
// per machine; subsequent test/bench runs load weights, BN statistics and
// INT8 calibration ranges from SYSNOISE_CACHE_DIR (default
// /tmp/sysnoise_model_cache).
#pragma once

#include <memory>
#include <string>

#include "models/train.h"

namespace sysnoise::models {

std::string cache_dir();

// Shared benchmark datasets (constructed once per process, deterministic).
const data::ClsDataset& benchmark_cls_dataset();
const data::DetDataset& benchmark_det_dataset();
const data::SegDataset& benchmark_seg_dataset();

// Per-task pipeline specs (decode->32x32 for classification; detection and
// segmentation use 64x64 but own their spec so either can diverge without
// touching the other).
PipelineSpec cls_pipeline_spec();
PipelineSpec det_pipeline_spec();
PipelineSpec seg_pipeline_spec();

struct TrainedClassifier {
  std::string name;
  std::string tag;  // retrained-variant tag ("" for the default recipe)
  std::unique_ptr<Classifier> model;
  nn::ActRanges ranges;  // INT8 calibration
  double trained_acc = 0.0;
};

// Train (or load) a classifier on the shared dataset with the default
// recipe. `tag` distinguishes retrained variants (mitigation studies);
// `prep` overrides the training preprocessor (mix training / augmentation).
TrainedClassifier get_classifier(const std::string& name,
                                 const std::string& tag = "",
                                 const ClsPreprocessor* prep = nullptr,
                                 const TrainConfig* train_override = nullptr);

struct TrainedDetector {
  std::string name;
  std::unique_ptr<Detector> model;
  nn::ActRanges ranges;
  double trained_map = 0.0;
};

// name: "FasterRCNN-ResNet" | "FasterRCNN-MobileNet" | "RetinaNet-ResNet" |
// "RetinaNet-MobileNet".
TrainedDetector get_detector(const std::string& name);

struct TrainedSegmenter {
  std::string name;
  std::unique_ptr<Segmenter> model;
  nn::ActRanges ranges;
  double trained_miou = 0.0;
};

// name: "DeepLab-S" | "DeepLab-M" | "UNet".
TrainedSegmenter get_segmenter(const std::string& name);

}  // namespace sysnoise::models
