// Binary (de)serialization of parameter lists + named tensors — backs the
// on-disk model cache so each model family is trained exactly once.
#pragma once

#include <string>
#include <vector>

#include "nn/tape.h"

namespace sysnoise::nn {

// Format: magic, count, then per tensor: rank, dims..., float data.
// Param order must match between save and load (checked by shape).
void save_params(const std::string& path, const std::vector<Param*>& params,
                 const std::vector<const Tensor*>& extra_state = {});

// Returns false if the file is missing; throws on shape mismatch.
bool load_params(const std::string& path, const std::vector<Param*>& params,
                 const std::vector<Tensor*>& extra_state = {});

// Serialize calibrated activation ranges alongside weights.
void save_ranges(const std::string& path, const ActRanges& ranges);
bool load_ranges(const std::string& path, ActRanges& ranges);

}  // namespace sysnoise::nn
