#include "nn/ops_extra.h"

#include <cmath>
#include <stdexcept>

namespace sysnoise::nn {

Node* silu(Tape& t, Node* x) {
  Tensor out = x->value;
  for (float& v : out.vec()) v = v / (1.0f + std::exp(-v));
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn]() {
    if (!xn->requires_grad) return;
    for (std::size_t i = 0; i < y->grad.size(); ++i) {
      const float v = xn->value[i];
      const float s = 1.0f / (1.0f + std::exp(-v));
      xn->grad[i] += y->grad[i] * (s + v * s * (1.0f - s));
    }
  };
  return y;
}

Node* channel_scale(Tape& t, Node* x, Node* s) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  if (s->value.dim(0) != n || s->value.dim(1) != c)
    throw std::invalid_argument("channel_scale: gate shape mismatch");
  Tensor out(x->value.shape());
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci) {
      const float g = s->value.at2(ni, ci);
      const float* p = &x->value.at4(ni, ci, 0, 0);
      float* o = &out.at4(ni, ci, 0, 0);
      for (int i = 0; i < h * w; ++i) o[i] = p[i] * g;
    }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  Node* sn = s;
  y->backprop = [y, xn, sn, n, c, h, w]() {
    for (int ni = 0; ni < n; ++ni)
      for (int ci = 0; ci < c; ++ci) {
        const float g = sn->value.at2(ni, ci);
        const float* go = &y->grad.at4(ni, ci, 0, 0);
        if (xn->requires_grad) {
          float* gx = &xn->grad.at4(ni, ci, 0, 0);
          for (int i = 0; i < h * w; ++i) gx[i] += go[i] * g;
        }
        if (sn->requires_grad) {
          const float* xv = &xn->value.at4(ni, ci, 0, 0);
          float acc = 0.0f;
          for (int i = 0; i < h * w; ++i) acc += go[i] * xv[i];
          sn->grad.at2(ni, ci) += acc;
        }
      }
  };
  return y;
}

Node* add_pos_embedding(Tape& t, Node* x, Param& pos) {
  const int b = x->value.dim(0), tt = x->value.dim(1), d = x->value.dim(2);
  if (pos.value.dim(1) != tt || pos.value.dim(2) != d)
    throw std::invalid_argument("add_pos_embedding: shape mismatch");
  Tensor out = x->value;
  for (int bi = 0; bi < b; ++bi)
    for (std::size_t i = 0; i < pos.value.size(); ++i)
      out[static_cast<std::size_t>(bi) * pos.value.size() + i] += pos.value[i];
  Node* y = t.make(std::move(out));
  Node* xn = x;
  Param* pp = &pos;
  y->backprop = [y, xn, pp, b]() {
    const std::size_t stride = pp->value.size();
    for (int bi = 0; bi < b; ++bi)
      for (std::size_t i = 0; i < stride; ++i) {
        const float g = y->grad[static_cast<std::size_t>(bi) * stride + i];
        pp->grad[i] += g;
        if (xn->requires_grad)
          xn->grad[static_cast<std::size_t>(bi) * stride + i] += g;
      }
  };
  return y;
}

Node* mean_tokens(Tape& t, Node* x) {
  const int b = x->value.dim(0), tt = x->value.dim(1), d = x->value.dim(2);
  Tensor out({b, d});
  const float inv = 1.0f / static_cast<float>(tt);
  for (int bi = 0; bi < b; ++bi)
    for (int ti = 0; ti < tt; ++ti)
      for (int di = 0; di < d; ++di)
        out.at2(bi, di) += x->value.at3(bi, ti, di) * inv;
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, b, tt, d, inv]() {
    if (!xn->requires_grad) return;
    for (int bi = 0; bi < b; ++bi)
      for (int ti = 0; ti < tt; ++ti)
        for (int di = 0; di < d; ++di)
          xn->grad.at3(bi, ti, di) += y->grad.at2(bi, di) * inv;
  };
  return y;
}

Node* nchw_to_nhwc(Tape& t, Node* x) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  Tensor out({n, h, w, c});
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci)
      for (int y = 0; y < h; ++y)
        for (int xx = 0; xx < w; ++xx)
          out.data()[((static_cast<std::size_t>(ni) * h + y) * w + xx) * c + ci] =
              x->value.at4(ni, ci, y, xx);
  Node* yq = t.make(std::move(out));
  Node* xn = x;
  yq->backprop = [yq, xn, n, c, h, w]() {
    if (!xn->requires_grad) return;
    for (int ni = 0; ni < n; ++ni)
      for (int ci = 0; ci < c; ++ci)
        for (int y = 0; y < h; ++y)
          for (int xx = 0; xx < w; ++xx)
            xn->grad.at4(ni, ci, y, xx) +=
                yq->grad.data()[((static_cast<std::size_t>(ni) * h + y) * w + xx) * c + ci];
  };
  return yq;
}

namespace {

// Shared index map builder for window partition: flat output token index ->
// flat input token index (within one batch item).
std::vector<int> window_index_map(int h, int w, int win) {
  std::vector<int> map;
  map.reserve(static_cast<std::size_t>(h) * w);
  for (int wy = 0; wy < h / win; ++wy)
    for (int wx = 0; wx < w / win; ++wx)
      for (int iy = 0; iy < win; ++iy)
        for (int ix = 0; ix < win; ++ix)
          map.push_back((wy * win + iy) * w + (wx * win + ix));
  return map;
}

}  // namespace

Node* window_partition(Tape& t, Node* x, int h, int w, int win) {
  const int b = x->value.dim(0), d = x->value.dim(2);
  if (x->value.dim(1) != h * w || h % win != 0 || w % win != 0)
    throw std::invalid_argument("window_partition: bad geometry");
  const int nw = (h / win) * (w / win);
  auto map = std::make_shared<std::vector<int>>(window_index_map(h, w, win));
  Tensor out({b * nw, win * win, d});
  for (int bi = 0; bi < b; ++bi)
    for (std::size_t i = 0; i < map->size(); ++i)
      std::copy_n(
          x->value.data() + (static_cast<std::size_t>(bi) * h * w + static_cast<std::size_t>((*map)[i])) * d,
          d,
          out.data() + (static_cast<std::size_t>(bi) * map->size() + i) * d);
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, map, b, h, w, d]() {
    if (!xn->requires_grad) return;
    for (int bi = 0; bi < b; ++bi)
      for (std::size_t i = 0; i < map->size(); ++i) {
        const float* g =
            y->grad.data() + (static_cast<std::size_t>(bi) * map->size() + i) * d;
        float* dst =
            xn->grad.data() +
            (static_cast<std::size_t>(bi) * h * w + static_cast<std::size_t>((*map)[i])) * d;
        for (int j = 0; j < d; ++j) dst[j] += g[j];
      }
  };
  return y;
}

Node* window_merge(Tape& t, Node* x, int h, int w, int win, int batch) {
  const int d = x->value.dim(2);
  auto map = std::make_shared<std::vector<int>>(window_index_map(h, w, win));
  Tensor out({batch, h * w, d});
  for (int bi = 0; bi < batch; ++bi)
    for (std::size_t i = 0; i < map->size(); ++i)
      std::copy_n(
          x->value.data() + (static_cast<std::size_t>(bi) * map->size() + i) * d, d,
          out.data() +
              (static_cast<std::size_t>(bi) * h * w + static_cast<std::size_t>((*map)[i])) * d);
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, map, batch, h, w, d]() {
    if (!xn->requires_grad) return;
    for (int bi = 0; bi < batch; ++bi)
      for (std::size_t i = 0; i < map->size(); ++i) {
        const float* g =
            y->grad.data() +
            (static_cast<std::size_t>(bi) * h * w + static_cast<std::size_t>((*map)[i])) * d;
        float* dst =
            xn->grad.data() + (static_cast<std::size_t>(bi) * map->size() + i) * d;
        for (int j = 0; j < d; ++j) dst[j] += g[j];
      }
  };
  return y;
}

Node* patch_merge(Tape& t, Node* x, int h, int w) {
  const int b = x->value.dim(0), d = x->value.dim(2);
  if (x->value.dim(1) != h * w || h % 2 != 0 || w % 2 != 0)
    throw std::invalid_argument("patch_merge: bad geometry");
  const int oh = h / 2, ow = w / 2;
  Tensor out({b, oh * ow, 4 * d});
  for (int bi = 0; bi < b; ++bi)
    for (int oy = 0; oy < oh; ++oy)
      for (int ox = 0; ox < ow; ++ox) {
        float* dst =
            out.data() +
            (static_cast<std::size_t>(bi) * oh * ow + static_cast<std::size_t>(oy) * ow + ox) * 4 * d;
        int slot = 0;
        for (int dy = 0; dy < 2; ++dy)
          for (int dx = 0; dx < 2; ++dx) {
            const int src_tok = (2 * oy + dy) * w + (2 * ox + dx);
            std::copy_n(
                x->value.data() + (static_cast<std::size_t>(bi) * h * w + src_tok) * d, d,
                dst + slot * d);
            ++slot;
          }
      }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, b, h, w, d]() {
    if (!xn->requires_grad) return;
    const int oh = h / 2, ow = w / 2;
    for (int bi = 0; bi < b; ++bi)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const float* g =
              y->grad.data() +
              (static_cast<std::size_t>(bi) * oh * ow + static_cast<std::size_t>(oy) * ow + ox) * 4 * d;
          int slot = 0;
          for (int dy = 0; dy < 2; ++dy)
            for (int dx = 0; dx < 2; ++dx) {
              const int src_tok = (2 * oy + dy) * w + (2 * ox + dx);
              float* dst =
                  xn->grad.data() + (static_cast<std::size_t>(bi) * h * w + src_tok) * d;
              for (int j = 0; j < d; ++j) dst[j] += g[slot * d + j];
              ++slot;
            }
        }
  };
  return y;
}

}  // namespace sysnoise::nn
