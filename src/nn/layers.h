// Parameter-owning layer structs. Each is a thin wrapper that owns Params
// (and running stats) and forwards through the ops in ops.h; models compose
// them freely in their own forward functions.
#pragma once

#include <string>
#include <vector>

#include "nn/ops.h"
#include "tensor/rng.h"

namespace sysnoise::nn {

// Collects every trainable Param of a module tree (for optimizers and
// serialization). Layers register themselves via collect().
using ParamRefs = std::vector<Param*>;
// Non-trainable persistent state (batch-norm running statistics).
using StateRefs = std::vector<Tensor*>;

struct Conv2d {
  Param w;  // [OC, IC/groups, K, K]
  Param b;  // [OC] (empty when !has_bias)
  Conv2dSpec spec;
  bool has_bias = true;
  std::string id;

  Conv2d() = default;
  Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad, Rng& rng,
         std::string layer_id, int groups = 1, bool bias = true);
  Node* operator()(Tape& t, Node* x) {
    return conv2d(t, x, w, has_bias ? &b : nullptr, spec, id);
  }
  void collect(ParamRefs& out);
};

struct Linear {
  Param w;  // [out, in]
  Param b;  // [out]
  bool has_bias = true;
  std::string id;

  Linear() = default;
  Linear(int in_f, int out_f, Rng& rng, std::string layer_id, bool bias = true);
  Node* operator()(Tape& t, Node* x) {
    return linear(t, x, w, has_bias ? &b : nullptr, id);
  }
  void collect(ParamRefs& out);
};

struct BatchNorm2d {
  Param gamma, beta;
  Tensor running_mean, running_var;

  BatchNorm2d() = default;
  explicit BatchNorm2d(int channels);
  // Mode selected from the tape: training -> kTrain, else adapt flag.
  Node* operator()(Tape& t, Node* x, BnMode mode) {
    return batchnorm2d(t, x, gamma, beta, running_mean, running_var, mode);
  }
  void collect(ParamRefs& out);
  // Affine-only refs (what TENT is allowed to update).
  void collect_affine(ParamRefs& out);
  // Running statistics (persisted with the weights).
  void collect_state(StateRefs& out) {
    out.push_back(&running_mean);
    out.push_back(&running_var);
  }
};

struct LayerNorm {
  Param gamma, beta;
  LayerNorm() = default;
  explicit LayerNorm(int dim);
  Node* operator()(Tape& t, Node* x) { return layernorm(t, x, gamma, beta); }
  void collect(ParamRefs& out);
};

struct Embedding {
  Param table;  // [V, D]
  Embedding() = default;
  Embedding(int vocab, int dim, Rng& rng);
  Node* operator()(Tape& t, const std::vector<int>& ids, int batch, int seq) {
    return embedding(t, ids, batch, seq, table);
  }
  void collect(ParamRefs& out);
};

// Multi-head self-attention block: q/k/v/out projections + attention core.
struct MultiHeadAttention {
  Linear wq, wk, wv, wo;
  int heads = 1;
  bool causal = false;

  MultiHeadAttention() = default;
  MultiHeadAttention(int dim, int num_heads, bool causal_mask, Rng& rng,
                     const std::string& layer_id);
  Node* operator()(Tape& t, Node* x);
  void collect(ParamRefs& out);
};

// Initializers (deterministic given the rng).
Tensor kaiming_normal(std::vector<int> shape, int fan_in, Rng& rng);
Tensor xavier_uniform(std::vector<int> shape, int fan_in, int fan_out, Rng& rng);

}  // namespace sysnoise::nn
