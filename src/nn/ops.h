// Differentiable operations recorded on a Tape.
//
// Convention: every op appends exactly one Node whose backprop closure
// accumulates into the grads of its inputs (and of any Param it uses).
// Layer-identity strings feed the INT8 calibration/quantization hooks.
//
// Per-sample forward contract: in eval mode (BnMode::kEval, no
// calibration), every op's output for batch item n depends ONLY on input
// item n — batchnorm uses running stats, pooling/conv/linear/upsample are
// per-sample loops or per-row GEMMs with a fixed accumulation order, and
// the precision hooks quantize elementwise against calibrated ranges. The
// cross-config batched forward engine (core/executor.cpp) relies on this:
// stacking batches from several sweep configs along the leading axis and
// splitting the outputs must be bit-identical to separate forwards (tested
// in tests/test_batched_forward.cpp). Any new op that mixes information
// across the batch dimension in eval mode breaks that contract and must
// not be reachable from model forwards, or batching must be disabled for
// tasks using it (forward_batch_key() returning "").
#pragma once

#include <string>
#include <vector>

#include "nn/tape.h"

namespace sysnoise::nn {

// ---- convolution & friends -------------------------------------------------

struct Conv2dSpec {
  int stride = 1;
  int pad = 0;
  int groups = 1;
};

// x: [N, C, H, W]; w: [OC, C/groups, K, K]; optional bias [OC].
Node* conv2d(Tape& t, Node* x, Param& w, Param* bias, const Conv2dSpec& spec,
             const std::string& layer_id);

// x: [..., in]; w: [out, in]; bias [out].
Node* linear(Tape& t, Node* x, Param& w, Param* bias, const std::string& layer_id);

// Max pooling; honours t.ctx.ceil_mode (the SysNoise knob).
Node* maxpool2d(Tape& t, Node* x, int kernel, int stride, int pad);

// Average pooling (always floor mode; not a paper noise source).
Node* avgpool2d(Tape& t, Node* x, int kernel, int stride, int pad);

Node* global_avgpool(Tape& t, Node* x);  // [N,C,H,W] -> [N,C]

// 2x spatial upsampling; interpolation from t.ctx.upsample (SysNoise knob).
Node* upsample2x(Tape& t, Node* x);

// Pooled output spatial size (exposed for tests; PyTorch semantics).
int pooled_size(int in, int kernel, int stride, int pad, bool ceil_mode);

// ---- normalization ----------------------------------------------------------

enum class BnMode {
  kTrain,  // batch stats, update running stats
  kEval,   // running stats
  kAdapt,  // batch stats, frozen running stats (test-time adaptation / TENT)
};

Node* batchnorm2d(Tape& t, Node* x, Param& gamma, Param& beta, Tensor& running_mean,
                  Tensor& running_var, BnMode mode, float momentum = 0.1f,
                  float eps = 1e-5f);

// LayerNorm over the last dimension; x: [..., D].
Node* layernorm(Tape& t, Node* x, Param& gamma, Param& beta, float eps = 1e-5f);

// ---- elementwise / shape ----------------------------------------------------

Node* relu(Tape& t, Node* x);
Node* gelu(Tape& t, Node* x);
Node* sigmoid(Tape& t, Node* x);
Node* add(Tape& t, Node* a, Node* b);
Node* scale(Tape& t, Node* x, float s);
Node* reshape(Tape& t, Node* x, std::vector<int> shape);
Node* flatten2d(Tape& t, Node* x);  // [N, ...] -> [N, rest]
// Concatenate along channel axis; inputs [N,C?,H,W] with equal N,H,W.
Node* concat_channels(Tape& t, Node* a, Node* b);

// ---- attention / embedding --------------------------------------------------

// Scaled dot-product attention core (projections are separate linear ops).
// q,k,v: [B, T, D]; heads must divide D. Optional causal mask.
Node* attention_core(Tape& t, Node* q, Node* k, Node* v, int heads, bool causal);

// ids: flat [B*T] token ids; table: [V, D]; returns [B, T, D].
Node* embedding(Tape& t, const std::vector<int>& ids, int batch, int seq, Param& table);

// ---- losses (each returns a scalar [1] node) --------------------------------

Node* softmax_cross_entropy(Tape& t, Node* logits, const std::vector<int>& labels);
// Masked variant for dense prediction: rows with mask==0 contribute nothing;
// loss divided by `normalizer` (not the row count).
Node* softmax_cross_entropy_masked(Tape& t, Node* logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& mask,
                                   float normalizer);
// Mean entropy of softmax predictions (TENT's adaptation objective).
Node* softmax_entropy(Tape& t, Node* logits);
Node* mse_loss(Tape& t, Node* pred, const Tensor& target);
// Per-element binary focal loss on logits; `targets` in {0,1}, `mask` 0/1
// selects contributing elements; normalized by `normalizer`.
Node* sigmoid_focal_loss(Tape& t, Node* logits, const Tensor& targets,
                         const Tensor& mask, float alpha, float gamma,
                         float normalizer);
// Smooth-L1 (Huber, beta=1) over masked elements / normalizer.
Node* smooth_l1_loss(Tape& t, Node* pred, const Tensor& target, const Tensor& mask,
                     float normalizer);

// Softmax probabilities of a logits tensor [N, C] (inference helper, no grad).
Tensor softmax_probs(const Tensor& logits);
// Row-wise log-softmax (inference helper, no grad).
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace sysnoise::nn
