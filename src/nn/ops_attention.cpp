#include <cmath>
#include <stdexcept>

#include "nn/ops.h"

namespace sysnoise::nn {

namespace {

// Strided view helpers: element (b, t, h*dh + i) of a [B,T,D] tensor.
inline float& elem(Tensor& t, int b, int tt, int d_off, int i, int T, int D) {
  return t.data()[(static_cast<std::size_t>(b) * T + tt) * D + d_off + i];
}
inline float elem(const Tensor& t, int b, int tt, int d_off, int i, int T, int D) {
  return t.data()[(static_cast<std::size_t>(b) * T + tt) * D + d_off + i];
}

}  // namespace

Node* attention_core(Tape& tape, Node* q, Node* k, Node* v, int heads, bool causal) {
  const int b = q->value.dim(0), t = q->value.dim(1), d = q->value.dim(2);
  if (d % heads != 0) throw std::invalid_argument("attention: heads must divide D");
  const int dh = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  // Attention probabilities saved for backward: [B, H, T, T].
  auto probs = std::make_shared<Tensor>(Tensor({b, heads, t, t}));
  Tensor out({b, t, d});

  for (int bi = 0; bi < b; ++bi) {
    for (int h = 0; h < heads; ++h) {
      const int off = h * dh;
      float* prow_base =
          probs->data() + (static_cast<std::size_t>(bi) * heads + h) * t * t;
      for (int i = 0; i < t; ++i) {
        float* prow = prow_base + static_cast<std::size_t>(i) * t;
        const int jmax = causal ? i + 1 : t;
        float mx = -std::numeric_limits<float>::infinity();
        for (int j = 0; j < jmax; ++j) {
          float s = 0.0f;
          for (int e = 0; e < dh; ++e)
            s += elem(q->value, bi, i, off, e, t, d) *
                 elem(k->value, bi, j, off, e, t, d);
          prow[j] = s * inv_sqrt;
          mx = std::max(mx, prow[j]);
        }
        double denom = 0.0;
        for (int j = 0; j < jmax; ++j) {
          prow[j] = std::exp(prow[j] - mx);
          denom += prow[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int j = 0; j < jmax; ++j) prow[j] *= inv;
        for (int j = jmax; j < t; ++j) prow[j] = 0.0f;  // masked
        // O_i = sum_j P_ij V_j
        for (int e = 0; e < dh; ++e) {
          float acc = 0.0f;
          for (int j = 0; j < jmax; ++j)
            acc += prow[j] * elem(v->value, bi, j, off, e, t, d);
          elem(out, bi, i, off, e, t, d) = acc;
        }
      }
    }
  }

  Node* y = tape.make(std::move(out));
  Node* qn = q;
  Node* kn = k;
  Node* vn = v;
  y->backprop = [y, qn, kn, vn, probs, b, t, d, dh, heads, inv_sqrt, causal]() {
    std::vector<float> dp(static_cast<std::size_t>(t));
    for (int bi = 0; bi < b; ++bi) {
      for (int h = 0; h < heads; ++h) {
        const int off = h * dh;
        const float* prow_base =
            probs->data() + (static_cast<std::size_t>(bi) * heads + h) * t * t;
        for (int i = 0; i < t; ++i) {
          const float* prow = prow_base + static_cast<std::size_t>(i) * t;
          const int jmax = causal ? i + 1 : t;
          // dP_ij = sum_e dO_ie V_je ; dV_je += P_ij dO_ie
          double dot = 0.0;
          for (int j = 0; j < jmax; ++j) {
            float acc = 0.0f;
            for (int e = 0; e < dh; ++e)
              acc += elem(y->grad, bi, i, off, e, t, d) *
                     elem(vn->value, bi, j, off, e, t, d);
            dp[static_cast<std::size_t>(j)] = acc;
            dot += static_cast<double>(acc) * prow[j];
          }
          if (vn->requires_grad) {
            for (int j = 0; j < jmax; ++j) {
              const float pij = prow[j];
              if (pij == 0.0f) continue;
              for (int e = 0; e < dh; ++e)
                elem(vn->grad, bi, j, off, e, t, d) +=
                    pij * elem(y->grad, bi, i, off, e, t, d);
            }
          }
          // dS_ij = P_ij (dP_ij - dot) ; dQ_i += dS_ij K_j * inv_sqrt etc.
          for (int j = 0; j < jmax; ++j) {
            const float ds = prow[j] * (dp[static_cast<std::size_t>(j)] -
                                        static_cast<float>(dot)) *
                             inv_sqrt;
            if (ds == 0.0f) continue;
            for (int e = 0; e < dh; ++e) {
              if (qn->requires_grad)
                elem(qn->grad, bi, i, off, e, t, d) +=
                    ds * elem(kn->value, bi, j, off, e, t, d);
              if (kn->requires_grad)
                elem(kn->grad, bi, j, off, e, t, d) +=
                    ds * elem(qn->value, bi, i, off, e, t, d);
            }
          }
        }
      }
    }
  };
  return y;
}

}  // namespace sysnoise::nn
