#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/ops.h"
#include "tensor/backend.h"
#include "tensor/gemm.h"

namespace sysnoise::nn {

namespace {

void im2col(const Tensor& x, int n, int c_begin, int c_count, int k, int stride,
            int pad, int oh, int ow, float* col) {
  const int h = x.dim(2), w = x.dim(3);
  // col layout: [c_count*k*k, oh*ow]
  for (int c = 0; c < c_count; ++c)
    for (int ky = 0; ky < k; ++ky)
      for (int kx = 0; kx < k; ++kx) {
        float* row = col + static_cast<std::size_t>((c * k + ky) * k + kx) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride - pad + kx;
            row[oy * ow + ox] =
                (iy >= 0 && iy < h && ix >= 0 && ix < w)
                    ? x.at4(n, c_begin + c, iy, ix)
                    : 0.0f;
          }
        }
      }
}

void col2im_acc(const float* col, int n, int c_begin, int c_count, int k, int stride,
                int pad, int oh, int ow, Tensor& gx) {
  const int h = gx.dim(2), w = gx.dim(3);
  for (int c = 0; c < c_count; ++c)
    for (int ky = 0; ky < k; ++ky)
      for (int kx = 0; kx < k; ++kx) {
        const float* row = col + static_cast<std::size_t>((c * k + ky) * k + kx) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) continue;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride - pad + kx;
            if (ix < 0 || ix >= w) continue;
            gx.at4(n, c_begin + c, iy, ix) += row[oy * ow + ox];
          }
        }
      }
}

}  // namespace

int pooled_size(int in, int kernel, int stride, int pad, bool ceil_mode) {
  const int numer = in + 2 * pad - kernel;
  int out;
  if (ceil_mode)
    out = static_cast<int>(std::ceil(static_cast<double>(numer) / stride)) + 1;
  else
    out = numer / stride + 1;
  if (ceil_mode && (out - 1) * stride >= in + pad) --out;  // PyTorch rule
  return std::max(out, 1);
}

Node* conv2d(Tape& t, Node* x, Param& w, Param* bias, const Conv2dSpec& spec,
             const std::string& layer_id) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            wd = x->value.dim(3);
  const int oc = w.value.dim(0), icg = w.value.dim(1), k = w.value.dim(2);
  const int groups = spec.groups;
  if (c != icg * groups || oc % groups != 0)
    throw std::invalid_argument("conv2d: channel/group mismatch");
  const int oh = (h + 2 * spec.pad - k) / spec.stride + 1;
  const int ow = (wd + 2 * spec.pad - k) / spec.stride + 1;
  const int ocg = oc / groups;
  const int col_rows = icg * k * k;

  // Deployment-precision view of inputs and weights.
  Tensor xin = x->value;
  apply_activation_precision(t.ctx, layer_id + ".in", xin);
  const Tensor wq = apply_weight_precision(t.ctx, w.value);

  const BackendScope backend_scope(t.ctx.backend);
  Tensor out({n, oc, oh, ow});
  // im2col columns come from the thread-local scratch arena (slot 2): sized
  // once per (shape, groups) high-water mark, reused across the whole batch
  // loop and across forward calls instead of a fresh vector per invocation.
  const std::size_t col_floats = static_cast<std::size_t>(col_rows) * oh * ow;
  auto conv_one = [&](int idx) {
    const int ni = idx / groups, g = idx % groups;
    float* col = tls_scratch(col_floats, /*slot=*/2);
    im2col(xin, ni, g * icg, icg, k, spec.stride, spec.pad, oh, ow, col);
    // out[ni, g*ocg : (g+1)*ocg] = Wg[ocg x col_rows] * col[col_rows x oh*ow]
    float* out_ptr = &out.at4(ni, g * ocg, 0, 0);
    const float* w_ptr = wq.data() + static_cast<std::size_t>(g) * ocg * col_rows;
    gemm(ocg, oh * ow, col_rows, w_ptr, col, out_ptr);
  };
  // With a parallelism grant (batched executor stacking configs), split the
  // (image, group) space across the pool — each worker im2cols into its own
  // scratch and writes a disjoint output slab, so results are bit-identical
  // at any worker count. A single (image, group) instead lets the GEMM split
  // its output-channel rows.
  if (gemm_workers() > 1 && n * groups > 1)
    parallel_ranges(n * groups, /*align=*/1, [&](int begin, int end) {
      for (int idx = begin; idx < end; ++idx) conv_one(idx);
    });
  else
    for (int idx = 0; idx < n * groups; ++idx) conv_one(idx);
  if (bias != nullptr) {
    for (int ni = 0; ni < n; ++ni)
      for (int ci = 0; ci < oc; ++ci) {
        const float bv = bias->value[static_cast<std::size_t>(ci)];
        float* p = &out.at4(ni, ci, 0, 0);
        for (int i = 0; i < oh * ow; ++i) p[i] += bv;
      }
  }

  Node* y = t.make(std::move(out));
  Node* xn = x;
  Param* wp = &w;
  Param* bp = bias;
  const Conv2dSpec sp = spec;
  const ComputeBackend backend = t.ctx.backend;
  // Backward uses the full-precision weights/input (straight-through).
  y->backprop = [y, xn, wp, bp, sp, n, icg, k, oh, ow, ocg, groups, col_rows,
                 backend]() {
    const BackendScope bw_scope(backend);
    const std::size_t col_floats = static_cast<std::size_t>(col_rows) * oh * ow;
    float* col = tls_scratch(col_floats, /*slot=*/2);
    float* gcol = tls_scratch(col_floats, /*slot=*/3);
    for (int ni = 0; ni < n; ++ni) {
      for (int g = 0; g < groups; ++g) {
        im2col(xn->value, ni, g * icg, icg, k, sp.stride, sp.pad, oh, ow, col);
        const float* gout = &y->grad.at4(ni, g * ocg, 0, 0);
        // grad_w += gout [ocg x ohw] * col^T  (col is [col_rows x ohw])
        float* gw = wp->grad.data() + static_cast<std::size_t>(g) * ocg * col_rows;
        gemm_bt_acc(ocg, col_rows, oh * ow, gout, col, gw);
        if (xn->requires_grad) {
          // gcol = W^T [col_rows x ocg] * gout
          const float* w_ptr =
              wp->value.data() + static_cast<std::size_t>(g) * ocg * col_rows;
          gemm_at(col_rows, oh * ow, ocg, w_ptr, gout, gcol);
          col2im_acc(gcol, ni, g * icg, icg, k, sp.stride, sp.pad, oh, ow,
                     xn->grad);
        }
      }
      if (bp != nullptr) {
        for (int ci = 0; ci < ocg * groups; ++ci) {
          const float* gp = &y->grad.at4(ni, ci, 0, 0);
          float s = 0.0f;
          for (int i = 0; i < oh * ow; ++i) s += gp[i];
          bp->grad[static_cast<std::size_t>(ci)] += s;
        }
      }
    }
  };
  return y;
}

Node* maxpool2d(Tape& t, Node* x, int kernel, int stride, int pad) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  const bool ceil_mode = t.ctx.ceil_mode;
  const int oh = pooled_size(h, kernel, stride, pad, ceil_mode);
  const int ow = pooled_size(w, kernel, stride, pad, ceil_mode);
  Tensor out({n, c, oh, ow});
  auto argmax = std::make_shared<std::vector<int>>(out.size());
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = -1;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              const float v = x->value.at4(ni, ci, iy, ix);
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          // Ceil-mode windows fully inside padding see no valid input; emit 0.
          out.at4(ni, ci, oy, ox) = best_idx >= 0 ? best : 0.0f;
          (*argmax)[static_cast<std::size_t>(((ni * c + ci) * oh + oy) * ow + ox)] =
              best_idx;
        }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, argmax, c, oh, ow, w]() {
    if (!xn->requires_grad) return;
    const int n2 = y->value.dim(0);
    for (int ni = 0; ni < n2; ++ni)
      for (int ci = 0; ci < c; ++ci)
        for (int oy = 0; oy < oh; ++oy)
          for (int ox = 0; ox < ow; ++ox) {
            const int idx =
                (*argmax)[static_cast<std::size_t>(((ni * c + ci) * oh + oy) * ow + ox)];
            if (idx < 0) continue;
            xn->grad.at4(ni, ci, idx / w, idx % w) += y->grad.at4(ni, ci, oy, ox);
          }
  };
  return y;
}

Node* avgpool2d(Tape& t, Node* x, int kernel, int stride, int pad) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  const int oh = pooled_size(h, kernel, stride, pad, /*ceil=*/false);
  const int ow = pooled_size(w, kernel, stride, pad, /*ceil=*/false);
  Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          float s = 0.0f;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx) {
              const int iy = oy * stride - pad + ky, ix = ox * stride - pad + kx;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) s += x->value.at4(ni, ci, iy, ix);
            }
          out.at4(ni, ci, oy, ox) = s * inv;
        }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  const int kk = kernel, ss = stride, pp = pad;
  y->backprop = [y, xn, kk, ss, pp, inv, h, w, c, oh, ow]() {
    if (!xn->requires_grad) return;
    const int n2 = y->value.dim(0);
    for (int ni = 0; ni < n2; ++ni)
      for (int ci = 0; ci < c; ++ci)
        for (int oy = 0; oy < oh; ++oy)
          for (int ox = 0; ox < ow; ++ox) {
            const float g = y->grad.at4(ni, ci, oy, ox) * inv;
            for (int ky = 0; ky < kk; ++ky)
              for (int kx = 0; kx < kk; ++kx) {
                const int iy = oy * ss - pp + ky, ix = ox * ss - pp + kx;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                  xn->grad.at4(ni, ci, iy, ix) += g;
              }
          }
  };
  return y;
}

Node* global_avgpool(Tape& t, Node* x) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci) {
      const float* p = &x->value.at4(ni, ci, 0, 0);
      float s = 0.0f;
      for (int i = 0; i < h * w; ++i) s += p[i];
      out.at2(ni, ci) = s * inv;
    }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, c, h, w, inv]() {
    if (!xn->requires_grad) return;
    const int n2 = y->value.dim(0);
    for (int ni = 0; ni < n2; ++ni)
      for (int ci = 0; ci < c; ++ci) {
        const float g = y->grad.at2(ni, ci) * inv;
        float* p = &xn->grad.at4(ni, ci, 0, 0);
        for (int i = 0; i < h * w; ++i) p[i] += g;
      }
  };
  return y;
}

Node* upsample2x(Tape& t, Node* x) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  const int oh = 2 * h, ow = 2 * w;
  const UpsampleMode mode = t.ctx.upsample;
  const bool align = t.ctx.upsample_align_corners;
  Tensor out({n, c, oh, ow});

  // Sample positions + weights shared across N, C.
  struct Tap {
    int i0, i1;
    float w0, w1;
  };
  auto make_taps = [&](int in, int outn) {
    std::vector<Tap> taps(static_cast<std::size_t>(outn));
    for (int o = 0; o < outn; ++o) {
      if (mode == UpsampleMode::kNearest) {
        const int i = std::min(o / 2, in - 1);
        taps[static_cast<std::size_t>(o)] = {i, i, 1.0f, 0.0f};
      } else {
        float src = align && outn > 1
                        ? static_cast<float>(o) * (in - 1) / (outn - 1)
                        : (static_cast<float>(o) + 0.5f) / 2.0f - 0.5f;
        src = std::max(src, 0.0f);
        int i0 = static_cast<int>(src);
        i0 = std::min(i0, in - 1);
        const int i1 = std::min(i0 + 1, in - 1);
        const float frac = src - static_cast<float>(i0);
        taps[static_cast<std::size_t>(o)] = {i0, i1, 1.0f - frac, frac};
      }
    }
    return taps;
  };
  auto ytaps = std::make_shared<std::vector<Tap>>(make_taps(h, oh));
  auto xtaps = std::make_shared<std::vector<Tap>>(make_taps(w, ow));

  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci)
      for (int oy = 0; oy < oh; ++oy) {
        const Tap& ty = (*ytaps)[static_cast<std::size_t>(oy)];
        for (int ox = 0; ox < ow; ++ox) {
          const Tap& tx = (*xtaps)[static_cast<std::size_t>(ox)];
          out.at4(ni, ci, oy, ox) =
              ty.w0 * (tx.w0 * x->value.at4(ni, ci, ty.i0, tx.i0) +
                       tx.w1 * x->value.at4(ni, ci, ty.i0, tx.i1)) +
              ty.w1 * (tx.w0 * x->value.at4(ni, ci, ty.i1, tx.i0) +
                       tx.w1 * x->value.at4(ni, ci, ty.i1, tx.i1));
        }
      }

  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, ytaps, xtaps, c, oh, ow]() {
    if (!xn->requires_grad) return;
    const int n2 = y->value.dim(0);
    for (int ni = 0; ni < n2; ++ni)
      for (int ci = 0; ci < c; ++ci)
        for (int oy = 0; oy < oh; ++oy) {
          const Tap& ty = (*ytaps)[static_cast<std::size_t>(oy)];
          for (int ox = 0; ox < ow; ++ox) {
            const Tap& tx = (*xtaps)[static_cast<std::size_t>(ox)];
            const float g = y->grad.at4(ni, ci, oy, ox);
            xn->grad.at4(ni, ci, ty.i0, tx.i0) += g * ty.w0 * tx.w0;
            if (tx.w1 != 0.0f) xn->grad.at4(ni, ci, ty.i0, tx.i1) += g * ty.w0 * tx.w1;
            if (ty.w1 != 0.0f) {
              xn->grad.at4(ni, ci, ty.i1, tx.i0) += g * ty.w1 * tx.w0;
              if (tx.w1 != 0.0f) xn->grad.at4(ni, ci, ty.i1, tx.i1) += g * ty.w1 * tx.w1;
            }
          }
        }
  };
  return y;
}

}  // namespace sysnoise::nn
