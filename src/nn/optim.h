// Optimizers over collections of Param*.
#pragma once

#include <vector>

#include "nn/tape.h"

namespace sysnoise::nn {

class Sgd {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  float lr_, momentum_, weight_decay_;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_, v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long step_count_ = 0;
};

// Cosine LR schedule helper: lr(t) = base * 0.5*(1+cos(pi * t / total)).
float cosine_lr(float base_lr, int step, int total_steps);

// Global gradient-norm clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Param*>& params, float max_norm);

}  // namespace sysnoise::nn
