// Define-by-run autograd tape.
//
// Every forward pass records Nodes (value + backward closure) on a Tape;
// Tape::backward replays closures in reverse. Model parameters live outside
// the tape (struct Param) and closures accumulate directly into their grad
// buffers, so weights are never copied per step.
//
// The tape also carries the InferenceCtx — the *model-inference* SysNoise
// knobs of Sec. 3.2: data precision (FP32/FP16/INT8 fake-quant at
// conv/linear boundaries), max-pool ceil mode, and upsample interpolation.
// Models read these knobs at op level, so "train with floor, deploy with
// ceil" is a one-field change, exactly like flipping a vendor runtime.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "quant/quantize.h"
#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace sysnoise::nn {

enum class Precision { kFP32 = 0, kFP16 = 1, kINT8 = 2 };
constexpr int kNumPrecisions = 3;
const char* precision_name(Precision p);

enum class UpsampleMode { kNearest = 0, kBilinear = 1 };
const char* upsample_mode_name(UpsampleMode m);

// A trainable parameter: value plus gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Param() = default;
  void zero_grad() { grad.fill(0.0f); }
};

// Calibrated activation ranges, keyed by layer id (filled by a calibration
// pass, consumed by INT8 inference).
using ActRanges = std::map<std::string, RangeObserver>;

struct InferenceCtx {
  Precision precision = Precision::kFP32;
  bool ceil_mode = false;                       // max-pool deployment mode
  UpsampleMode upsample = UpsampleMode::kNearest;
  bool upsample_align_corners = false;
  // Kernel family for GEMM/conv (tensor/backend.h) — ops open a BackendScope
  // around their kernel calls so a parallel sweep can run configs with
  // different backends concurrently.
  ComputeBackend backend = default_backend();
  bool calibrating = false;   // record activation ranges instead of quantizing
  ActRanges* ranges = nullptr;
};

struct Node {
  Tensor value;
  Tensor grad;
  std::function<void()> backprop;  // empty for leaves/constants
  bool requires_grad = true;
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  InferenceCtx ctx;
  bool training = false;  // affects batchnorm statistics

  // Create a leaf node holding a copy of `t` (network input / constant).
  Node* input(Tensor t, bool requires_grad = false);

  // Create an op output node; `backprop` may be set by the op afterwards.
  Node* make(Tensor value);

  // Reverse-mode sweep from `loss` (grad seeded with 1).
  void backward(Node* loss);

  std::size_t num_nodes() const { return nodes_.size(); }
  void clear();

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

// Apply the ctx's precision to a tensor at an op boundary:
//  - FP16: binary16 round trip;
//  - INT8: fake-quantize with the calibrated range for `layer_id` (no-op
//    when no range is known — e.g. during FP32 eval or calibration).
// During calibration this records the observed range instead.
void apply_activation_precision(const InferenceCtx& ctx, const std::string& layer_id,
                                Tensor& t);

// Precision for a weight tensor (INT8 weights use symmetric quant).
Tensor apply_weight_precision(const InferenceCtx& ctx, const Tensor& w);

}  // namespace sysnoise::nn
