#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nn/ops.h"
#include "tensor/backend.h"
#include "tensor/gemm.h"

namespace sysnoise::nn {

namespace {

// Rows = product of all dims but the last.
int leading_rows(const Tensor& t) {
  int rows = 1;
  for (int i = 0; i + 1 < t.rank(); ++i) rows *= t.dim(i);
  return rows;
}

}  // namespace

Node* linear(Tape& t, Node* x, Param& w, Param* bias, const std::string& layer_id) {
  const int in = x->value.dim(-1);
  const int out_f = w.value.dim(0);
  if (w.value.dim(1) != in) throw std::invalid_argument("linear: shape mismatch");
  const int rows = leading_rows(x->value);

  Tensor xin = x->value;
  apply_activation_precision(t.ctx, layer_id + ".in", xin);
  const Tensor wq = apply_weight_precision(t.ctx, w.value);

  std::vector<int> out_shape(x->value.shape());
  out_shape.back() = out_f;
  Tensor out(out_shape);
  const BackendScope backend_scope(t.ctx.backend);
  // out[rows x out_f] = xin[rows x in] * Wq^T (W stored [out_f x in])
  gemm_bt_acc(rows, out_f, in, xin.data(), wq.data(), out.data());
  if (bias != nullptr)
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < out_f; ++c)
        out.data()[static_cast<std::size_t>(r) * out_f + c] +=
            bias->value[static_cast<std::size_t>(c)];

  Node* y = t.make(std::move(out));
  Node* xn = x;
  Param* wp = &w;
  Param* bp = bias;
  const ComputeBackend backend = t.ctx.backend;
  y->backprop = [y, xn, wp, bp, rows, in, out_f, backend]() {
    const BackendScope bw_scope(backend);
    // grad_w += gout^T [out_f x rows] * x [rows x in]
    gemm_at_acc(out_f, in, rows, y->grad.data(), xn->value.data(), wp->grad.data());
    if (xn->requires_grad) {
      // grad_x += gout [rows x out_f] * W [out_f x in]
      gemm_acc(rows, in, out_f, y->grad.data(), wp->value.data(), xn->grad.data());
    }
    if (bp != nullptr)
      for (int r = 0; r < rows; ++r)
        for (int c = 0; c < out_f; ++c)
          bp->grad[static_cast<std::size_t>(c)] +=
              y->grad.data()[static_cast<std::size_t>(r) * out_f + c];
  };
  return y;
}

Node* relu(Tape& t, Node* x) {
  Tensor out = x->value;
  for (float& v : out.vec()) v = std::max(v, 0.0f);
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn]() {
    if (!xn->requires_grad) return;
    for (std::size_t i = 0; i < y->grad.size(); ++i)
      if (xn->value[i] > 0.0f) xn->grad[i] += y->grad[i];
  };
  return y;
}

Node* gelu(Tape& t, Node* x) {
  // tanh approximation (as used by most deployments).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  Tensor out = x->value;
  for (float& v : out.vec()) {
    const float u = kC * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(u));
  }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn]() {
    if (!xn->requires_grad) return;
    for (std::size_t i = 0; i < y->grad.size(); ++i) {
      const float v = xn->value[i];
      const float u = kC * (v + 0.044715f * v * v * v);
      const float th = std::tanh(u);
      const float du = kC * (1.0f + 3.0f * 0.044715f * v * v);
      const float d = 0.5f * (1.0f + th) + 0.5f * v * (1.0f - th * th) * du;
      xn->grad[i] += y->grad[i] * d;
    }
  };
  return y;
}

Node* sigmoid(Tape& t, Node* x) {
  Tensor out = x->value;
  for (float& v : out.vec()) v = 1.0f / (1.0f + std::exp(-v));
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn]() {
    if (!xn->requires_grad) return;
    for (std::size_t i = 0; i < y->grad.size(); ++i) {
      const float s = y->value[i];
      xn->grad[i] += y->grad[i] * s * (1.0f - s);
    }
  };
  return y;
}

Node* add(Tape& t, Node* a, Node* b) {
  if (a->value.size() != b->value.size())
    throw std::invalid_argument("add: size mismatch");
  Tensor out = a->value;
  out.add_(b->value);
  Node* y = t.make(std::move(out));
  Node* an = a;
  Node* bn = b;
  y->backprop = [y, an, bn]() {
    if (an->requires_grad) an->grad.add_(y->grad);
    if (bn->requires_grad) bn->grad.add_(y->grad);
  };
  return y;
}

Node* scale(Tape& t, Node* x, float s) {
  Tensor out = x->value;
  out.mul_(s);
  Node* y = t.make(std::move(out));
  Node* xn = x;
  y->backprop = [y, xn, s]() {
    if (xn->requires_grad) xn->grad.add_scaled_(y->grad, s);
  };
  return y;
}

Node* reshape(Tape& t, Node* x, std::vector<int> shape) {
  Node* y = t.make(x->value.reshaped(std::move(shape)));
  Node* xn = x;
  y->backprop = [y, xn]() {
    if (!xn->requires_grad) return;
    for (std::size_t i = 0; i < y->grad.size(); ++i) xn->grad[i] += y->grad[i];
  };
  return y;
}

Node* flatten2d(Tape& t, Node* x) {
  const int n = x->value.dim(0);
  const int rest = static_cast<int>(x->value.size()) / n;
  return reshape(t, x, {n, rest});
}

Node* concat_channels(Tape& t, Node* a, Node* b) {
  const int n = a->value.dim(0), ca = a->value.dim(1), cb = b->value.dim(1);
  const int h = a->value.dim(2), w = a->value.dim(3);
  if (b->value.dim(0) != n || b->value.dim(2) != h || b->value.dim(3) != w)
    throw std::invalid_argument("concat_channels: spatial mismatch");
  Tensor out({n, ca + cb, h, w});
  for (int ni = 0; ni < n; ++ni) {
    for (int ci = 0; ci < ca; ++ci)
      std::copy_n(&a->value.at4(ni, ci, 0, 0), h * w, &out.at4(ni, ci, 0, 0));
    for (int ci = 0; ci < cb; ++ci)
      std::copy_n(&b->value.at4(ni, ci, 0, 0), h * w, &out.at4(ni, ca + ci, 0, 0));
  }
  Node* y = t.make(std::move(out));
  Node* an = a;
  Node* bn = b;
  y->backprop = [y, an, bn, n, ca, cb, h, w]() {
    for (int ni = 0; ni < n; ++ni) {
      if (an->requires_grad)
        for (int ci = 0; ci < ca; ++ci) {
          const float* g = &y->grad.at4(ni, ci, 0, 0);
          float* dst = &an->grad.at4(ni, ci, 0, 0);
          for (int i = 0; i < h * w; ++i) dst[i] += g[i];
        }
      if (bn->requires_grad)
        for (int ci = 0; ci < cb; ++ci) {
          const float* g = &y->grad.at4(ni, ca + ci, 0, 0);
          float* dst = &bn->grad.at4(ni, ci, 0, 0);
          for (int i = 0; i < h * w; ++i) dst[i] += g[i];
        }
    }
  };
  return y;
}

Node* batchnorm2d(Tape& t, Node* x, Param& gamma, Param& beta, Tensor& running_mean,
                  Tensor& running_var, BnMode mode, float momentum, float eps) {
  const int n = x->value.dim(0), c = x->value.dim(1), h = x->value.dim(2),
            w = x->value.dim(3);
  const int count = n * h * w;
  const bool use_batch_stats = mode != BnMode::kEval;

  auto mean = std::make_shared<std::vector<float>>(static_cast<std::size_t>(c));
  auto invstd = std::make_shared<std::vector<float>>(static_cast<std::size_t>(c));
  for (int ci = 0; ci < c; ++ci) {
    float mu, var;
    if (use_batch_stats) {
      double s = 0.0;
      for (int ni = 0; ni < n; ++ni) {
        const float* p = &x->value.at4(ni, ci, 0, 0);
        for (int i = 0; i < h * w; ++i) s += p[i];
      }
      mu = static_cast<float>(s / count);
      double v = 0.0;
      for (int ni = 0; ni < n; ++ni) {
        const float* p = &x->value.at4(ni, ci, 0, 0);
        for (int i = 0; i < h * w; ++i) {
          const double d = p[i] - mu;
          v += d * d;
        }
      }
      var = static_cast<float>(v / count);
      if (mode == BnMode::kTrain) {
        running_mean[static_cast<std::size_t>(ci)] =
            (1.0f - momentum) * running_mean[static_cast<std::size_t>(ci)] + momentum * mu;
        running_var[static_cast<std::size_t>(ci)] =
            (1.0f - momentum) * running_var[static_cast<std::size_t>(ci)] + momentum * var;
      }
    } else {
      mu = running_mean[static_cast<std::size_t>(ci)];
      var = running_var[static_cast<std::size_t>(ci)];
    }
    (*mean)[static_cast<std::size_t>(ci)] = mu;
    (*invstd)[static_cast<std::size_t>(ci)] = 1.0f / std::sqrt(var + eps);
  }

  Tensor out(x->value.shape());
  for (int ni = 0; ni < n; ++ni)
    for (int ci = 0; ci < c; ++ci) {
      const float g = gamma.value[static_cast<std::size_t>(ci)];
      const float b = beta.value[static_cast<std::size_t>(ci)];
      const float mu = (*mean)[static_cast<std::size_t>(ci)];
      const float is = (*invstd)[static_cast<std::size_t>(ci)];
      const float* p = &x->value.at4(ni, ci, 0, 0);
      float* o = &out.at4(ni, ci, 0, 0);
      for (int i = 0; i < h * w; ++i) o[i] = (p[i] - mu) * is * g + b;
    }

  Node* y = t.make(std::move(out));
  Node* xn = x;
  Param* gp = &gamma;
  Param* bp = &beta;
  y->backprop = [y, xn, gp, bp, mean, invstd, n, c, h, w, count, use_batch_stats]() {
    for (int ci = 0; ci < c; ++ci) {
      const float mu = (*mean)[static_cast<std::size_t>(ci)];
      const float is = (*invstd)[static_cast<std::size_t>(ci)];
      const float g = gp->value[static_cast<std::size_t>(ci)];
      // Sums over batch+spatial of gout and gout*xhat.
      double sum_g = 0.0, sum_gx = 0.0;
      for (int ni = 0; ni < n; ++ni) {
        const float* go = &y->grad.at4(ni, ci, 0, 0);
        const float* xv = &xn->value.at4(ni, ci, 0, 0);
        for (int i = 0; i < h * w; ++i) {
          sum_g += go[i];
          sum_gx += go[i] * (xv[i] - mu) * is;
        }
      }
      gp->grad[static_cast<std::size_t>(ci)] += static_cast<float>(sum_gx);
      bp->grad[static_cast<std::size_t>(ci)] += static_cast<float>(sum_g);
      if (!xn->requires_grad) continue;
      const float inv_count = 1.0f / static_cast<float>(count);
      for (int ni = 0; ni < n; ++ni) {
        const float* go = &y->grad.at4(ni, ci, 0, 0);
        const float* xv = &xn->value.at4(ni, ci, 0, 0);
        float* gx = &xn->grad.at4(ni, ci, 0, 0);
        for (int i = 0; i < h * w; ++i) {
          if (use_batch_stats) {
            const float xhat = (xv[i] - mu) * is;
            gx[i] += g * is *
                     (go[i] - static_cast<float>(sum_g) * inv_count -
                      xhat * static_cast<float>(sum_gx) * inv_count);
          } else {
            gx[i] += g * is * go[i];  // running stats: pure affine
          }
        }
      }
    }
  };
  return y;
}

Node* layernorm(Tape& t, Node* x, Param& gamma, Param& beta, float eps) {
  const int d = x->value.dim(-1);
  const int rows = leading_rows(x->value);
  auto mean = std::make_shared<std::vector<float>>(static_cast<std::size_t>(rows));
  auto invstd = std::make_shared<std::vector<float>>(static_cast<std::size_t>(rows));
  Tensor out(x->value.shape());
  for (int r = 0; r < rows; ++r) {
    const float* p = x->value.data() + static_cast<std::size_t>(r) * d;
    double s = 0.0;
    for (int i = 0; i < d; ++i) s += p[i];
    const float mu = static_cast<float>(s / d);
    double v = 0.0;
    for (int i = 0; i < d; ++i) {
      const double dd = p[i] - mu;
      v += dd * dd;
    }
    const float is = 1.0f / std::sqrt(static_cast<float>(v / d) + eps);
    (*mean)[static_cast<std::size_t>(r)] = mu;
    (*invstd)[static_cast<std::size_t>(r)] = is;
    float* o = out.data() + static_cast<std::size_t>(r) * d;
    for (int i = 0; i < d; ++i)
      o[i] = (p[i] - mu) * is * gamma.value[static_cast<std::size_t>(i)] +
             beta.value[static_cast<std::size_t>(i)];
  }
  Node* y = t.make(std::move(out));
  Node* xn = x;
  Param* gp = &gamma;
  Param* bp = &beta;
  y->backprop = [y, xn, gp, bp, mean, invstd, rows, d]() {
    for (int r = 0; r < rows; ++r) {
      const float mu = (*mean)[static_cast<std::size_t>(r)];
      const float is = (*invstd)[static_cast<std::size_t>(r)];
      const float* go = y->grad.data() + static_cast<std::size_t>(r) * d;
      const float* xv = xn->value.data() + static_cast<std::size_t>(r) * d;
      double sum_g = 0.0, sum_gx = 0.0;
      for (int i = 0; i < d; ++i) {
        const float xhat = (xv[i] - mu) * is;
        const float gg = go[i] * gp->value[static_cast<std::size_t>(i)];
        sum_g += gg;
        sum_gx += gg * xhat;
        gp->grad[static_cast<std::size_t>(i)] += go[i] * xhat;
        bp->grad[static_cast<std::size_t>(i)] += go[i];
      }
      if (!xn->requires_grad) continue;
      float* gx = xn->grad.data() + static_cast<std::size_t>(r) * d;
      const float invd = 1.0f / static_cast<float>(d);
      for (int i = 0; i < d; ++i) {
        const float xhat = (xv[i] - mu) * is;
        const float gg = go[i] * gp->value[static_cast<std::size_t>(i)];
        gx[i] += is * (gg - static_cast<float>(sum_g) * invd -
                       xhat * static_cast<float>(sum_gx) * invd);
      }
    }
  };
  return y;
}

Node* embedding(Tape& t, const std::vector<int>& ids, int batch, int seq, Param& table) {
  const int d = table.value.dim(1);
  if (static_cast<int>(ids.size()) != batch * seq)
    throw std::invalid_argument("embedding: ids size mismatch");
  Tensor out({batch, seq, d});
  for (int i = 0; i < batch * seq; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    std::copy_n(table.value.data() + static_cast<std::size_t>(id) * d, d,
                out.data() + static_cast<std::size_t>(i) * d);
  }
  Node* y = t.make(std::move(out));
  Param* tp = &table;
  auto ids_copy = std::make_shared<std::vector<int>>(ids);
  y->backprop = [y, tp, ids_copy, d]() {
    for (std::size_t i = 0; i < ids_copy->size(); ++i) {
      const int id = (*ids_copy)[i];
      const float* g = y->grad.data() + i * static_cast<std::size_t>(d);
      float* dst = tp->grad.data() + static_cast<std::size_t>(id) * d;
      for (int j = 0; j < d; ++j) dst[j] += g[j];
    }
  };
  return y;
}

Tensor softmax_probs(const Tensor& logits) {
  const int c = logits.dim(-1);
  const int rows = leading_rows(logits);
  Tensor out(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* p = logits.data() + static_cast<std::size_t>(r) * c;
    float* o = out.data() + static_cast<std::size_t>(r) * c;
    float mx = p[0];
    for (int i = 1; i < c; ++i) mx = std::max(mx, p[i]);
    double s = 0.0;
    for (int i = 0; i < c; ++i) {
      o[i] = std::exp(p[i] - mx);
      s += o[i];
    }
    const float inv = static_cast<float>(1.0 / s);
    for (int i = 0; i < c; ++i) o[i] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  const int c = logits.dim(-1);
  const int rows = leading_rows(logits);
  Tensor out(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* p = logits.data() + static_cast<std::size_t>(r) * c;
    float* o = out.data() + static_cast<std::size_t>(r) * c;
    float mx = p[0];
    for (int i = 1; i < c; ++i) mx = std::max(mx, p[i]);
    double s = 0.0;
    for (int i = 0; i < c; ++i) s += std::exp(p[i] - mx);
    const float lse = mx + static_cast<float>(std::log(s));
    for (int i = 0; i < c; ++i) o[i] = p[i] - lse;
  }
  return out;
}

Node* softmax_cross_entropy(Tape& t, Node* logits, const std::vector<int>& labels) {
  const int c = logits->value.dim(-1);
  const int rows = leading_rows(logits->value);
  if (static_cast<int>(labels.size()) != rows)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  auto probs = std::make_shared<Tensor>(softmax_probs(logits->value));
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) {
    const float p = std::max(
        (*probs)[static_cast<std::size_t>(r) * c + static_cast<std::size_t>(labels[static_cast<std::size_t>(r)])],
        1e-12f);
    loss -= std::log(p);
  }
  Tensor out({1});
  out[0] = static_cast<float>(loss / rows);
  Node* y = t.make(std::move(out));
  Node* ln = logits;
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  y->backprop = [y, ln, probs, labels_copy, rows, c]() {
    if (!ln->requires_grad) return;
    const float g = y->grad[0] / static_cast<float>(rows);
    for (int r = 0; r < rows; ++r) {
      const int lbl = (*labels_copy)[static_cast<std::size_t>(r)];
      for (int i = 0; i < c; ++i) {
        float d = (*probs)[static_cast<std::size_t>(r) * c + i];
        if (i == lbl) d -= 1.0f;
        ln->grad[static_cast<std::size_t>(r) * c + i] += g * d;
      }
    }
  };
  return y;
}

Node* softmax_cross_entropy_masked(Tape& t, Node* logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& mask,
                                   float normalizer) {
  const int c = logits->value.dim(-1);
  const int rows = leading_rows(logits->value);
  if (static_cast<int>(labels.size()) != rows ||
      static_cast<int>(mask.size()) != rows)
    throw std::invalid_argument("softmax_cross_entropy_masked: size mismatch");
  auto probs = std::make_shared<Tensor>(softmax_probs(logits->value));
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) {
    if (mask[static_cast<std::size_t>(r)] == 0.0f) continue;
    const float p = std::max(
        (*probs)[static_cast<std::size_t>(r) * c +
                 static_cast<std::size_t>(labels[static_cast<std::size_t>(r)])],
        1e-12f);
    loss -= mask[static_cast<std::size_t>(r)] * std::log(p);
  }
  Tensor out({1});
  out[0] = static_cast<float>(loss / normalizer);
  Node* y = t.make(std::move(out));
  Node* ln = logits;
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  auto mask_copy = std::make_shared<std::vector<float>>(mask);
  y->backprop = [y, ln, probs, labels_copy, mask_copy, rows, c, normalizer]() {
    if (!ln->requires_grad) return;
    const float g = y->grad[0] / normalizer;
    for (int r = 0; r < rows; ++r) {
      const float m = (*mask_copy)[static_cast<std::size_t>(r)];
      if (m == 0.0f) continue;
      const int lbl = (*labels_copy)[static_cast<std::size_t>(r)];
      for (int i = 0; i < c; ++i) {
        float d = (*probs)[static_cast<std::size_t>(r) * c + i];
        if (i == lbl) d -= 1.0f;
        ln->grad[static_cast<std::size_t>(r) * c + i] += g * m * d;
      }
    }
  };
  return y;
}

Node* softmax_entropy(Tape& t, Node* logits) {
  const int c = logits->value.dim(-1);
  const int rows = leading_rows(logits->value);
  auto probs = std::make_shared<Tensor>(softmax_probs(logits->value));
  double total = 0.0;
  for (int r = 0; r < rows; ++r)
    for (int i = 0; i < c; ++i) {
      const float p = (*probs)[static_cast<std::size_t>(r) * c + i];
      if (p > 1e-12f) total -= p * std::log(p);
    }
  Tensor out({1});
  out[0] = static_cast<float>(total / rows);
  Node* y = t.make(std::move(out));
  Node* ln = logits;
  y->backprop = [y, ln, probs, rows, c]() {
    if (!ln->requires_grad) return;
    const float g = y->grad[0] / static_cast<float>(rows);
    for (int r = 0; r < rows; ++r) {
      // H_r = -sum p log p ; dH/dz_j = -p_j (log p_j + H_r)
      double h = 0.0;
      for (int i = 0; i < c; ++i) {
        const float p = (*probs)[static_cast<std::size_t>(r) * c + i];
        if (p > 1e-12f) h -= p * std::log(p);
      }
      for (int i = 0; i < c; ++i) {
        const float p = (*probs)[static_cast<std::size_t>(r) * c + i];
        const float logp = p > 1e-12f ? std::log(p) : -27.6f;
        ln->grad[static_cast<std::size_t>(r) * c + i] +=
            g * (-p * (logp + static_cast<float>(h)));
      }
    }
  };
  return y;
}

Node* mse_loss(Tape& t, Node* pred, const Tensor& target) {
  if (pred->value.size() != target.size())
    throw std::invalid_argument("mse_loss: size mismatch");
  const std::size_t n = pred->value.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred->value[i] - target[i];
    s += d * d;
  }
  Tensor out({1});
  out[0] = static_cast<float>(s / static_cast<double>(n));
  Node* y = t.make(std::move(out));
  Node* pn = pred;
  auto tgt = std::make_shared<Tensor>(target);
  y->backprop = [y, pn, tgt, n]() {
    if (!pn->requires_grad) return;
    const float g = 2.0f * y->grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i)
      pn->grad[i] += g * (pn->value[i] - (*tgt)[i]);
  };
  return y;
}

Node* sigmoid_focal_loss(Tape& t, Node* logits, const Tensor& targets,
                         const Tensor& mask, float alpha, float gamma,
                         float normalizer) {
  const std::size_t n = logits->value.size();
  if (targets.size() != n || mask.size() != n)
    throw std::invalid_argument("focal: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] == 0.0f) continue;
    const float z = logits->value[i];
    const float p = 1.0f / (1.0f + std::exp(-z));
    const bool pos = targets[i] > 0.5f;
    const float pt = pos ? p : 1.0f - p;
    const float a = pos ? alpha : 1.0f - alpha;
    total += -a * std::pow(1.0f - pt, gamma) * std::log(std::max(pt, 1e-12f));
  }
  Tensor out({1});
  out[0] = static_cast<float>(total / normalizer);
  Node* y = t.make(std::move(out));
  Node* ln = logits;
  auto tg = std::make_shared<Tensor>(targets);
  auto mk = std::make_shared<Tensor>(mask);
  y->backprop = [y, ln, tg, mk, alpha, gamma, normalizer, n]() {
    if (!ln->requires_grad) return;
    const float gscale = y->grad[0] / normalizer;
    for (std::size_t i = 0; i < n; ++i) {
      if ((*mk)[i] == 0.0f) continue;
      const float z = ln->value[i];
      const float p = 1.0f / (1.0f + std::exp(-z));
      const bool pos = (*tg)[i] > 0.5f;
      const float pt = std::max(pos ? p : 1.0f - p, 1e-12f);
      const float a = pos ? alpha : 1.0f - alpha;
      // dL/dpt with L = -a (1-pt)^g log(pt)
      const float one_m = 1.0f - pt;
      const float dL_dpt = -a * (-gamma * std::pow(one_m, gamma - 1.0f) * std::log(pt) +
                                 std::pow(one_m, gamma) / pt);
      // dpt/dz = p(1-p) for pos, -p(1-p) for neg.
      const float dpt_dz = (pos ? 1.0f : -1.0f) * p * (1.0f - p);
      ln->grad[i] += gscale * dL_dpt * dpt_dz;
    }
  };
  return y;
}

Node* smooth_l1_loss(Tape& t, Node* pred, const Tensor& target, const Tensor& mask,
                     float normalizer) {
  const std::size_t n = pred->value.size();
  if (target.size() != n || mask.size() != n)
    throw std::invalid_argument("smooth_l1: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] == 0.0f) continue;
    const float d = pred->value[i] - target[i];
    const float ad = std::fabs(d);
    total += ad < 1.0f ? 0.5f * d * d : ad - 0.5f;
  }
  Tensor out({1});
  out[0] = static_cast<float>(total / normalizer);
  Node* y = t.make(std::move(out));
  Node* pn = pred;
  auto tg = std::make_shared<Tensor>(target);
  auto mk = std::make_shared<Tensor>(mask);
  y->backprop = [y, pn, tg, mk, normalizer, n]() {
    if (!pn->requires_grad) return;
    const float g = y->grad[0] / normalizer;
    for (std::size_t i = 0; i < n; ++i) {
      if ((*mk)[i] == 0.0f) continue;
      const float d = pn->value[i] - (*tg)[i];
      pn->grad[i] += g * (std::fabs(d) < 1.0f ? d : (d > 0.0f ? 1.0f : -1.0f));
    }
  };
  return y;
}

}  // namespace sysnoise::nn
