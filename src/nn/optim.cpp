#include "nn/optim.h"

#include <cmath>
#include <numbers>

namespace sysnoise::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum, float weight_decay)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad[j] + weight_decay_ * p->value[j];
      vel[j] = momentum_ * vel[j] + g;
      p->value[j] -= lr_ * vel[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad[j] + weight_decay_ * p->value[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      p->value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

float cosine_lr(float base_lr, int step, int total_steps) {
  if (total_steps <= 0) return base_lr;
  const float t = static_cast<float>(step) / static_cast<float>(total_steps);
  return base_lr * 0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * t));
}

float clip_grad_norm(const std::vector<Param*>& params, float max_norm) {
  double total = 0.0;
  for (const Param* p : params)
    for (std::size_t j = 0; j < p->grad.size(); ++j)
      total += static_cast<double>(p->grad[j]) * p->grad[j];
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float s = max_norm / norm;
    for (Param* p : params)
      for (std::size_t j = 0; j < p->grad.size(); ++j) p->grad[j] *= s;
  }
  return norm;
}

}  // namespace sysnoise::nn
