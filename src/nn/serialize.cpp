#include "nn/serialize.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <unistd.h>

namespace sysnoise::nn {

namespace {

constexpr std::uint32_t kMagic = 0x53594E50;  // "SYNP"

// Zoo-cache files are shared by concurrent processes (distributed workers
// all resolve the same models against one SYSNOISE_CACHE_DIR), so writes go
// to a writer-unique temp file and rename into place — a reader never sees
// a half-written weights/ranges file.
std::string temp_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

void commit_or_throw(std::ofstream& f, const std::string& tmp,
                     const std::string& path, const char* what) {
  f.close();
  std::error_code ec;
  if (!f) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error(std::string(what) + ": write failed " + path);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error(std::string(what) + ": cannot rename into " + path);
  }
}

void write_tensor(std::ofstream& f, const Tensor& t) {
  const auto rank = static_cast<std::uint32_t>(t.rank());
  f.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int d : t.shape()) {
    const auto dd = static_cast<std::int32_t>(d);
    f.write(reinterpret_cast<const char*>(&dd), sizeof(dd));
  }
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool read_tensor(std::ifstream& f, Tensor& t) {
  std::uint32_t rank = 0;
  f.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!f) return false;
  std::vector<int> shape(rank);
  for (auto& d : shape) {
    std::int32_t dd = 0;
    f.read(reinterpret_cast<char*>(&dd), sizeof(dd));
    d = dd;
  }
  if (shape != t.shape())
    throw std::runtime_error("load_params: shape mismatch (stale cache?)");
  f.read(reinterpret_cast<char*>(t.data()),
         static_cast<std::streamsize>(t.size() * sizeof(float)));
  return static_cast<bool>(f);
}

}  // namespace

void save_params(const std::string& path, const std::vector<Param*>& params,
                 const std::vector<const Tensor*>& extra_state) {
  const std::string tmp = temp_path_for(path);
  std::ofstream f(tmp, std::ios::binary);
  if (!f) throw std::runtime_error("save_params: cannot open " + tmp);
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto count =
      static_cast<std::uint32_t>(params.size() + extra_state.size());
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Param* p : params) write_tensor(f, p->value);
  for (const Tensor* t : extra_state) write_tensor(f, *t);
  commit_or_throw(f, tmp, path, "save_params");
}

bool load_params(const std::string& path, const std::vector<Param*>& params,
                 const std::vector<Tensor*>& extra_state) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0, count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (magic != kMagic) throw std::runtime_error("load_params: bad magic " + path);
  if (count != params.size() + extra_state.size())
    throw std::runtime_error("load_params: param count mismatch " + path);
  for (Param* p : params)
    if (!read_tensor(f, p->value)) return false;
  for (Tensor* t : extra_state)
    if (!read_tensor(f, *t)) return false;
  return true;
}

void save_ranges(const std::string& path, const ActRanges& ranges) {
  const std::string tmp = temp_path_for(path);
  std::ofstream f(tmp, std::ios::binary);
  if (!f) throw std::runtime_error("save_ranges: cannot open " + tmp);
  const auto count = static_cast<std::uint32_t>(ranges.size());
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [key, obs] : ranges) {
    const auto len = static_cast<std::uint32_t>(key.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(key.data(), static_cast<std::streamsize>(len));
    f.write(reinterpret_cast<const char*>(&obs.lo), sizeof(obs.lo));
    f.write(reinterpret_cast<const char*>(&obs.hi), sizeof(obs.hi));
  }
  commit_or_throw(f, tmp, path, "save_ranges");
}

bool load_ranges(const std::string& path, ActRanges& ranges) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    f.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::string key(len, '\0');
    f.read(key.data(), static_cast<std::streamsize>(len));
    RangeObserver obs;
    f.read(reinterpret_cast<char*>(&obs.lo), sizeof(obs.lo));
    f.read(reinterpret_cast<char*>(&obs.hi), sizeof(obs.hi));
    obs.seen = true;
    if (!f) return false;
    ranges[key] = obs;
  }
  return true;
}

}  // namespace sysnoise::nn
