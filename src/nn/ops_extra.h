// Secondary ops used by specific model families (SE blocks, ViT/Swin
// token plumbing, segmentation heads).
#pragma once

#include "nn/ops.h"

namespace sysnoise::nn {

// x * sigmoid(x) (EfficientNet's activation).
Node* silu(Tape& t, Node* x);

// Broadcast multiply: x [N,C,H,W] scaled per (n, c) by s [N,C] (SE gate).
Node* channel_scale(Tape& t, Node* x, Node* s);

// x [B,T,D] + pos [1,T,D] broadcast over batch (learned position embedding).
Node* add_pos_embedding(Tape& t, Node* x, Param& pos);

// Mean over the token axis: [B,T,D] -> [B,D].
Node* mean_tokens(Tape& t, Node* x);

// [N,C,H,W] -> [N,H,W,C] (for per-pixel losses over the channel axis).
Node* nchw_to_nhwc(Tape& t, Node* x);

// Partition a [B, H*W, D] token map (H, W given) into non-overlapping
// win x win windows: output [B*nw, win*win, D]. Inverse: window_merge.
Node* window_partition(Tape& t, Node* x, int h, int w, int win);
Node* window_merge(Tape& t, Node* x, int h, int w, int win, int batch);

// 2x2 patch merging for Swin-style downsampling: [B, H*W, D] ->
// [B, (H/2)*(W/2), 4D] by concatenating each 2x2 neighbourhood.
Node* patch_merge(Tape& t, Node* x, int h, int w);

}  // namespace sysnoise::nn
