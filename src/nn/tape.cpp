#include "nn/tape.h"

#include "tensor/half.h"

namespace sysnoise::nn {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFP32: return "FP32";
    case Precision::kFP16: return "FP16";
    case Precision::kINT8: return "INT8";
  }
  return "?";
}

const char* upsample_mode_name(UpsampleMode m) {
  return m == UpsampleMode::kNearest ? "nearest" : "bilinear";
}

Node* Tape::input(Tensor t, bool requires_grad) {
  auto node = std::make_unique<Node>();
  node->value = std::move(t);
  node->requires_grad = requires_grad;
  if (requires_grad) node->grad = Tensor(node->value.shape());
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

Node* Tape::make(Tensor value) {
  auto node = std::make_unique<Node>();
  node->value = std::move(value);
  node->grad = Tensor(node->value.shape());
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

void Tape::backward(Node* loss) {
  loss->grad.fill(1.0f);
  // Nodes were appended in execution order; reverse order is a valid
  // topological order for reverse mode.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    Node* n = it->get();
    if (n->backprop) n->backprop();
    if (n == loss) continue;
  }
}

void Tape::clear() { nodes_.clear(); }

void apply_activation_precision(const InferenceCtx& ctx, const std::string& layer_id,
                                Tensor& t) {
  if (ctx.calibrating && ctx.ranges != nullptr) {
    (*ctx.ranges)[layer_id].observe(t);
    return;
  }
  switch (ctx.precision) {
    case Precision::kFP32:
      return;
    case Precision::kFP16:
      fp16_round_trip_(t);
      return;
    case Precision::kINT8: {
      if (ctx.ranges == nullptr) return;
      const auto it = ctx.ranges->find(layer_id);
      if (it == ctx.ranges->end() || !it->second.seen) return;
      fake_quantize_(t, it->second.qparams());
      return;
    }
  }
}

Tensor apply_weight_precision(const InferenceCtx& ctx, const Tensor& w) {
  if (ctx.calibrating) return w;
  switch (ctx.precision) {
    case Precision::kFP32:
      return w;
    case Precision::kFP16: {
      Tensor out = w;
      fp16_round_trip_(out);
      return out;
    }
    case Precision::kINT8: {
      Tensor out = w;
      fake_quantize_(out, choose_qparams_symmetric(w.abs_max()));
      return out;
    }
  }
  return w;
}

}  // namespace sysnoise::nn
