#include "nn/layers.h"

#include <cmath>

namespace sysnoise::nn {

Tensor kaiming_normal(std::vector<int> shape, int fan_in, Rng& rng) {
  Tensor t(std::move(shape));
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (float& v : t.vec()) v = rng.normal_f(0.0f, stddev);
  return t;
}

Tensor xavier_uniform(std::vector<int> shape, int fan_in, int fan_out, Rng& rng) {
  Tensor t(std::move(shape));
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : t.vec()) v = rng.uniform_f(-bound, bound);
  return t;
}

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad, Rng& rng,
               std::string layer_id, int groups, bool bias)
    : has_bias(bias), id(std::move(layer_id)) {
  const int icg = in_ch / groups;
  w = Param(kaiming_normal({out_ch, icg, kernel, kernel}, icg * kernel * kernel, rng));
  if (has_bias) b = Param(Tensor({out_ch}));
  spec.stride = stride;
  spec.pad = pad;
  spec.groups = groups;
}

void Conv2d::collect(ParamRefs& out) {
  out.push_back(&w);
  if (has_bias) out.push_back(&b);
}

Linear::Linear(int in_f, int out_f, Rng& rng, std::string layer_id, bool bias)
    : has_bias(bias), id(std::move(layer_id)) {
  w = Param(xavier_uniform({out_f, in_f}, in_f, out_f, rng));
  if (has_bias) b = Param(Tensor({out_f}));
}

void Linear::collect(ParamRefs& out) {
  out.push_back(&w);
  if (has_bias) out.push_back(&b);
}

BatchNorm2d::BatchNorm2d(int channels)
    : gamma(Tensor::full({channels}, 1.0f)),
      beta(Tensor({channels})),
      running_mean(Tensor({channels})),
      running_var(Tensor::full({channels}, 1.0f)) {}

void BatchNorm2d::collect(ParamRefs& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

void BatchNorm2d::collect_affine(ParamRefs& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

LayerNorm::LayerNorm(int dim)
    : gamma(Tensor::full({dim}, 1.0f)), beta(Tensor({dim})) {}

void LayerNorm::collect(ParamRefs& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

Embedding::Embedding(int vocab, int dim, Rng& rng) {
  Tensor t({vocab, dim});
  for (float& v : t.vec()) v = rng.normal_f(0.0f, 0.02f);
  table = Param(std::move(t));
}

void Embedding::collect(ParamRefs& out) { out.push_back(&table); }

MultiHeadAttention::MultiHeadAttention(int dim, int num_heads, bool causal_mask,
                                       Rng& rng, const std::string& layer_id)
    : wq(dim, dim, rng, layer_id + ".q"),
      wk(dim, dim, rng, layer_id + ".k"),
      wv(dim, dim, rng, layer_id + ".v"),
      wo(dim, dim, rng, layer_id + ".o"),
      heads(num_heads),
      causal(causal_mask) {}

Node* MultiHeadAttention::operator()(Tape& t, Node* x) {
  Node* q = wq(t, x);
  Node* k = wk(t, x);
  Node* v = wv(t, x);
  Node* attn = attention_core(t, q, k, v, heads, causal);
  return wo(t, attn);
}

void MultiHeadAttention::collect(ParamRefs& out) {
  wq.collect(out);
  wk.collect(out);
  wv.collect(out);
  wo.collect(out);
}

}  // namespace sysnoise::nn
