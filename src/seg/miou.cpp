#include "seg/miou.h"

#include <stdexcept>

namespace sysnoise::seg {

std::vector<double> per_class_iou(const std::vector<int>& pred,
                                  const std::vector<int>& gt, int num_classes) {
  if (pred.size() != gt.size())
    throw std::invalid_argument("per_class_iou: size mismatch");
  std::vector<long> inter(static_cast<std::size_t>(num_classes), 0),
      p_count(static_cast<std::size_t>(num_classes), 0),
      g_count(static_cast<std::size_t>(num_classes), 0);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const int p = pred[i], g = gt[i];
    if (p >= 0 && p < num_classes) ++p_count[static_cast<std::size_t>(p)];
    if (g >= 0 && g < num_classes) ++g_count[static_cast<std::size_t>(g)];
    if (p == g && p >= 0 && p < num_classes) ++inter[static_cast<std::size_t>(p)];
  }
  std::vector<double> ious(static_cast<std::size_t>(num_classes), -1.0);
  for (int c = 0; c < num_classes; ++c) {
    const long uni = p_count[static_cast<std::size_t>(c)] + g_count[static_cast<std::size_t>(c)] -
                     inter[static_cast<std::size_t>(c)];
    if (uni > 0)
      ious[static_cast<std::size_t>(c)] =
          static_cast<double>(inter[static_cast<std::size_t>(c)]) / static_cast<double>(uni);
  }
  return ious;
}

double mean_iou(const std::vector<int>& pred, const std::vector<int>& gt,
                int num_classes) {
  const auto ious = per_class_iou(pred, gt, num_classes);
  double s = 0.0;
  int n = 0;
  for (double v : ious)
    if (v >= 0.0) {
      s += v;
      ++n;
    }
  return n > 0 ? s / n : 0.0;
}

double pixel_accuracy(const std::vector<int>& pred, const std::vector<int>& gt) {
  if (pred.size() != gt.size())
    throw std::invalid_argument("pixel_accuracy: size mismatch");
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) correct += pred[i] == gt[i];
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace sysnoise::seg
