// Semantic segmentation metrics (CityScapes substitute evaluation).
#pragma once

#include <vector>

namespace sysnoise::seg {

// Confusion-matrix based mean IoU over `num_classes`; inputs are flat
// per-pixel label vectors (prediction, ground truth) of equal size.
// Classes absent from both prediction and GT are skipped.
double mean_iou(const std::vector<int>& pred, const std::vector<int>& gt,
                int num_classes);

// Per-class IoU vector (NaN-free: absent classes reported as -1).
std::vector<double> per_class_iou(const std::vector<int>& pred,
                                  const std::vector<int>& gt, int num_classes);

// Plain pixel accuracy.
double pixel_accuracy(const std::vector<int>& pred, const std::vector<int>& gt);

}  // namespace sysnoise::seg
