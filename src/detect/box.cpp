#include "detect/box.h"

#include <algorithm>
#include <cmath>

namespace sysnoise::detect {

float iou(const Box& a, const Box& b) {
  const float ix1 = std::max(a.x1, b.x1), iy1 = std::max(a.y1, b.y1);
  const float ix2 = std::min(a.x2, b.x2), iy2 = std::min(a.y2, b.y2);
  const float iw = std::max(0.0f, ix2 - ix1), ih = std::max(0.0f, iy2 - iy1);
  const float inter = iw * ih;
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

AnchorGrid make_anchors(const std::vector<std::pair<int, int>>& level_shapes,
                        const std::vector<int>& strides,
                        const std::vector<float>& sizes) {
  AnchorGrid grid;
  for (std::size_t lvl = 0; lvl < level_shapes.size(); ++lvl) {
    const auto [h, w] = level_shapes[lvl];
    const float stride = static_cast<float>(strides[lvl]);
    const float half = sizes[lvl] * 0.5f;
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        const float cx = (static_cast<float>(x) + 0.5f) * stride;
        const float cy = (static_cast<float>(y) + 0.5f) * stride;
        grid.anchors.push_back({cx - half, cy - half, cx + half, cy + half});
        grid.level_of.push_back(static_cast<int>(lvl));
      }
  }
  return grid;
}

void BoxCoder::encode(const Box& anchor, const Box& gt, float out[4]) const {
  const float aw = anchor.x2 - anchor.x1 + offset;
  const float ah = anchor.y2 - anchor.y1 + offset;
  const float ax = anchor.x1 + 0.5f * aw;
  const float ay = anchor.y1 + 0.5f * ah;
  const float gw = gt.x2 - gt.x1 + offset;
  const float gh = gt.y2 - gt.y1 + offset;
  const float gx = gt.x1 + 0.5f * gw;
  const float gy = gt.y1 + 0.5f * gh;
  out[0] = wx * (gx - ax) / aw;
  out[1] = wy * (gy - ay) / ah;
  out[2] = ww * std::log(gw / aw);
  out[3] = wh * std::log(gh / ah);
}

Box BoxCoder::decode(const Box& anchor, const float delta[4]) const {
  const float aw = anchor.x2 - anchor.x1 + offset;
  const float ah = anchor.y2 - anchor.y1 + offset;
  const float ax = anchor.x1 + 0.5f * aw;
  const float ay = anchor.y1 + 0.5f * ah;
  // Clamp dw/dh exactly as the paper's listing (log(1000/16)).
  const float max_ratio = std::log(1000.0f / 16.0f);
  const float dw = std::min(delta[2] / ww, max_ratio);
  const float dh = std::min(delta[3] / wh, max_ratio);
  const float pw = std::exp(dw) * aw;
  const float ph = std::exp(dh) * ah;
  const float px = delta[0] / wx * aw + ax;
  const float py = delta[1] / wy * ah + ay;
  Box b;
  b.x1 = px - 0.5f * pw;
  b.y1 = py - 0.5f * ph;
  b.x2 = px + 0.5f * pw - offset;  // the ALIGNED_FLAG.offset subtraction
  b.y2 = py + 0.5f * ph - offset;
  return b;
}

std::vector<int> nms(const std::vector<Detection>& dets, float iou_threshold) {
  std::vector<int> order(dets.size());
  for (std::size_t i = 0; i < dets.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return dets[static_cast<std::size_t>(a)].score > dets[static_cast<std::size_t>(b)].score;
  });
  std::vector<int> keep;
  std::vector<bool> suppressed(dets.size(), false);
  for (int idx : order) {
    if (suppressed[static_cast<std::size_t>(idx)]) continue;
    keep.push_back(idx);
    for (int jdx : order) {
      if (jdx == idx || suppressed[static_cast<std::size_t>(jdx)]) continue;
      if (dets[static_cast<std::size_t>(idx)].label != dets[static_cast<std::size_t>(jdx)].label)
        continue;
      if (iou(dets[static_cast<std::size_t>(idx)].box, dets[static_cast<std::size_t>(jdx)].box) >=
          iou_threshold)
        suppressed[static_cast<std::size_t>(jdx)] = true;
    }
  }
  return keep;
}

double average_precision_at(const std::vector<std::vector<Detection>>& detections,
                            const std::vector<std::vector<GtBox>>& gts,
                            int num_classes, float iou_thr) {
  double ap_sum = 0.0;
  int classes_with_gt = 0;
  for (int cls = 0; cls < num_classes; ++cls) {
    // Gather detections of this class across images with image index.
    struct Det {
      float score;
      int image;
      Box box;
    };
    std::vector<Det> all;
    int total_gt = 0;
    for (std::size_t img = 0; img < detections.size(); ++img) {
      for (const auto& d : detections[img])
        if (d.label == cls) all.push_back({d.score, static_cast<int>(img), d.box});
      for (const auto& g : gts[img])
        if (g.label == cls) ++total_gt;
    }
    if (total_gt == 0) continue;
    ++classes_with_gt;
    std::stable_sort(all.begin(), all.end(),
                     [](const Det& a, const Det& b) { return a.score > b.score; });

    std::vector<std::vector<bool>> matched(gts.size());
    for (std::size_t img = 0; img < gts.size(); ++img)
      matched[img].assign(gts[img].size(), false);

    std::vector<int> tp(all.size(), 0);
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& d = all[i];
      const auto& img_gts = gts[static_cast<std::size_t>(d.image)];
      float best_iou = 0.0f;
      int best_j = -1;
      for (std::size_t j = 0; j < img_gts.size(); ++j) {
        if (img_gts[j].label != cls || matched[static_cast<std::size_t>(d.image)][j])
          continue;
        const float v = iou(d.box, img_gts[j].box);
        if (v > best_iou) {
          best_iou = v;
          best_j = static_cast<int>(j);
        }
      }
      if (best_iou >= iou_thr && best_j >= 0) {
        tp[i] = 1;
        matched[static_cast<std::size_t>(d.image)][static_cast<std::size_t>(best_j)] = true;
      }
    }

    // Precision envelope, 101-point interpolation (COCO style).
    std::vector<double> precisions, recalls;
    int cum_tp = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      cum_tp += tp[i];
      precisions.push_back(static_cast<double>(cum_tp) / static_cast<double>(i + 1));
      recalls.push_back(static_cast<double>(cum_tp) / total_gt);
    }
    for (int i = static_cast<int>(precisions.size()) - 2; i >= 0; --i)
      precisions[static_cast<std::size_t>(i)] =
          std::max(precisions[static_cast<std::size_t>(i)], precisions[static_cast<std::size_t>(i) + 1]);
    double ap = 0.0;
    for (int r = 0; r <= 100; ++r) {
      const double rec = r / 100.0;
      double p = 0.0;
      for (std::size_t i = 0; i < recalls.size(); ++i)
        if (recalls[i] >= rec) {
          p = precisions[i];
          break;
        }
      ap += p;
    }
    ap_sum += ap / 101.0;
  }
  return classes_with_gt > 0 ? ap_sum / classes_with_gt : 0.0;
}

double mean_average_precision(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GtBox>>& gts, int num_classes) {
  double s = 0.0;
  int n = 0;
  for (float thr = 0.50f; thr < 0.955f; thr += 0.05f) {
    s += average_precision_at(detections, gts, num_classes, thr);
    ++n;
  }
  return s / n;
}

}  // namespace sysnoise::detect
