// Axis-aligned boxes, IoU, anchors, and the delta box coder whose
// ALIGNED_FLAG.offset knob is the paper's post-processing SysNoise
// (Sec. 3.3 and the Appendix A code listing): hardware stacks disagree on
// whether to subtract 1 when converting centers back to corner coordinates.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace sysnoise::detect {

struct Box {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  float area() const { return std::max(0.0f, x2 - x1) * std::max(0.0f, y2 - y1); }
};

float iou(const Box& a, const Box& b);

struct Detection {
  Box box;
  int label = 0;
  float score = 0.0f;
};

// One anchor per feature cell per level (stride-aligned, square).
struct AnchorGrid {
  std::vector<Box> anchors;   // flattened over levels, row-major per level
  std::vector<int> level_of;  // anchor index -> pyramid level
};

// Build anchors for pyramid levels. level_shapes[i] = {h, w} of level i's
// feature map; stride/size per level.
AnchorGrid make_anchors(const std::vector<std::pair<int, int>>& level_shapes,
                        const std::vector<int>& strides,
                        const std::vector<float>& sizes);

// Delta (dx, dy, dw, dh) box coder, paper Appendix A post-processing.
// The delta weights (wx, wy, ww, wh) scale regression targets exactly as
// the paper's code listing ("dx = offset[:, 0::4] / wx").
struct BoxCoder {
  float offset = 0.0f;  // ALIGNED_FLAG.offset: 0 (aligned) or 1 (legacy)
  float wx = 10.0f, wy = 10.0f, ww = 5.0f, wh = 5.0f;

  // Encode ground truth relative to an anchor (network-target space).
  void encode(const Box& anchor, const Box& gt, float out[4]) const;
  // Decode network outputs back to a box (applies exp clamp like the
  // listing).
  Box decode(const Box& anchor, const float delta[4]) const;
};

// Greedy NMS: keep highest-scoring boxes, drop IoU >= threshold overlaps.
// Operates per label. Returns indices kept (sorted by descending score).
std::vector<int> nms(const std::vector<Detection>& dets, float iou_threshold);

// COCO-style mAP averaged over IoU thresholds 0.50:0.05:0.95.
struct GtBox {
  Box box;
  int label = 0;
};
// detections/gts are per-image lists.
double mean_average_precision(
    const std::vector<std::vector<Detection>>& detections,
    const std::vector<std::vector<GtBox>>& gts, int num_classes);

// Single-threshold AP (exposed for tests).
double average_precision_at(const std::vector<std::vector<Detection>>& detections,
                            const std::vector<std::vector<GtBox>>& gts,
                            int num_classes, float iou_thr);

}  // namespace sysnoise::detect
