#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

namespace sysnoise {

QuantParams choose_qparams(float lo, float hi) {
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  if (hi - lo < 1e-8f) return {1.0f, 0};
  QuantParams qp;
  qp.scale = (hi - lo) / 255.0f;
  const float zp = -128.0f - lo / qp.scale;
  qp.zero_point = static_cast<int>(std::lround(std::clamp(zp, -128.0f, 127.0f)));
  return qp;
}

QuantParams choose_qparams_symmetric(float abs_max) {
  if (abs_max < 1e-8f) return {1.0f, 0};
  return {abs_max / 127.0f, 0};
}

std::int8_t quantize_value(float v, const QuantParams& qp) {
  const float q = std::nearbyintf(v / qp.scale) + static_cast<float>(qp.zero_point);
  return static_cast<std::int8_t>(std::clamp(q, -128.0f, 127.0f));
}

float dequantize_value(std::int8_t q, const QuantParams& qp) {
  return (static_cast<float>(q) - static_cast<float>(qp.zero_point)) * qp.scale;
}

void fake_quantize_(Tensor& t, const QuantParams& qp) {
  for (float& v : t.vec()) v = dequantize_value(quantize_value(v, qp), qp);
}

std::vector<std::int8_t> quantize_tensor(const Tensor& t, const QuantParams& qp) {
  std::vector<std::int8_t> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = quantize_value(t[i], qp);
  return out;
}

void RangeObserver::observe(const Tensor& t) {
  if (t.empty()) return;
  const float mn = t.min(), mx = t.max();
  if (!seen) {
    lo = mn;
    hi = mx;
    seen = true;
  } else {
    lo = std::min(lo, mn);
    hi = std::max(hi, mx);
  }
}

void int8_gemm_dequant(int m, int n, int k, const std::int8_t* a,
                       const QuantParams& qa, const std::int8_t* b,
                       const QuantParams& qb, float* c_fp32) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        const std::int32_t av = a[static_cast<std::size_t>(i) * k + kk] - qa.zero_point;
        const std::int32_t bv = b[static_cast<std::size_t>(kk) * n + j] - qb.zero_point;
        acc += av * bv;
      }
      c_fp32[static_cast<std::size_t>(i) * n + j] =
          static_cast<float>(acc) * qa.scale * qb.scale;
    }
  }
}

}  // namespace sysnoise
