// Post-training quantization math (paper Sec. 3.2 "Data Precision" and
// Appendix A Eq. 9-10).
//
// INT8 uses per-tensor affine quantization: a scale s and zero point z fit
// the observed range; values are clipped to [-128, 127], rounded to
// nearest, and dequantized. "Fake quant" (quantize-then-dequantize in
// float) is numerically identical to integer execution with float
// requantization for the operations used here, so the inference engine
// applies fake quant at conv/linear boundaries; integer-kernel equivalence
// is verified in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sysnoise {

struct QuantParams {
  float scale = 1.0f;
  int zero_point = 0;  // in int8 domain
};

// Choose affine parameters so [lo, hi] maps onto [-128, 127]. Ensures the
// range contains zero (required for exact zero representation).
QuantParams choose_qparams(float lo, float hi);

// Symmetric variant used for weights (zero_point == 0).
QuantParams choose_qparams_symmetric(float abs_max);

std::int8_t quantize_value(float v, const QuantParams& qp);
float dequantize_value(std::int8_t q, const QuantParams& qp);

// Elementwise fake quantization (quantize + dequantize) in place.
void fake_quantize_(Tensor& t, const QuantParams& qp);

// Quantize a whole tensor to int8.
std::vector<std::int8_t> quantize_tensor(const Tensor& t, const QuantParams& qp);

// Observed activation range for calibration (running min/max).
struct RangeObserver {
  float lo = 0.0f;
  float hi = 0.0f;
  bool seen = false;
  void observe(const Tensor& t);
  QuantParams qparams() const { return choose_qparams(lo, hi); }
};

// Integer reference matmul: C_fp32 = dequant( A_q * B_q ) with int32
// accumulation — used by tests to prove fake-quant == integer execution.
void int8_gemm_dequant(int m, int n, int k, const std::int8_t* a,
                       const QuantParams& qa, const std::int8_t* b,
                       const QuantParams& qb, float* c_fp32);

}  // namespace sysnoise
