// Dense float32 tensor used throughout the SysNoise reproduction.
//
// Layout is row-major over an arbitrary-rank shape; the NN stack uses the
// NCHW convention. The class is intentionally small: contiguous storage,
// value semantics, checked element access in debug builds.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sysnoise {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape) : Tensor(std::vector<int>(shape)) {}

  // Named constructors.
  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  static Tensor from_vector(std::vector<int> shape, std::vector<float> data);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  // NCHW accessors (rank-4 only).
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;
  // Rank-2 accessor (rows, cols).
  float& at2(int r, int c);
  float at2(int r, int c) const;
  // Rank-3 accessor.
  float& at3(int a, int b, int c);
  float at3(int a, int b, int c) const;

  // Reinterpret the flat buffer with a new shape of identical element count.
  Tensor reshaped(std::vector<int> new_shape) const;

  // Elementwise in-place helpers.
  void fill(float value);
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(float scalar);
  Tensor& add_scaled_(const Tensor& other, float scale);  // this += scale*other

  // Reductions.
  float min() const;
  float max() const;
  float sum() const;
  float mean() const;
  float abs_max() const;

  // Slice batch item n (rank>=1, first axis) as copy of shape shape[1:].
  Tensor slice_front(int n) const;
  // Write `item` (shape shape[1:]) into first-axis position n.
  void set_front(int n, const Tensor& item);

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

// Elementwise binary/unary out-of-place helpers.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);

// Stack per-item tensors (each [1, ...]) into one batch tensor along the
// leading axis: k items of shape [1, d1, ...] -> [k, d1, ...].
Tensor stack_front(const std::vector<Tensor>& items);

// Stack already-batched tensors [b_i, d1, ...] (equal trailing dims) into
// one [sum(b_i), d1, ...] tensor along the leading axis. Row-major layout
// means every sample's bytes are copied verbatim, so sample s of part p is
// bit-identical at stacked index (b_0 + ... + b_{p-1} + s) — the property
// the cross-config batched forward engine relies on. Throws
// std::invalid_argument on trailing-dim mismatch.
Tensor stack_parts(const std::vector<const Tensor*>& parts);

// Inverse of stack_parts: split a stacked tensor back into parts with the
// given leading dims (which must sum to stacked.dim(0)). Each returned part
// is a bit-exact copy of the corresponding sample range.
std::vector<Tensor> unstack_parts(const Tensor& stacked,
                                  const std::vector<int>& fronts);

// Maximum absolute difference between two same-shape tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

// Mean squared error between two same-shape tensors.
float mse(const Tensor& a, const Tensor& b);

std::size_t shape_numel(const std::vector<int>& shape);

}  // namespace sysnoise
