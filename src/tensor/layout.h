// Activation-layout conversion: NCHW (the training-framework convention
// used throughout this codebase) <-> NHWC (the channels-last convention of
// TFLite, TensorRT tensor-core paths and most mobile runtimes).
//
// The permutation itself is value-preserving; the SysNoise "Layout" axis
// models what real converter stacks do around it: the NHWC staging copy is
// materialized in half precision (channels-last kernels target FP16 tensor
// cores, and converters insert transpose ops on FP16 buffers), so a
// deployment that round-trips the network input through an NHWC buffer
// perturbs every activation by one FP16 rounding. nhwc_round_trip_() is
// that round trip: NCHW -> NHWC(FP16) -> NCHW, deterministic per element.
#pragma once

#include "tensor/tensor.h"

namespace sysnoise {

// Permute a [N,C,H,W] (or [C,H,W], treated as N=1) tensor to [N,H,W,C].
// Pure data movement — bit-exact values.
Tensor nchw_to_nhwc(const Tensor& t);

// Inverse permutation: [N,H,W,C] -> [N,C,H,W] (or rank-3 [H,W,C] -> [C,H,W]).
Tensor nhwc_to_nchw(const Tensor& t);

// The Layout-axis noise: round-trip `t` (NCHW) through an NHWC staging
// buffer held in FP16, in place. Equivalent to one FP16 round-to-nearest-
// even per element; implemented as the actual permute -> half store ->
// permute-back chain so the modeled mechanism is the executed one.
void nhwc_round_trip_(Tensor& t);

}  // namespace sysnoise
