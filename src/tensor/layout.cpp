#include "tensor/layout.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/half.h"

namespace sysnoise {

namespace {

// Normalize [C,H,W] to [1,C,H,W] dims; throws on other ranks.
void nchw_dims(const Tensor& t, int* n, int* c, int* h, int* w) {
  if (t.rank() == 4) {
    *n = t.dim(0);
    *c = t.dim(1);
    *h = t.dim(2);
    *w = t.dim(3);
    return;
  }
  if (t.rank() == 3) {
    *n = 1;
    *c = t.dim(0);
    *h = t.dim(1);
    *w = t.dim(2);
    return;
  }
  throw std::invalid_argument("layout: expected rank-3/4 tensor, got " +
                              t.shape_str());
}

}  // namespace

Tensor nchw_to_nhwc(const Tensor& t) {
  int n = 0, c = 0, h = 0, w = 0;
  nchw_dims(t, &n, &c, &h, &w);
  Tensor out(t.rank() == 4 ? std::vector<int>{n, h, w, c}
                           : std::vector<int>{h, w, c});
  const float* src = t.data();
  float* dst = out.data();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int b = 0; b < n; ++b) {
    const float* img = src + static_cast<std::size_t>(b) * c * plane;
    float* oimg = dst + static_cast<std::size_t>(b) * c * plane;
    for (int ch = 0; ch < c; ++ch)
      for (std::size_t p = 0; p < plane; ++p)
        oimg[p * static_cast<std::size_t>(c) + ch] =
            img[static_cast<std::size_t>(ch) * plane + p];
  }
  return out;
}

Tensor nhwc_to_nchw(const Tensor& t) {
  int n = 1, h = 0, w = 0, c = 0;
  if (t.rank() == 4) {
    n = t.dim(0);
    h = t.dim(1);
    w = t.dim(2);
    c = t.dim(3);
  } else if (t.rank() == 3) {
    h = t.dim(0);
    w = t.dim(1);
    c = t.dim(2);
  } else {
    throw std::invalid_argument("layout: expected rank-3/4 tensor, got " +
                                t.shape_str());
  }
  Tensor out(t.rank() == 4 ? std::vector<int>{n, c, h, w}
                           : std::vector<int>{c, h, w});
  const float* src = t.data();
  float* dst = out.data();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int b = 0; b < n; ++b) {
    const float* img = src + static_cast<std::size_t>(b) * c * plane;
    float* oimg = dst + static_cast<std::size_t>(b) * c * plane;
    for (std::size_t p = 0; p < plane; ++p)
      for (int ch = 0; ch < c; ++ch)
        oimg[static_cast<std::size_t>(ch) * plane + p] =
            img[p * static_cast<std::size_t>(c) + ch];
  }
  return out;
}

void nhwc_round_trip_(Tensor& t) {
  Tensor nhwc = nchw_to_nhwc(t);
  // The staging buffer is FP16: store every element as binary16.
  std::vector<std::uint16_t> staged(nhwc.size());
  const float* src = nhwc.data();
  for (std::size_t i = 0; i < staged.size(); ++i)
    staged[i] = float_to_half(src[i]);
  float* back = nhwc.data();
  for (std::size_t i = 0; i < staged.size(); ++i)
    back[i] = half_to_float(staged[i]);
  t = nhwc_to_nchw(nhwc);
}

}  // namespace sysnoise
