// Deterministic PRNG for the whole reproduction.
//
// std::*_distribution output is implementation-defined, which would make
// results differ between standard libraries — exactly the kind of system
// noise this benchmark must control for. We therefore ship xoshiro256**
// plus our own uniform / normal / integer sampling.
#pragma once

#include <cstdint>
#include <vector>

namespace sysnoise {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  float uniform_f(float lo, float hi);
  // Uniform integer in [0, n).
  int uniform_int(int n);
  // Standard normal via Box-Muller (deterministic across platforms).
  double normal();
  float normal_f(float mean, float stddev);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);

  // Fisher-Yates shuffle of an index vector [0, n).
  std::vector<int> permutation(int n);

  // Derive an independent stream (for per-module seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sysnoise
