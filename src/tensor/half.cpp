#include "tensor/half.h"

#include <bit>
#include <cstring>

namespace sysnoise {

std::uint16_t float_to_half(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t mant = x & 0x007FFFFFu;
  const int exp = static_cast<int>((x >> 23) & 0xFFu);

  if (exp == 0xFF) {  // inf or nan
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7C00u);
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant >> 13) | 1u);
  }

  // Re-bias: half exponent = exp - 127 + 15.
  int new_exp = exp - 127 + 15;
  if (new_exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (new_exp <= 0) {  // subnormal half or zero
    if (new_exp < -10) return static_cast<std::uint16_t>(sign);  // underflow
    // Add implicit leading 1 and shift into subnormal position.
    std::uint32_t m = mant | 0x00800000u;
    const int shift = 14 - new_exp;  // in [14, 24]
    const std::uint32_t half_mant = m >> shift;
    // Round to nearest even.
    const std::uint32_t rem = m & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = half_mant;
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal case: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t half_mant = mant >> 13;
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow -> bump exponent
      half_mant = 0;
      ++new_exp;
      if (new_exp >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                                    half_mant);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

void fp16_round_trip_(Tensor& t) {
  for (float& v : t.vec()) v = fp16_round(v);
}

}  // namespace sysnoise
