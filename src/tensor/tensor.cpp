#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace sysnoise {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(std::vector<int> shape, std::vector<float> data) {
  if (shape_numel(shape) != data.size())
    throw std::invalid_argument("from_vector: shape/data size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

int Tensor::dim(int i) const {
  if (i < 0) i += rank();
  if (i < 0 || i >= rank()) throw std::out_of_range("Tensor::dim");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at4(int n, int c, int h, int w) {
  assert(rank() == 4);
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  assert(idx < data_.size());
  return data_[idx];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

float& Tensor::at2(int r, int c) {
  assert(rank() == 2);
  const std::size_t idx = static_cast<std::size_t>(r) * shape_[1] + c;
  assert(idx < data_.size());
  return data_[idx];
}

float Tensor::at2(int r, int c) const { return const_cast<Tensor*>(this)->at2(r, c); }

float& Tensor::at3(int a, int b, int c) {
  assert(rank() == 3);
  const std::size_t idx = (static_cast<std::size_t>(a) * shape_[1] + b) * shape_[2] + c;
  assert(idx < data_.size());
  return data_[idx];
}

float Tensor::at3(int a, int b, int c) const {
  return const_cast<Tensor*>(this)->at3(a, b, c);
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_numel(new_shape) != data_.size())
    throw std::invalid_argument("reshaped: element count mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::add_(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float scale) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
  return *this;
}

float Tensor::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Tensor Tensor::slice_front(int n) const {
  if (rank() < 1) throw std::invalid_argument("slice_front: rank 0");
  std::vector<int> sub(shape_.begin() + 1, shape_.end());
  Tensor out(sub);
  const std::size_t stride = out.size();
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(n * stride),
            data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * stride),
            out.data_.begin());
  return out;
}

void Tensor::set_front(int n, const Tensor& item) {
  const std::size_t stride = item.size();
  assert((n + 1) * stride <= data_.size());
  std::copy(item.data_.begin(), item.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(n * stride));
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.sub_(b);
  return out;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor out = a;
  out.mul_(s);
  return out;
}

Tensor stack_front(const std::vector<Tensor>& items) {
  if (items.empty()) return {};
  std::vector<int> shape = items[0].shape();
  shape[0] = static_cast<int>(items.size());
  Tensor out(shape);
  for (std::size_t i = 0; i < items.size(); ++i)
    out.set_front(static_cast<int>(i), items[i].slice_front(0));
  return out;
}

Tensor stack_parts(const std::vector<const Tensor*>& parts) {
  if (parts.empty()) return {};
  const std::vector<int>& head = parts[0]->shape();
  if (head.empty()) throw std::invalid_argument("stack_parts: rank-0 part");
  int total = 0;
  for (const Tensor* part : parts) {
    const std::vector<int>& shape = part->shape();
    if (shape.size() != head.size() ||
        !std::equal(shape.begin() + 1, shape.end(), head.begin() + 1))
      throw std::invalid_argument("stack_parts: trailing-dim mismatch (" +
                                  part->shape_str() + " vs " +
                                  parts[0]->shape_str() + ")");
    total += shape[0];
  }
  std::vector<int> shape = head;
  shape[0] = total;
  Tensor out(shape);
  float* dst = out.data();
  for (const Tensor* part : parts) {
    std::memcpy(dst, part->data(), part->size() * sizeof(float));
    dst += part->size();
  }
  return out;
}

std::vector<Tensor> unstack_parts(const Tensor& stacked,
                                  const std::vector<int>& fronts) {
  if (stacked.rank() < 1)
    throw std::invalid_argument("unstack_parts: rank-0 tensor");
  int total = 0;
  for (const int f : fronts) {
    if (f <= 0) throw std::invalid_argument("unstack_parts: non-positive front");
    total += f;
  }
  if (total != stacked.dim(0))
    throw std::invalid_argument("unstack_parts: fronts sum to " +
                                std::to_string(total) + ", tensor holds " +
                                std::to_string(stacked.dim(0)));
  const std::size_t stride =
      stacked.dim(0) == 0 ? 0 : stacked.size() / static_cast<std::size_t>(stacked.dim(0));
  std::vector<Tensor> out;
  out.reserve(fronts.size());
  const float* src = stacked.data();
  for (const int f : fronts) {
    std::vector<int> shape = stacked.shape();
    shape[0] = f;
    Tensor part(shape);
    std::memcpy(part.data(), src, part.size() * sizeof(float));
    src += static_cast<std::size_t>(f) * stride;
    out.push_back(std::move(part));
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

float mse(const Tensor& a, const Tensor& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0f;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(s / static_cast<double>(a.size()));
}

}  // namespace sysnoise
