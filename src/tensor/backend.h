// Pluggable compute backends for the GEMM / im2col-conv hot path.
//
// Every float GEMM in the engine (tensor/gemm.h) and the conv2d im2col path
// (nn/ops_conv.cpp) dispatch through the active ComputeBackend:
//
//  - kReference  — the historical scalar loops, bit-identical to the seed's
//                  output. Keeps the zero-skip (`if (av == 0.0f) continue;`)
//                  as an explicit, documented property: it silently drops
//                  0 x inf = NaN propagation, so results depend on the
//                  sparsity of A when B holds non-finite values.
//  - kBlocked    — register-tiled micro-kernel over packed panels with a
//                  fixed, k-ascending accumulation order (no zero-skip, so
//                  IEEE non-finite propagation is exact).
//  - kSimd       — AVX2+FMA on x86 / NEON on ARM, picked by runtime CPU
//                  detection with a scalar (blocked) fallback; vector tails
//                  run scalar. FMA and lane-wise partial sums legitimately
//                  round differently from the scalar kernels.
//
// Different kernels produce different floats for the *same* operator — that
// is exactly the paper's hardware/implementation noise, so the backend is
// registered as a NoiseAxis (core/axis.cpp) and selected per deployment
// config (SysNoiseConfig::backend). The bit-exactness contract is
// per-backend: every executor must produce byte-identical sweeps *given the
// same backend*; nothing is promised across backends beyond the parity
// epsilon the tests pin.
//
// The process-wide default comes from $SYSNOISE_BACKEND (reference when
// unset); per-thread overrides (BackendScope) are how ops apply a config's
// backend around their kernel calls. A small process-wide worker pool
// provides deterministic intra-forward parallelism: parallel_ranges() splits
// disjoint row ranges across workers, which cannot change any accumulation
// order, so results are bit-identical at every worker count.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace sysnoise {

enum class ComputeBackend { kReference = 0, kBlocked = 1, kSimd = 2 };
constexpr int kNumComputeBackends = 3;

const char* backend_name(ComputeBackend b);
// Inverse of backend_name; throws std::invalid_argument on unknown names so
// a corrupted plan or env var fails loudly.
ComputeBackend backend_from_name(const std::string& name);

// The process-wide default backend: $SYSNOISE_BACKEND at first use (throws
// on an unknown value), overridable programmatically. New SysNoiseConfigs
// and InferenceCtxs are born with this backend; training runs under it.
ComputeBackend default_backend();
// Override the process default (tests, per-backend benches). Returns the
// previous default.
ComputeBackend set_default_backend(ComputeBackend b);

// The backend the calling thread's kernel calls dispatch to: the innermost
// live BackendScope, or the process default when none is active.
ComputeBackend active_backend();

// RAII per-thread backend override. Ops open one from their InferenceCtx
// around kernel calls, so a parallel sweep can evaluate configs with
// different backends concurrently without races.
class BackendScope {
 public:
  explicit BackendScope(ComputeBackend b);
  ~BackendScope();
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  int prev_;
};

// Which SIMD ISA the kSimd backend dispatches to on this machine: "avx2",
// "neon", or "scalar" (no vector unit detected; kSimd then computes with
// the blocked kernels). Recorded in BENCH_perf.json so perf trajectories
// across machines are interpretable.
const char* simd_isa_name();

// --- intra-forward parallelism ---------------------------------------------

// Worker count the calling thread's kernel calls may fan out to (>= 1).
// Defaults to 1 (serial); the batched executor opens a GemmParallelScope
// around stacked multi-config forward invocations.
int gemm_workers();

// RAII per-thread parallelism grant. `workers <= 0` means "use the
// hardware": min(hardware_concurrency, kMaxGemmWorkers).
class GemmParallelScope {
 public:
  explicit GemmParallelScope(int workers);
  ~GemmParallelScope();
  GemmParallelScope(const GemmParallelScope&) = delete;
  GemmParallelScope& operator=(const GemmParallelScope&) = delete;

 private:
  int prev_;
};

// Grow the process worker pool to at least `n` helper threads (capped at
// the pool's fan-out bound; threads are only ever added). The pool normally
// sizes itself to hardware_concurrency() - 1, which is zero on a
// single-core host — every fan-out then collapses to one inline range and
// the split path is never exercised. Tests and benches that assert
// split-vs-serial behavior call this first so they are never vacuously
// green on small machines.
void ensure_gemm_pool_helpers(int n);

// Split [0, total) into at most gemm_workers() contiguous chunks (aligned
// down to `align` boundaries) and run fn(begin, end) for each, across the
// process worker pool plus the calling thread. Ranges are disjoint, so any
// writer touching only its range is race-free and order-independent; runs
// inline when gemm_workers() == 1, total is small, or the caller is itself
// a pool worker (no nested fan-out).
void parallel_ranges(int total, int align,
                     const std::function<void(int, int)>& fn);

// --- scratch arena ----------------------------------------------------------

// Thread-local scratch buffer lender: returns a buffer of at least `floats`
// floats for `slot`, reused (and only ever grown) across calls, so per-call
// hot-path allocations (GEMM packing panels, conv im2col columns) happen
// once per thread per high-water mark instead of once per invocation.
// Slots 0-1 are reserved for GEMM packing; conv uses 2-3. The buffer stays
// valid until the same thread asks for the same slot again.
float* tls_scratch(std::size_t floats, int slot);

}  // namespace sysnoise
