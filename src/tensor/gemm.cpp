// GEMM kernel family behind the ComputeBackend seam (tensor/backend.h).
//
// Three implementations of every variant:
//  - reference: the seed's scalar loops, bit-identical to the historical
//    output. Keeps the zero-skip (`if (av == 0.0f) continue;`) as a
//    documented reference-only property — it drops 0 x inf = NaN
//    propagation, so results depend on the sparsity of A when B holds
//    non-finite values. The other backends do NOT skip.
//  - blocked: one packed-panel engine for all variants. A and B tiles are
//    packed into k-major micro-panels and a register-tiled MR x NR
//    micro-kernel accumulates in a fixed, strictly k-ascending order into
//    fresh accumulators that are added to C once — deterministic at any
//    tile boundary or worker count.
//  - simd: the same packed engine with an AVX2+FMA (x86) or NEON (ARM)
//    micro-kernel, chosen by runtime CPU detection; tails and unsupported
//    CPUs fall back to the blocked scalar micro-kernel. FMA's single
//    rounding makes this a genuinely different float profile — which is
//    the point: the backend is a measured noise axis.
//
// All public entry points additionally split large-M row ranges across the
// worker pool when the caller granted parallelism (GemmParallelScope); row
// ranges are disjoint and accumulation order per element is unchanged, so
// results are bit-identical at every worker count.
#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/backend.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SYSNOISE_GEMM_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SYSNOISE_GEMM_NEON 1
#endif

namespace sysnoise {

namespace {

// ---------------------------------------------------------------------------
// Reference backend: the seed's loops, preserved verbatim.
// ---------------------------------------------------------------------------

constexpr int kRefBlockK = 128;
constexpr int kRefBlockN = 256;

void ref_gemm_acc(int m, int n, int k, const float* a, const float* b,
                  float* c) {
  // i-k-j loop order with k/n blocking: B rows stream through cache.
  for (int k0 = 0; k0 < k; k0 += kRefBlockK) {
    const int k1 = std::min(k, k0 + kRefBlockK);
    for (int n0 = 0; n0 < n; n0 += kRefBlockN) {
      const int n1 = std::min(n, n0 + kRefBlockN);
      for (int i = 0; i < m; ++i) {
        float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
        const float* arow = a + static_cast<std::ptrdiff_t>(i) * k;
        for (int kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<std::ptrdiff_t>(kk) * n;
          for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void ref_gemm_at_acc(int m, int n, int k, const float* a, int a_stride,
                     const float* b, float* c) {
  // A is k x a_stride and this call covers m of its columns starting at
  // `a` (a_stride == m for a whole-matrix call; a row-split passes the
  // full output width so each k step strides over the entire A row).
  // Iterate kk outer so both A and B stream row-wise.
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::ptrdiff_t>(kk) * a_stride;
    const float* brow = b + static_cast<std::ptrdiff_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ref_gemm_bt_acc(int m, int n, int k, const float* a, const float* b,
                     float* c) {
  // B is n x k; dot products of A rows with B rows.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::ptrdiff_t>(i) * k;
    float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::ptrdiff_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-panel engine shared by the blocked and simd backends
// ---------------------------------------------------------------------------

// Micro-tile: MR rows of C by NR columns, accumulators live in registers
// across the whole k loop (one panel pass), then spill into C exactly once.
constexpr int MR = 4;
constexpr int NR = 16;

// How the engine reads its operands. The packing gathers normalize every
// variant to the same k-major micro-panels, so one micro-kernel serves
// gemm_acc (A m x k, B k x n), gemm_at_acc (A k x m) and gemm_bt_acc
// (B n x k).
enum class AMode { kNormal, kTransposed };
enum class BMode { kNormal, kTransposed };

inline float a_at(AMode mode, const float* a, int m, int k, int i, int kk) {
  return mode == AMode::kNormal ? a[static_cast<std::ptrdiff_t>(i) * k + kk]
                                : a[static_cast<std::ptrdiff_t>(kk) * m + i];
}

inline float b_at(BMode mode, const float* b, int n, int k, int kk, int j) {
  return mode == BMode::kNormal ? b[static_cast<std::ptrdiff_t>(kk) * n + j]
                                : b[static_cast<std::ptrdiff_t>(j) * k + kk];
}

// Scalar micro-kernel: acc[MR x NR] = ap panel * bp panel over k steps in
// strictly ascending order, starting from fresh zero accumulators (like the
// vector kernels' registers). The tile is computed as two 8-column passes so
// the local accumulator array is small enough for the compiler to promote to
// SIMD registers across the k loop (8 accumulators + 2 operand vectors fits
// the 16-register SSE file); per-element accumulation order is still strict
// k-ascending, so the split is bit-invisible.
void micro_scalar(int k, const float* ap, const float* bp, float* acc) {
  constexpr int kHalf = NR / 2;
  for (int jh = 0; jh < NR; jh += kHalf) {
    float t[MR * kHalf];
    for (int i = 0; i < MR * kHalf; ++i) t[i] = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      const float* arow = ap + static_cast<std::ptrdiff_t>(kk) * MR;
      const float* brow = bp + static_cast<std::ptrdiff_t>(kk) * NR + jh;
      for (int i = 0; i < MR; ++i) {
        const float av = arow[i];
        for (int j = 0; j < kHalf; ++j) t[i * kHalf + j] += av * brow[j];
      }
    }
    for (int i = 0; i < MR; ++i)
      for (int j = 0; j < kHalf; ++j) acc[i * NR + jh + j] = t[i * kHalf + j];
  }
}

#if defined(SYSNOISE_GEMM_X86)
__attribute__((target("avx2,fma"))) void micro_avx2(int k, const float* ap,
                                                    const float* bp,
                                                    float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = ap + static_cast<std::ptrdiff_t>(kk) * MR;
    const float* brow = bp + static_cast<std::ptrdiff_t>(kk) * NR;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
  }
  _mm256_storeu_ps(acc + 0 * NR, c00);
  _mm256_storeu_ps(acc + 0 * NR + 8, c01);
  _mm256_storeu_ps(acc + 1 * NR, c10);
  _mm256_storeu_ps(acc + 1 * NR + 8, c11);
  _mm256_storeu_ps(acc + 2 * NR, c20);
  _mm256_storeu_ps(acc + 2 * NR + 8, c21);
  _mm256_storeu_ps(acc + 3 * NR, c30);
  _mm256_storeu_ps(acc + 3 * NR + 8, c31);
}
#endif

#if defined(SYSNOISE_GEMM_NEON)
void micro_neon(int k, const float* ap, const float* bp, float* acc) {
  float32x4_t c[MR][NR / 4];
  for (int i = 0; i < MR; ++i)
    for (int q = 0; q < NR / 4; ++q) c[i][q] = vdupq_n_f32(0.0f);
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = ap + static_cast<std::ptrdiff_t>(kk) * MR;
    const float* brow = bp + static_cast<std::ptrdiff_t>(kk) * NR;
    float32x4_t b[NR / 4];
    for (int q = 0; q < NR / 4; ++q) b[q] = vld1q_f32(brow + 4 * q);
    for (int i = 0; i < MR; ++i) {
      const float32x4_t av = vdupq_n_f32(arow[i]);
      for (int q = 0; q < NR / 4; ++q) c[i][q] = vfmaq_f32(c[i][q], av, b[q]);
    }
  }
  for (int i = 0; i < MR; ++i)
    for (int q = 0; q < NR / 4; ++q) vst1q_f32(acc + i * NR + 4 * q, c[i][q]);
}
#endif

using MicroKernel = void (*)(int, const float*, const float*, float*);

MicroKernel simd_micro_kernel() {
#if defined(SYSNOISE_GEMM_X86)
  static const MicroKernel kernel =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")
          ? &micro_avx2
          : &micro_scalar;
  return kernel;
#elif defined(SYSNOISE_GEMM_NEON)
  return &micro_neon;
#else
  return &micro_scalar;
#endif
}

// C[i0:i0+mb) rows += op(A) * op(B) over the full k range through packed
// panels. Packing cost: A once per call (k-major MR panels, zero-padded
// tail rows), B once per NR column strip (reused across all row panels).
// Zero padding is only ever multiplied into accumulator lanes that are
// never stored, so it cannot leak NaNs into C.
void packed_gemm_rows(MicroKernel micro, int i0, int mb, int n, int k,
                      AMode amode, const float* a, int m_full, BMode bmode,
                      const float* b, float* c) {
  const int mpanels = (mb + MR - 1) / MR;
  float* apack =
      tls_scratch(static_cast<std::size_t>(mpanels) * MR * k, /*slot=*/0);
  for (int p = 0; p < mpanels; ++p) {
    float* panel = apack + static_cast<std::ptrdiff_t>(p) * MR * k;
    const int ib = std::min(MR, mb - p * MR);
    const int row0 = i0 + p * MR;
    if (ib == MR && amode == AMode::kNormal) {
      // Full panel from row-major A: transpose four contiguous rows.
      const float* r = a + static_cast<std::ptrdiff_t>(row0) * k;
      for (int kk = 0; kk < k; ++kk) {
        float* dst = panel + static_cast<std::ptrdiff_t>(kk) * MR;
        dst[0] = r[kk];
        dst[1] = r[k + kk];
        dst[2] = r[2 * static_cast<std::ptrdiff_t>(k) + kk];
        dst[3] = r[3 * static_cast<std::ptrdiff_t>(k) + kk];
      }
    } else if (ib == MR && amode == AMode::kTransposed) {
      // Full panel from k x m A: each k step is already MR contiguous floats.
      for (int kk = 0; kk < k; ++kk)
        std::memcpy(panel + static_cast<std::ptrdiff_t>(kk) * MR,
                    a + static_cast<std::ptrdiff_t>(kk) * m_full + row0,
                    MR * sizeof(float));
    } else {
      for (int kk = 0; kk < k; ++kk)
        for (int i = 0; i < MR; ++i)
          panel[static_cast<std::ptrdiff_t>(kk) * MR + i] =
              i < ib ? a_at(amode, a, m_full, k, row0 + i, kk) : 0.0f;
    }
  }

  float* bpack = tls_scratch(static_cast<std::size_t>(k) * NR, /*slot=*/1);
  float acc[MR * NR];
  for (int j0 = 0; j0 < n; j0 += NR) {
    const int jb = std::min(NR, n - j0);
    if (jb == NR && bmode == BMode::kNormal) {
      // Full strip from row-major B: NR contiguous floats per k step.
      for (int kk = 0; kk < k; ++kk)
        std::memcpy(bpack + static_cast<std::ptrdiff_t>(kk) * NR,
                    b + static_cast<std::ptrdiff_t>(kk) * n + j0,
                    NR * sizeof(float));
    } else if (jb == NR && bmode == BMode::kTransposed) {
      // Full strip from n x k B: stream each B row, scatter into the strip.
      for (int j = 0; j < NR; ++j) {
        const float* brow = b + static_cast<std::ptrdiff_t>(j0 + j) * k;
        for (int kk = 0; kk < k; ++kk)
          bpack[static_cast<std::ptrdiff_t>(kk) * NR + j] = brow[kk];
      }
    } else {
      for (int kk = 0; kk < k; ++kk)
        for (int j = 0; j < NR; ++j)
          bpack[static_cast<std::ptrdiff_t>(kk) * NR + j] =
              j < jb ? b_at(bmode, b, n, k, kk, j0 + j) : 0.0f;
    }
    for (int p = 0; p < mpanels; ++p) {
      micro(k, apack + static_cast<std::ptrdiff_t>(p) * MR * k, bpack, acc);
      const int ib = std::min(MR, mb - p * MR);
      for (int i = 0; i < ib; ++i) {
        float* crow =
            c + static_cast<std::ptrdiff_t>(i0 + p * MR + i) * n + j0;
        for (int j = 0; j < jb; ++j) crow[j] += acc[i * NR + j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

// Row ranges below this skip the fork/join entirely.
constexpr int kParallelMinRows = 2 * MR;

void dispatch_acc(int m, int n, int k, AMode amode, const float* a,
                  BMode bmode, const float* b, float* c) {
  const ComputeBackend backend = active_backend();
  const MicroKernel micro = backend == ComputeBackend::kSimd
                                ? simd_micro_kernel()
                                : &micro_scalar;
  auto rows = [&](int begin, int end) {
    switch (backend) {
      case ComputeBackend::kReference:
        // The reference loops read A rows / write C rows relative to row 0;
        // offset the operand bases so each range is self-contained.
        if (amode == AMode::kNormal && bmode == BMode::kNormal)
          ref_gemm_acc(end - begin, n, k,
                       a + static_cast<std::ptrdiff_t>(begin) * k, b,
                       c + static_cast<std::ptrdiff_t>(begin) * n);
        else if (amode == AMode::kTransposed)
          // A is k x m (full width): offset to the range's first column but
          // keep striding k steps by the full m, not the range width.
          ref_gemm_at_acc(end - begin, n, k, a + begin, m, b,
                          c + static_cast<std::ptrdiff_t>(begin) * n);
        else
          ref_gemm_bt_acc(end - begin, n, k,
                          a + static_cast<std::ptrdiff_t>(begin) * k, b,
                          c + static_cast<std::ptrdiff_t>(begin) * n);
        break;
      case ComputeBackend::kBlocked:
      case ComputeBackend::kSimd:
        packed_gemm_rows(micro, begin, end - begin, n, k, amode, a, m, bmode,
                         b, c);
        break;
    }
  };
  if (gemm_workers() > 1 && m >= kParallelMinRows)
    parallel_ranges(m, MR, rows);
  else
    rows(0, m);
}

}  // namespace

void gemm_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  dispatch_acc(m, n, k, AMode::kNormal, a, BMode::kNormal, b, c);
}

void gemm(int m, int n, int k, const float* a, const float* b, float* c) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  gemm_acc(m, n, k, a, b, c);
}

void gemm_at(int m, int n, int k, const float* a, const float* b, float* c) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  gemm_at_acc(m, n, k, a, b, c);
}

void gemm_at_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  dispatch_acc(m, n, k, AMode::kTransposed, a, BMode::kNormal, b, c);
}

void gemm_bt_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  dispatch_acc(m, n, k, AMode::kNormal, a, BMode::kTransposed, b, c);
}

}  // namespace sysnoise
