#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace sysnoise {

namespace {
constexpr int kBlockK = 128;
constexpr int kBlockN = 256;
}  // namespace

void gemm_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  // i-k-j loop order with k/n blocking: B rows stream through cache.
  for (int k0 = 0; k0 < k; k0 += kBlockK) {
    const int k1 = std::min(k, k0 + kBlockK);
    for (int n0 = 0; n0 < n; n0 += kBlockN) {
      const int n1 = std::min(n, n0 + kBlockN);
      for (int i = 0; i < m; ++i) {
        float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
        const float* arow = a + static_cast<std::ptrdiff_t>(i) * k;
        for (int kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<std::ptrdiff_t>(kk) * n;
          for (int j = n0; j < n1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm(int m, int n, int k, const float* a, const float* b, float* c) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  gemm_acc(m, n, k, a, b, c);
}

void gemm_at(int m, int n, int k, const float* a, const float* b, float* c) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  gemm_at_acc(m, n, k, a, b, c);
}

void gemm_at_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  // A is k x m; iterate kk outer so both A and B stream row-wise.
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::ptrdiff_t>(kk) * m;
    const float* brow = b + static_cast<std::ptrdiff_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_bt_acc(int m, int n, int k, const float* a, const float* b, float* c) {
  // B is n x k; dot products of A rows with B rows.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::ptrdiff_t>(i) * k;
    float* crow = c + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::ptrdiff_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace sysnoise
