#include "tensor/rng.h"

#include <cmath>
#include <numbers>

namespace sysnoise {

namespace {

// SplitMix64 used only to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

float Rng::uniform_f(float lo, float hi) {
  return static_cast<float>(uniform(lo, hi));
}

int Rng::uniform_int(int n) {
  if (n <= 0) return 0;
  // Rejection-free modulo is fine here; n is tiny relative to 2^64.
  return static_cast<int>(next_u64() % static_cast<std::uint64_t>(n));
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal_f(float mean, float stddev) {
  return mean + stddev * static_cast<float>(normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<int> Rng::permutation(int n) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = uniform_int(i + 1);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA0761D6478BD642Full); }

}  // namespace sysnoise
