// Small blocked GEMM powering conv (im2col) and linear layers.
//
// Single-threaded (the reproduction environment has one core); blocked for
// cache friendliness, accumulates in float. Not meant to compete with BLAS,
// but fast enough to train the mini model zoo in-process.
#pragma once

#include <cstddef>

namespace sysnoise {

// C[m x n] = A[m x k] * B[k x n]  (row-major, C overwritten)
void gemm(int m, int n, int k, const float* a, const float* b, float* c);

// C[m x n] += A[m x k] * B[k x n]
void gemm_acc(int m, int n, int k, const float* a, const float* b, float* c);

// C[m x n] = A^T[k x m] * B[k x n]   (A stored k-major, i.e. A is k x m)
void gemm_at(int m, int n, int k, const float* a, const float* b, float* c);

// C[m x n] += A^T[k x m] * B[k x n]
void gemm_at_acc(int m, int n, int k, const float* a, const float* b, float* c);

// C[m x n] += A[m x k] * B^T[n x k]  (B stored n x k)
void gemm_bt_acc(int m, int n, int k, const float* a, const float* b, float* c);

}  // namespace sysnoise
