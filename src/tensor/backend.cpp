#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace sysnoise {

namespace {

// Upper bound on kernel fan-out: past this the per-range fork/join overhead
// beats the win for the matrix sizes this engine sees.
constexpr int kMaxGemmWorkers = 16;

std::atomic<int>& default_backend_slot() {
  static std::atomic<int> slot = [] {
    const char* env = std::getenv("SYSNOISE_BACKEND");
    const ComputeBackend b =
        env != nullptr && *env != '\0' ? backend_from_name(env)
                                       : ComputeBackend::kReference;
    return static_cast<int>(b);
  }();
  return slot;
}

// -1 = no per-thread override: fall through to the process default.
thread_local int tls_backend_override = -1;
thread_local int tls_workers = 1;
// Pool workers never fan out again (no nested parallelism).
thread_local bool tls_in_pool_worker = false;

// A tiny persistent fork/join pool. Work is handed out as precomputed
// [begin, end) ranges through an atomic cursor; the submitting thread
// participates, so a pool of N-1 helpers yields N-way parallelism and a
// single-core machine runs everything inline on the caller.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  int helpers() {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
  }

  // Grow the pool to at least `n` helper threads (capped at the fan-out
  // bound). Lets tests force a real split on hosts where
  // hardware_concurrency() == 1, so the worker fan-out tests can never be
  // vacuously green. Threads are only ever added, never removed.
  void ensure_helpers(int n) {
    n = std::min(n, kMaxGemmWorkers - 1);
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < n) spawn_helper();
  }

  void run(const std::vector<std::pair<int, int>>& ranges,
           const std::function<void(int, int)>& fn) {
    // One fork/join at a time: concurrent submitters (e.g. two batch sets
    // evaluated on different sweep threads) queue here instead of racing on
    // the job slot. The holder always participates, so this cannot deadlock.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ranges_ = &ranges;
      job_fn_ = &fn;
      next_ = 0;
      pending_ = static_cast<int>(ranges.size());
      gen = ++generation_;
      cv_.notify_all();
    }
    {
      // The caller takes ranges too. While it does, it counts as a pool
      // worker so a kernel called from inside a range cannot fan out again
      // (which would re-enter run() on this thread and deadlock on run_mu_).
      const bool was_worker = tls_in_pool_worker;
      tls_in_pool_worker = true;
      work(gen);
      tls_in_pool_worker = was_worker;
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ranges_ = nullptr;
    job_fn_ = nullptr;
  }

 private:
  WorkerPool() {
    const int n =
        std::min<int>(kMaxGemmWorkers,
                      std::max(1u, std::thread::hardware_concurrency())) -
        1;
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < n; ++i) spawn_helper();
  }

  // Requires mu_ held (threads_ is guarded by mu_ once ensure_helpers can
  // grow the pool after construction).
  void spawn_helper() {
    threads_.emplace_back([this] {
      tls_in_pool_worker = true;
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
          if (stop_) return;
          seen = generation_;
        }
        work(seen);
      }
    });
  }

  ~WorkerPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

  // Drain ranges of job `gen`. The index handout and the generation check
  // happen under one mu_ hold, so a worker preempted between jobs can never
  // carry a stale index into a newer job (which would execute that range
  // twice and keep accumulating into C after run() returned). A claimed
  // range always belongs to `gen`: run() cannot retire the job until
  // pending_ — which counts exactly the claimed ranges — hits zero.
  void work(std::uint64_t gen) {
    for (;;) {
      const std::vector<std::pair<int, int>>* ranges;
      const std::function<void(int, int)>* fn;
      int i;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (generation_ != gen || job_ranges_ == nullptr ||
            next_ >= static_cast<int>(job_ranges_->size()))
          return;
        i = next_++;
        ranges = job_ranges_;
        fn = job_fn_;
      }
      (*fn)((*ranges)[static_cast<std::size_t>(i)].first,
            (*ranges)[static_cast<std::size_t>(i)].second);
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::vector<std::pair<int, int>>* job_ranges_ = nullptr;
  const std::function<void(int, int)>* job_fn_ = nullptr;
  int next_ = 0;  // guarded by mu_
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

const char* backend_name(ComputeBackend b) {
  switch (b) {
    case ComputeBackend::kReference: return "reference";
    case ComputeBackend::kBlocked: return "blocked";
    case ComputeBackend::kSimd: return "simd";
  }
  return "?";
}

ComputeBackend backend_from_name(const std::string& name) {
  for (int i = 0; i < kNumComputeBackends; ++i) {
    const auto b = static_cast<ComputeBackend>(i);
    if (name == backend_name(b)) return b;
  }
  throw std::invalid_argument("unknown compute backend name \"" + name + "\"");
}

ComputeBackend default_backend() {
  return static_cast<ComputeBackend>(
      default_backend_slot().load(std::memory_order_relaxed));
}

ComputeBackend set_default_backend(ComputeBackend b) {
  return static_cast<ComputeBackend>(default_backend_slot().exchange(
      static_cast<int>(b), std::memory_order_relaxed));
}

ComputeBackend active_backend() {
  return tls_backend_override >= 0
             ? static_cast<ComputeBackend>(tls_backend_override)
             : default_backend();
}

BackendScope::BackendScope(ComputeBackend b) : prev_(tls_backend_override) {
  tls_backend_override = static_cast<int>(b);
}

BackendScope::~BackendScope() { tls_backend_override = prev_; }

int gemm_workers() { return tls_in_pool_worker ? 1 : std::max(1, tls_workers); }

GemmParallelScope::GemmParallelScope(int workers) : prev_(tls_workers) {
  if (workers <= 0)
    workers = std::min<int>(kMaxGemmWorkers,
                            std::max(1u, std::thread::hardware_concurrency()));
  tls_workers = workers;
}

GemmParallelScope::~GemmParallelScope() { tls_workers = prev_; }

void ensure_gemm_pool_helpers(int n) {
  if (n > 0) WorkerPool::instance().ensure_helpers(n);
}

void parallel_ranges(int total, int align,
                     const std::function<void(int, int)>& fn) {
  if (total <= 0) return;
  align = std::max(1, align);
  const int workers =
      std::min({gemm_workers(), WorkerPool::instance().helpers() + 1,
                (total + align - 1) / align});
  if (workers <= 1) {
    fn(0, total);
    return;
  }
  // Equal chunks rounded to `align`; chunk boundaries never change results
  // (each fn range is independent), only which thread computes what.
  std::vector<std::pair<int, int>> ranges;
  const int per = ((total + workers - 1) / workers + align - 1) / align * align;
  for (int begin = 0; begin < total; begin += per)
    ranges.emplace_back(begin, std::min(total, begin + per));
  obs::TraceSpan span("gemm.fanout");
  if (span.active()) {
    span.attr("total", static_cast<std::int64_t>(total));
    span.attr("ranges", ranges.size());
  }
  WorkerPool::instance().run(ranges, fn);
}

const char* simd_isa_name() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool avx2 = [] {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return avx2 ? "avx2" : "scalar";
#elif defined(__aarch64__)
  return "neon";
#else
  return "scalar";
#endif
}

float* tls_scratch(std::size_t floats, int slot) {
  constexpr int kSlots = 4;
  thread_local std::vector<float> buffers[kSlots];
  std::vector<float>& buf = buffers[slot % kSlots];
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

}  // namespace sysnoise
