// IEEE 754 binary16 conversion used to *simulate* FP16 deployment.
//
// The paper's FP16 "data precision" noise is a round trip of FP32 weights
// and activations through half precision (Sec. 3.2 / Appendix A). We
// implement the conversion bit-exactly (round-to-nearest-even, subnormal
// and inf/nan handling) rather than relying on compiler __fp16 support.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace sysnoise {

// FP32 -> binary16 bits, round-to-nearest-even.
std::uint16_t float_to_half(float f);

// binary16 bits -> FP32.
float half_to_float(std::uint16_t h);

// Round-trip a single value through FP16.
inline float fp16_round(float f) { return half_to_float(float_to_half(f)); }

// Round-trip every element of a tensor through FP16 (in place).
void fp16_round_trip_(Tensor& t);

}  // namespace sysnoise
