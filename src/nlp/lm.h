// Causal transformer language models ("OPT-mini" family, Table 5) plus
// multiple-choice scoring. The data-precision SysNoise knob acts at every
// linear projection through the shared InferenceCtx.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace sysnoise::nlp {

struct LmSpec {
  std::string name;
  int dim = 32;
  int layers = 2;
  int heads = 2;
  int max_seq = 64;
};

// The Table 5 rows of this reproduction (scaled OPT family).
std::vector<LmSpec> opt_mini_zoo();

class CausalLm {
 public:
  CausalLm(const LmSpec& spec, int vocab, Rng& rng);
  ~CausalLm();  // out-of-line: Block is incomplete here

  // ids: flat batch*seq tokens; returns logits [batch, seq, vocab].
  nn::Node* forward(nn::Tape& t, const std::vector<int>& ids, int batch, int seq);
  void collect(nn::ParamRefs& out);

  // Sum log p(continuation | context) under the given precision knobs.
  double score_continuation(const std::vector<int>& context,
                            const std::vector<int>& continuation,
                            nn::Precision precision, nn::ActRanges* ranges);
  // Full inference-knob form (precision, backend, ...). The two-knob
  // overload above delegates here with a default ctx, bit-identically.
  double score_continuation(const std::vector<int>& context,
                            const std::vector<int>& continuation,
                            const nn::InferenceCtx& ctx);

  int vocab() const { return vocab_; }
  const LmSpec& spec() const { return spec_; }

 private:
  struct Block;
  LmSpec spec_;
  int vocab_;
  nn::Embedding embed_;
  nn::Param pos_;
  std::vector<std::unique_ptr<Block>> blocks_;
  nn::LayerNorm final_ln_;
  nn::Linear head_;
};

// Next-token cross-entropy training on a corpus of token sequences.
float train_lm(CausalLm& lm, const std::vector<std::vector<int>>& corpus,
               int epochs, float lr, std::uint64_t seed = 5);

void calibrate_lm(CausalLm& lm, const std::vector<std::vector<int>>& corpus,
                  nn::ActRanges& ranges, int max_items = 8);

}  // namespace sysnoise::nlp
