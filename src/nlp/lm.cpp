#include "nlp/lm.h"

#include <cmath>
#include <stdexcept>

#include "nn/ops_extra.h"
#include "nn/optim.h"

namespace sysnoise::nlp {

using namespace sysnoise::nn;

std::vector<LmSpec> opt_mini_zoo() {
  return {
      {"OPT-125M-mini", 24, 2, 2, 64},
      {"OPT-350M-mini", 32, 2, 4, 64},
      {"OPT-1.3B-mini", 48, 3, 4, 64},
  };
}

struct CausalLm::Block {
  LayerNorm ln1, ln2;
  MultiHeadAttention attn;
  Linear mlp1, mlp2;
  Block(int dim, int heads, Rng& rng, const std::string& id)
      : ln1(dim), ln2(dim),
        attn(dim, heads, /*causal=*/true, rng, id + ".attn"),
        mlp1(dim, 4 * dim, rng, id + ".mlp1"),
        mlp2(4 * dim, dim, rng, id + ".mlp2") {}
  Node* operator()(Tape& t, Node* x) {
    x = add(t, x, attn(t, ln1(t, x)));
    return add(t, x, mlp2(t, gelu(t, mlp1(t, ln2(t, x)))));
  }
  void collect(ParamRefs& out) {
    ln1.collect(out);
    ln2.collect(out);
    attn.collect(out);
    mlp1.collect(out);
    mlp2.collect(out);
  }
};

CausalLm::~CausalLm() = default;

CausalLm::CausalLm(const LmSpec& spec, int vocab, Rng& rng)
    : spec_(spec),
      vocab_(vocab),
      embed_(vocab, spec.dim, rng),
      pos_(Tensor({1, spec.max_seq, spec.dim})),
      final_ln_(spec.dim),
      head_(spec.dim, vocab, rng, spec.name + ".head") {
  for (float& v : pos_.value.vec()) v = rng.normal_f(0.0f, 0.02f);
  for (int i = 0; i < spec.layers; ++i)
    blocks_.push_back(std::make_unique<Block>(spec.dim, spec.heads, rng,
                                              spec.name + ".b" + std::to_string(i)));
}

Node* CausalLm::forward(Tape& t, const std::vector<int>& ids, int batch, int seq) {
  if (seq > spec_.max_seq) throw std::invalid_argument("CausalLm: seq too long");
  Node* x = embed_(t, ids, batch, seq);
  // Add the first `seq` positions.
  {
    const int d = spec_.dim;
    Tensor out = x->value;
    for (int bi = 0; bi < batch; ++bi)
      for (int ti = 0; ti < seq; ++ti)
        for (int di = 0; di < d; ++di)
          out.at3(bi, ti, di) += pos_.value.at3(0, ti, di);
    Node* y = t.make(std::move(out));
    Node* xn = x;
    Param* pp = &pos_;
    y->backprop = [y, xn, pp, batch, seq, d]() {
      for (int bi = 0; bi < batch; ++bi)
        for (int ti = 0; ti < seq; ++ti)
          for (int di = 0; di < d; ++di) {
            const float g = y->grad.at3(bi, ti, di);
            pp->grad.at3(0, ti, di) += g;
            if (xn->requires_grad) xn->grad.at3(bi, ti, di) += g;
          }
    };
    x = y;
  }
  for (auto& b : blocks_) x = (*b)(t, x);
  x = final_ln_(t, x);
  return head_(t, x);  // [batch, seq, vocab]
}

void CausalLm::collect(ParamRefs& out) {
  embed_.collect(out);
  out.push_back(&pos_);
  for (auto& b : blocks_) b->collect(out);
  final_ln_.collect(out);
  head_.collect(out);
}

double CausalLm::score_continuation(const std::vector<int>& context,
                                    const std::vector<int>& continuation,
                                    Precision precision, ActRanges* ranges) {
  InferenceCtx ctx;
  ctx.precision = precision;
  ctx.ranges = ranges;
  return score_continuation(context, continuation, ctx);
}

double CausalLm::score_continuation(const std::vector<int>& context,
                                    const std::vector<int>& continuation,
                                    const InferenceCtx& ctx) {
  std::vector<int> ids = context;
  ids.insert(ids.end(), continuation.begin(), continuation.end());
  const int seq = static_cast<int>(ids.size());
  Tape t;
  t.ctx = ctx;
  Node* logits = forward(t, ids, 1, seq);
  const Tensor lp = log_softmax_rows(logits->value.reshaped({seq, vocab_}));
  double score = 0.0;
  const int ctx_len = static_cast<int>(context.size());
  for (std::size_t k = 0; k < continuation.size(); ++k) {
    const int pos = ctx_len + static_cast<int>(k) - 1;  // token predicting cont[k]
    score += lp.at2(pos, continuation[k]);
  }
  return score;
}

float train_lm(CausalLm& lm, const std::vector<std::vector<int>>& corpus,
               int epochs, float lr, std::uint64_t seed) {
  ParamRefs params;
  lm.collect(params);
  Adam opt(params, lr);
  Rng rng(seed);
  const int n = static_cast<int>(corpus.size());
  const int bs = 8;
  float last = 0.0f;
  for (int e = 0; e < epochs; ++e) {
    const auto order = rng.permutation(n);
    for (int b = 0; b < n; b += bs) {
      // Group same-length sequences: corpus sequences share one length.
      const int cur = std::min(bs, n - b);
      const int seq = static_cast<int>(corpus[static_cast<std::size_t>(order[static_cast<std::size_t>(b)])].size());
      std::vector<int> ids;
      std::vector<int> targets;
      int rows = 0;
      for (int i = 0; i < cur; ++i) {
        const auto& s = corpus[static_cast<std::size_t>(order[static_cast<std::size_t>(b + i)])];
        if (static_cast<int>(s.size()) != seq) continue;  // skip ragged
        ids.insert(ids.end(), s.begin(), s.end());
        // Next-token targets; last position predicts a pad we exclude by
        // training on positions [0, seq-2].
        ++rows;
      }
      if (rows == 0) continue;
      Tape t;
      t.training = true;
      opt.zero_grad();
      Node* logits = lm.forward(t, ids, rows, seq);
      // Build shifted targets + mask out the final position of each row.
      std::vector<int> labels(static_cast<std::size_t>(rows) * seq, 0);
      std::vector<float> mask(static_cast<std::size_t>(rows) * seq, 0.0f);
      int live = 0;
      for (int r = 0; r < rows; ++r)
        for (int p = 0; p + 1 < seq; ++p) {
          labels[static_cast<std::size_t>(r) * seq + p] =
              ids[static_cast<std::size_t>(r) * seq + p + 1];
          mask[static_cast<std::size_t>(r) * seq + p] = 1.0f;
          ++live;
        }
      Node* rowsn = reshape(t, logits, {rows * seq, lm.vocab()});
      Node* loss = softmax_cross_entropy_masked(t, rowsn, labels, mask,
                                                static_cast<float>(live));
      t.backward(loss);
      clip_grad_norm(params, 5.0f);
      opt.step();
      last = loss->value[0];
    }
  }
  return last;
}

void calibrate_lm(CausalLm& lm, const std::vector<std::vector<int>>& corpus,
                  ActRanges& ranges, int max_items) {
  for (int i = 0; i < max_items && i < static_cast<int>(corpus.size()); ++i) {
    const auto& s = corpus[static_cast<std::size_t>(i)];
    Tape t;
    t.ctx.calibrating = true;
    t.ctx.ranges = &ranges;
    lm.forward(t, s, 1, static_cast<int>(s.size()));
  }
}

}  // namespace sysnoise::nlp
