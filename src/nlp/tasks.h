// Synthetic NLP benchmark tasks shaped like the paper's four datasets
// (PIQA, LAMBADA, HellaSwag, WinoGrande). A small deterministic "language"
// over a symbol alphabet provides learnable regularities; each task is a
// two-way multiple choice scored by LM log-likelihood, exactly like the
// originals.
//
//  * PIQA-like   : functional rule "a b -> f(a,b)"; pick the correct result.
//  * LAMBADA-like: long-range recall "x=y ; ... ; x=?" — copy from context.
//  * HellaSwag-like: sequence continuation of an arithmetic progression.
//  * WinoGrande-like: agreement — a doubled symbol pattern must re-use the
//    matching earlier symbol.
#pragma once

#include <string>
#include <vector>

#include "tensor/rng.h"

namespace sysnoise::nlp {

// Token alphabet: 0..kSymbols-1 are symbols, then separators.
constexpr int kSymbols = 16;
constexpr int kTokSep = kSymbols;      // ';'
constexpr int kTokArrow = kSymbols + 1;  // '->'
constexpr int kTokEq = kSymbols + 2;     // '='
constexpr int kVocab = kSymbols + 3;

enum class TaskKind { kPiqa = 0, kLambada = 1, kHellaSwag = 2, kWinoGrande = 3 };
constexpr int kNumTasks = 4;
const char* task_name(TaskKind k);
// Inverse of task_name(); throws std::invalid_argument on unknown names (a
// corrupted dist TaskSpec fails loudly).
TaskKind task_from_name(const std::string& name);

struct ChoiceItem {
  std::vector<int> context;
  std::vector<int> correct;
  std::vector<int> wrong;
};

// Training corpus: sequences exhibiting all four regularities (fixed length).
std::vector<std::vector<int>> make_lm_corpus(int items, std::uint64_t seed);

// Evaluation items for one task.
std::vector<ChoiceItem> make_task_items(TaskKind kind, int items,
                                        std::uint64_t seed);

// Deployment-tokenizer mismatch: a tokenizer exported with a truncated
// symbol vocabulary folds out-of-range symbol ids onto in-range ones
// (id % symbol_limit), while the structural separator tokens (kTokSep and
// above) survive intact. symbol_limit >= kSymbols is the identity.
std::vector<int> retokenize(const std::vector<int>& ids, int symbol_limit);
ChoiceItem retokenize(const ChoiceItem& item, int symbol_limit);

}  // namespace sysnoise::nlp
