#include "nlp/tasks.h"

#include <stdexcept>

namespace sysnoise::nlp {

namespace {

int f_rule(int a, int b) { return (a + b) % kSymbols; }

int wrong_symbol(int correct, Rng& rng) {
  int w = rng.uniform_int(kSymbols);
  while (w == correct) w = rng.uniform_int(kSymbols);
  return w;
}

void append_piqa(std::vector<int>& seq, Rng& rng) {
  const int a = rng.uniform_int(kSymbols), b = rng.uniform_int(kSymbols);
  seq.push_back(a);
  seq.push_back(b);
  seq.push_back(kTokArrow);
  seq.push_back(f_rule(a, b));
  seq.push_back(kTokSep);
}

void append_lambada(std::vector<int>& seq, Rng& rng) {
  const int x = rng.uniform_int(kSymbols), y = rng.uniform_int(kSymbols);
  const int z = wrong_symbol(x, rng), w = rng.uniform_int(kSymbols);
  // x=y ; z=w ; x=y
  for (int t : {x, kTokEq, y, kTokSep, z, kTokEq, w, kTokSep, x, kTokEq, y, kTokSep})
    seq.push_back(t);
}

void append_hellaswag(std::vector<int>& seq, Rng& rng) {
  const int a = rng.uniform_int(kSymbols);
  const int d = 1 + rng.uniform_int(3);
  for (int i = 0; i < 5; ++i) seq.push_back((a + i * d) % kSymbols);
  seq.push_back(kTokSep);
}

void append_winogrande(std::vector<int>& seq, Rng& rng) {
  const int a = rng.uniform_int(kSymbols);
  const int b = rng.uniform_int(kSymbols);
  // a a ; b b ;
  for (int t : {a, a, kTokSep, b, b, kTokSep}) seq.push_back(t);
}

constexpr int kSeqLen = 24;

}  // namespace

const char* task_name(TaskKind k) {
  switch (k) {
    case TaskKind::kPiqa: return "PIQA-like";
    case TaskKind::kLambada: return "LAMBADA-like";
    case TaskKind::kHellaSwag: return "HellaSwag-like";
    case TaskKind::kWinoGrande: return "WinoGrande-like";
  }
  return "?";
}

TaskKind task_from_name(const std::string& name) {
  for (int k = 0; k < kNumTasks; ++k)
    if (name == task_name(static_cast<TaskKind>(k)))
      return static_cast<TaskKind>(k);
  throw std::invalid_argument("unknown NLP task name \"" + name + "\"");
}

std::vector<std::vector<int>> make_lm_corpus(int items, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> corpus;
  corpus.reserve(static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    std::vector<int> seq;
    const int family = i % 4;
    while (static_cast<int>(seq.size()) < kSeqLen) {
      switch (family) {
        case 0: append_piqa(seq, rng); break;
        case 1: append_lambada(seq, rng); break;
        case 2: append_hellaswag(seq, rng); break;
        default: append_winogrande(seq, rng); break;
      }
    }
    seq.resize(kSeqLen);
    corpus.push_back(std::move(seq));
  }
  return corpus;
}

std::vector<ChoiceItem> make_task_items(TaskKind kind, int items,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ChoiceItem> out;
  out.reserve(static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    ChoiceItem item;
    switch (kind) {
      case TaskKind::kPiqa: {
        const int a = rng.uniform_int(kSymbols), b = rng.uniform_int(kSymbols);
        item.context = {a, b, kTokArrow};
        item.correct = {f_rule(a, b)};
        item.wrong = {wrong_symbol(f_rule(a, b), rng)};
        break;
      }
      case TaskKind::kLambada: {
        const int x = rng.uniform_int(kSymbols), y = rng.uniform_int(kSymbols);
        const int z = wrong_symbol(x, rng);
        int w = rng.uniform_int(kSymbols);
        while (w == y) w = rng.uniform_int(kSymbols);
        item.context = {x, kTokEq, y, kTokSep, z, kTokEq, w, kTokSep, x, kTokEq};
        item.correct = {y};
        item.wrong = {w};  // the distractor assignment's value
        break;
      }
      case TaskKind::kHellaSwag: {
        const int a = rng.uniform_int(kSymbols);
        const int d = 1 + rng.uniform_int(3);
        item.context = {a % kSymbols, (a + d) % kSymbols, (a + 2 * d) % kSymbols};
        item.correct = {(a + 3 * d) % kSymbols};
        item.wrong = {wrong_symbol((a + 3 * d) % kSymbols, rng)};
        break;
      }
      case TaskKind::kWinoGrande: {
        const int a = rng.uniform_int(kSymbols);
        const int b = wrong_symbol(a, rng);
        item.context = {a, a, kTokSep, b};
        item.correct = {b};
        item.wrong = {wrong_symbol(b, rng)};
        break;
      }
    }
    out.push_back(std::move(item));
  }
  return out;
}

std::vector<int> retokenize(const std::vector<int>& ids, int symbol_limit) {
  std::vector<int> out = ids;
  if (symbol_limit >= kSymbols) return out;
  for (int& id : out)
    if (id < kSymbols && id >= symbol_limit) id %= symbol_limit;
  return out;
}

ChoiceItem retokenize(const ChoiceItem& item, int symbol_limit) {
  ChoiceItem out;
  out.context = retokenize(item.context, symbol_limit);
  out.correct = retokenize(item.correct, symbol_limit);
  out.wrong = retokenize(item.wrong, symbol_limit);
  return out;
}

}  // namespace sysnoise::nlp
