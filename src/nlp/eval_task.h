// StagedEvalTask adapter for the Table 5 NLP benchmark: a trained OPT-mini
// causal LM scored on one multiple-choice subtask, factored into the
// three-stage split the sweep engine shares intermediates across —
// preprocess = deployment tokenization of the eval items (Tokenizer axis),
// forward = per-item continuation scoring under the config's InferenceCtx
// (precision/backend axes), postprocess = accuracy. evaluate() on a
// training-default config reproduces bench_table5's original
// task_accuracy() loop bit-identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/staged_eval.h"
#include "nlp/lm.h"
#include "nlp/tasks.h"

namespace sysnoise::nlp {

// A trained OPT-mini LM plus its INT8 calibration ranges, reproduced
// exactly like bench_table5_nlp trains one (corpus 480 x seed 31337, init
// Rng 77, 8 epochs at 2e-3, calibration over the corpus head). Training is
// deterministic, so a dist worker rebuilding the model holds bit-identical
// weights to the coordinator that planned the sweep.
struct TrainedLm {
  std::string name;
  std::unique_ptr<CausalLm> lm;
  nn::ActRanges ranges;
};

TrainedLm get_lm(const std::string& name);

class NlpChoiceTask : public core::StagedEvalTask {
 public:
  NlpChoiceTask(TrainedLm& tlm, TaskKind subtask);
  const std::string& name() const override { return name_; }
  core::TaskTraits traits() const override {
    return {core::TaskKind::kNlp, false};
  }
  TaskKind subtask() const { return subtask_; }

  std::string preprocess_key(const SysNoiseConfig& cfg) const override;
  std::string forward_key(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_preprocess(const SysNoiseConfig& cfg) const override;
  core::StageProduct run_forward(const SysNoiseConfig& cfg,
                                 const core::StageProduct& pre) const override;
  double run_postprocess(const SysNoiseConfig& cfg,
                         const core::StageProduct& fwd) const override;

  // Cross-config batching: scoring already runs item-by-item, so the
  // default serial run_forward_batched is bit-identical — opting in via the
  // key lets the executor and the dist work-unit merge group
  // batch-compatible configs onto one lease.
  std::string forward_batch_key(const SysNoiseConfig& cfg) const override;

 private:
  TrainedLm& tlm_;
  TaskKind subtask_;
  std::string name_;
  std::vector<ChoiceItem> items_;
};

}  // namespace sysnoise::nlp
