#include "nlp/eval_task.h"

#include <stdexcept>
#include <utility>

namespace sysnoise::nlp {

namespace {

using Scores = std::vector<std::pair<double, double>>;  // (correct, wrong)

}  // namespace

TrainedLm get_lm(const std::string& name) {
  for (const LmSpec& spec : opt_mini_zoo()) {
    if (spec.name != name) continue;
    const auto corpus = make_lm_corpus(480, 31337);
    TrainedLm out;
    out.name = name;
    Rng rng(77);
    out.lm = std::make_unique<CausalLm>(spec, kVocab, rng);
    train_lm(*out.lm, corpus, /*epochs=*/8, 2e-3f);
    calibrate_lm(*out.lm, corpus, out.ranges);
    return out;
  }
  throw std::invalid_argument("get_lm: unknown LM \"" + name + "\"");
}

NlpChoiceTask::NlpChoiceTask(TrainedLm& tlm, TaskKind subtask)
    : tlm_(tlm),
      subtask_(subtask),
      name_(tlm.name + "/" + task_name(subtask)),
      items_(make_task_items(
          subtask, 120,
          9000 + static_cast<std::uint64_t>(static_cast<int>(subtask)))) {}

std::string NlpChoiceTask::preprocess_key(const SysNoiseConfig& cfg) const {
  // The only config knob NLP pre-processing reads is the tokenizer profile;
  // injective over tokenizer_noise_options() + the training default.
  return std::string("nlp|tok=") + tokenizer_profile_name(cfg.tokenizer);
}

std::string NlpChoiceTask::forward_key(const SysNoiseConfig& cfg) const {
  return preprocess_key(cfg) + core::forward_key_suffix(cfg);
}

core::StageProduct NlpChoiceTask::run_preprocess(
    const SysNoiseConfig& cfg) const {
  const int limit = tokenizer_profile_symbol_limit(cfg.tokenizer);
  auto items = std::make_shared<std::vector<ChoiceItem>>();
  items->reserve(items_.size());
  for (const ChoiceItem& item : items_)
    items->push_back(retokenize(item, limit));
  return items;
}

core::StageProduct NlpChoiceTask::run_forward(
    const SysNoiseConfig& cfg, const core::StageProduct& pre) const {
  const auto& items =
      *static_cast<const std::vector<ChoiceItem>*>(pre.get());
  const nn::InferenceCtx ctx = cfg.inference_ctx(&tlm_.ranges);
  auto scores = std::make_shared<Scores>();
  scores->reserve(items.size());
  for (const ChoiceItem& item : items) {
    const double sc =
        tlm_.lm->score_continuation(item.context, item.correct, ctx);
    const double sw =
        tlm_.lm->score_continuation(item.context, item.wrong, ctx);
    scores->emplace_back(sc, sw);
  }
  return scores;
}

double NlpChoiceTask::run_postprocess(const SysNoiseConfig& cfg,
                                      const core::StageProduct& fwd) const {
  (void)cfg;
  const auto& scores = *static_cast<const Scores*>(fwd.get());
  int correct = 0;
  for (const auto& [sc, sw] : scores)
    if (sc > sw) ++correct;
  return 100.0 * correct / static_cast<double>(scores.size());
}

std::string NlpChoiceTask::forward_batch_key(const SysNoiseConfig& cfg) const {
  return name_ + "|batch" + core::forward_key_suffix(cfg);
}

}  // namespace sysnoise::nlp
