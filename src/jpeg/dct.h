// 8x8 DCT kernels.
//
// One forward DCT (used by the encoder) and four inverse DCTs — the heart
// of the paper's *decoder* SysNoise (Sec. 3.1): vendors disagree because
// some use the exact iDCT and others use fast / fixed-point variants
// (Chen et al., 1977), whose rounding shifts pixel values by a few LSBs.
#pragma once

namespace sysnoise::jpeg {

enum class IdctMethod {
  kFloatReference,  // naive double-precision separable iDCT ("exact")
  kFixedPoint13,    // 13-bit fixed-point basis ("islow"-like, libjpeg class)
  kFloatAan,        // AAN scaled float fast iDCT (FFmpeg class)
  kFixedPoint9,     // 9-bit fixed-point basis (HW accelerator class)
};

// Forward DCT-II with orthonormal scaling; input is level-shifted samples
// (in[64], raster order), output raw coefficients ready for quantization.
void fdct8x8(const float in[64], float out[64]);

// Inverse DCT; input dequantized coefficients (raster order), output
// reconstructed samples (still centered on 0, caller adds +128).
void idct8x8(IdctMethod method, const float in[64], float out[64]);

// Individual kernels (exposed for unit tests).
void idct8x8_reference(const float in[64], float out[64]);
void idct8x8_fixed(const float in[64], float out[64], int bits);
void idct8x8_aan(const float in[64], float out[64]);

}  // namespace sysnoise::jpeg
