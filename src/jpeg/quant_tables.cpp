#include "jpeg/quant_tables.h"

#include <algorithm>

namespace sysnoise::jpeg {

const QuantTable& annex_k_luminance() {
  static const QuantTable t = {
      16, 11, 10, 16, 24,  40,  51,  61,
      12, 12, 14, 19, 26,  58,  60,  55,
      14, 13, 16, 24, 40,  57,  69,  56,
      14, 17, 22, 29, 51,  87,  80,  62,
      18, 22, 37, 56, 68,  109, 103, 77,
      24, 35, 55, 64, 81,  104, 113, 92,
      49, 64, 78, 87, 103, 121, 120, 101,
      72, 92, 95, 98, 112, 100, 103, 99};
  return t;
}

const QuantTable& annex_k_chrominance() {
  static const QuantTable t = {
      17, 18, 24, 47, 99, 99, 99, 99,
      18, 21, 26, 66, 99, 99, 99, 99,
      24, 26, 56, 99, 99, 99, 99, 99,
      47, 66, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99};
  return t;
}

QuantTable scale_quality(const QuantTable& base, int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - quality * 2;
  QuantTable out{};
  for (int i = 0; i < 64; ++i) {
    int v = (static_cast<int>(base[static_cast<std::size_t>(i)]) * scale + 50) / 100;
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(std::clamp(v, 1, 255));
  }
  return out;
}

}  // namespace sysnoise::jpeg
