// JPEG Annex K quantization tables with libjpeg-style quality scaling.
#pragma once

#include <array>
#include <cstdint>

namespace sysnoise::jpeg {

using QuantTable = std::array<std::uint16_t, 64>;  // natural (raster) order

// Annex K Table K.1 (luminance) / K.2 (chrominance), raster order.
const QuantTable& annex_k_luminance();
const QuantTable& annex_k_chrominance();

// Scale a base table by quality in [1, 100] using the IJG formula
// (quality 50 = base table, 100 = all ones).
QuantTable scale_quality(const QuantTable& base, int quality);

}  // namespace sysnoise::jpeg
