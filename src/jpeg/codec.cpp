#include "jpeg/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "jpeg/huffman.h"
#include "jpeg/quant_tables.h"
#include "jpeg/zigzag.h"

namespace sysnoise::jpeg {

const char* vendor_name(DecoderVendor v) {
  switch (v) {
    case DecoderVendor::kPillow: return "Pillow";
    case DecoderVendor::kOpenCV: return "OpenCV";
    case DecoderVendor::kFFmpeg: return "FFmpeg";
    case DecoderVendor::kDALI: return "DALI";
  }
  return "?";
}

VendorTraits vendor_traits(DecoderVendor v) {
  VendorTraits t;
  switch (v) {
    case DecoderVendor::kPillow:
      t.idct = IdctMethod::kFloatReference;
      t.fancy_chroma_upsample = true;
      t.color_convert = VendorTraits::ColorConvert::kFloatLround;
      break;
    case DecoderVendor::kOpenCV:
      t.idct = IdctMethod::kFixedPoint13;
      t.fancy_chroma_upsample = true;
      t.color_convert = VendorTraits::ColorConvert::kFixedPoint16;
      break;
    case DecoderVendor::kFFmpeg:
      t.idct = IdctMethod::kFloatAan;
      t.fancy_chroma_upsample = false;
      t.color_convert = VendorTraits::ColorConvert::kFixedPoint16;
      break;
    case DecoderVendor::kDALI:
      t.idct = IdctMethod::kFixedPoint9;
      t.fancy_chroma_upsample = false;
      t.color_convert = VendorTraits::ColorConvert::kShift8;
      break;
  }
  return t;
}

void rgb_to_ycbcr(std::uint8_t r8, std::uint8_t g8, std::uint8_t b8, float& y,
                  float& cb, float& cr) {
  const float r = r8, g = g8, b = b8;
  y = 0.299f * r + 0.587f * g + 0.114f * b;
  cb = -0.168736f * r - 0.331264f * g + 0.5f * b + 128.0f;
  cr = 0.5f * r - 0.418688f * g - 0.081312f * b + 128.0f;
}

namespace {

// ---------------------------------------------------------------------------
// Shared plane helpers
// ---------------------------------------------------------------------------

struct Plane {
  int h = 0, w = 0;
  std::vector<float> v;
  Plane() = default;
  Plane(int hh, int ww) : h(hh), w(ww), v(static_cast<std::size_t>(hh) * ww, 0.0f) {}
  float& at(int y, int x) { return v[static_cast<std::size_t>(y) * w + x]; }
  float at(int y, int x) const { return v[static_cast<std::size_t>(y) * w + x]; }
  float at_clamped(int y, int x) const {
    return at(std::clamp(y, 0, h - 1), std::clamp(x, 0, w - 1));
  }
};

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// ---------------------------------------------------------------------------
// Marker-level byte emission
// ---------------------------------------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_marker(std::vector<std::uint8_t>& out, std::uint8_t code) {
  out.push_back(0xFF);
  out.push_back(code);
}

void put_dqt(std::vector<std::uint8_t>& out, int table_id, const QuantTable& q) {
  put_marker(out, 0xDB);
  put_u16(out, 2 + 1 + 64);
  out.push_back(static_cast<std::uint8_t>(table_id));  // 8-bit precision
  for (int i = 0; i < 64; ++i)
    out.push_back(static_cast<std::uint8_t>(q[static_cast<std::size_t>(kZigZag[static_cast<std::size_t>(i)])]));
}

void put_dht(std::vector<std::uint8_t>& out, int clazz, int table_id,
             const HuffSpec& spec) {
  put_marker(out, 0xC4);
  put_u16(out, static_cast<std::uint16_t>(2 + 1 + 16 + spec.symbols.size()));
  out.push_back(static_cast<std::uint8_t>((clazz << 4) | table_id));
  for (auto c : spec.counts) out.push_back(c);
  for (auto s : spec.symbols) out.push_back(s);
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct BlockCodec {
  HuffEncoder dc;
  HuffEncoder ac;
};

void encode_block(BitWriter& bw, const float* samples /*8x8 level-shifted*/,
                  const QuantTable& q, int& dc_pred, const BlockCodec& codec) {
  float coef[64];
  fdct8x8(samples, coef);

  int quantized[64];
  for (int i = 0; i < 64; ++i) {
    const float qv = static_cast<float>(q[static_cast<std::size_t>(i)]);
    quantized[i] = static_cast<int>(std::lround(coef[i] / qv));
  }

  // DC: differential.
  const int diff = quantized[0] - dc_pred;
  dc_pred = quantized[0];
  const int dc_cat = bit_category(diff);
  bw.put_bits(codec.dc.code(dc_cat), codec.dc.length(dc_cat));
  bw.put_bits(value_bits(diff, dc_cat), dc_cat);

  // AC: run-length of zeros in zig-zag order.
  int run = 0;
  for (int k = 1; k < 64; ++k) {
    const int v = quantized[kZigZag[static_cast<std::size_t>(k)]];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      bw.put_bits(codec.ac.code(0xF0), codec.ac.length(0xF0));  // ZRL
      run -= 16;
    }
    const int cat = bit_category(v);
    const int sym = (run << 4) | cat;
    bw.put_bits(codec.ac.code(sym), codec.ac.length(sym));
    bw.put_bits(value_bits(v, cat), cat);
    run = 0;
  }
  if (run > 0) bw.put_bits(codec.ac.code(0x00), codec.ac.length(0x00));  // EOB
}

// Copy an 8x8 block (replicating past the border) and level-shift by -128.
void load_block(const Plane& p, int by, int bx, float out[64]) {
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      out[y * 8 + x] = p.at_clamped(by + y, bx + x) - 128.0f;
}

}  // namespace

std::vector<std::uint8_t> encode(const ImageU8& rgb, const EncodeOptions& opts) {
  if (rgb.channels() != 3) throw std::invalid_argument("jpeg::encode: need RGB");
  const int h = rgb.height(), w = rgb.width();
  if (h <= 0 || w <= 0 || h > 65500 || w > 65500)
    throw std::invalid_argument("jpeg::encode: bad dimensions");

  // Color convert to planes.
  Plane py(h, w), pcb(h, w), pcr(h, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      rgb_to_ycbcr(rgb.at(y, x, 0), rgb.at(y, x, 1), rgb.at(y, x, 2),
                   py.at(y, x), pcb.at(y, x), pcr.at(y, x));

  const bool subsample = opts.chroma == ChromaMode::k420;
  Plane cb_s, cr_s;
  if (subsample) {
    const int ch = ceil_div(h, 2), cw = ceil_div(w, 2);
    cb_s = Plane(ch, cw);
    cr_s = Plane(ch, cw);
    for (int y = 0; y < ch; ++y)
      for (int x = 0; x < cw; ++x) {
        // 2x2 box average with border replication.
        float scb = 0.0f, scr = 0.0f;
        for (int dy = 0; dy < 2; ++dy)
          for (int dx = 0; dx < 2; ++dx) {
            scb += pcb.at_clamped(2 * y + dy, 2 * x + dx);
            scr += pcr.at_clamped(2 * y + dy, 2 * x + dx);
          }
        cb_s.at(y, x) = scb * 0.25f;
        cr_s.at(y, x) = scr * 0.25f;
      }
  } else {
    cb_s = pcb;
    cr_s = pcr;
  }

  const QuantTable qy = scale_quality(annex_k_luminance(), opts.quality);
  const QuantTable qc = scale_quality(annex_k_chrominance(), opts.quality);

  std::vector<std::uint8_t> out;
  put_marker(out, 0xD8);  // SOI
  // APP0 / JFIF header.
  put_marker(out, 0xE0);
  put_u16(out, 16);
  const char jfif[5] = {'J', 'F', 'I', 'F', 0};
  out.insert(out.end(), jfif, jfif + 5);
  out.push_back(1);
  out.push_back(1);  // version 1.1
  out.push_back(0);  // aspect units
  put_u16(out, 1);
  put_u16(out, 1);
  out.push_back(0);
  out.push_back(0);  // no thumbnail

  put_dqt(out, 0, qy);
  put_dqt(out, 1, qc);

  // SOF0.
  put_marker(out, 0xC0);
  put_u16(out, 2 + 6 + 3 * 3);
  out.push_back(8);  // precision
  put_u16(out, static_cast<std::uint16_t>(h));
  put_u16(out, static_cast<std::uint16_t>(w));
  out.push_back(3);
  const std::uint8_t y_sampling = subsample ? 0x22 : 0x11;
  out.push_back(1);
  out.push_back(y_sampling);
  out.push_back(0);
  out.push_back(2);
  out.push_back(0x11);
  out.push_back(1);
  out.push_back(3);
  out.push_back(0x11);
  out.push_back(1);

  put_dht(out, 0, 0, std_dc_luminance());
  put_dht(out, 1, 0, std_ac_luminance());
  put_dht(out, 0, 1, std_dc_chrominance());
  put_dht(out, 1, 1, std_ac_chrominance());

  // SOS.
  put_marker(out, 0xDA);
  put_u16(out, 2 + 1 + 2 * 3 + 3);
  out.push_back(3);
  out.push_back(1);
  out.push_back(0x00);
  out.push_back(2);
  out.push_back(0x11);
  out.push_back(3);
  out.push_back(0x11);
  out.push_back(0);
  out.push_back(63);
  out.push_back(0);

  // Entropy-coded data.
  const BlockCodec lum{HuffEncoder(std_dc_luminance()), HuffEncoder(std_ac_luminance())};
  const BlockCodec chrom{HuffEncoder(std_dc_chrominance()),
                         HuffEncoder(std_ac_chrominance())};
  BitWriter bw;
  int dc_y = 0, dc_cb = 0, dc_cr = 0;
  float block[64];

  if (subsample) {
    const int mcus_y = ceil_div(h, 16), mcus_x = ceil_div(w, 16);
    for (int my = 0; my < mcus_y; ++my) {
      for (int mx = 0; mx < mcus_x; ++mx) {
        for (int by = 0; by < 2; ++by)
          for (int bx = 0; bx < 2; ++bx) {
            load_block(py, my * 16 + by * 8, mx * 16 + bx * 8, block);
            encode_block(bw, block, qy, dc_y, lum);
          }
        load_block(cb_s, my * 8, mx * 8, block);
        encode_block(bw, block, qc, dc_cb, chrom);
        load_block(cr_s, my * 8, mx * 8, block);
        encode_block(bw, block, qc, dc_cr, chrom);
      }
    }
  } else {
    const int mcus_y = ceil_div(h, 8), mcus_x = ceil_div(w, 8);
    for (int my = 0; my < mcus_y; ++my) {
      for (int mx = 0; mx < mcus_x; ++mx) {
        load_block(py, my * 8, mx * 8, block);
        encode_block(bw, block, qy, dc_y, lum);
        load_block(cb_s, my * 8, mx * 8, block);
        encode_block(bw, block, qc, dc_cb, chrom);
        load_block(cr_s, my * 8, mx * 8, block);
        encode_block(bw, block, qc, dc_cr, chrom);
      }
    }
  }
  bw.flush();
  const auto& entropy = bw.bytes();
  out.insert(out.end(), entropy.begin(), entropy.end());
  put_marker(out, 0xD9);  // EOI
  return out;
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

namespace {

struct ParsedJpeg {
  int height = 0, width = 0;
  bool subsampled = false;  // 4:2:0 vs 4:4:4
  QuantTable quant[2]{};
  HuffSpec dc_spec[2], ac_spec[2];
  std::size_t scan_begin = 0, scan_end = 0;  // entropy-coded byte range
};

std::uint16_t get_u16(const std::vector<std::uint8_t>& d, std::size_t pos) {
  return static_cast<std::uint16_t>((d[pos] << 8) | d[pos + 1]);
}

ParsedJpeg parse_headers(const std::vector<std::uint8_t>& d) {
  ParsedJpeg j;
  if (d.size() < 4 || d[0] != 0xFF || d[1] != 0xD8)
    throw std::runtime_error("jpeg::decode: missing SOI");
  std::size_t pos = 2;
  bool seen_sof = false;
  while (pos + 4 <= d.size()) {
    if (d[pos] != 0xFF) throw std::runtime_error("jpeg::decode: marker expected");
    const std::uint8_t code = d[pos + 1];
    pos += 2;
    if (code == 0xD9) break;  // EOI before SOS? malformed but stop
    const std::size_t len = get_u16(d, pos);
    const std::size_t seg_end = pos + len;
    if (seg_end > d.size()) throw std::runtime_error("jpeg::decode: truncated segment");
    std::size_t p = pos + 2;
    switch (code) {
      case 0xDB: {  // DQT (possibly multiple tables)
        while (p < seg_end) {
          const int pq = d[p] >> 4, tq = d[p] & 0x0F;
          if (pq != 0 || tq > 1) throw std::runtime_error("jpeg::decode: bad DQT");
          ++p;
          for (int i = 0; i < 64; ++i)
            j.quant[tq][static_cast<std::size_t>(kZigZag[static_cast<std::size_t>(i)])] = d[p + static_cast<std::size_t>(i)];
          p += 64;
        }
        break;
      }
      case 0xC0: {  // SOF0
        j.height = get_u16(d, p + 1);
        j.width = get_u16(d, p + 3);
        const int ncomp = d[p + 5];
        if (ncomp != 3) throw std::runtime_error("jpeg::decode: need 3 components");
        const std::uint8_t y_sampling = d[p + 7];
        j.subsampled = (y_sampling == 0x22);
        if (y_sampling != 0x22 && y_sampling != 0x11)
          throw std::runtime_error("jpeg::decode: unsupported sampling");
        seen_sof = true;
        break;
      }
      case 0xC4: {  // DHT (possibly multiple tables)
        while (p < seg_end) {
          const int clazz = d[p] >> 4, id = d[p] & 0x0F;
          if (id > 1) throw std::runtime_error("jpeg::decode: bad DHT id");
          ++p;
          HuffSpec spec;
          int total = 0;
          for (int i = 0; i < 16; ++i) {
            spec.counts[static_cast<std::size_t>(i)] = d[p + static_cast<std::size_t>(i)];
            total += spec.counts[static_cast<std::size_t>(i)];
          }
          p += 16;
          spec.symbols.assign(d.begin() + static_cast<std::ptrdiff_t>(p),
                              d.begin() + static_cast<std::ptrdiff_t>(p + static_cast<std::size_t>(total)));
          p += static_cast<std::size_t>(total);
          if (clazz == 0)
            j.dc_spec[id] = spec;
          else
            j.ac_spec[id] = spec;
        }
        break;
      }
      case 0xDA: {  // SOS: header then entropy data until EOI
        j.scan_begin = seg_end;
        // Entropy data runs to the EOI marker (no restart markers emitted).
        std::size_t q = d.size();
        while (q >= 2 && !(d[q - 2] == 0xFF && d[q - 1] == 0xD9)) --q;
        if (q < 2) throw std::runtime_error("jpeg::decode: missing EOI");
        j.scan_end = q - 2;
        if (!seen_sof) throw std::runtime_error("jpeg::decode: SOS before SOF");
        return j;
      }
      default:
        break;  // skip APPn/COM/etc.
    }
    pos = seg_end;
  }
  throw std::runtime_error("jpeg::decode: no SOS marker");
}

void decode_block(BitReader& br, const HuffDecoder& dc, const HuffDecoder& ac,
                  const QuantTable& q, int& dc_pred, float coef_out[64]) {
  std::memset(coef_out, 0, 64 * sizeof(float));
  const int dc_cat = dc.decode(br);
  if (dc_cat < 0 || dc_cat > 11) throw std::runtime_error("jpeg::decode: bad DC symbol");
  const int diff = extend_value(br.read_bits(dc_cat), dc_cat);
  dc_pred += diff;
  coef_out[0] = static_cast<float>(dc_pred * q[0]);
  int k = 1;
  while (k < 64) {
    const int sym = ac.decode(br);
    if (sym < 0) throw std::runtime_error("jpeg::decode: bad AC symbol");
    if (sym == 0x00) break;  // EOB
    const int run = sym >> 4, cat = sym & 0x0F;
    if (cat == 0) {
      if (run != 15) throw std::runtime_error("jpeg::decode: bad AC run");
      k += 16;  // ZRL
      continue;
    }
    k += run;
    if (k >= 64) throw std::runtime_error("jpeg::decode: AC overflow");
    const int v = extend_value(br.read_bits(cat), cat);
    const int nat = kZigZag[static_cast<std::size_t>(k)];
    coef_out[nat] = static_cast<float>(v * q[static_cast<std::size_t>(nat)]);
    ++k;
  }
}

void store_block(Plane& p, int by, int bx, const float samples[64]) {
  for (int y = 0; y < 8; ++y) {
    const int py_ = by + y;
    if (py_ >= p.h) break;
    for (int x = 0; x < 8; ++x) {
      const int px_ = bx + x;
      if (px_ >= p.w) break;
      p.at(py_, px_) = samples[y * 8 + x] + 128.0f;
    }
  }
}

// Triangle-filter (libjpeg "fancy") 2x chroma upsampling.
float fancy_upsample_at(const Plane& c, int oy, int ox) {
  const int cy = oy >> 1, cx = ox >> 1;
  const int ny = (oy & 1) ? cy + 1 : cy - 1;
  const int nx = (ox & 1) ? cx + 1 : cx - 1;
  const float c00 = c.at_clamped(cy, cx);
  const float c01 = c.at_clamped(cy, nx);
  const float c10 = c.at_clamped(ny, cx);
  const float c11 = c.at_clamped(ny, nx);
  return (9.0f * c00 + 3.0f * c01 + 3.0f * c10 + c11) / 16.0f;
}

std::uint8_t cc_float_lround(float v) {
  return clamp_u8(static_cast<int>(std::lround(v)));
}

}  // namespace

ImageU8 decode_with_traits(const std::vector<std::uint8_t>& bytes,
                           const VendorTraits& traits) {
  const ParsedJpeg j = parse_headers(bytes);
  const int h = j.height, w = j.width;

  const HuffDecoder dc_l(j.dc_spec[0]), ac_l(j.ac_spec[0]);
  const HuffDecoder dc_c(j.dc_spec[1]), ac_c(j.ac_spec[1]);

  const int ch = j.subsampled ? ceil_div(h, 2) : h;
  const int cw = j.subsampled ? ceil_div(w, 2) : w;
  // Planes padded to block multiples so store_block never splits.
  Plane py(ceil_div(h, j.subsampled ? 16 : 8) * (j.subsampled ? 16 : 8),
           ceil_div(w, j.subsampled ? 16 : 8) * (j.subsampled ? 16 : 8));
  Plane pcb(ceil_div(ch, 8) * 8, ceil_div(cw, 8) * 8);
  Plane pcr(ceil_div(ch, 8) * 8, ceil_div(cw, 8) * 8);

  BitReader br(bytes.data() + j.scan_begin, j.scan_end - j.scan_begin);
  int dpy = 0, dcb = 0, dcr = 0;
  float coef[64], samples[64];

  if (j.subsampled) {
    const int mcus_y = ceil_div(h, 16), mcus_x = ceil_div(w, 16);
    for (int my = 0; my < mcus_y; ++my)
      for (int mx = 0; mx < mcus_x; ++mx) {
        for (int by = 0; by < 2; ++by)
          for (int bx = 0; bx < 2; ++bx) {
            decode_block(br, dc_l, ac_l, j.quant[0], dpy, coef);
            idct8x8(traits.idct, coef, samples);
            store_block(py, my * 16 + by * 8, mx * 16 + bx * 8, samples);
          }
        decode_block(br, dc_c, ac_c, j.quant[1], dcb, coef);
        idct8x8(traits.idct, coef, samples);
        store_block(pcb, my * 8, mx * 8, samples);
        decode_block(br, dc_c, ac_c, j.quant[1], dcr, coef);
        idct8x8(traits.idct, coef, samples);
        store_block(pcr, my * 8, mx * 8, samples);
      }
  } else {
    const int mcus_y = ceil_div(h, 8), mcus_x = ceil_div(w, 8);
    for (int my = 0; my < mcus_y; ++my)
      for (int mx = 0; mx < mcus_x; ++mx) {
        decode_block(br, dc_l, ac_l, j.quant[0], dpy, coef);
        idct8x8(traits.idct, coef, samples);
        store_block(py, my * 8, mx * 8, samples);
        decode_block(br, dc_c, ac_c, j.quant[1], dcb, coef);
        idct8x8(traits.idct, coef, samples);
        store_block(pcb, my * 8, mx * 8, samples);
        decode_block(br, dc_c, ac_c, j.quant[1], dcr, coef);
        idct8x8(traits.idct, coef, samples);
        store_block(pcr, my * 8, mx * 8, samples);
      }
  }

  // Upsample chroma and convert to RGB.
  ImageU8 out(h, w, 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float Y = py.at(y, x);
      float Cb, Cr;
      if (j.subsampled) {
        if (traits.fancy_chroma_upsample) {
          Cb = fancy_upsample_at(pcb, y, x);
          Cr = fancy_upsample_at(pcr, y, x);
        } else {
          Cb = pcb.at(y >> 1, x >> 1);
          Cr = pcr.at(y >> 1, x >> 1);
        }
      } else {
        Cb = pcb.at(y, x);
        Cr = pcr.at(y, x);
      }

      switch (traits.color_convert) {
        case VendorTraits::ColorConvert::kFloatLround: {
          const float cb = Cb - 128.0f, cr = Cr - 128.0f;
          out.at(y, x, 0) = cc_float_lround(Y + 1.402f * cr);
          out.at(y, x, 1) = cc_float_lround(Y - 0.344136f * cb - 0.714136f * cr);
          out.at(y, x, 2) = cc_float_lround(Y + 1.772f * cb);
          break;
        }
        case VendorTraits::ColorConvert::kFixedPoint16: {
          // libjpeg-style 16-bit fixed point on rounded integer samples.
          const int yi = static_cast<int>(std::lround(Y));
          const int cb = static_cast<int>(std::lround(Cb)) - 128;
          const int cr = static_cast<int>(std::lround(Cr)) - 128;
          constexpr int kHalf = 1 << 15;
          const int r = yi + ((91881 * cr + kHalf) >> 16);   // 1.40200 * 65536
          const int g = yi - ((22554 * cb + 46802 * cr + kHalf) >> 16);
          const int b = yi + ((116130 * cb + kHalf) >> 16);  // 1.77200 * 65536
          out.at(y, x, 0) = clamp_u8(r);
          out.at(y, x, 1) = clamp_u8(g);
          out.at(y, x, 2) = clamp_u8(b);
          break;
        }
        case VendorTraits::ColorConvert::kShift8: {
          // 8-bit constant approximation (HW accelerator style).
          const int yi = static_cast<int>(Y);  // truncation, as cheap HW does
          const int cb = static_cast<int>(Cb) - 128;
          const int cr = static_cast<int>(Cr) - 128;
          const int r = yi + ((359 * cr + 128) >> 8);
          const int g = yi - ((88 * cb + 183 * cr + 128) >> 8);
          const int b = yi + ((454 * cb + 128) >> 8);
          out.at(y, x, 0) = clamp_u8(r);
          out.at(y, x, 1) = clamp_u8(g);
          out.at(y, x, 2) = clamp_u8(b);
          break;
        }
      }
    }
  }
  return out;
}

ImageU8 decode(const std::vector<std::uint8_t>& bytes, DecoderVendor vendor) {
  return decode_with_traits(bytes, vendor_traits(vendor));
}

}  // namespace sysnoise::jpeg
