// Baseline sequential JPEG (JFIF) encoder and a vendor-parameterized decoder.
//
// The encoder is the single "ground truth" producer used to build datasets.
// The decoder models the paper's four decode stacks (Sec. 3.4: PIL, OpenCV,
// FFmpeg, DALI): vendors share the bitstream format but differ in
//   - inverse DCT kernel (exact float / fixed-point 13-bit / AAN float /
//     low-precision fixed-point),
//   - chroma upsampling (triangle "fancy" filter vs sample replication),
//   - YCbCr->RGB arithmetic (float+lround / 16-bit fixed point / 8-bit
//     shift approximation),
// which yields the few-LSB pixel disagreements the paper measures.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"
#include "jpeg/dct.h"

namespace sysnoise::jpeg {

enum class DecoderVendor { kPillow = 0, kOpenCV = 1, kFFmpeg = 2, kDALI = 3 };
constexpr int kNumDecoderVendors = 4;
const char* vendor_name(DecoderVendor v);

enum class ChromaMode { k444, k420 };

struct EncodeOptions {
  int quality = 90;
  ChromaMode chroma = ChromaMode::k420;
};

// How a vendor turns dequantized coefficients into RGB.
struct VendorTraits {
  IdctMethod idct = IdctMethod::kFloatReference;
  bool fancy_chroma_upsample = true;  // triangle filter vs replication
  enum class ColorConvert { kFloatLround, kFixedPoint16, kShift8 } color_convert =
      ColorConvert::kFloatLround;
};

VendorTraits vendor_traits(DecoderVendor v);

// Encode an interleaved RGB image to a JFIF byte stream.
std::vector<std::uint8_t> encode(const ImageU8& rgb, const EncodeOptions& opts = {});

// Decode a stream produced by encode() with the given vendor behaviour.
ImageU8 decode(const std::vector<std::uint8_t>& bytes, DecoderVendor vendor);

// Decode with explicit traits (used by tests and ablations).
ImageU8 decode_with_traits(const std::vector<std::uint8_t>& bytes,
                           const VendorTraits& traits);

// Full-range JFIF RGB->YCbCr used by the encoder (exposed for tests).
void rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b, float& y,
                  float& cb, float& cr);

}  // namespace sysnoise::jpeg
