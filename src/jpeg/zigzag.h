// Zig-zag scan order (ITU-T T.81 Figure 5) mapping natural 8x8 raster order
// to the transmission order used by entropy coding.
#pragma once

#include <array>

namespace sysnoise::jpeg {

// kZigZag[i] = natural-order index of the i-th zig-zag coefficient.
inline constexpr std::array<int, 64> kZigZag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Inverse map: natural index -> zig-zag position.
constexpr std::array<int, 64> make_inverse_zigzag() {
  std::array<int, 64> inv{};
  for (int i = 0; i < 64; ++i) inv[static_cast<std::size_t>(kZigZag[static_cast<std::size_t>(i)])] = i;
  return inv;
}
inline constexpr std::array<int, 64> kZigZagInv = make_inverse_zigzag();

}  // namespace sysnoise::jpeg
