// Canonical Huffman coding for baseline JPEG (ITU-T T.81 Annex K tables),
// plus MSB-first bit I/O with 0xFF byte stuffing.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sysnoise::jpeg {

// A Huffman table in the JPEG DHT wire form: 16 code-length counts and the
// symbol list in canonical order.
struct HuffSpec {
  std::array<std::uint8_t, 16> counts{};  // counts[i] = #codes of length i+1
  std::vector<std::uint8_t> symbols;
};

// Standard Annex K tables.
const HuffSpec& std_dc_luminance();
const HuffSpec& std_ac_luminance();
const HuffSpec& std_dc_chrominance();
const HuffSpec& std_ac_chrominance();

// Encoder-side table: symbol -> (code, length).
class HuffEncoder {
 public:
  explicit HuffEncoder(const HuffSpec& spec);
  std::uint16_t code(int symbol) const { return codes_[static_cast<std::size_t>(symbol)]; }
  int length(int symbol) const { return lengths_[static_cast<std::size_t>(symbol)]; }

 private:
  std::array<std::uint16_t, 256> codes_{};
  std::array<std::uint8_t, 256> lengths_{};
};

// Decoder-side table: canonical (MINCODE/MAXCODE/VALPTR) decoding as in
// T.81 Annex F.2.2.3.
class HuffDecoder {
 public:
  explicit HuffDecoder(const HuffSpec& spec);
  // Decode one symbol via bit-by-bit canonical walk.
  template <typename BitSource>
  int decode(BitSource& bits) const {
    int code = bits.read_bit();
    int length = 1;
    while (length <= 16 && code > maxcode_[static_cast<std::size_t>(length)]) {
      code = (code << 1) | bits.read_bit();
      ++length;
    }
    if (length > 16) return -1;  // corrupt stream
    const int idx = valptr_[static_cast<std::size_t>(length)] +
                    (code - mincode_[static_cast<std::size_t>(length)]);
    return symbols_[static_cast<std::size_t>(idx)];
  }

 private:
  std::array<int, 17> mincode_{};
  std::array<int, 17> maxcode_{};  // -1 where no codes of that length
  std::array<int, 17> valptr_{};
  std::vector<std::uint8_t> symbols_;
};

// MSB-first bit writer with JPEG byte stuffing (0xFF -> 0xFF 0x00).
class BitWriter {
 public:
  void put_bits(std::uint32_t value, int nbits);
  // Pad the final partial byte with 1-bits (T.81 F.1.2.3).
  void flush();
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void emit_byte(std::uint8_t b);
  std::vector<std::uint8_t> out_;
  std::uint32_t acc_ = 0;
  int nbits_ = 0;
};

// MSB-first bit reader undoing byte stuffing.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  int read_bit();
  std::uint32_t read_bits(int n);
  bool exhausted() const { return pos_ >= size_ && nbits_ == 0; }
  std::size_t byte_pos() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  int nbits_ = 0;
};

// Magnitude category (number of bits) of a coefficient value, T.81 F.1.2.1.
int bit_category(int value);

// The `category`-bit representation of value (one's-complement for
// negatives), as appended after DC/AC Huffman symbols.
std::uint32_t value_bits(int value, int category);

// Inverse of value_bits: extend a raw category-bit pattern to a signed value.
int extend_value(std::uint32_t bits, int category);

}  // namespace sysnoise::jpeg
