#include "jpeg/dct.h"

#include <cmath>
#include <cstdint>
#include <numbers>

namespace sysnoise::jpeg {

namespace {

// Basis K[k][n] = alpha(k) * cos((2n+1) k pi / 16), so the 1-D iDCT is
// f[n] = sum_k F[k] K[k][n] and the 1-D DCT is F[k] = sum_n f[n] K[k][n].
struct Basis {
  double k[8][8];
  Basis() {
    for (int kk = 0; kk < 8; ++kk) {
      const double alpha = kk == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n)
        k[kk][n] = alpha * std::cos((2 * n + 1) * kk * std::numbers::pi / 16.0);
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

}  // namespace

void fdct8x8(const float in[64], float out[64]) {
  const auto& B = basis();
  double tmp[64];
  // Rows: F_row[u] over x.
  for (int y = 0; y < 8; ++y)
    for (int u = 0; u < 8; ++u) {
      double s = 0.0;
      for (int x = 0; x < 8; ++x) s += in[y * 8 + x] * B.k[u][x];
      tmp[y * 8 + u] = s;
    }
  // Columns.
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) {
      double s = 0.0;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + u] * B.k[v][y];
      out[v * 8 + u] = static_cast<float>(s);
    }
}

void idct8x8_reference(const float in[64], float out[64]) {
  const auto& B = basis();
  double tmp[64];
  // Rows: f_row[x] = sum_u F[u] K[u][x].
  for (int v = 0; v < 8; ++v)
    for (int x = 0; x < 8; ++x) {
      double s = 0.0;
      for (int u = 0; u < 8; ++u) s += in[v * 8 + u] * B.k[u][x];
      tmp[v * 8 + x] = s;
    }
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) {
      double s = 0.0;
      for (int v = 0; v < 8; ++v) s += tmp[v * 8 + x] * B.k[v][y];
      out[y * 8 + x] = static_cast<float>(s);
    }
}

void idct8x8_fixed(const float in[64], float out[64], int bits) {
  // Integer basis with `bits` fractional bits; row pass keeps `bits`
  // fractional bits, column pass descales with round-half-up. This mirrors
  // the structure (and rounding behaviour) of fixed-point vendor kernels.
  const auto& B = basis();
  std::int32_t ib[8][8];
  const double scale = static_cast<double>(1 << bits);
  for (int k = 0; k < 8; ++k)
    for (int n = 0; n < 8; ++n)
      ib[k][n] = static_cast<std::int32_t>(std::lround(B.k[k][n] * scale));

  std::int64_t tmp[64];
  const std::int64_t half = 1ll << (bits - 1);
  for (int v = 0; v < 8; ++v)
    for (int x = 0; x < 8; ++x) {
      std::int64_t s = 0;
      for (int u = 0; u < 8; ++u) {
        const auto coeff = static_cast<std::int64_t>(std::lround(in[v * 8 + u]));
        s += coeff * ib[u][x];
      }
      tmp[v * 8 + x] = (s + half) >> bits;  // keep integer samples per row pass
    }
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) {
      std::int64_t s = 0;
      for (int v = 0; v < 8; ++v) s += tmp[v * 8 + x] * ib[v][y];
      out[y * 8 + x] = static_cast<float>((s + half) >> bits);
    }
}

namespace {

// 1-D AAN inverse butterfly on 8 floats (Arai-Agui-Nakajima), in-place
// strided access. Input must already carry the AAN scale factors.
void aan_idct_1d(float* p, int stride) {
  float& p0 = p[0 * stride];
  float& p1 = p[1 * stride];
  float& p2 = p[2 * stride];
  float& p3 = p[3 * stride];
  float& p4 = p[4 * stride];
  float& p5 = p[5 * stride];
  float& p6 = p[6 * stride];
  float& p7 = p[7 * stride];

  // Even part.
  float tmp0 = p0, tmp1 = p2, tmp2 = p4, tmp3 = p6;
  float tmp10 = tmp0 + tmp2;
  float tmp11 = tmp0 - tmp2;
  float tmp13 = tmp1 + tmp3;
  float tmp12 = (tmp1 - tmp3) * 1.414213562f - tmp13;
  tmp0 = tmp10 + tmp13;
  tmp3 = tmp10 - tmp13;
  tmp1 = tmp11 + tmp12;
  tmp2 = tmp11 - tmp12;

  // Odd part.
  float tmp4 = p1, tmp5 = p3, tmp6 = p5, tmp7 = p7;
  const float z13 = tmp6 + tmp5;
  const float z10 = tmp6 - tmp5;
  const float z11 = tmp4 + tmp7;
  const float z12 = tmp4 - tmp7;
  tmp7 = z11 + z13;
  tmp11 = (z11 - z13) * 1.414213562f;
  const float z5 = (z10 + z12) * 1.847759065f;
  tmp10 = 1.082392200f * z12 - z5;
  tmp12 = -2.613125930f * z10 + z5;
  tmp6 = tmp12 - tmp7;
  tmp5 = tmp11 - tmp6;
  tmp4 = tmp10 + tmp5;

  p0 = tmp0 + tmp7;
  p7 = tmp0 - tmp7;
  p1 = tmp1 + tmp6;
  p6 = tmp1 - tmp6;
  p2 = tmp2 + tmp5;
  p5 = tmp2 - tmp5;
  p4 = tmp3 + tmp4;
  p3 = tmp3 - tmp4;
}

}  // namespace

void idct8x8_aan(const float in[64], float out[64]) {
  // AAN scale factors folded in up front (libjpeg folds them into the
  // dequant table; we apply them here so all iDCTs share one interface).
  static const float kAan[8] = {1.0f,          1.387039845f, 1.306562965f,
                                1.175875602f,  1.0f,         0.785694958f,
                                0.541196100f,  0.275899379f};
  float ws[64];
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u)
      ws[v * 8 + u] = in[v * 8 + u] * kAan[v] * kAan[u] * 0.125f;

  for (int x = 0; x < 8; ++x) aan_idct_1d(ws + x, 8);  // columns
  for (int y = 0; y < 8; ++y) aan_idct_1d(ws + y * 8, 1);  // rows
  for (int i = 0; i < 64; ++i) out[i] = ws[i];
}

void idct8x8(IdctMethod method, const float in[64], float out[64]) {
  switch (method) {
    case IdctMethod::kFloatReference:
      idct8x8_reference(in, out);
      return;
    case IdctMethod::kFixedPoint13:
      idct8x8_fixed(in, out, 13);
      return;
    case IdctMethod::kFloatAan:
      idct8x8_aan(in, out);
      return;
    case IdctMethod::kFixedPoint9:
      idct8x8_fixed(in, out, 9);
      return;
  }
}

}  // namespace sysnoise::jpeg
