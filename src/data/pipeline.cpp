#include "data/pipeline.h"

namespace sysnoise {

ImageU8 preprocess_image(const std::vector<std::uint8_t>& jpeg_bytes,
                         const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  ImageU8 decoded = jpeg::decode(jpeg_bytes, cfg.decoder);
  ImageU8 resized = resize(decoded, spec.out_h, spec.out_w, cfg.resize);
  return apply_color_mode(resized, cfg.color);
}

Tensor preprocess(const std::vector<std::uint8_t>& jpeg_bytes,
                  const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  return image_to_tensor(preprocess_image(jpeg_bytes, cfg, spec), spec.mean,
                         spec.stddev);
}

}  // namespace sysnoise
