#include "data/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "tensor/layout.h"

namespace sysnoise {

std::pair<std::vector<float>, std::vector<float>> effective_norm_stats(
    const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  switch (cfg.norm) {
    case NormStats::kTorchvision:
      return {spec.mean, spec.stddev};
    case NormStats::kRoundedU8: {
      auto snap = [](const std::vector<float>& v) {
        std::vector<float> out;
        out.reserve(v.size());
        for (float x : v) out.push_back(std::round(x * 255.0f) / 255.0f);
        return out;
      };
      return {snap(spec.mean), snap(spec.stddev)};
    }
    case NormStats::kHalfHalf:
      return {std::vector<float>(spec.mean.size(), 0.5f),
              std::vector<float>(spec.stddev.size(), 0.5f)};
  }
  return {spec.mean, spec.stddev};
}

std::string preprocess_key(const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  const auto [mean, stddev] = effective_norm_stats(cfg, spec);
  std::ostringstream os;
  // Round-trip-exact float formatting: stats differing in any bit must not
  // collide into one key (the sharing contract is injectivity).
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "dec=" << jpeg::vendor_name(cfg.decoder)
     << "|res=" << resize_method_name(cfg.resize)
     << "|crop=" << cfg.crop_fraction
     << "|col=" << color_mode_name(cfg.color)
     << "|lay=" << channel_layout_name(cfg.layout) << "|out=" << spec.out_h
     << "x" << spec.out_w << "|m=";
  for (float v : mean) os << v << ",";
  os << "|s=";
  for (float v : stddev) os << v << ",";
  return os.str();
}

ImageU8 preprocess_image(const std::vector<std::uint8_t>& jpeg_bytes,
                         const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  ImageU8 decoded = jpeg::decode(jpeg_bytes, cfg.decoder);
  // Crop-geometry knob: training resizes straight to the model input
  // (fraction 1.0); the torchvision-convention deployment path resizes to
  // out/fraction and center-crops the model input out of it.
  if (cfg.crop_fraction < 1.0f) {
    const int mid_h = static_cast<int>(
        std::round(static_cast<float>(spec.out_h) / cfg.crop_fraction));
    const int mid_w = static_cast<int>(
        std::round(static_cast<float>(spec.out_w) / cfg.crop_fraction));
    ImageU8 enlarged = resize(decoded, mid_h, mid_w, cfg.resize);
    ImageU8 cropped = center_crop(enlarged, spec.out_h, spec.out_w);
    return apply_color_mode(cropped, cfg.color);
  }
  ImageU8 resized = resize(decoded, spec.out_h, spec.out_w, cfg.resize);
  return apply_color_mode(resized, cfg.color);
}

Tensor preprocess(const std::vector<std::uint8_t>& jpeg_bytes,
                  const SysNoiseConfig& cfg, const PipelineSpec& spec) {
  const auto [mean, stddev] = effective_norm_stats(cfg, spec);
  Tensor t = image_to_tensor(preprocess_image(jpeg_bytes, cfg, spec), mean,
                             stddev);
  // Channel-layout knob: channels-last runtimes hand the network a tensor
  // that round-tripped through an NHWC(FP16) staging buffer.
  if (cfg.layout == ChannelLayout::kNHWCRoundTrip) nhwc_round_trip_(t);
  return t;
}

PreprocessedBatches preprocess_batches(
    const std::vector<const std::vector<std::uint8_t>*>& jpegs,
    const SysNoiseConfig& cfg, const PipelineSpec& spec, int batch_size) {
  PreprocessedBatches out;
  out.batch_size = batch_size;
  out.num_samples = static_cast<int>(jpegs.size());
  const int n = out.num_samples;
  for (int b = 0; b < n; b += batch_size) {
    const int bs = std::min(batch_size, n - b);
    std::vector<Tensor> items;
    items.reserve(static_cast<std::size_t>(bs));
    for (int i = 0; i < bs; ++i)
      items.push_back(
          preprocess(*jpegs[static_cast<std::size_t>(b + i)], cfg, spec));
    out.inputs.push_back(stack_front(items));
  }
  return out;
}

}  // namespace sysnoise
