// Pre-processing pipeline: JPEG bytes -> decode -> resize -> color-mode
// round trip -> normalized CHW tensor. The three pre-processing SysNoise
// knobs act here; samples are stored as real JPEG bitstreams so the decode
// path is exercised end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "data/noise_config.h"
#include "image/image.h"
#include "tensor/tensor.h"

namespace sysnoise {

struct PipelineSpec {
  int out_h = 32;
  int out_w = 32;
  // ImageNet-style channel statistics in [0,1] units.
  std::vector<float> mean = {0.485f, 0.456f, 0.406f};
  std::vector<float> stddev = {0.229f, 0.224f, 0.225f};
};

// Run the full pre-processing chain under `cfg` and return a [1,3,H,W]
// tensor ready for the network.
Tensor preprocess(const std::vector<std::uint8_t>& jpeg_bytes,
                  const SysNoiseConfig& cfg, const PipelineSpec& spec);

// Intermediate: decoded+resized+color-converted image (for visualization
// and image-space diff metrics, Fig. 5).
ImageU8 preprocess_image(const std::vector<std::uint8_t>& jpeg_bytes,
                         const SysNoiseConfig& cfg, const PipelineSpec& spec);

}  // namespace sysnoise
