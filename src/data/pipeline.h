// Pre-processing pipeline: JPEG bytes -> decode -> resize -> color-mode
// round trip -> normalized CHW tensor (optionally round-tripped through an
// NHWC(FP16) staging buffer). The pre-processing SysNoise knobs (decoder
// vendor, resize kernel, color path, normalization stats, channel layout)
// act here; samples are stored as real JPEG bitstreams so the decode path
// is exercised end to end.
//
// The pipeline is the first stage of the staged evaluation split
// (preprocess -> forward -> postprocess): `preprocess_key()` names exactly
// the knobs this stage reads, and `preprocess_batches()` materializes the
// stage's product — stacked input batches — once per distinct key so sweeps
// over inference-side knobs never re-decode or re-resize a JPEG.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/noise_config.h"
#include "image/image.h"
#include "tensor/tensor.h"

namespace sysnoise {

struct PipelineSpec {
  int out_h = 32;
  int out_w = 32;
  // ImageNet-style channel statistics in [0,1] units (the training-side
  // stats; the NormStats knob derives the deployed stats from these).
  std::vector<float> mean = {0.485f, 0.456f, 0.406f};
  std::vector<float> stddev = {0.229f, 0.224f, 0.225f};
};

// The per-channel mean/std the deployed pipeline actually divides by:
// spec's floats under kTorchvision, their u8-grid rounding under
// kRoundedU8, or 0.5 everywhere under kHalfHalf.
std::pair<std::vector<float>, std::vector<float>> effective_norm_stats(
    const SysNoiseConfig& cfg, const PipelineSpec& spec);

// Stage-1 cache key: a stable encoding of every knob preprocess() reads
// (decoder, resize, color, layout, effective normalization stats, output
// size).
// Configs that differ only in inference/post-processing knobs share a key;
// configs whose pre-processing products differ get distinct keys.
std::string preprocess_key(const SysNoiseConfig& cfg, const PipelineSpec& spec);

// Run the full pre-processing chain under `cfg` and return a [1,3,H,W]
// tensor ready for the network.
Tensor preprocess(const std::vector<std::uint8_t>& jpeg_bytes,
                  const SysNoiseConfig& cfg, const PipelineSpec& spec);

// Intermediate: decoded+resized+color-converted image (for visualization
// and image-space diff metrics, Fig. 5).
ImageU8 preprocess_image(const std::vector<std::uint8_t>& jpeg_bytes,
                         const SysNoiseConfig& cfg, const PipelineSpec& spec);

// Stage-1 product: every evaluation sample pre-processed and stacked into
// the exact batch tensors the evaluation loops forward, in dataset order.
struct PreprocessedBatches {
  std::vector<Tensor> inputs;  // stacked [b,3,H,W]; last batch may be short
  int batch_size = 0;
  int num_samples = 0;
};

// Materialize the stage-1 product for a sample list. Batch boundaries match
// the monolithic evaluation loops (`bs = min(batch_size, n - b)`), so a
// forward pass over these tensors is bit-identical to the unstaged path.
PreprocessedBatches preprocess_batches(
    const std::vector<const std::vector<std::uint8_t>*>& jpegs,
    const SysNoiseConfig& cfg, const PipelineSpec& spec, int batch_size);

}  // namespace sysnoise
