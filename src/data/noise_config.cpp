#include "data/noise_config.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace sysnoise {

const char* norm_stats_name(NormStats s) {
  switch (s) {
    case NormStats::kTorchvision: return "torchvision";
    case NormStats::kRoundedU8: return "rounded-u8";
    case NormStats::kHalfHalf: return "0.5/0.5";
  }
  return "?";
}

const char* channel_layout_name(ChannelLayout l) {
  switch (l) {
    case ChannelLayout::kNCHW: return "NCHW";
    case ChannelLayout::kNHWCRoundTrip: return "NHWC-fp16";
  }
  return "?";
}

std::string SysNoiseConfig::describe() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "decoder=" << jpeg::vendor_name(decoder)
     << " resize=" << resize_method_name(resize)
     << " crop=" << crop_fraction
     << " color=" << color_mode_name(color)
     << " norm=" << norm_stats_name(norm)
     << " layout=" << channel_layout_name(layout)
     << " prec=" << nn::precision_name(precision)
     << " ceil=" << (ceil_mode ? "1" : "0")
     << " upsample=" << nn::upsample_mode_name(upsample)
     << " backend=" << backend_name(backend)
     << " offset=" << proposal_offset;
  return os.str();
}

util::Json SysNoiseConfig::to_json() const {
  util::Json j = util::Json::object();
  j.set("decoder", jpeg::vendor_name(decoder));
  j.set("resize", resize_method_name(resize));
  j.set("crop_fraction", static_cast<double>(crop_fraction));
  j.set("color", color_mode_name(color));
  j.set("norm", norm_stats_name(norm));
  j.set("layout", channel_layout_name(layout));
  j.set("precision", nn::precision_name(precision));
  j.set("ceil_mode", ceil_mode);
  j.set("upsample", nn::upsample_mode_name(upsample));
  j.set("backend", backend_name(backend));
  j.set("proposal_offset", static_cast<double>(proposal_offset));
  return j;
}

SysNoiseConfig SysNoiseConfig::from_json(const util::Json& j) {
  SysNoiseConfig cfg;
  cfg.decoder = decoder_vendor_from_name(j.at("decoder").as_string());
  cfg.resize = resize_method_from_name(j.at("resize").as_string());
  cfg.crop_fraction = static_cast<float>(j.at("crop_fraction").as_number());
  cfg.color = color_mode_from_name(j.at("color").as_string());
  cfg.norm = norm_stats_from_name(j.at("norm").as_string());
  // Absent in pre-layout-axis serializations: default to the training-side
  // NCHW rather than rejecting older plan/shard files.
  if (const util::Json* l = j.get("layout"))
    cfg.layout = channel_layout_from_name(l->as_string());
  cfg.precision = precision_from_name(j.at("precision").as_string());
  cfg.ceil_mode = j.at("ceil_mode").as_bool();
  cfg.upsample = upsample_mode_from_name(j.at("upsample").as_string());
  // Absent in pre-backend-axis serializations: keep the process default.
  if (const util::Json* b = j.get("backend"))
    cfg.backend = backend_from_name(b->as_string());
  cfg.proposal_offset = static_cast<float>(j.at("proposal_offset").as_number());
  return cfg;
}

namespace {

[[noreturn]] void unknown_name(const char* what, const std::string& name) {
  throw std::invalid_argument(std::string("unknown ") + what + " name \"" +
                              name + "\"");
}

}  // namespace

jpeg::DecoderVendor decoder_vendor_from_name(const std::string& name) {
  for (int i = 0; i < jpeg::kNumDecoderVendors; ++i) {
    const auto v = static_cast<jpeg::DecoderVendor>(i);
    if (name == jpeg::vendor_name(v)) return v;
  }
  unknown_name("decoder vendor", name);
}

ResizeMethod resize_method_from_name(const std::string& name) {
  for (int i = 0; i < kNumResizeMethods; ++i) {
    const auto m = static_cast<ResizeMethod>(i);
    if (name == resize_method_name(m)) return m;
  }
  unknown_name("resize method", name);
}

ColorMode color_mode_from_name(const std::string& name) {
  for (int i = 0; i < kNumColorModes; ++i) {
    const auto m = static_cast<ColorMode>(i);
    if (name == color_mode_name(m)) return m;
  }
  unknown_name("color mode", name);
}

NormStats norm_stats_from_name(const std::string& name) {
  for (int i = 0; i < kNumNormStats; ++i) {
    const auto s = static_cast<NormStats>(i);
    if (name == norm_stats_name(s)) return s;
  }
  unknown_name("normalization stats", name);
}

ChannelLayout channel_layout_from_name(const std::string& name) {
  for (int i = 0; i < kNumChannelLayouts; ++i) {
    const auto l = static_cast<ChannelLayout>(i);
    if (name == channel_layout_name(l)) return l;
  }
  unknown_name("channel layout", name);
}

nn::Precision precision_from_name(const std::string& name) {
  for (int i = 0; i < nn::kNumPrecisions; ++i) {
    const auto p = static_cast<nn::Precision>(i);
    if (name == nn::precision_name(p)) return p;
  }
  unknown_name("precision", name);
}

nn::UpsampleMode upsample_mode_from_name(const std::string& name) {
  for (const auto m : {nn::UpsampleMode::kNearest, nn::UpsampleMode::kBilinear})
    if (name == nn::upsample_mode_name(m)) return m;
  unknown_name("upsample mode", name);
}

std::vector<jpeg::DecoderVendor> decoder_noise_options() {
  return {jpeg::DecoderVendor::kOpenCV, jpeg::DecoderVendor::kFFmpeg,
          jpeg::DecoderVendor::kDALI};
}

std::vector<ResizeMethod> resize_noise_options() {
  std::vector<ResizeMethod> out;
  for (ResizeMethod m : all_resize_methods())
    if (m != SysNoiseConfig{}.resize) out.push_back(m);
  return out;
}

std::vector<float> crop_noise_options() { return {0.875f}; }

std::vector<ColorMode> color_noise_options() {
  return {ColorMode::kNv12RoundTrip};
}

std::vector<nn::Precision> precision_noise_options() {
  return {nn::Precision::kFP16, nn::Precision::kINT8};
}

std::vector<NormStats> norm_noise_options() {
  return {NormStats::kRoundedU8, NormStats::kHalfHalf};
}

std::vector<ChannelLayout> layout_noise_options() {
  return {ChannelLayout::kNHWCRoundTrip};
}

std::vector<ComputeBackend> backend_noise_options() {
  // The two kernel families the training default doesn't use — relative to
  // the process default, so SYSNOISE_BACKEND=blocked makes reference and
  // simd the deployment-side alternates.
  std::vector<ComputeBackend> out;
  for (int i = 0; i < kNumComputeBackends; ++i) {
    const auto b = static_cast<ComputeBackend>(i);
    if (b != SysNoiseConfig{}.backend) out.push_back(b);
  }
  return out;
}

}  // namespace sysnoise
