#include "data/noise_config.h"

#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sysnoise {

const char* norm_stats_name(NormStats s) {
  switch (s) {
    case NormStats::kTorchvision: return "torchvision";
    case NormStats::kRoundedU8: return "rounded-u8";
    case NormStats::kHalfHalf: return "0.5/0.5";
  }
  return "?";
}

const char* channel_layout_name(ChannelLayout l) {
  switch (l) {
    case ChannelLayout::kNCHW: return "NCHW";
    case ChannelLayout::kNHWCRoundTrip: return "NHWC-fp16";
  }
  return "?";
}

const char* tokenizer_profile_name(TokenizerProfile p) {
  switch (p) {
    case TokenizerProfile::kTraining: return "training";
    case TokenizerProfile::kTrunc12: return "trunc-12";
    case TokenizerProfile::kTrunc8: return "trunc-8";
  }
  return "?";
}

int tokenizer_profile_symbol_limit(TokenizerProfile p) {
  switch (p) {
    case TokenizerProfile::kTraining: return 16;  // nlp::kSymbols
    case TokenizerProfile::kTrunc12: return 12;
    case TokenizerProfile::kTrunc8: return 8;
  }
  return 16;
}

namespace {

// Shorthand for the common enum-valued knob: name() to serialize,
// from_name() to parse.
template <typename Enum, typename Member>
KnobInfo enum_knob(const char* json_key, const char* describe_key,
                   const char* group, bool legacy_optional, Member member,
                   const char* (*name)(Enum),
                   Enum (*from_name)(const std::string&)) {
  KnobInfo k;
  k.json_key = json_key;
  k.describe_key = describe_key;
  k.group = group;
  k.legacy_optional = legacy_optional;
  k.describe_value = [member, name](const SysNoiseConfig& c, std::ostream& os) {
    os << name(c.*member);
  };
  k.write_json = [json_key, member, name](const SysNoiseConfig& c,
                                          util::Json& j) {
    j.set(json_key, name(c.*member));
  };
  k.read_json = [json_key, member, from_name, legacy_optional](
                    SysNoiseConfig& c, const util::Json& j) {
    if (legacy_optional) {
      if (const util::Json* v = j.get(json_key))
        c.*member = from_name(v->as_string());
    } else {
      c.*member = from_name(j.at(json_key).as_string());
    }
  };
  return k;
}

template <typename Num, typename Member>
KnobInfo number_knob(const char* json_key, const char* describe_key,
                     const char* group, bool legacy_optional, Member member) {
  KnobInfo k;
  k.json_key = json_key;
  k.describe_key = describe_key;
  k.group = group;
  k.legacy_optional = legacy_optional;
  k.describe_value = [member](const SysNoiseConfig& c, std::ostream& os) {
    os << c.*member;
  };
  k.write_json = [json_key, member](const SysNoiseConfig& c, util::Json& j) {
    j.set(json_key, static_cast<double>(c.*member));
  };
  k.read_json = [json_key, member, legacy_optional](SysNoiseConfig& c,
                                                    const util::Json& j) {
    if (legacy_optional) {
      if (const util::Json* v = j.get(json_key))
        c.*member = static_cast<Num>(v->as_number());
    } else {
      c.*member = static_cast<Num>(j.at(json_key).as_number());
    }
  };
  return k;
}

// jpeg::vendor_name and friends take their enum by value already; wrap the
// few that need an adapter signature.
const char* vendor_name_fn(jpeg::DecoderVendor v) { return jpeg::vendor_name(v); }
const char* resize_name_fn(ResizeMethod m) { return resize_method_name(m); }
const char* color_name_fn(ColorMode m) { return color_mode_name(m); }
const char* precision_name_fn(nn::Precision p) { return nn::precision_name(p); }
const char* upsample_name_fn(nn::UpsampleMode m) {
  return nn::upsample_mode_name(m);
}
const char* backend_name_fn(ComputeBackend b) { return backend_name(b); }
const char* stft_name_fn(audio::StftImpl s) { return audio::stft_impl_name(s); }

std::vector<KnobInfo> build_knob_registry() {
  std::vector<KnobInfo> reg;
  // --- pre (image) ----------------------------------------------------
  reg.push_back(enum_knob("decoder", "decoder", "pre", false,
                          &SysNoiseConfig::decoder, vendor_name_fn,
                          decoder_vendor_from_name));
  reg.push_back(enum_knob("resize", "resize", "pre", false,
                          &SysNoiseConfig::resize, resize_name_fn,
                          resize_method_from_name));
  reg.push_back(number_knob<float>("crop_fraction", "crop", "pre", false,
                                   &SysNoiseConfig::crop_fraction));
  reg.push_back(enum_knob("color", "color", "pre", false,
                          &SysNoiseConfig::color, color_name_fn,
                          color_mode_from_name));
  reg.push_back(enum_knob("norm", "norm", "pre", false, &SysNoiseConfig::norm,
                          norm_stats_name, norm_stats_from_name));
  // Absent in pre-layout-axis serializations: default to the training-side
  // NCHW rather than rejecting older plan/shard files.
  reg.push_back(enum_knob("layout", "layout", "pre", true,
                          &SysNoiseConfig::layout, channel_layout_name,
                          channel_layout_from_name));
  // --- inference (all modalities) --------------------------------------
  reg.push_back(enum_knob("precision", "prec", "inference", false,
                          &SysNoiseConfig::precision, precision_name_fn,
                          precision_from_name));
  {
    KnobInfo k;
    k.json_key = "ceil_mode";
    k.describe_key = "ceil";
    k.group = "inference";
    k.legacy_optional = false;
    k.describe_value = [](const SysNoiseConfig& c, std::ostream& os) {
      os << (c.ceil_mode ? "1" : "0");
    };
    k.write_json = [](const SysNoiseConfig& c, util::Json& j) {
      j.set("ceil_mode", c.ceil_mode);
    };
    k.read_json = [](SysNoiseConfig& c, const util::Json& j) {
      c.ceil_mode = j.at("ceil_mode").as_bool();
    };
    reg.push_back(k);
  }
  reg.push_back(enum_knob("upsample", "upsample", "inference", false,
                          &SysNoiseConfig::upsample, upsample_name_fn,
                          upsample_mode_from_name));
  // Absent in pre-backend-axis serializations: keep the process default.
  reg.push_back(enum_knob("backend", "backend", "inference", true,
                          &SysNoiseConfig::backend, backend_name_fn,
                          backend_from_name));
  // --- post (detection) -------------------------------------------------
  reg.push_back(number_knob<float>("proposal_offset", "offset", "post", false,
                                   &SysNoiseConfig::proposal_offset));
  // --- nlp --------------------------------------------------------------
  reg.push_back(enum_knob("tokenizer", "tok", "nlp", true,
                          &SysNoiseConfig::tokenizer, tokenizer_profile_name,
                          tokenizer_profile_from_name));
  // --- audio ------------------------------------------------------------
  reg.push_back(number_knob<float>("resample_ratio", "resample", "audio", true,
                                   &SysNoiseConfig::resample_ratio));
  reg.push_back(enum_knob("stft_impl", "stft", "audio", true,
                          &SysNoiseConfig::stft_impl, stft_name_fn,
                          stft_impl_from_name));
  reg.push_back(number_knob<int>("stft_window", "stft_win", "audio", true,
                                 &SysNoiseConfig::stft_window));
  reg.push_back(number_knob<int>("stft_hop", "stft_hop", "audio", true,
                                 &SysNoiseConfig::stft_hop));
  return reg;
}

}  // namespace

const std::vector<KnobInfo>& knob_registry() {
  static const std::vector<KnobInfo> reg = build_knob_registry();
  return reg;
}

std::string SysNoiseConfig::describe() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  bool first = true;
  for (const KnobInfo& k : knob_registry()) {
    if (!first) os << ' ';
    first = false;
    os << k.describe_key << '=';
    k.describe_value(*this, os);
  }
  return os.str();
}

util::Json SysNoiseConfig::to_json() const {
  util::Json j = util::Json::object();
  for (const KnobInfo& k : knob_registry()) k.write_json(*this, j);
  return j;
}

SysNoiseConfig SysNoiseConfig::from_json(const util::Json& j) {
  SysNoiseConfig cfg;
  for (const KnobInfo& k : knob_registry()) k.read_json(cfg, j);
  return cfg;
}

namespace {

[[noreturn]] void unknown_name(const char* what, const std::string& name) {
  throw std::invalid_argument(std::string("unknown ") + what + " name \"" +
                              name + "\"");
}

}  // namespace

jpeg::DecoderVendor decoder_vendor_from_name(const std::string& name) {
  for (int i = 0; i < jpeg::kNumDecoderVendors; ++i) {
    const auto v = static_cast<jpeg::DecoderVendor>(i);
    if (name == jpeg::vendor_name(v)) return v;
  }
  unknown_name("decoder vendor", name);
}

ResizeMethod resize_method_from_name(const std::string& name) {
  for (int i = 0; i < kNumResizeMethods; ++i) {
    const auto m = static_cast<ResizeMethod>(i);
    if (name == resize_method_name(m)) return m;
  }
  unknown_name("resize method", name);
}

ColorMode color_mode_from_name(const std::string& name) {
  for (int i = 0; i < kNumColorModes; ++i) {
    const auto m = static_cast<ColorMode>(i);
    if (name == color_mode_name(m)) return m;
  }
  unknown_name("color mode", name);
}

NormStats norm_stats_from_name(const std::string& name) {
  for (int i = 0; i < kNumNormStats; ++i) {
    const auto s = static_cast<NormStats>(i);
    if (name == norm_stats_name(s)) return s;
  }
  unknown_name("normalization stats", name);
}

ChannelLayout channel_layout_from_name(const std::string& name) {
  for (int i = 0; i < kNumChannelLayouts; ++i) {
    const auto l = static_cast<ChannelLayout>(i);
    if (name == channel_layout_name(l)) return l;
  }
  unknown_name("channel layout", name);
}

nn::Precision precision_from_name(const std::string& name) {
  for (int i = 0; i < nn::kNumPrecisions; ++i) {
    const auto p = static_cast<nn::Precision>(i);
    if (name == nn::precision_name(p)) return p;
  }
  unknown_name("precision", name);
}

nn::UpsampleMode upsample_mode_from_name(const std::string& name) {
  for (const auto m : {nn::UpsampleMode::kNearest, nn::UpsampleMode::kBilinear})
    if (name == nn::upsample_mode_name(m)) return m;
  unknown_name("upsample mode", name);
}

TokenizerProfile tokenizer_profile_from_name(const std::string& name) {
  for (int i = 0; i < kNumTokenizerProfiles; ++i) {
    const auto p = static_cast<TokenizerProfile>(i);
    if (name == tokenizer_profile_name(p)) return p;
  }
  unknown_name("tokenizer profile", name);
}

audio::StftImpl stft_impl_from_name(const std::string& name) {
  for (const auto s : {audio::StftImpl::kReference, audio::StftImpl::kFastFixed})
    if (name == audio::stft_impl_name(s)) return s;
  unknown_name("stft impl", name);
}

std::vector<jpeg::DecoderVendor> decoder_noise_options() {
  return {jpeg::DecoderVendor::kOpenCV, jpeg::DecoderVendor::kFFmpeg,
          jpeg::DecoderVendor::kDALI};
}

std::vector<ResizeMethod> resize_noise_options() {
  std::vector<ResizeMethod> out;
  for (ResizeMethod m : all_resize_methods())
    if (m != SysNoiseConfig{}.resize) out.push_back(m);
  return out;
}

std::vector<float> crop_noise_options() { return {0.875f}; }

std::vector<ColorMode> color_noise_options() {
  return {ColorMode::kNv12RoundTrip};
}

std::vector<nn::Precision> precision_noise_options() {
  return {nn::Precision::kFP16, nn::Precision::kINT8};
}

std::vector<NormStats> norm_noise_options() {
  return {NormStats::kRoundedU8, NormStats::kHalfHalf};
}

std::vector<ChannelLayout> layout_noise_options() {
  return {ChannelLayout::kNHWCRoundTrip};
}

std::vector<ComputeBackend> backend_noise_options() {
  // The two kernel families the training default doesn't use — relative to
  // the process default, so SYSNOISE_BACKEND=blocked makes reference and
  // simd the deployment-side alternates.
  std::vector<ComputeBackend> out;
  for (int i = 0; i < kNumComputeBackends; ++i) {
    const auto b = static_cast<ComputeBackend>(i);
    if (b != SysNoiseConfig{}.backend) out.push_back(b);
  }
  return out;
}

std::vector<TokenizerProfile> tokenizer_noise_options() {
  return {TokenizerProfile::kTrunc12, TokenizerProfile::kTrunc8};
}

std::vector<float> resample_noise_options() { return {0.75f, 0.5f}; }

}  // namespace sysnoise
