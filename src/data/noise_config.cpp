#include "data/noise_config.h"

#include <sstream>

namespace sysnoise {

const char* norm_stats_name(NormStats s) {
  switch (s) {
    case NormStats::kTorchvision: return "torchvision";
    case NormStats::kRoundedU8: return "rounded-u8";
    case NormStats::kHalfHalf: return "0.5/0.5";
  }
  return "?";
}

std::string SysNoiseConfig::describe() const {
  std::ostringstream os;
  os << "decoder=" << jpeg::vendor_name(decoder)
     << " resize=" << resize_method_name(resize)
     << " color=" << color_mode_name(color)
     << " norm=" << norm_stats_name(norm)
     << " prec=" << nn::precision_name(precision)
     << " ceil=" << (ceil_mode ? "1" : "0")
     << " upsample=" << nn::upsample_mode_name(upsample)
     << " offset=" << proposal_offset;
  return os.str();
}

std::vector<jpeg::DecoderVendor> decoder_noise_options() {
  return {jpeg::DecoderVendor::kOpenCV, jpeg::DecoderVendor::kFFmpeg,
          jpeg::DecoderVendor::kDALI};
}

std::vector<ResizeMethod> resize_noise_options() {
  std::vector<ResizeMethod> out;
  for (ResizeMethod m : all_resize_methods())
    if (m != SysNoiseConfig{}.resize) out.push_back(m);
  return out;
}

std::vector<ColorMode> color_noise_options() {
  return {ColorMode::kNv12RoundTrip};
}

std::vector<nn::Precision> precision_noise_options() {
  return {nn::Precision::kFP16, nn::Precision::kINT8};
}

std::vector<NormStats> norm_noise_options() {
  return {NormStats::kRoundedU8, NormStats::kHalfHalf};
}

}  // namespace sysnoise
