// Deterministic synthetic datasets (ImageNet / COCO / CityScapes
// substitutes — see DESIGN.md §2). Samples are stored as encoded JPEG
// bitstreams so every evaluation pays the full decode path.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/box.h"
#include "image/image.h"

namespace sysnoise::data {

// ---------------- classification (ImageNet substitute) ----------------

struct ClsSample {
  std::vector<std::uint8_t> jpeg;  // encoded at "sensor" resolution
  int label = 0;
};

struct ClsDatasetSpec {
  int num_classes = 10;
  int train_per_class = 30;
  int eval_per_class = 20;
  int sensor_h = 48, sensor_w = 48;  // pre-resize resolution
  int jpeg_quality = 90;
  std::uint64_t seed = 1234;
};

struct ClsDataset {
  std::vector<ClsSample> train;
  std::vector<ClsSample> eval;
  int num_classes = 0;
};

ClsDataset make_classification_dataset(const ClsDatasetSpec& spec);

// ---------------- detection (COCO substitute) --------------------------

struct DetSample {
  std::vector<std::uint8_t> jpeg;          // sensor resolution scene
  std::vector<detect::GtBox> boxes;        // in *network input* coordinates
};

struct DetDatasetSpec {
  int num_classes = 3;  // circle / square / triangle
  int train_images = 60;
  int eval_images = 40;
  int sensor_size = 96;   // rendered resolution
  int input_size = 64;    // network resolution (boxes given at this scale)
  int min_objects = 1, max_objects = 3;
  int jpeg_quality = 92;
  std::uint64_t seed = 4321;
};

struct DetDataset {
  std::vector<DetSample> train;
  std::vector<DetSample> eval;
  int num_classes = 0;
  int input_size = 0;
};

DetDataset make_detection_dataset(const DetDatasetSpec& spec);

// ---------------- segmentation (CityScapes substitute) ------------------

struct SegSample {
  std::vector<std::uint8_t> jpeg;  // sensor resolution
  std::vector<int> mask;           // input_size x input_size labels (0 = bg)
};

struct SegDatasetSpec {
  int num_classes = 4;  // background + 3 shape classes
  int train_images = 50;
  int eval_images = 30;
  int sensor_size = 96;  // multiples of 3 so masks align exactly at 2/3 scale
  int input_size = 64;
  int jpeg_quality = 92;
  std::uint64_t seed = 9876;
};

struct SegDataset {
  std::vector<SegSample> train;
  std::vector<SegSample> eval;
  int num_classes = 0;
  int input_size = 0;
};

SegDataset make_segmentation_dataset(const SegDatasetSpec& spec);

}  // namespace sysnoise::data
