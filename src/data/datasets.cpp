#include "data/datasets.h"

#include <cmath>

#include "image/synthetic.h"
#include "jpeg/codec.h"
#include "tensor/rng.h"

namespace sysnoise::data {

namespace {

ClsSample render_cls_sample(int label, int num_classes, int h, int w, int quality,
                            Rng& rng) {
  TextureParams p = class_texture(label, num_classes, rng);
  ImageU8 img = render_texture(p, h, w, rng);
  add_pixel_noise(img, 5.0f, rng);
  ClsSample s;
  s.label = label;
  s.jpeg = jpeg::encode(img, {.quality = quality, .chroma = jpeg::ChromaMode::k420});
  return s;
}

}  // namespace

ClsDataset make_classification_dataset(const ClsDatasetSpec& spec) {
  Rng rng(spec.seed);
  ClsDataset ds;
  ds.num_classes = spec.num_classes;
  for (int c = 0; c < spec.num_classes; ++c)
    for (int i = 0; i < spec.train_per_class; ++i)
      ds.train.push_back(render_cls_sample(c, spec.num_classes, spec.sensor_h,
                                           spec.sensor_w, spec.jpeg_quality, rng));
  for (int c = 0; c < spec.num_classes; ++c)
    for (int i = 0; i < spec.eval_per_class; ++i)
      ds.eval.push_back(render_cls_sample(c, spec.num_classes, spec.sensor_h,
                                          spec.sensor_w, spec.jpeg_quality, rng));
  // Shuffle training order (deterministic).
  const auto perm = rng.permutation(static_cast<int>(ds.train.size()));
  std::vector<ClsSample> shuffled;
  shuffled.reserve(ds.train.size());
  for (int idx : perm) shuffled.push_back(std::move(ds.train[static_cast<std::size_t>(idx)]));
  ds.train = std::move(shuffled);
  return ds;
}

namespace {

// One detection/segmentation scene. Positions/radii snapped to multiples of
// `snap` so scaled masks align exactly.
struct Scene {
  ImageU8 image;
  std::vector<detect::GtBox> boxes;   // sensor coordinates
  std::vector<int> mask;              // sensor-resolution labels
};

Scene render_scene(int sensor, int num_classes, int min_obj, int max_obj, Rng& rng,
                   int snap) {
  Scene sc;
  Rng bg_rng = rng.split();
  TextureParams bg = class_texture(rng.uniform_int(num_classes), num_classes + 4, bg_rng);
  // Muted dark background so objects stand out (COCO objects are salient).
  bg.contrast *= 0.25f;
  for (float& v : bg.rgb) v *= 0.45f;
  for (float& v : bg.bg) v *= 0.45f;
  sc.image = render_texture(bg, sensor, sensor, bg_rng);
  sc.mask.assign(static_cast<std::size_t>(sensor) * sensor, 0);

  const int n_obj = min_obj + rng.uniform_int(max_obj - min_obj + 1);
  for (int i = 0; i < n_obj; ++i) {
    const int kind_idx = rng.uniform_int(kNumShapeKinds);
    const auto kind = static_cast<ShapeKind>(kind_idx);
    const int radius = snap * (3 + rng.uniform_int(4));          // 9..18 @96
    const int cy = radius + snap * rng.uniform_int((sensor - 2 * radius) / snap);
    const int cx = radius + snap * rng.uniform_int((sensor - 2 * radius) / snap);
    Rng tex_rng = rng.split();
    // Bright near-solid fill with a strongly class-keyed hue: class signal
    // is color+shape, clearly separable from the muted background.
    TextureParams tex;
    const float hue = 2.09f * static_cast<float>(kind_idx);  // 120 deg apart
    tex.rgb[0] = 150.0f + 100.0f * std::cos(hue) + tex_rng.uniform_f(-10.0f, 10.0f);
    tex.rgb[1] = 150.0f + 100.0f * std::cos(hue + 2.09f) + tex_rng.uniform_f(-10.0f, 10.0f);
    tex.rgb[2] = 150.0f + 100.0f * std::cos(hue + 4.19f) + tex_rng.uniform_f(-10.0f, 10.0f);
    for (int ch = 0; ch < 3; ++ch) tex.bg[ch] = tex.rgb[ch] * 0.6f;
    tex.pattern = kind_idx % 4;
    tex.freq_x = 0.15f + tex_rng.uniform_f(-0.02f, 0.02f);
    tex.freq_y = 0.08f;
    tex.phase = tex_rng.uniform_f(0.0f, 6.28f);
    tex.contrast = 1.0f;
    draw_shape(sc.image, kind, cy, cx, radius, tex, tex_rng);
    draw_shape_mask(sc.mask, sensor, sensor, kind, cy, cx, radius, kind_idx + 1);
    sc.boxes.push_back({{static_cast<float>(cx - radius), static_cast<float>(cy - radius),
                         static_cast<float>(cx + radius), static_cast<float>(cy + radius)},
                        kind_idx});
  }
  add_pixel_noise(sc.image, 2.0f, rng);
  return sc;
}

}  // namespace

DetDataset make_detection_dataset(const DetDatasetSpec& spec) {
  Rng rng(spec.seed);
  DetDataset ds;
  ds.num_classes = spec.num_classes;
  ds.input_size = spec.input_size;
  const float scale =
      static_cast<float>(spec.input_size) / static_cast<float>(spec.sensor_size);
  auto emit = [&](std::vector<DetSample>& out, int count) {
    for (int i = 0; i < count; ++i) {
      Scene sc = render_scene(spec.sensor_size, spec.num_classes, spec.min_objects,
                              spec.max_objects, rng, /*snap=*/3);
      DetSample s;
      s.jpeg = jpeg::encode(sc.image,
                            {.quality = spec.jpeg_quality, .chroma = jpeg::ChromaMode::k420});
      for (auto g : sc.boxes) {
        g.box.x1 *= scale;
        g.box.y1 *= scale;
        g.box.x2 *= scale;
        g.box.y2 *= scale;
        s.boxes.push_back(g);
      }
      out.push_back(std::move(s));
    }
  };
  emit(ds.train, spec.train_images);
  emit(ds.eval, spec.eval_images);
  return ds;
}

SegDataset make_segmentation_dataset(const SegDatasetSpec& spec) {
  Rng rng(spec.seed);
  SegDataset ds;
  ds.num_classes = spec.num_classes;
  ds.input_size = spec.input_size;
  // sensor 96 -> input 64: exact 2/3 scale; scene geometry snapped to 3 so
  // mask downsampling is exact nearest sampling.
  auto emit = [&](std::vector<SegSample>& out, int count) {
    for (int i = 0; i < count; ++i) {
      Scene sc = render_scene(spec.sensor_size, spec.num_classes - 1, 1, 3, rng, 3);
      SegSample s;
      s.jpeg = jpeg::encode(sc.image,
                            {.quality = spec.jpeg_quality, .chroma = jpeg::ChromaMode::k420});
      s.mask.assign(static_cast<std::size_t>(spec.input_size) * spec.input_size, 0);
      for (int y = 0; y < spec.input_size; ++y)
        for (int x = 0; x < spec.input_size; ++x) {
          const int sy = y * spec.sensor_size / spec.input_size;
          const int sx = x * spec.sensor_size / spec.input_size;
          s.mask[static_cast<std::size_t>(y) * spec.input_size + x] =
              sc.mask[static_cast<std::size_t>(sy) * spec.sensor_size + sx];
        }
      out.push_back(std::move(s));
    }
  };
  emit(ds.train, spec.train_images);
  emit(ds.eval, spec.eval_images);
  return ds;
}

}  // namespace sysnoise::data
