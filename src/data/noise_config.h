// The full SysNoise configuration — one knob per noise type of Table 1,
// grouped by pipeline stage and modality:
//
//   pre        : image pre-processing (decode, resize, crop, color, norm,
//                layout) — classification/detection/segmentation only.
//   inference  : model-inference knobs shared by every modality (precision,
//                ceil mode, upsample interpolation, compute backend).
//   post       : detection post-processing (proposal offset).
//   nlp        : text tokenization (deployment tokenizer/vocab mismatch).
//   audio      : TTS front-end (resample rate, STFT window/hop/impl).
//
// A trained model is associated with the *training* configuration (the
// PyTorch-like defaults below); deployment flips one or more knobs. The
// benchmark measures the metric difference between the two.
//
// Every knob is described by one entry in knob_registry() — the single
// source of truth that drives describe(), to_json() and from_json(), so a
// new knob cannot update one surface and silently miss another (a
// completeness test walks the registry).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "audio/stft.h"
#include "color/yuv.h"
#include "jpeg/codec.h"
#include "nn/tape.h"
#include "resize/resize.h"
#include "util/json.h"

namespace sysnoise {

// Normalization-statistics profile: which per-channel mean/std the deployed
// pipeline divides by. Training uses the float torchvision constants; real
// deployment stacks frequently substitute integer-quantized means (Caffe,
// TFLite converters bake round(mean*255)) or the generic 0.5/0.5 stats many
// mobile runtimes default to.
enum class NormStats {
  kTorchvision = 0,  // training default: the PipelineSpec floats, verbatim
  kRoundedU8 = 1,    // round(mean*255)/255, round(std*255)/255
  kHalfHalf = 2,     // mean = std = 0.5 for every channel
};
constexpr int kNumNormStats = 3;
const char* norm_stats_name(NormStats s);

// Activation-layout profile of the deployed runtime: training frameworks
// feed the network NCHW float tensors directly; channels-last stacks
// (TFLite, TensorRT tensor-core paths, most mobile runtimes) round-trip the
// input through an NHWC staging buffer materialized in FP16, perturbing
// every element by one half-precision rounding (tensor/layout.h).
enum class ChannelLayout {
  kNCHW = 0,           // training default: no staging copy
  kNHWCRoundTrip = 1,  // NCHW -> NHWC(FP16) -> NCHW round trip
};
constexpr int kNumChannelLayouts = 2;
const char* channel_layout_name(ChannelLayout l);

// Deployment-tokenizer profile (NLP). Training tokenizes with the full
// symbol alphabet (nlp/tasks.h); exported deployment tokenizers frequently
// ship a truncated symbol vocabulary (pruned embeddings, smaller sentence-
// piece model), folding out-of-range symbols onto in-range ids while the
// structural separator tokens survive intact.
enum class TokenizerProfile {
  kTraining = 0,  // full symbol vocabulary, byte-identical tokenization
  kTrunc12 = 1,   // symbol ids folded modulo a 12-symbol vocabulary
  kTrunc8 = 2,    // symbol ids folded modulo an 8-symbol vocabulary
};
constexpr int kNumTokenizerProfiles = 3;
const char* tokenizer_profile_name(TokenizerProfile p);
// Symbol-vocabulary limit the profile truncates to (kSymbols for training).
int tokenizer_profile_symbol_limit(TokenizerProfile p);

struct SysNoiseConfig {
  // --- pre: image pre-processing -------------------------------------
  jpeg::DecoderVendor decoder = jpeg::DecoderVendor::kPillow;
  ResizeMethod resize = ResizeMethod::kPillowBilinear;
  // Crop geometry: the fraction of the final side length the resize
  // targets before a center crop. Training resizes straight to the model
  // input (fraction 1.0); deployment stacks that keep the torchvision
  // resize-then-center-crop convention land on 0.875 (224/256).
  float crop_fraction = 1.0f;
  ColorMode color = ColorMode::kDirectRGB;
  NormStats norm = NormStats::kTorchvision;
  ChannelLayout layout = ChannelLayout::kNCHW;
  // --- inference: model-inference knobs (all modalities) --------------
  nn::Precision precision = nn::Precision::kFP32;
  bool ceil_mode = false;
  nn::UpsampleMode upsample = nn::UpsampleMode::kNearest;
  // GEMM/conv kernel family (tensor/backend.h). The training side runs the
  // process default ($SYSNOISE_BACKEND, reference when unset); deployment
  // swapping in a different kernel family is the hardware/implementation
  // noise of Table 1 measured on our own engine.
  ComputeBackend backend = default_backend();
  // --- post: detection post-processing --------------------------------
  float proposal_offset = 0.0f;  // ALIGNED_FLAG.offset: 0 or 1
  // --- nlp: text tokenization -----------------------------------------
  TokenizerProfile tokenizer = TokenizerProfile::kTraining;
  // --- audio: TTS front-end -------------------------------------------
  // Resample-rate mismatch: deployment resamples the waveform to
  // ratio * native rate and back (linear interpolation both ways), the
  // audible cousin of the NV12 color round trip. 1.0 = no round trip.
  float resample_ratio = 1.0f;
  // STFT operator implementation (audio/stft.h): reference double DFT at
  // training time vs the fast fixed-point FFT a DSP vocoder ships.
  audio::StftImpl stft_impl = audio::StftImpl::kReference;
  // STFT window length the deployment front-end tapers with, zero-padded
  // into the spec's n_fft FFT frame. 0 = use the spec's n_fft (training).
  int stft_window = 0;
  // STFT hop the deployment front-end frames with; the resulting frame
  // axis is linearly resampled back to the training frame count so shapes
  // stay fixed. 0 = use the spec's hop (training).
  int stft_hop = 0;

  // The fixed training-side configuration (Sec. 4.1: "train with one fixed
  // setting, commonly used in the PyTorch framework").
  static SysNoiseConfig training_default() { return SysNoiseConfig{}; }

  // Populate an InferenceCtx with the model-inference knobs.
  nn::InferenceCtx inference_ctx(nn::ActRanges* ranges) const {
    nn::InferenceCtx ctx;
    ctx.precision = precision;
    ctx.ceil_mode = ceil_mode;
    ctx.upsample = upsample;
    ctx.backend = backend;
    ctx.ranges = ranges;
    return ctx;
  }

  std::string describe() const;

  // Lossless JSON round trip (enums by name, floats with round-trip
  // precision) — the unit SweepPlans and shard result files are built from.
  util::Json to_json() const;
  static SysNoiseConfig from_json(const util::Json& j);
};

// One registry entry per SysNoiseConfig knob: the json/describe keys, the
// stage group it documents, and the three per-knob operations. describe(),
// to_json() and from_json() iterate this table — nothing else enumerates
// the knob list.
struct KnobInfo {
  const char* json_key;      // field name in to_json()/from_json()
  const char* describe_key;  // "key=" prefix in describe()
  const char* group;         // "pre" | "inference" | "post" | "nlp" | "audio"
  // Knobs added after the first serialized plans must tolerate absence in
  // from_json (legacy plan/shard files keep working).
  bool legacy_optional;
  // Stream the knob's describe() value (the stream carries max_digits10
  // float precision).
  std::function<void(const SysNoiseConfig&, std::ostream&)> describe_value;
  std::function<void(const SysNoiseConfig&, util::Json&)> write_json;
  // Receives the whole JSON object; reads this knob's field.
  std::function<void(SysNoiseConfig&, const util::Json&)> read_json;
};
const std::vector<KnobInfo>& knob_registry();

// Name -> enum parsers, inverses of the *_name() functions above and in the
// jpeg/resize/color/nn modules. Throw std::invalid_argument on unknown
// names so a corrupted plan fails loudly instead of evaluating the wrong
// deployment config.
jpeg::DecoderVendor decoder_vendor_from_name(const std::string& name);
ResizeMethod resize_method_from_name(const std::string& name);
ColorMode color_mode_from_name(const std::string& name);
NormStats norm_stats_from_name(const std::string& name);
ChannelLayout channel_layout_from_name(const std::string& name);
nn::Precision precision_from_name(const std::string& name);
nn::UpsampleMode upsample_mode_from_name(const std::string& name);
TokenizerProfile tokenizer_profile_from_name(const std::string& name);
audio::StftImpl stft_impl_from_name(const std::string& name);

// Option sets for each noise axis, excluding the training default (these
// are the "categories" counted in Table 1).
std::vector<jpeg::DecoderVendor> decoder_noise_options();   // 3 alternates
std::vector<ResizeMethod> resize_noise_options();           // 10 alternates
std::vector<float> crop_noise_options();                    // 0.875 center crop
std::vector<ColorMode> color_noise_options();               // 1 alternate (NV12)
std::vector<nn::Precision> precision_noise_options();       // FP16, INT8
std::vector<NormStats> norm_noise_options();                // rounded-u8, 0.5/0.5
std::vector<ChannelLayout> layout_noise_options();          // NHWC round trip
std::vector<ComputeBackend> backend_noise_options();        // the 2 non-default kernels
std::vector<TokenizerProfile> tokenizer_noise_options();    // trunc-12, trunc-8
std::vector<float> resample_noise_options();                // 0.75, 0.5 round trips

}  // namespace sysnoise
