// The full SysNoise configuration — one knob per noise type of Table 1.
//
// A trained model is associated with the *training* configuration (the
// PyTorch-like defaults below); deployment flips one or more knobs. The
// benchmark measures the metric difference between the two.
#pragma once

#include <string>
#include <vector>

#include "color/yuv.h"
#include "jpeg/codec.h"
#include "nn/tape.h"
#include "resize/resize.h"

namespace sysnoise {

struct SysNoiseConfig {
  // Pre-processing.
  jpeg::DecoderVendor decoder = jpeg::DecoderVendor::kPillow;
  ResizeMethod resize = ResizeMethod::kPillowBilinear;
  ColorMode color = ColorMode::kDirectRGB;
  // Model inference.
  nn::Precision precision = nn::Precision::kFP32;
  bool ceil_mode = false;
  nn::UpsampleMode upsample = nn::UpsampleMode::kNearest;
  // Post-processing (detection only).
  float proposal_offset = 0.0f;  // ALIGNED_FLAG.offset: 0 or 1

  // The fixed training-side configuration (Sec. 4.1: "train with one fixed
  // setting, commonly used in the PyTorch framework").
  static SysNoiseConfig training_default() { return SysNoiseConfig{}; }

  // Populate an InferenceCtx with the model-inference knobs.
  nn::InferenceCtx inference_ctx(nn::ActRanges* ranges) const {
    nn::InferenceCtx ctx;
    ctx.precision = precision;
    ctx.ceil_mode = ceil_mode;
    ctx.upsample = upsample;
    ctx.ranges = ranges;
    return ctx;
  }

  std::string describe() const;
};

// Option sets for each noise axis, excluding the training default (these
// are the "categories" counted in Table 1).
std::vector<jpeg::DecoderVendor> decoder_noise_options();   // 3 alternates
std::vector<ResizeMethod> resize_noise_options();           // 10 alternates
std::vector<ColorMode> color_noise_options();               // 1 alternate (NV12)
std::vector<nn::Precision> precision_noise_options();       // FP16, INT8

}  // namespace sysnoise
