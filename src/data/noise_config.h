// The full SysNoise configuration — one knob per noise type of Table 1.
//
// A trained model is associated with the *training* configuration (the
// PyTorch-like defaults below); deployment flips one or more knobs. The
// benchmark measures the metric difference between the two.
#pragma once

#include <string>
#include <vector>

#include "color/yuv.h"
#include "jpeg/codec.h"
#include "nn/tape.h"
#include "resize/resize.h"
#include "util/json.h"

namespace sysnoise {

// Normalization-statistics profile: which per-channel mean/std the deployed
// pipeline divides by. Training uses the float torchvision constants; real
// deployment stacks frequently substitute integer-quantized means (Caffe,
// TFLite converters bake round(mean*255)) or the generic 0.5/0.5 stats many
// mobile runtimes default to.
enum class NormStats {
  kTorchvision = 0,  // training default: the PipelineSpec floats, verbatim
  kRoundedU8 = 1,    // round(mean*255)/255, round(std*255)/255
  kHalfHalf = 2,     // mean = std = 0.5 for every channel
};
constexpr int kNumNormStats = 3;
const char* norm_stats_name(NormStats s);

// Activation-layout profile of the deployed runtime: training frameworks
// feed the network NCHW float tensors directly; channels-last stacks
// (TFLite, TensorRT tensor-core paths, most mobile runtimes) round-trip the
// input through an NHWC staging buffer materialized in FP16, perturbing
// every element by one half-precision rounding (tensor/layout.h).
enum class ChannelLayout {
  kNCHW = 0,           // training default: no staging copy
  kNHWCRoundTrip = 1,  // NCHW -> NHWC(FP16) -> NCHW round trip
};
constexpr int kNumChannelLayouts = 2;
const char* channel_layout_name(ChannelLayout l);

struct SysNoiseConfig {
  // Pre-processing.
  jpeg::DecoderVendor decoder = jpeg::DecoderVendor::kPillow;
  ResizeMethod resize = ResizeMethod::kPillowBilinear;
  // Crop geometry: the fraction of the final side length the resize
  // targets before a center crop. Training resizes straight to the model
  // input (fraction 1.0); deployment stacks that keep the torchvision
  // resize-then-center-crop convention land on 0.875 (224/256).
  float crop_fraction = 1.0f;
  ColorMode color = ColorMode::kDirectRGB;
  NormStats norm = NormStats::kTorchvision;
  ChannelLayout layout = ChannelLayout::kNCHW;
  // Model inference.
  nn::Precision precision = nn::Precision::kFP32;
  bool ceil_mode = false;
  nn::UpsampleMode upsample = nn::UpsampleMode::kNearest;
  // GEMM/conv kernel family (tensor/backend.h). The training side runs the
  // process default ($SYSNOISE_BACKEND, reference when unset); deployment
  // swapping in a different kernel family is the hardware/implementation
  // noise of Table 1 measured on our own engine.
  ComputeBackend backend = default_backend();
  // Post-processing (detection only).
  float proposal_offset = 0.0f;  // ALIGNED_FLAG.offset: 0 or 1

  // The fixed training-side configuration (Sec. 4.1: "train with one fixed
  // setting, commonly used in the PyTorch framework").
  static SysNoiseConfig training_default() { return SysNoiseConfig{}; }

  // Populate an InferenceCtx with the model-inference knobs.
  nn::InferenceCtx inference_ctx(nn::ActRanges* ranges) const {
    nn::InferenceCtx ctx;
    ctx.precision = precision;
    ctx.ceil_mode = ceil_mode;
    ctx.upsample = upsample;
    ctx.backend = backend;
    ctx.ranges = ranges;
    return ctx;
  }

  std::string describe() const;

  // Lossless JSON round trip (enums by name, floats with round-trip
  // precision) — the unit SweepPlans and shard result files are built from.
  util::Json to_json() const;
  static SysNoiseConfig from_json(const util::Json& j);
};

// Name -> enum parsers, inverses of the *_name() functions above and in the
// jpeg/resize/color/nn modules. Throw std::invalid_argument on unknown
// names so a corrupted plan fails loudly instead of evaluating the wrong
// deployment config.
jpeg::DecoderVendor decoder_vendor_from_name(const std::string& name);
ResizeMethod resize_method_from_name(const std::string& name);
ColorMode color_mode_from_name(const std::string& name);
NormStats norm_stats_from_name(const std::string& name);
ChannelLayout channel_layout_from_name(const std::string& name);
nn::Precision precision_from_name(const std::string& name);
nn::UpsampleMode upsample_mode_from_name(const std::string& name);

// Option sets for each noise axis, excluding the training default (these
// are the "categories" counted in Table 1).
std::vector<jpeg::DecoderVendor> decoder_noise_options();   // 3 alternates
std::vector<ResizeMethod> resize_noise_options();           // 10 alternates
std::vector<float> crop_noise_options();                    // 0.875 center crop
std::vector<ColorMode> color_noise_options();               // 1 alternate (NV12)
std::vector<nn::Precision> precision_noise_options();       // FP16, INT8
std::vector<NormStats> norm_noise_options();                // rounded-u8, 0.5/0.5
std::vector<ChannelLayout> layout_noise_options();          // NHWC round trip
std::vector<ComputeBackend> backend_noise_options();        // the 2 non-default kernels

}  // namespace sysnoise
