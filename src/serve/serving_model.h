// The model seam the inference server batches requests through.
//
// A ServingModel answers micro-batches of evaluation-set sample indices
// with one prediction per request. The contract that makes serving
// measurable against the offline sweep is per-sample batch independence:
// a sample's prediction must be bit-identical no matter which other
// requests share its micro-batch — the same property the cross-config
// batched forward engine pins (tensor: stack_parts; BatchedRealModels
// tests), extended here from "configs stacked along the batch axis" to
// "arbitrary request mixes stacked along the batch axis". Under that
// contract, served accuracy over a trace that covers the evaluation set
// equals the offline sweep metric bit-exactly, whatever batches the
// dynamic batcher happened to form.
//
// Two implementations: ClassifierServingModel binds a trained zoo
// classifier plus a deployment config (the stage-1 pre-processing for
// every sample is materialized once at construction — the serving
// equivalent of a warm disk StageCache — and each micro-batch stacks the
// requested samples' tensors through one forward pass under the config's
// backend); SyntheticServingModel is the model-free stand-in for engine
// tests and simulations, deterministic from its seed with a tunable
// per-batch cost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/noise_config.h"
#include "data/pipeline.h"
#include "models/zoo.h"

namespace sysnoise::serve {

class ServingModel {
 public:
  virtual ~ServingModel() = default;
  virtual const std::string& name() const = 0;
  virtual int num_samples() const = 0;
  // One prediction per requested sample (duplicates allowed, any order).
  // Must be thread-safe and per-sample batch-independent (see above).
  virtual std::vector<int> predict(const std::vector<int>& samples) const = 0;
  virtual bool correct(int sample, int prediction) const = 0;
};

class ClassifierServingModel : public ServingModel {
 public:
  // `tc` and `eval` must outlive the model. Pre-processes every sample
  // under `cfg` up front (one [1,3,H,W] tensor each).
  ClassifierServingModel(models::TrainedClassifier& tc,
                         const std::vector<data::ClsSample>& eval,
                         const PipelineSpec& spec, const SysNoiseConfig& cfg);

  const std::string& name() const override { return tc_.name; }
  int num_samples() const override { return static_cast<int>(eval_.size()); }
  std::vector<int> predict(const std::vector<int>& samples) const override;
  bool correct(int sample, int prediction) const override;

  const SysNoiseConfig& config() const { return cfg_; }

  // The offline sweep baseline for this deployment config: the exact
  // eval_classifier_batches metric (production batch layout, bs=16) the
  // table benches report — what served accuracy is diffed against.
  double offline_accuracy() const;

 private:
  models::TrainedClassifier& tc_;
  const std::vector<data::ClsSample>& eval_;
  PipelineSpec spec_;
  SysNoiseConfig cfg_;
  std::vector<Tensor> inputs_;  // per-sample stage-1 products, [1,3,H,W]
};

// Deterministic model-free stand-in: prediction = FNV-1a(sample, seed) into
// `num_classes`, "labels" drawn the same way from an independent stream, an
// optional spin cost per batch (base + per-item rounds) so wall-clock
// serving paths have something to burn.
class SyntheticServingModel : public ServingModel {
 public:
  SyntheticServingModel(int num_samples, int num_classes = 10,
                        std::uint64_t seed = 1, int base_spin_rounds = 0,
                        int item_spin_rounds = 0);

  const std::string& name() const override { return name_; }
  int num_samples() const override { return num_samples_; }
  std::vector<int> predict(const std::vector<int>& samples) const override;
  bool correct(int sample, int prediction) const override;

 private:
  std::string name_ = "synthetic-serving";
  int num_samples_;
  int num_classes_;
  std::uint64_t seed_;
  int base_spin_rounds_;
  int item_spin_rounds_;
  std::vector<int> labels_;
};

}  // namespace sysnoise::serve
