// Seeded synthetic request traces for the serving benchmark.
//
// A TraceSpec describes an open-loop arrival process as a sequence of
// phases — Poisson at a constant rate, deterministic bursts, and linear
// rate ramps — plus how requests map onto the evaluation-set samples they
// ask the server to classify. generate_trace() expands a spec into the
// concrete request list, fully deterministic from the spec (the only
// randomness is the spec's own seed through the repo's xoshiro Rng, so the
// same spec yields byte-identical traces on every run). Specs and traces
// both round-trip through util/json.h, so a trace can be generated once,
// committed or shipped to another machine, and replayed bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace sysnoise::serve {

// One request: an arrival instant on the trace's own timeline plus the
// evaluation-set sample it asks for. `id` is the arrival index.
struct TraceRequest {
  int id = 0;
  double arrival_ms = 0.0;
  int sample = 0;
};

enum class PhaseKind {
  kPoisson = 0,  // exponential inter-arrivals at rate_rps
  kBurst = 1,    // burst_size simultaneous arrivals every burst_every_ms
  kRamp = 2,     // Poisson with the rate ramping rate_rps -> end_rate_rps
};
const char* phase_kind_name(PhaseKind k);
// Throws std::invalid_argument on unknown names (corrupted spec files must
// fail loudly, same contract as the noise-config parsers).
PhaseKind phase_kind_from_name(const std::string& name);

struct TracePhase {
  PhaseKind kind = PhaseKind::kPoisson;
  double duration_ms = 1000.0;
  double rate_rps = 100.0;      // kPoisson rate; kRamp start rate
  double end_rate_rps = 0.0;    // kRamp final rate
  double burst_every_ms = 100.0;  // kBurst tick period
  int burst_size = 10;            // kBurst arrivals per tick

  util::Json to_json() const;
  static TracePhase from_json(const util::Json& j);
};

struct TraceSpec {
  std::uint64_t seed = 1;
  // Samples are assigned round-robin (request id modulo num_samples) by
  // default, so a trace whose length is a multiple of num_samples covers
  // the evaluation set with exactly equal counts — the layout the
  // served-vs-offline accuracy identity depends on. random_samples draws
  // them uniformly from the seed instead (more adversarial batching mix).
  int num_samples = 1;
  bool random_samples = false;
  std::vector<TracePhase> phases;

  // Sum of phase durations.
  double duration_ms() const;

  util::Json to_json() const;
  static TraceSpec from_json(const util::Json& j);
};

// Expand the spec into its arrival list: phases back to back, arrivals
// non-decreasing in time, ids dense in arrival order.
std::vector<TraceRequest> generate_trace(const TraceSpec& spec);

// Concrete-trace JSON round trip (for replaying a trace that was generated
// elsewhere or hand-edited; floats keep round-trip precision).
util::Json trace_to_json(const std::vector<TraceRequest>& trace);
std::vector<TraceRequest> trace_from_json(const util::Json& j);

// Convenience: a single-phase Poisson spec, the common case.
TraceSpec poisson_spec(std::uint64_t seed, double duration_ms, double rate_rps,
                       int num_samples);

}  // namespace sysnoise::serve
