#include "serve/serving_model.h"

#include <stdexcept>

#include "models/train.h"
#include "nn/tape.h"
#include "tensor/tensor.h"

namespace sysnoise::serve {

ClassifierServingModel::ClassifierServingModel(
    models::TrainedClassifier& tc, const std::vector<data::ClsSample>& eval,
    const PipelineSpec& spec, const SysNoiseConfig& cfg)
    : tc_(tc), eval_(eval), spec_(spec), cfg_(cfg) {
  inputs_.reserve(eval_.size());
  for (const data::ClsSample& s : eval_)
    inputs_.push_back(preprocess(s.jpeg, cfg_, spec_));
}

std::vector<int> ClassifierServingModel::predict(
    const std::vector<int>& samples) const {
  std::vector<const Tensor*> parts;
  parts.reserve(samples.size());
  for (const int s : samples) {
    if (s < 0 || s >= num_samples())
      throw std::out_of_range("serving request for unknown sample " +
                              std::to_string(s));
    parts.push_back(&inputs_[static_cast<std::size_t>(s)]);
  }
  const Tensor input = stack_parts(parts);
  nn::Tape t;
  t.ctx = cfg_.inference_ctx(&tc_.ranges);
  nn::Node* logits = t.input(input);
  logits = tc_.model->forward(t, logits, nn::BnMode::kEval);
  // The exact argmax of the offline evaluation loops (first max wins), so a
  // served prediction can never disagree with the sweep over tie-breaking.
  std::vector<int> preds;
  preds.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    int best = 0;
    for (int c = 1; c < logits->value.dim(1); ++c)
      if (logits->value.at2(static_cast<int>(i), c) >
          logits->value.at2(static_cast<int>(i), best))
        best = c;
    preds.push_back(best);
  }
  return preds;
}

bool ClassifierServingModel::correct(int sample, int prediction) const {
  return prediction == eval_[static_cast<std::size_t>(sample)].label;
}

double ClassifierServingModel::offline_accuracy() const {
  const auto batches =
      models::preprocess_cls_batches(eval_, cfg_, spec_, /*batch_size=*/16);
  return models::eval_classifier_batches(*tc_.model, batches, eval_, cfg_,
                                         &tc_.ranges);
}

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

SyntheticServingModel::SyntheticServingModel(int num_samples, int num_classes,
                                             std::uint64_t seed,
                                             int base_spin_rounds,
                                             int item_spin_rounds)
    : num_samples_(num_samples),
      num_classes_(num_classes),
      seed_(seed),
      base_spin_rounds_(base_spin_rounds),
      item_spin_rounds_(item_spin_rounds) {
  labels_.reserve(static_cast<std::size_t>(num_samples));
  for (int s = 0; s < num_samples; ++s)
    labels_.push_back(static_cast<int>(
        fnv_mix(fnv_mix(0xcbf29ce484222325ull, seed_ ^ 0x5bd1e995u),
                static_cast<std::uint64_t>(s)) %
        static_cast<std::uint64_t>(num_classes)));
}

std::vector<int> SyntheticServingModel::predict(
    const std::vector<int>& samples) const {
  const int rounds =
      base_spin_rounds_ +
      item_spin_rounds_ * static_cast<int>(samples.size());
  volatile std::uint64_t sink = 0;
  for (int r = 0; r < rounds; ++r)
    sink = fnv_mix(sink, static_cast<std::uint64_t>(r));
  std::vector<int> preds;
  preds.reserve(samples.size());
  for (const int s : samples)
    preds.push_back(static_cast<int>(
        fnv_mix(fnv_mix(0xcbf29ce484222325ull, seed_),
                static_cast<std::uint64_t>(s)) %
        static_cast<std::uint64_t>(num_classes_)));
  return preds;
}

bool SyntheticServingModel::correct(int sample, int prediction) const {
  return prediction == labels_[static_cast<std::size_t>(sample)];
}

}  // namespace sysnoise::serve
