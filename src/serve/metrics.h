// Serving-side measurement primitives: mergeable fixed-bucket latency
// histograms and min/mean/max gauges.
//
// The histogram's bucket bounds are a fixed, process-wide geometric grid
// (quarter-octave steps from 1 microsecond up, plus an overflow bucket), so
// histograms recorded by different workers, replay cells or processes merge
// by adding counts — no rebinning, no information loss relative to either
// input. Quantiles are reported as exact bucket upper bounds (the bound of
// the bucket holding the ceil(q * total)-th smallest sample), which makes
// p50/p95/p99 deterministic, merge-stable, and bit-exact across runs: the
// same recorded multiset always yields the same quantile, and
// merge(a, b).quantile == concat(a, b).quantile by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "util/json.h"

namespace sysnoise::serve {

class LatencyHistogram {
 public:
  LatencyHistogram();

  // The shared bucket grid: bucket i covers (bounds[i-1], bounds[i]] with
  // bounds[0] the smallest, plus one overflow bucket above the last bound.
  static const std::vector<double>& bucket_bounds();

  void record(double ms);
  // Adds `other`'s counts bucket-for-bucket (same fixed grid by
  // construction).
  void merge(const LatencyHistogram& other);

  std::size_t total() const { return total_; }
  double sum_ms() const { return sum_ms_; }
  double mean_ms() const { return total_ == 0 ? 0.0 : sum_ms_ / total_; }

  // Exact quantile bucket bound: the upper bound of the bucket containing
  // the ceil(q * total)-th smallest recorded value (q clamped to (0, 1]).
  // Returns 0 on an empty histogram. The overflow bucket reports the last
  // finite bound.
  double quantile_bound(double q) const;

  const std::vector<std::size_t>& counts() const { return counts_; }

  // {"total": n, "sum_ms": s, "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
  //  "buckets": [{"le_ms": bound, "count": c}, ...]} — only non-empty
  // buckets are listed, so the dump stays compact and merge-order-free.
  util::Json to_json() const;

 private:
  std::vector<std::size_t> counts_;  // bucket_bounds().size() + 1 (overflow)
  std::size_t total_ = 0;
  double sum_ms_ = 0.0;
};

// Min/mean/max over a sampled series (queue depths at admission, batch
// occupancy per dispatch). Mergeable like the histogram.
struct GaugeStats {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double v);
  void merge(const GaugeStats& other);
  double mean() const { return count == 0 ? 0.0 : sum / count; }

  util::Json to_json() const;
};

}  // namespace sysnoise::serve
