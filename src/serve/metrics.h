// Serving-side measurement primitives — now shared process-wide.
//
// LatencyHistogram and GaugeStats originated here but graduated into the
// unified observability layer (obs/metrics.h) so every subsystem — staged
// executors, the dist runtime, the sweep service, serving — records into
// one mergeable vocabulary. This header re-exports them under the old
// names so serving code and tests keep compiling unchanged; see
// obs/metrics.h for the contracts (fixed quarter-octave bucket grid,
// merge-by-adding-counts, exact bucket-bound quantiles).
#pragma once

#include "obs/metrics.h"

namespace sysnoise::serve {

using obs::GaugeStats;
using obs::LatencyHistogram;

}  // namespace sysnoise::serve
