#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace sysnoise::serve {

namespace {

// Quarter-octave geometric grid from 1 microsecond to ~2 minutes: bound[i] =
// 0.001 * 2^(i/4) ms. 108 bounds puts the last finite one at
// 0.001 * 2^26.75 ≈ 1.1e5 ms; anything slower lands in the overflow bucket.
constexpr int kNumBounds = 108;

std::vector<double> make_bounds() {
  std::vector<double> bounds;
  bounds.reserve(kNumBounds);
  for (int i = 0; i < kNumBounds; ++i)
    bounds.push_back(0.001 * std::pow(2.0, static_cast<double>(i) / 4.0));
  return bounds;
}

}  // namespace

const std::vector<double>& LatencyHistogram::bucket_bounds() {
  static const std::vector<double> bounds = make_bounds();
  return bounds;
}

LatencyHistogram::LatencyHistogram()
    : counts_(bucket_bounds().size() + 1, 0) {}

void LatencyHistogram::record(double ms) {
  const auto& bounds = bucket_bounds();
  // First bucket whose upper bound is >= ms; values above every finite
  // bound land in the overflow bucket at index bounds.size().
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
  counts_[static_cast<std::size_t>(it - bounds.begin())] += 1;
  total_ += 1;
  sum_ms_ += ms;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ms_ += other.sum_ms_;
}

double LatencyHistogram::quantile_bound(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based: ceil(q * total), at least 1.
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(total_))));
  const auto& bounds = bucket_bounds();
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

util::Json LatencyHistogram::to_json() const {
  util::Json j = util::Json::object();
  j.set("total", total_);
  j.set("sum_ms", sum_ms_);
  j.set("mean_ms", mean_ms());
  j.set("p50_ms", quantile_bound(0.50));
  j.set("p95_ms", quantile_bound(0.95));
  j.set("p99_ms", quantile_bound(0.99));
  const auto& bounds = bucket_bounds();
  util::Json buckets = util::Json::array();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    util::Json b = util::Json::object();
    b.set("le_ms", i < bounds.size() ? bounds[i] : -1.0);  // -1 = overflow
    b.set("count", counts_[i]);
    buckets.push_back(std::move(b));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void GaugeStats::add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += v;
}

void GaugeStats::merge(const GaugeStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

util::Json GaugeStats::to_json() const {
  util::Json j = util::Json::object();
  j.set("count", count);
  j.set("min", min);
  j.set("mean", mean());
  j.set("max", max);
  return j;
}

}  // namespace sysnoise::serve
