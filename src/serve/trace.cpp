#include "serve/trace.h"

#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace sysnoise::serve {

const char* phase_kind_name(PhaseKind k) {
  switch (k) {
    case PhaseKind::kPoisson: return "poisson";
    case PhaseKind::kBurst: return "burst";
    case PhaseKind::kRamp: return "ramp";
  }
  return "?";
}

PhaseKind phase_kind_from_name(const std::string& name) {
  if (name == "poisson") return PhaseKind::kPoisson;
  if (name == "burst") return PhaseKind::kBurst;
  if (name == "ramp") return PhaseKind::kRamp;
  throw std::invalid_argument("unknown trace phase kind \"" + name + "\"");
}

util::Json TracePhase::to_json() const {
  util::Json j = util::Json::object();
  j.set("kind", phase_kind_name(kind));
  j.set("duration_ms", duration_ms);
  j.set("rate_rps", rate_rps);
  if (kind == PhaseKind::kRamp) j.set("end_rate_rps", end_rate_rps);
  if (kind == PhaseKind::kBurst) {
    j.set("burst_every_ms", burst_every_ms);
    j.set("burst_size", burst_size);
  }
  return j;
}

TracePhase TracePhase::from_json(const util::Json& j) {
  TracePhase p;
  p.kind = phase_kind_from_name(j.at("kind").as_string());
  p.duration_ms = j.at("duration_ms").as_number();
  p.rate_rps = j.at("rate_rps").as_number();
  if (const util::Json* v = j.get("end_rate_rps")) p.end_rate_rps = v->as_number();
  if (const util::Json* v = j.get("burst_every_ms"))
    p.burst_every_ms = v->as_number();
  if (const util::Json* v = j.get("burst_size")) p.burst_size = v->as_int();
  return p;
}

double TraceSpec::duration_ms() const {
  double total = 0.0;
  for (const TracePhase& p : phases) total += p.duration_ms;
  return total;
}

util::Json TraceSpec::to_json() const {
  util::Json j = util::Json::object();
  // The seed is a u64; doubles carry 53 mantissa bits losslessly, which is
  // plenty for every seed anyone types — reject the rest instead of
  // silently rounding.
  if (seed > (1ull << 53))
    throw std::invalid_argument("trace seed exceeds 2^53, not JSON-safe");
  j.set("seed", static_cast<double>(seed));
  j.set("num_samples", num_samples);
  j.set("random_samples", random_samples);
  util::Json jp = util::Json::array();
  for (const TracePhase& p : phases) jp.push_back(p.to_json());
  j.set("phases", std::move(jp));
  return j;
}

TraceSpec TraceSpec::from_json(const util::Json& j) {
  TraceSpec s;
  s.seed = static_cast<std::uint64_t>(j.at("seed").as_number());
  s.num_samples = j.at("num_samples").as_int();
  if (const util::Json* v = j.get("random_samples"))
    s.random_samples = v->as_bool();
  for (std::size_t i = 0; i < j.at("phases").size(); ++i)
    s.phases.push_back(TracePhase::from_json(j.at("phases").at(i)));
  return s;
}

namespace {

// Exponential(rate) inter-arrival in ms; rate in requests per second.
double exp_gap_ms(Rng& rng, double rate_rps) {
  // uniform() is in [0, 1); 1-u is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.uniform()) * 1000.0 / rate_rps;
}

void append_poisson(Rng& rng, double start_ms, double duration_ms,
                    double rate_rps, std::vector<double>* arrivals) {
  if (rate_rps <= 0.0) return;
  double t = start_ms + exp_gap_ms(rng, rate_rps);
  while (t < start_ms + duration_ms) {
    arrivals->push_back(t);
    t += exp_gap_ms(rng, rate_rps);
  }
}

void append_burst(double start_ms, const TracePhase& p,
                  std::vector<double>* arrivals) {
  if (p.burst_every_ms <= 0.0 || p.burst_size <= 0) return;
  for (double t = start_ms; t < start_ms + p.duration_ms;
       t += p.burst_every_ms)
    for (int i = 0; i < p.burst_size; ++i) arrivals->push_back(t);
}

// Non-homogeneous Poisson with rate ramping linearly r0 -> r1 over the
// phase, by inversion: draw a unit-rate process in cumulative-intensity
// space (Exp(1) gaps) and map each point back through the inverse of
// Lambda(t) = r0*t + (r1-r0)*t^2/(2*T)  (rates in per-ms units).
void append_ramp(Rng& rng, double start_ms, const TracePhase& p,
                 std::vector<double>* arrivals) {
  const double r0 = p.rate_rps / 1000.0;      // per ms
  const double r1 = p.end_rate_rps / 1000.0;  // per ms
  const double T = p.duration_ms;
  if (T <= 0.0 || (r0 <= 0.0 && r1 <= 0.0)) return;
  const double slope = (r1 - r0) / T;
  const double total = r0 * T + 0.5 * slope * T * T;  // Lambda(T)
  double lam = -std::log(1.0 - rng.uniform());
  while (lam < total) {
    double t;
    if (std::abs(slope) < 1e-12) {
      t = lam / r0;
    } else {
      // Solve 0.5*slope*t^2 + r0*t - lam = 0 for the root in [0, T].
      const double disc = r0 * r0 + 2.0 * slope * lam;
      t = (-r0 + std::sqrt(std::max(0.0, disc))) / slope;
    }
    arrivals->push_back(start_ms + std::min(t, T));
    lam += -std::log(1.0 - rng.uniform());
  }
}

}  // namespace

std::vector<TraceRequest> generate_trace(const TraceSpec& spec) {
  Rng arrivals_rng(spec.seed);
  // Sample assignment draws from an independent stream so flipping
  // random_samples never perturbs the arrival process itself.
  Rng samples_rng = arrivals_rng.split();

  std::vector<double> arrivals;
  double phase_start = 0.0;
  for (const TracePhase& p : spec.phases) {
    switch (p.kind) {
      case PhaseKind::kPoisson:
        append_poisson(arrivals_rng, phase_start, p.duration_ms, p.rate_rps,
                       &arrivals);
        break;
      case PhaseKind::kBurst:
        append_burst(phase_start, p, &arrivals);
        break;
      case PhaseKind::kRamp:
        append_ramp(arrivals_rng, phase_start, p, &arrivals);
        break;
    }
    phase_start += p.duration_ms;
  }
  // Phases emit in timeline order already; bursts can coincide with Poisson
  // arrivals only across phase boundaries, which back-to-back phases make
  // impossible, so the list is sorted by construction.
  std::vector<TraceRequest> trace;
  trace.reserve(arrivals.size());
  const int n = spec.num_samples > 0 ? spec.num_samples : 1;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TraceRequest r;
    r.id = static_cast<int>(i);
    r.arrival_ms = arrivals[i];
    r.sample = spec.random_samples ? samples_rng.uniform_int(n)
                                   : static_cast<int>(i % static_cast<std::size_t>(n));
    trace.push_back(r);
  }
  return trace;
}

util::Json trace_to_json(const std::vector<TraceRequest>& trace) {
  util::Json j = util::Json::object();
  j.set("requests", trace.size());
  util::Json arr = util::Json::array();
  for (const TraceRequest& r : trace) {
    util::Json jr = util::Json::object();
    jr.set("id", r.id);
    jr.set("arrival_ms", r.arrival_ms);
    jr.set("sample", r.sample);
    arr.push_back(std::move(jr));
  }
  j.set("trace", std::move(arr));
  return j;
}

std::vector<TraceRequest> trace_from_json(const util::Json& j) {
  std::vector<TraceRequest> trace;
  const util::Json& arr = j.at("trace");
  trace.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const util::Json& jr = arr.at(i);
    TraceRequest r;
    r.id = jr.at("id").as_int();
    r.arrival_ms = jr.at("arrival_ms").as_number();
    r.sample = jr.at("sample").as_int();
    trace.push_back(r);
  }
  return trace;
}

TraceSpec poisson_spec(std::uint64_t seed, double duration_ms, double rate_rps,
                       int num_samples) {
  TraceSpec spec;
  spec.seed = seed;
  spec.num_samples = num_samples;
  TracePhase p;
  p.kind = PhaseKind::kPoisson;
  p.duration_ms = duration_ms;
  p.rate_rps = rate_rps;
  spec.phases.push_back(p);
  return spec;
}

}  // namespace sysnoise::serve
