#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>

#include "obs/trace.h"
#include "tensor/backend.h"

namespace sysnoise::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

ServerOptions sanitized(ServerOptions o) {
  o.workers = std::max(1, o.workers);
  o.max_batch = std::max(1, o.max_batch);
  o.max_delay_ms = std::max(0.0, o.max_delay_ms);
  return o;
}

}  // namespace

double ServingStats::served_accuracy() const {
  // Same expression shape as the offline eval metric (100.0 * correct /
  // max(1, n) with int operands) so equal ratios give the identical double.
  return 100.0 * correct / std::max(1, static_cast<int>(served));
}

util::Json ServingStats::to_json() const {
  util::Json j = util::Json::object();
  j.set("submitted", submitted);
  j.set("served", served);
  j.set("shed", shed);
  j.set("batches", batches);
  j.set("correct", correct);
  j.set("served_accuracy", served_accuracy());
  j.set("latency", latency.to_json());
  j.set("queue_depth", queue_depth.to_json());
  j.set("batch_occupancy", batch_occupancy.to_json());
  return j;
}

struct InferenceServer::Impl {
  const ServingModel& model;
  const ServerOptions opts;

  std::mutex mu;
  std::condition_variable cv;
  struct Pending {
    int id;
    int sample;
    Clock::time_point arrival;
  };
  std::deque<Pending> queue;
  bool draining = false;
  ServingStats stats;
  std::vector<std::thread> threads;

  Impl(const ServingModel& m, const ServerOptions& o)
      : model(m), opts(sanitized(o)) {
    threads.reserve(static_cast<std::size_t>(opts.workers));
    for (int w = 0; w < opts.workers; ++w)
      threads.emplace_back([this] { worker_loop(); });
  }

  bool submit(int id, int sample) {
    obs::TraceSpan span("serve.admit");
    std::lock_guard<std::mutex> lock(mu);
    stats.submitted++;
    stats.queue_depth.add(static_cast<double>(queue.size()));
    if (draining ||
        (opts.queue_capacity > 0 && queue.size() >= opts.queue_capacity)) {
      stats.shed++;
      if (span.active()) {
        span.attr("request", id);
        span.attr("shed", 1);
        obs::metrics().counter_add("serve.shed");
      }
      return false;
    }
    queue.push_back(Pending{id, sample, Clock::now()});
    cv.notify_one();
    return true;
  }

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mu);
      draining = true;
    }
    cv.notify_all();
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }

  void worker_loop() {
    GemmParallelScope gemm(opts.gemm_workers);
    const Clock::duration delay = ms_duration(opts.max_delay_ms);
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [this] { return draining || !queue.empty(); });
      if (queue.empty()) {
        if (draining) return;
        continue;
      }
      std::size_t k = 0;
      std::vector<Pending> batch;
      {
        // Batching window: hold for more requests until the batch fills or
        // the oldest request's deadline passes; a drain flushes immediately.
        obs::TraceSpan form_span("serve.batch_form");
        while (!draining && static_cast<int>(queue.size()) < opts.max_batch) {
          const Clock::time_point deadline = queue.front().arrival + delay;
          const bool woke = cv.wait_until(lock, deadline, [this] {
            return draining || queue.empty() ||
                   static_cast<int>(queue.size()) >= opts.max_batch;
          });
          if (!woke) break;          // deadline: launch what we have
          if (queue.empty()) break;  // a peer took everything; start over
        }
        if (queue.empty()) continue;

        k = std::min<std::size_t>(queue.size(),
                                  static_cast<std::size_t>(opts.max_batch));
        batch.assign(queue.begin(), queue.begin() + static_cast<long>(k));
        queue.erase(queue.begin(), queue.begin() + static_cast<long>(k));
        stats.batches++;
        stats.batch_occupancy.add(static_cast<double>(k));
        if (form_span.active()) {
          form_span.attr("batch", k);
          obs::metrics().counter_add("serve.batches");
          obs::metrics().counter_add("serve.batched_requests",
                                     static_cast<std::int64_t>(k));
        }
      }
      if (!queue.empty()) cv.notify_one();

      lock.unlock();
      std::vector<int> samples;
      samples.reserve(k);
      for (const Pending& p : batch) samples.push_back(p.sample);
      std::vector<int> preds;
      {
        obs::TraceSpan fwd_span("serve.forward");
        if (fwd_span.active()) fwd_span.attr("batch", k);
        preds = model.predict(samples);
      }
      const Clock::time_point done = Clock::now();
      lock.lock();
      obs::TraceSpan done_span("serve.complete");
      if (done_span.active()) done_span.attr("batch", k);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        stats.served++;
        if (model.correct(batch[i].sample, preds[i])) stats.correct++;
        stats.latency.record(ms_between(batch[i].arrival, done));
      }
    }
  }
};

InferenceServer::InferenceServer(const ServingModel& model,
                                 const ServerOptions& opts)
    : impl_(new Impl(model, opts)) {}

InferenceServer::~InferenceServer() {
  impl_->drain();
  delete impl_;
}

bool InferenceServer::submit(int id, int sample) {
  return impl_->submit(id, sample);
}

void InferenceServer::drain() { impl_->drain(); }

ServingStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

util::Json ReplayReport::to_json() const {
  util::Json j = util::Json::object();
  j.set("requests", requests);
  j.set("duration_ms", duration_ms);
  j.set("offered_rps", offered_rps);
  j.set("throughput_rps", throughput_rps);
  j.set("stats", stats.to_json());
  return j;
}

namespace {

struct SimRequest {
  int id;
  int sample;
  double arrival;
};

struct SimBatch {
  double launch = 0.0;
  double finish = 0.0;
  std::vector<SimRequest> members;
};

struct SimWorker {
  double free_at;
  int index;
};

// Min-heap on (free_at, index): earliest-free worker first, lowest index on
// ties, so the simulation is order-deterministic.
struct WorkerAfter {
  bool operator()(const SimWorker& a, const SimWorker& b) const {
    if (a.free_at != b.free_at) return a.free_at > b.free_at;
    return a.index > b.index;
  }
};

}  // namespace

ReplayReport replay_virtual(const ServingModel& model,
                            const std::vector<TraceRequest>& trace,
                            const ReplayOptions& opts) {
  const ServerOptions so = sanitized(opts.server);
  ReplayReport report;
  report.requests = trace.size();

  // Phase 1: decide every batch (composition, launch, finish) and every
  // shed with the server's policy on the virtual clock. Nothing here
  // touches the model or a real thread, so the decisions are a pure
  // function of (trace, options).
  std::priority_queue<SimWorker, std::vector<SimWorker>, WorkerAfter> workers;
  for (int w = 0; w < so.workers; ++w) workers.push(SimWorker{0.0, w});
  std::deque<SimRequest> pending;
  std::vector<SimBatch> batches;
  std::size_t next = 0;
  const double inf = std::numeric_limits<double>::infinity();
  while (next < trace.size() || !pending.empty()) {
    const double next_arrival =
        next < trace.size() ? trace[next].arrival_ms : inf;
    double launch = inf;
    std::size_t k = 0;
    if (!pending.empty()) {
      k = std::min<std::size_t>(pending.size(),
                                static_cast<std::size_t>(so.max_batch));
      // A full batch launches as soon as a worker frees (but never before
      // its youngest member arrived); a partial batch additionally waits
      // for the oldest member's batching deadline.
      const double trigger =
          k == static_cast<std::size_t>(so.max_batch)
              ? pending[k - 1].arrival
              : pending.front().arrival + so.max_delay_ms;
      launch = std::max(workers.top().free_at, trigger);
    }
    if (launch < next_arrival) {
      SimWorker w = workers.top();
      workers.pop();
      SimBatch b;
      b.launch = launch;
      b.finish = launch + opts.cost.batch_base_ms +
                 opts.cost.batch_item_ms * static_cast<double>(k);
      b.members.assign(pending.begin(),
                       pending.begin() + static_cast<long>(k));
      pending.erase(pending.begin(), pending.begin() + static_cast<long>(k));
      w.free_at = b.finish;
      workers.push(w);
      report.stats.batches++;
      report.stats.batch_occupancy.add(static_cast<double>(k));
      batches.push_back(std::move(b));
    } else {
      // Admit (or shed) the next arrival; on a launch/arrival tie the
      // arrival wins, mirroring a submit that lands just before the
      // worker's queue grab.
      report.stats.submitted++;
      report.stats.queue_depth.add(static_cast<double>(pending.size()));
      if (so.queue_capacity > 0 && pending.size() >= so.queue_capacity) {
        report.stats.shed++;
      } else {
        pending.push_back(SimRequest{trace[next].id, trace[next].sample,
                                     trace[next].arrival_ms});
      }
      ++next;
    }
  }

  // Phase 2: run the decided batches through the real model. Thread count
  // affects wall time only — compositions and result slots are fixed.
  std::vector<std::vector<int>> preds(batches.size());
  const int threads = std::max(1, opts.compute_threads);
  std::atomic<std::size_t> cursor{0};
  const auto run = [&] {
    while (true) {
      const std::size_t b = cursor.fetch_add(1);
      if (b >= batches.size()) return;
      std::vector<int> samples;
      samples.reserve(batches[b].members.size());
      for (const SimRequest& r : batches[b].members)
        samples.push_back(r.sample);
      preds[b] = model.predict(samples);
    }
  };
  if (threads == 1 || batches.size() <= 1) {
    run();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(run);
    for (std::thread& t : pool) t.join();
  }

  // Assemble in batch order: identical accounting regardless of which real
  // thread executed which batch.
  double last_finish = 0.0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const SimBatch& batch = batches[b];
    last_finish = std::max(last_finish, batch.finish);
    for (std::size_t i = 0; i < batch.members.size(); ++i) {
      report.stats.served++;
      if (model.correct(batch.members[i].sample, preds[b][i]))
        report.stats.correct++;
      report.stats.latency.record(batch.finish - batch.members[i].arrival);
    }
  }
  const double last_arrival = trace.empty() ? 0.0 : trace.back().arrival_ms;
  report.duration_ms = std::max(last_finish, last_arrival);
  report.offered_rps =
      last_arrival > 0.0
          ? 1000.0 * static_cast<double>(trace.size()) / last_arrival
          : 0.0;
  report.throughput_rps =
      report.duration_ms > 0.0
          ? 1000.0 * static_cast<double>(report.stats.served) /
                report.duration_ms
          : 0.0;
  return report;
}

ReplayReport replay_wall_clock(const ServingModel& model,
                               const std::vector<TraceRequest>& trace,
                               const ReplayOptions& opts) {
  InferenceServer server(model, opts.server);
  const Clock::time_point start = Clock::now();
  for (const TraceRequest& r : trace) {
    std::this_thread::sleep_until(
        start + ms_duration(r.arrival_ms * opts.time_scale));
    server.submit(r.id, r.sample);
  }
  server.drain();
  const double wall_ms = ms_between(start, Clock::now());

  ReplayReport report;
  report.requests = trace.size();
  report.stats = server.stats();
  report.duration_ms = wall_ms;
  const double last_arrival =
      trace.empty() ? 0.0 : trace.back().arrival_ms * opts.time_scale;
  report.offered_rps =
      last_arrival > 0.0
          ? 1000.0 * static_cast<double>(trace.size()) / last_arrival
          : 0.0;
  report.throughput_rps =
      wall_ms > 0.0
          ? 1000.0 * static_cast<double>(report.stats.served) / wall_ms
          : 0.0;
  return report;
}

}  // namespace sysnoise::serve
