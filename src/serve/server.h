// The serving runtime: a dynamic-micro-batching inference server plus the
// trace replayers that drive it.
//
// InferenceServer is the wall-clock server: submit() admits a request into
// a bounded queue (or sheds it, with accounting, when the queue is full —
// the explicit overload policy), and N worker threads form micro-batches
// with the classic size-or-deadline rule: a free worker launches a batch
// when the queue holds max_batch requests OR the oldest admitted request
// has waited max_delay_ms, taking min(max_batch, queue) requests. Batches
// go through ServingModel::predict (for the classifier model: stack_parts
// + one forward pass under the config's ComputeBackend, optionally fanned
// out via GemmParallelScope). drain() is the graceful shutdown: no new
// admissions, every queued request still served, workers joined.
//
// replay_wall_clock() replays a trace against a real InferenceServer,
// sleeping to each arrival. Its numbers are real and therefore noisy —
// that is the point of the wall-clock mode.
//
// replay_virtual() replays the same trace on a virtual clock: a
// discrete-event simulation applies the identical admission/shed/batching
// policy with a deterministic cost model (a batch of size b occupies a
// simulated worker for batch_base_ms + b * batch_item_ms), decides every
// batch's composition and timeline first, and only then executes the
// decided batches through the real model to obtain predictions. Because
// batch composition is fixed before any real thread runs, the report is
// bit-exact for a given (trace, options) — across repeats AND across
// compute_threads counts — which is what makes the serving test suite and
// the CI gate timing-independent.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/metrics.h"
#include "serve/serving_model.h"
#include "serve/trace.h"
#include "util/json.h"

namespace sysnoise::serve {

struct ServerOptions {
  int workers = 1;           // worker threads (virtual: simulated workers)
  int max_batch = 8;         // micro-batch cap (1 disables batching)
  double max_delay_ms = 2.0;  // batching deadline for a non-full batch
  // Admission-queue bound; an arrival finding the queue at capacity is shed
  // (counted, never served). 0 = unbounded.
  std::size_t queue_capacity = 256;
  // GemmParallelScope each wall-clock worker opens around its forwards
  // (<= 1: serial kernels).
  int gemm_workers = 1;
};

// Mergeable accounting for one server lifetime / one replay.
struct ServingStats {
  std::size_t submitted = 0;  // admission attempts (served + shed)
  std::size_t served = 0;
  std::size_t shed = 0;
  std::size_t batches = 0;     // forward invocations
  int correct = 0;             // served requests whose prediction matched
  LatencyHistogram latency;    // admission -> completion, served only
  GaugeStats queue_depth;      // depth seen by each arrival, pre-admission
  GaugeStats batch_occupancy;  // requests per launched batch

  // 100 * correct / served, the formula (and therefore the exact double)
  // of the offline eval loops when the served multiset covers the
  // evaluation set with equal counts.
  double served_accuracy() const;

  util::Json to_json() const;
};

class InferenceServer {
 public:
  InferenceServer(const ServingModel& model, const ServerOptions& opts);
  ~InferenceServer();  // drains
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Admit one request for `sample`. Returns false when shed (queue full)
  // or already draining; either way the attempt is accounted.
  bool submit(int id, int sample);

  // Graceful shutdown: stop admitting, serve everything queued, join the
  // workers. Idempotent.
  void drain();

  // Snapshot (thread-safe; complete once drain() returned).
  ServingStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

struct VirtualCost {
  double batch_base_ms = 1.0;   // fixed per forward invocation
  double batch_item_ms = 0.25;  // per request stacked into it
};

struct ReplayOptions {
  ServerOptions server;
  VirtualCost cost;         // virtual mode only
  int compute_threads = 1;  // virtual mode: real threads executing batches
  double time_scale = 1.0;  // wall-clock mode: trace timeline multiplier
};

struct ReplayReport {
  ServingStats stats;
  std::size_t requests = 0;     // trace length
  double duration_ms = 0.0;     // trace start -> last batch completion
  double offered_rps = 0.0;     // requests over the arrival span
  double throughput_rps = 0.0;  // served over duration_ms

  util::Json to_json() const;
};

// Deterministic virtual-clock replay (see file comment).
ReplayReport replay_virtual(const ServingModel& model,
                            const std::vector<TraceRequest>& trace,
                            const ReplayOptions& opts);

// Wall-clock replay against a real InferenceServer; arrivals are slept to
// on the steady clock (opts.time_scale compresses or stretches the trace).
ReplayReport replay_wall_clock(const ServingModel& model,
                               const std::vector<TraceRequest>& trace,
                               const ReplayOptions& opts);

}  // namespace sysnoise::serve
