// Example: dump what each SysNoise type actually does to pixels.
// Writes the clean image and per-noise scaled difference maps as PPM files
// (viewable with any image tool), mirroring Fig. 5.
#include <cstdio>
#include <filesystem>

#include "data/pipeline.h"
#include "image/metrics.h"
#include "image/ppm_io.h"
#include "image/synthetic.h"
#include "jpeg/codec.h"
#include "tensor/rng.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "noise_vis";
  std::filesystem::create_directories(out_dir);

  // Render a fresh scene and push it through the pipelines.
  Rng rng(2718);
  TextureParams p = class_texture(5, 10, rng);
  const ImageU8 scene = render_texture(p, 96, 96, rng);
  const auto bytes = jpeg::encode(scene, {.quality = 90});

  const PipelineSpec spec{.out_h = 64, .out_w = 64};
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  const ImageU8 clean = preprocess_image(bytes, base, spec);
  write_ppm(out_dir + "/clean.ppm", clean);
  std::printf("wrote %s/clean.ppm\n", out_dir.c_str());

  struct Variant {
    const char* name;
    SysNoiseConfig cfg;
  };
  std::vector<Variant> variants;
  {
    SysNoiseConfig c = base;
    c.decoder = jpeg::DecoderVendor::kOpenCV;
    variants.push_back({"decode_opencv", c});
    c.decoder = jpeg::DecoderVendor::kDALI;
    variants.push_back({"decode_dali", c});
  }
  {
    SysNoiseConfig c = base;
    c.resize = ResizeMethod::kOpenCVBilinear;
    variants.push_back({"resize_opencv_bilinear", c});
    c.resize = ResizeMethod::kPillowLanczos;
    variants.push_back({"resize_pillow_lanczos", c});
  }
  {
    SysNoiseConfig c = base;
    c.color = ColorMode::kNv12RoundTrip;
    variants.push_back({"color_nv12", c});
  }

  for (const auto& v : variants) {
    const ImageU8 noisy = preprocess_image(bytes, v.cfg, spec);
    write_ppm(out_dir + "/" + v.name + ".ppm", noisy);
    write_ppm(out_dir + "/" + v.name + "_diff.ppm", image_diff_visual(clean, noisy));
    std::printf("%-24s mae=%.3f max=%d changed=%.1f%%\n", v.name,
                image_mae(clean, noisy), image_max_diff(clean, noisy),
                100.0 * image_diff_fraction(clean, noisy));
  }
  std::printf("\nDifference maps are scaled so the largest per-image "
              "difference is white (as in the paper's Fig. 5).\n");
  return 0;
}
