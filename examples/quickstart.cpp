// Quickstart: the SysNoise phenomenon in 60 lines.
//
// Trains (or loads) a small classifier under the PyTorch-like training
// pipeline, then deploys it under a vendor-style pipeline (DALI-class
// decoder, OpenCV-nearest resize, NV12 color path, INT8) and shows the
// accuracy gap plus one image whose prediction flips.
#include <cstdio>

#include "core/axis.h"
#include "models/zoo.h"

using namespace sysnoise;

int main() {
  std::printf("SysNoise quickstart — training vs deployment pipelines\n\n");

  auto tc = models::get_classifier("ResNet-S");
  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  const SysNoiseConfig train_cfg = SysNoiseConfig::training_default();
  const SysNoiseConfig deploy_cfg = core::combined_config(
      {core::TaskKind::kClassification, tc.model->has_maxpool()});

  std::printf("training pipeline  : %s\n", train_cfg.describe().c_str());
  std::printf("deployment pipeline: %s\n\n", deploy_cfg.describe().c_str());

  const double acc_train =
      models::eval_classifier(*tc.model, ds.eval, train_cfg, spec, &tc.ranges);
  const double acc_deploy =
      models::eval_classifier(*tc.model, ds.eval, deploy_cfg, spec, &tc.ranges);
  std::printf("accuracy under training pipeline  : %.2f%%\n", acc_train);
  std::printf("accuracy under deployment pipeline: %.2f%%\n", acc_deploy);
  std::printf("SysNoise accuracy drop            : %.2f%%\n\n",
              acc_train - acc_deploy);

  // Find one sample whose prediction flips.
  for (std::size_t i = 0; i < ds.eval.size(); ++i) {
    auto predict = [&](const SysNoiseConfig& cfg) {
      nn::Tape t;
      t.ctx = cfg.inference_ctx(&tc.ranges);
      nn::Node* logits = tc.model->forward(
          t, t.input(preprocess(ds.eval[i].jpeg, cfg, spec)), nn::BnMode::kEval);
      int best = 0;
      for (int c = 1; c < logits->value.dim(1); ++c)
        if (logits->value.at2(0, c) > logits->value.at2(0, best)) best = c;
      return best;
    };
    const int p_train = predict(train_cfg);
    const int p_deploy = predict(deploy_cfg);
    if (p_train != p_deploy) {
      std::printf("sample %zu (label %d): predicted %d when trained-and-served "
                  "consistently, but %d under the deployment stack — the same "
                  "weights, different system.\n",
                  i, ds.eval[i].label, p_train, p_deploy);
      break;
    }
  }
  return 0;
}
