// Example: hardening a model against resize SysNoise with mix training
// (Algo. 1). Trains a baseline and a mix-trained twin, then compares their
// accuracy spread across every resize method.
#include <algorithm>
#include <cstdio>

#include "core/mitigation.h"
#include "models/zoo.h"

using namespace sysnoise;

int main() {
  std::printf("Mix training (Algo. 1) demo on ResNet-XS\n\n");

  const PipelineSpec spec = models::cls_pipeline_spec();
  const auto& ds = models::benchmark_cls_dataset();

  auto baseline = models::get_classifier("ResNet-XS");
  const auto mix_prep =
      core::mix_training_preprocessor(spec, /*mix_decoder=*/false, /*mix_resize=*/true);
  auto mixed = models::get_classifier("ResNet-XS", "example_mix", &mix_prep);

  std::printf("%-18s %12s %12s\n", "test resize", "baseline", "mix-trained");
  double base_min = 1e9, base_max = -1e9, mix_min = 1e9, mix_max = -1e9;
  for (ResizeMethod m : all_resize_methods()) {
    SysNoiseConfig cfg = SysNoiseConfig::training_default();
    cfg.resize = m;
    const double a =
        models::eval_classifier(*baseline.model, ds.eval, cfg, spec, &baseline.ranges);
    const double b =
        models::eval_classifier(*mixed.model, ds.eval, cfg, spec, &mixed.ranges);
    std::printf("%-18s %11.2f%% %11.2f%%\n", resize_method_name(m), a, b);
    base_min = std::min(base_min, a);
    base_max = std::max(base_max, a);
    mix_min = std::min(mix_min, b);
    mix_max = std::max(mix_max, b);
  }
  std::printf("\naccuracy spread across resize methods:\n");
  std::printf("  baseline   : %.2f%%\n", base_max - base_min);
  std::printf("  mix-trained: %.2f%%\n", mix_max - mix_min);
  std::printf("Mix training shrinks the deployment-dependent spread.\n");
  return 0;
}
