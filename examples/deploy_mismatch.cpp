// Example: auditing a single model against every deployment stack.
//
// Enumerates all decoder x resize combinations (the most common real-world
// mismatch) and prints an accuracy matrix — the tool a release engineer
// would run before shipping a model to N platforms.
#include <cstdio>

#include "core/report.h"
#include "models/zoo.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "MobileNetV2-1.0";
  std::printf("Deployment audit for %s\n\n", model_name.c_str());

  auto tc = models::get_classifier(model_name);
  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  std::vector<std::string> headers = {"Decoder \\ Resize"};
  for (ResizeMethod m : all_resize_methods())
    headers.push_back(resize_method_name(m));
  core::TextTable table(headers);

  double worst = 1e9, best = -1e9;
  std::string worst_cfg, best_cfg;
  for (int v = 0; v < jpeg::kNumDecoderVendors; ++v) {
    const auto vendor = static_cast<jpeg::DecoderVendor>(v);
    std::vector<std::string> row = {jpeg::vendor_name(vendor)};
    for (ResizeMethod m : all_resize_methods()) {
      SysNoiseConfig cfg = SysNoiseConfig::training_default();
      cfg.decoder = vendor;
      cfg.resize = m;
      const double acc =
          models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
      row.push_back(core::fmt(acc, 1));
      const std::string label =
          std::string(jpeg::vendor_name(vendor)) + "+" + resize_method_name(m);
      if (acc < worst) {
        worst = acc;
        worst_cfg = label;
      }
      if (acc > best) {
        best = acc;
        best_cfg = label;
      }
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nbest stack : %s (%.1f%%)\n", best_cfg.c_str(), best);
  std::printf("worst stack: %s (%.1f%%)\n", worst_cfg.c_str(), worst);
  std::printf("spread     : %.1f%% — pick your deployment stack deliberately.\n",
              best - worst);
  return 0;
}
