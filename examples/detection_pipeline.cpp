// Example: end-to-end detection under two deployment stacks.
//
// Runs the FPN detector on one scene through the training pipeline and
// through a vendor pipeline (bilinear FPN upsampling + legacy box-decode
// offset) and prints both box sets side by side — the Fig. 1(d) mismatch.
#include <cstdio>

#include "models/zoo.h"

using namespace sysnoise;

int main() {
  std::printf("Detection deployment mismatch (Fig. 1d style)\n\n");

  auto td = models::get_detector("RetinaNet-MobileNet");
  const auto& ds = models::benchmark_det_dataset();
  const PipelineSpec spec = models::det_pipeline_spec();

  SysNoiseConfig deploy = SysNoiseConfig::training_default();
  deploy.upsample = nn::UpsampleMode::kBilinear;
  deploy.proposal_offset = 1.0f;

  const auto& sample = ds.eval[0];
  auto run = [&](const SysNoiseConfig& cfg) {
    nn::Tape t;
    t.ctx = cfg.inference_ctx(&td.ranges);
    std::vector<Tensor> in = {preprocess(sample.jpeg, cfg, spec)};
    auto out = td.model->forward(t, t.input(models::stack_batch(in)),
                                 nn::BnMode::kEval);
    return models::detection_postprocess(*td.model, out, cfg, ds.input_size,
                                         /*score_threshold=*/0.3f)[0];
  };

  const auto train_dets = run(SysNoiseConfig::training_default());
  const auto deploy_dets = run(deploy);

  std::printf("ground truth:\n");
  for (const auto& g : sample.boxes)
    std::printf("  class %d  (%.0f, %.0f, %.0f, %.0f)\n", g.label, g.box.x1,
                g.box.y1, g.box.x2, g.box.y2);

  std::printf("\ntraining pipeline (nearest upsample, offset 0):\n");
  for (const auto& d : train_dets)
    std::printf("  class %d  score %.2f  (%.1f, %.1f, %.1f, %.1f)\n", d.label,
                d.score, d.box.x1, d.box.y1, d.box.x2, d.box.y2);

  std::printf("\ndeployment pipeline (bilinear upsample, offset 1):\n");
  for (const auto& d : deploy_dets)
    std::printf("  class %d  score %.2f  (%.1f, %.1f, %.1f, %.1f)\n", d.label,
                d.score, d.box.x1, d.box.y1, d.box.x2, d.box.y2);

  std::printf("\nSame weights, same image — the boxes move because the "
              "deployment system implements upsampling and box decoding "
              "differently.\n");
  return 0;
}
