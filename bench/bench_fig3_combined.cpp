// Fig. 3: worst-case study — stepwise accumulation of SysNoise on a
// classifier (ResNet-M, the ResNet-50 stand-in) and a detector
// (FasterRCNN-ResNet). Expected shape vs the paper: the delta grows
// monotonically-ish as noises stack, detection degrades far more than
// classification, and the ceil+upsample combination is super-additive.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

int main() {
  bench::banner("Fig. 3 — stepwise combined SysNoise", "Sec. 4.2, Fig. 3");

  core::SweepCache cache;
  core::SweepOptions opts;
  opts.cache = &cache;

  std::printf("[fig3] classifier (ResNet-M)...\n");
  std::fflush(stdout);
  auto tc = models::get_classifier("ResNet-M");
  models::ClassifierTask cls_task(tc);
  cache.seed(cls_task, SysNoiseConfig::training_default(), tc.trained_acc);
  const auto cls_steps = core::staged_stepwise(cls_task, opts);
  std::printf("(a) ResNet-M classification — trained ACC %.2f%%\n", tc.trained_acc);
  const std::string cls_table = core::render_step_table(cls_steps, "ACC");
  std::fputs(cls_table.c_str(), stdout);

  std::printf("[fig3] detector (FasterRCNN-ResNet)...\n");
  std::fflush(stdout);
  auto td = models::get_detector("FasterRCNN-ResNet");
  models::DetectorTask det_task(td);
  cache.seed(det_task, SysNoiseConfig::training_default(), td.trained_map);
  const auto det_steps = core::staged_stepwise(det_task, opts);
  std::printf("(b) FasterRCNN-ResNet detection — trained mAP %.2f\n",
              td.trained_map);
  const std::string det_table = core::render_step_table(det_steps, "mAP");
  std::fputs(det_table.c_str(), stdout);

  std::string csv = core::step_points_csv(cls_steps, "cls");
  const std::string det_csv = core::step_points_csv(det_steps, "det");
  csv += det_csv.substr(det_csv.find('\n') + 1);  // drop repeated header
  bench::write_file("fig3_combined.txt", cls_table + "\n" + det_table);
  bench::write_file("fig3_combined.csv", csv);
  return 0;
}
