// Fig. 3: worst-case study — stepwise accumulation of SysNoise on a
// classifier (ResNet-M, the ResNet-50 stand-in) and a detector
// (FasterRCNN-ResNet). Expected shape vs the paper: the delta grows
// monotonically-ish as noises stack, detection degrades far more than
// classification, and the ceil+upsample combination is super-additive.
//
// Runs on the plan/execute/merge lifecycle via run_standard_modes
// (bench_util.h) over stepwise SweepPlans: --emit-plan, --shard i/N and
// --merge, bit-identical to the unsharded run — and the distributed
// --coordinate / --connect modes on the same plan seam.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

namespace {

void render_and_write(const std::vector<bench::PlanRun>& runs) {
  if (runs.size() != 2) {
    std::fprintf(stderr, "fig3 expects 2 runs, got %zu\n", runs.size());
    std::exit(2);
  }
  const core::StepReport cls = {
      runs[0].plan.task, core::assemble_steps(runs[0].plan, runs[0].metrics)};
  const core::StepReport det = {
      runs[1].plan.task, core::assemble_steps(runs[1].plan, runs[1].metrics)};
  std::printf("(a) %s classification\n", cls.model.c_str());
  const std::string cls_table = core::render_step_table(cls.points, "ACC");
  std::fputs(cls_table.c_str(), stdout);
  std::printf("(b) %s detection\n", det.model.c_str());
  const std::string det_table = core::render_step_table(det.points, "mAP");
  std::fputs(det_table.c_str(), stdout);

  std::string csv = core::step_points_csv(cls.points, "cls");
  const std::string det_csv = core::step_points_csv(det.points, "det");
  csv += det_csv.substr(det_csv.find('\n') + 1);  // drop repeated header
  bench::write_file("fig3_combined.txt", cls_table + "\n" + det_table);
  bench::write_file("fig3_combined.csv", csv);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "fig3_combined");
  bench::banner("Fig. 3 — stepwise combined SysNoise", "Sec. 4.2, Fig. 3");
  bench::BenchTrace trace(cli);

  struct ClsUnit {
    models::TrainedClassifier trained;
    models::ClassifierTask task;
    explicit ClsUnit(models::TrainedClassifier t)
        : trained(std::move(t)), task(trained) {}
  };
  struct DetUnit {
    models::TrainedDetector trained;
    models::DetectorTask task;
    explicit DetUnit(models::TrainedDetector t)
        : trained(std::move(t)), task(trained) {}
  };

  bench::PlanBenchDef def;
  def.units = 2;
  def.make = [&](std::size_t i) {
    bench::PlanUnit unit;
    if (i == 0) {
      std::printf("[fig3] classifier (ResNet-M)...\n");
      std::fflush(stdout);
      auto holder =
          std::make_shared<ClsUnit>(models::get_classifier("ResNet-M"));
      unit.task_spec = dist::classifier_spec("ResNet-M").to_json();
      unit.plan =
          core::plan_stepwise(holder->task, core::AxisRegistry::global());
      unit.task = &holder->task;
      unit.seed_metric = holder->trained.trained_acc;
      unit.has_seed = true;
      unit.owner = std::move(holder);
    } else {
      std::printf("[fig3] detector (FasterRCNN-ResNet)...\n");
      std::fflush(stdout);
      auto holder =
          std::make_shared<DetUnit>(models::get_detector("FasterRCNN-ResNet"));
      unit.task_spec = dist::detector_spec("FasterRCNN-ResNet").to_json();
      unit.plan =
          core::plan_stepwise(holder->task, core::AxisRegistry::global());
      unit.task = &holder->task;
      unit.seed_metric = holder->trained.trained_map;
      unit.has_seed = true;
      unit.owner = std::move(holder);
    }
    return unit;
  };
  def.render = render_and_write;
  return bench::run_standard_modes(cli, trace, def);
}
