// Fig. 3: worst-case study — stepwise accumulation of SysNoise on a
// classifier (ResNet-M, the ResNet-50 stand-in) and a detector
// (FasterRCNN-ResNet). Expected shape vs the paper: the delta grows
// monotonically-ish as noises stack, detection degrades far more than
// classification, and the ceil+upsample combination is super-additive.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "core/runner.h"

using namespace sysnoise;

namespace {

std::string render_steps(const std::vector<core::StepPoint>& pts,
                         const char* metric) {
  core::TextTable table({"Noise added (cumulative)", std::string("Δ") + metric});
  for (const auto& p : pts) table.add_row({p.step, core::fmt(p.delta)});
  return table.str();
}

}  // namespace

int main() {
  bench::banner("Fig. 3 — stepwise combined SysNoise", "Sec. 4.2, Fig. 3");

  std::printf("[fig3] classifier (ResNet-M)...\n");
  std::fflush(stdout);
  auto tc = models::get_classifier("ResNet-M");
  const auto cls_steps = core::stepwise_classifier(tc);
  std::printf("(a) ResNet-M classification — trained ACC %.2f%%\n", tc.trained_acc);
  const std::string cls_table = render_steps(cls_steps, "ACC");
  std::fputs(cls_table.c_str(), stdout);

  std::printf("[fig3] detector (FasterRCNN-ResNet)...\n");
  std::fflush(stdout);
  auto td = models::get_detector("FasterRCNN-ResNet");
  const auto det_steps = core::stepwise_detector(td);
  std::printf("(b) FasterRCNN-ResNet detection — trained mAP %.2f\n",
              td.trained_map);
  const std::string det_table = render_steps(det_steps, "mAP");
  std::fputs(det_table.c_str(), stdout);

  std::string csv = "task,step,delta\n";
  for (const auto& p : cls_steps) csv += "cls," + p.step + "," + core::fmt(p.delta) + "\n";
  for (const auto& p : det_steps) csv += "det," + p.step + "," + core::fmt(p.delta) + "\n";
  bench::write_file("fig3_combined.txt", cls_table + "\n" + det_table);
  bench::write_file("fig3_combined.csv", csv);
  return 0;
}
