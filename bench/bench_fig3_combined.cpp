// Fig. 3: worst-case study — stepwise accumulation of SysNoise on a
// classifier (ResNet-M, the ResNet-50 stand-in) and a detector
// (FasterRCNN-ResNet). Expected shape vs the paper: the delta grows
// monotonically-ish as noises stack, detection degrades far more than
// classification, and the ceil+upsample combination is super-additive.
//
// Supports the plan/execute/merge lifecycle (bench_util.h) over stepwise
// SweepPlans: --emit-plan, --shard i/N and --merge, bit-identical to the
// unsharded run — and the distributed --coordinate / --connect modes on
// the same plan seam.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/disk_stage_cache.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

namespace {

void render_and_write(const core::StepReport& cls, const core::StepReport& det) {
  std::printf("(a) %s classification\n", cls.model.c_str());
  const std::string cls_table = core::render_step_table(cls.points, "ACC");
  std::fputs(cls_table.c_str(), stdout);
  std::printf("(b) %s detection\n", det.model.c_str());
  const std::string det_table = core::render_step_table(det.points, "mAP");
  std::fputs(det_table.c_str(), stdout);

  std::string csv = core::step_points_csv(cls.points, "cls");
  const std::string det_csv = core::step_points_csv(det.points, "det");
  csv += det_csv.substr(det_csv.find('\n') + 1);  // drop repeated header
  bench::write_file("fig3_combined.txt", cls_table + "\n" + det_table);
  bench::write_file("fig3_combined.csv", csv);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "fig3_combined");
  bench::banner("Fig. 3 — stepwise combined SysNoise", "Sec. 4.2, Fig. 3");
  bench::BenchTrace trace(cli);

  if (cli.connecting()) return bench::run_bench_worker(cli);

  if (cli.merging()) {
    const auto merged = bench::merge_shard_files(cli, cli.merge_files);
    if (merged.size() != 2) {
      std::fprintf(stderr, "fig3 shard files must hold 2 runs, got %zu\n",
                   merged.size());
      return 2;
    }
    render_and_write(
        {merged[0].plan.task, core::assemble_steps(merged[0].plan,
                                                   merged[0].metrics)},
        {merged[1].plan.task, core::assemble_steps(merged[1].plan,
                                                   merged[1].metrics)});
    return 0;
  }

  core::SweepCache cache;
  core::StageStats stages;
  core::DiskStageCache disk;
  core::DiskStageCache* disk_ptr =
      bench::disk_stage_cache_enabled() ? &disk : nullptr;
  const core::StagedExecutor staged(&stages, disk_ptr);

  std::printf("[fig3] classifier (ResNet-M)...\n");
  std::fflush(stdout);
  auto tc = models::get_classifier("ResNet-M");
  models::ClassifierTask cls_task(tc);
  const core::SweepPlan cls_plan =
      core::plan_stepwise(cls_task, core::AxisRegistry::global());

  std::printf("[fig3] detector (FasterRCNN-ResNet)...\n");
  std::fflush(stdout);
  auto td = models::get_detector("FasterRCNN-ResNet");
  models::DetectorTask det_task(td);
  const core::SweepPlan det_plan =
      core::plan_stepwise(det_task, core::AxisRegistry::global());

  if (cli.emit_plan) {
    bench::write_plan_file(cli, {cls_plan, det_plan});
    return 0;
  }

  if (cli.dist_jobs()) {
    const std::vector<dist::DistJob> jobs = {
        {dist::classifier_spec("ResNet-M").to_json(), cls_plan},
        {dist::detector_spec("FasterRCNN-ResNet").to_json(), det_plan}};
    std::vector<core::MetricMap> results;
    if (!bench::dist_results(cli, jobs, &results, &trace)) return 0;  // --emit-jobs
    render_and_write(
        {cls_plan.task, core::assemble_steps(cls_plan, results[0])},
        {det_plan.task, core::assemble_steps(det_plan, results[1])});
    return 0;
  }

  cache.seed(cls_task, SysNoiseConfig::training_default(), tc.trained_acc);
  cache.seed(det_task, SysNoiseConfig::training_default(), td.trained_map);
  core::SweepOptions opts;
  opts.cache = &cache;

  if (cli.sharded()) {
    const core::ShardExecutor shard(staged, cli.shard_index, cli.shard_count);
    bench::write_shard_file(
        cli, {{cls_plan, shard.execute(cls_task, cls_plan, opts)},
              {det_plan, shard.execute(det_task, det_plan, opts)}});
    return 0;
  }

  const auto cls_metrics = staged.execute(cls_task, cls_plan, opts);
  std::printf("[fig3] ResNet-M trained ACC %.2f%%\n", tc.trained_acc);
  const auto det_metrics = staged.execute(det_task, det_plan, opts);
  std::printf("[fig3] FasterRCNN-ResNet trained mAP %.2f\n", td.trained_map);
  bench::print_stage_cache_stats(cli, stages, cache.hits());
  trace.finish(&stages);
  render_and_write({cls_plan.task, core::assemble_steps(cls_plan, cls_metrics)},
                   {det_plan.task, core::assemble_steps(det_plan, det_metrics)});
  return 0;
}
