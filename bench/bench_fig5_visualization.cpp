// Fig. 5: visualization of SysNoise — per-noise pixel differences, scaled
// to [0,255], dumped as PPM images plus summary statistics. Expected shape
// vs the paper: decode noise is irregular/speckled, resize and color noise
// concentrate on edges, ceil-mode noise appears as bands at the bottom and
// right borders, INT8 noise has no obvious spatial pattern.
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/report.h"
#include "image/metrics.h"
#include "image/ppm_io.h"
#include "models/zoo.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const bench::BenchCli cli =
      bench::parse_cli(argc, argv, "fig5_visualization");
  bench::banner("Fig. 5 — SysNoise visualization", "Sec. 4.3, Fig. 5");

  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();
  const auto& sample = ds.eval[3];
  const SysNoiseConfig base = SysNoiseConfig::training_default();
  const ImageU8 clean = preprocess_image(sample.jpeg, base, spec);

  core::TextTable table({"Noise", "MAE (px)", "Max diff", "Pixels changed (%)"});
  std::string csv = "noise,mae,max_diff,changed_pct\n";

  auto emit = [&](const std::string& name, const ImageU8& noisy) {
    const ImageU8 diff = image_diff_visual(clean, noisy);
    write_ppm(bench::results_dir() + "/fig5_" + name + ".ppm", diff);
    const double mae = image_mae(clean, noisy);
    const int mx = image_max_diff(clean, noisy);
    const double frac = 100.0 * image_diff_fraction(clean, noisy);
    table.add_row({name, core::fmt(mae, 3), std::to_string(mx), core::fmt(frac, 1)});
    csv += name + "," + core::fmt(mae, 3) + "," + std::to_string(mx) + "," +
           core::fmt(frac, 1) + "\n";
  };

  const std::vector<std::string> labels = {"decode", "resize", "color_mode",
                                           "logits"};
  return bench::run_standard_modes(
      cli, labels,
      [&](const std::string& label) {
        if (label == "decode") {
          write_ppm(bench::results_dir() + "/fig5_original.ppm", clean);
          SysNoiseConfig c = base;
          c.decoder = jpeg::DecoderVendor::kDALI;
          emit("decode", preprocess_image(sample.jpeg, c, spec));
        } else if (label == "resize") {
          SysNoiseConfig c = base;
          c.resize = ResizeMethod::kOpenCVNearest;
          emit("resize", preprocess_image(sample.jpeg, c, spec));
        } else if (label == "color_mode") {
          SysNoiseConfig c = base;
          c.color = ColorMode::kNv12RoundTrip;
          emit("color_mode", preprocess_image(sample.jpeg, c, spec));
        } else {
          // INT8 and ceil-mode are feature-space noises: visualize through a
          // trained backbone by comparing logits.
          auto tc = models::get_classifier("ResNet-XS");
          const Tensor x = preprocess(sample.jpeg, base, spec);
          auto run_logits = [&](const SysNoiseConfig& cfg) {
            nn::Tape t;
            t.ctx = cfg.inference_ctx(&tc.ranges);
            return tc.model->forward(t, t.input(x), nn::BnMode::kEval)->value;
          };
          const Tensor base_logits = run_logits(base);
          SysNoiseConfig c8 = base;
          c8.precision = nn::Precision::kINT8;
          SysNoiseConfig cc = base;
          cc.ceil_mode = true;
          const float d8 = max_abs_diff(base_logits, run_logits(c8));
          const float dc = max_abs_diff(base_logits, run_logits(cc));
          table.add_row({"int8 (logit shift)", core::fmt(d8, 4), "-", "-"});
          table.add_row({"ceil_mode (logit shift)", core::fmt(dc, 4), "-", "-"});
          csv += "int8_logits," + core::fmt(d8, 4) + ",,\n";
          csv += "ceil_logits," + core::fmt(dc, 4) + ",,\n";
        }
      },
      [&] {
        std::printf("PPM difference images written to %s/fig5_*.ppm\n",
                    bench::results_dir().c_str());
        return std::make_pair(table.str(), csv);
      });
}
