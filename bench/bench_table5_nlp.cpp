// Table 5: data-precision SysNoise on NLP — OPT-mini sizes x four
// multiple-choice tasks; FP32 accuracy and FP16/INT8 deltas. Expected
// shape vs the paper: both precision deltas are small and task-dependent
// (sometimes negative), larger models score higher.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "nlp/lm.h"
#include "nlp/tasks.h"

using namespace sysnoise;
using namespace sysnoise::nlp;

namespace {

double task_accuracy(CausalLm& lm, const std::vector<ChoiceItem>& items,
                     nn::Precision precision, nn::ActRanges* ranges) {
  int correct = 0;
  for (const auto& item : items) {
    const double sc =
        lm.score_continuation(item.context, item.correct, precision, ranges);
    const double sw =
        lm.score_continuation(item.context, item.wrong, precision, ranges);
    if (sc > sw) ++correct;
  }
  return 100.0 * correct / static_cast<double>(items.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table5_nlp");
  bench::banner("Table 5 — NLP data-precision noise (OPT-mini zoo)",
                "Sec. 4.2, Table 5");

  const auto corpus = make_lm_corpus(480, 31337);
  std::vector<std::vector<ChoiceItem>> task_items;
  for (int k = 0; k < kNumTasks; ++k)
    task_items.push_back(make_task_items(static_cast<TaskKind>(k), 120,
                                         9000 + static_cast<std::uint64_t>(k)));

  std::vector<std::string> headers = {"Architecture"};
  for (int k = 0; k < kNumTasks; ++k)
    headers.push_back(std::string(task_name(static_cast<TaskKind>(k))) +
                      " FP32/dFP16/dINT8");
  core::TextTable table(headers);

  auto zoo = opt_mini_zoo();
  if (bench::fast_mode()) zoo.resize(1);
  std::vector<std::string> labels;
  for (const auto& spec : zoo) labels.push_back(spec.name);
  if (bench::handle_row_cli(cli, labels, "table5_nlp.csv")) return 0;
  zoo = bench::shard_slice(zoo, cli);
  std::string csv = "model,task,fp32,d_fp16,d_int8\n";
  for (const auto& spec : zoo) {
    std::printf("[table5] training %s...\n", spec.name.c_str());
    std::fflush(stdout);
    Rng rng(77);
    CausalLm lm(spec, kVocab, rng);
    train_lm(lm, corpus, /*epochs=*/8, 2e-3f);
    nn::ActRanges ranges;
    calibrate_lm(lm, corpus, ranges);

    std::vector<std::string> cells = {spec.name};
    for (int k = 0; k < kNumTasks; ++k) {
      const auto& items = task_items[static_cast<std::size_t>(k)];
      const double fp32 = task_accuracy(lm, items, nn::Precision::kFP32, &ranges);
      const double fp16 = task_accuracy(lm, items, nn::Precision::kFP16, &ranges);
      const double int8 = task_accuracy(lm, items, nn::Precision::kINT8, &ranges);
      cells.push_back(core::fmt(fp32) + "/" + core::fmt(fp32 - fp16) + "/" +
                      core::fmt(fp32 - int8));
      csv += spec.name + "," + task_name(static_cast<TaskKind>(k)) + "," +
             core::fmt(fp32) + "," + core::fmt(fp32 - fp16) + "," +
             core::fmt(fp32 - int8) + "\n";
    }
    table.add_row(std::move(cells));
  }

  const std::string out = table.str();
  std::fputs(out.c_str(), stdout);
  bench::write_file("table5_nlp.txt" + cli.shard_suffix(), out);
  bench::write_file("table5_nlp.csv" + cli.shard_suffix(), csv);
  return 0;
}
