// Table 5: data-precision SysNoise on NLP — OPT-mini sizes x four
// multiple-choice tasks; FP32 accuracy and FP16/INT8 deltas. Expected
// shape vs the paper: both precision deltas are small and task-dependent
// (sometimes negative), larger models score higher.
//
// Runs on the plan -> execute -> merge stack (bench_util.h): one SweepPlan
// per (model, subtask) over the NLP-applicable axes (Tokenizer, Precision,
// Backend), so the bench supports --emit-plan/--shard/--merge and the
// distributed --coordinate/--connect/--submit modes. The classic Table 5
// cells are rendered from the plans' raw metrics, byte-identical to the
// pre-plan monolithic bench; the full per-axis report additionally lands in
// table5_nlp_axes.{txt,csv}.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "nlp/eval_task.h"

using namespace sysnoise;
using namespace sysnoise::nlp;

namespace {

using Role = core::PlannedConfig::Role;

// `runs` is model-major, subtask-minor: zoo order x kNumTasks.
void render_and_write(const std::vector<bench::PlanRun>& runs) {
  std::vector<std::string> headers = {"Architecture"};
  for (int k = 0; k < kNumTasks; ++k)
    headers.push_back(std::string(task_name(static_cast<TaskKind>(k))) +
                      " FP32/dFP16/dINT8");
  core::TextTable table(headers);
  std::string csv = "model,task,fp32,d_fp16,d_int8\n";
  std::vector<core::AxisReport> reports;

  const std::size_t models = runs.size() / static_cast<std::size_t>(kNumTasks);
  for (std::size_t m = 0; m < models; ++m) {
    // The task names are "<model>/<subtask>".
    const std::string& first =
        runs[m * static_cast<std::size_t>(kNumTasks)].plan.task;
    const std::string model = first.substr(0, first.find('/'));
    std::vector<std::string> cells = {model};
    for (int k = 0; k < kNumTasks; ++k) {
      const bench::PlanRun& run =
          runs[m * static_cast<std::size_t>(kNumTasks) +
               static_cast<std::size_t>(k)];
      const double fp32 = bench::planned_metric(run, Role::kBaseline);
      const double fp16 =
          bench::planned_metric(run, Role::kOption, "Precision", "FP16");
      const double int8 =
          bench::planned_metric(run, Role::kOption, "Precision", "INT8");
      cells.push_back(core::fmt(fp32) + "/" + core::fmt(fp32 - fp16) + "/" +
                      core::fmt(fp32 - int8));
      csv += model + "," + task_name(static_cast<TaskKind>(k)) + "," +
             core::fmt(fp32) + "," + core::fmt(fp32 - fp16) + "," +
             core::fmt(fp32 - int8) + "\n";
      reports.push_back(core::assemble_report(run.plan, run.metrics));
    }
    table.add_row(std::move(cells));
  }

  const std::string out = table.str();
  std::fputs(out.c_str(), stdout);
  bench::write_file("table5_nlp.txt", out);
  bench::write_file("table5_nlp.csv", csv);
  const std::string axes_table = core::render_axis_table(reports, "ACC");
  bench::write_file("table5_nlp_axes.txt", axes_table);
  bench::write_file("table5_nlp_axes.csv", core::axis_report_csv(reports));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table5_nlp");
  bench::banner("Table 5 — NLP data-precision noise (OPT-mini zoo)",
                "Sec. 4.2, Table 5");
  bench::BenchTrace trace(cli);

  auto zoo = opt_mini_zoo();
  if (bench::fast_mode()) zoo.resize(1);

  struct Unit {
    std::shared_ptr<TrainedLm> lm;
    std::unique_ptr<NlpChoiceTask> task;
  };
  std::shared_ptr<TrainedLm> lm;  // current model, shared by its 4 subtasks

  bench::PlanBenchDef def;
  def.units = zoo.size() * static_cast<std::size_t>(kNumTasks);
  def.make = [&](std::size_t i) {
    const auto& spec = zoo[i / static_cast<std::size_t>(kNumTasks)];
    const auto kind =
        static_cast<TaskKind>(i % static_cast<std::size_t>(kNumTasks));
    if (kind == static_cast<TaskKind>(0)) {
      std::printf("[table5] training %s...\n", spec.name.c_str());
      std::fflush(stdout);
      lm = std::make_shared<TrainedLm>(get_lm(spec.name));
    }
    auto holder = std::make_shared<Unit>();
    holder->lm = lm;
    holder->task = std::make_unique<NlpChoiceTask>(*holder->lm, kind);
    bench::PlanUnit unit;
    unit.task_spec = dist::nlp_spec(spec.name, task_name(kind)).to_json();
    unit.plan = core::plan_sweep(*holder->task, core::AxisRegistry::global());
    unit.task = holder->task.get();
    unit.owner = std::move(holder);
    return unit;
  };
  def.render = render_and_write;
  return bench::run_standard_modes(cli, trace, def);
}
