// Table 4: SysNoise on the CityScapes-substitute segmentation benchmark —
// ΔmIoU per axis. Expected shape vs the paper: decode/resize/color ≈ 0,
// upsample and ceil-mode dominate, U-Net (no max-pool) has no ceil entry.
//
// Runs on the plan/execute/merge lifecycle via run_standard_modes
// (bench_util.h): --emit-plan, --shard i/N and --merge, bit-identical to
// the unsharded run — and the distributed --coordinate / --connect modes
// on the same plan seam.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

namespace {

void render_and_write(const std::vector<bench::PlanRun>& runs) {
  std::vector<core::AxisReport> reports;
  for (const bench::PlanRun& run : runs)
    reports.push_back(core::assemble_report(run.plan, run.metrics));
  const std::string table = core::render_axis_table(reports, "mIoU");
  std::fputs(table.c_str(), stdout);
  bench::write_file("table4_segmentation.txt", table);
  bench::write_file("table4_segmentation.csv", core::axis_report_csv(reports));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli =
      bench::parse_cli(argc, argv, "table4_segmentation");
  bench::banner("Table 4 — CityScapes-substitute segmentation",
                "Sec. 4.2, Table 4");
  bench::BenchTrace trace(cli);

  std::vector<std::string> names = {"DeepLab-S", "DeepLab-M", "UNet"};
  if (bench::fast_mode()) names.resize(1);

  struct Unit {
    models::TrainedSegmenter trained;
    models::SegmenterTask task;
    explicit Unit(models::TrainedSegmenter t)
        : trained(std::move(t)), task(trained) {}
  };

  bench::PlanBenchDef def;
  def.units = names.size();
  def.make = [&](std::size_t i) {
    const std::string& name = names[i];
    std::printf("[table4] %s: training/loading...\n", name.c_str());
    std::fflush(stdout);
    auto holder = std::make_shared<Unit>(models::get_segmenter(name));
    std::printf("[table4] %s: trained mIoU %.2f, sweeping noise axes...\n",
                name.c_str(), holder->trained.trained_miou);
    std::fflush(stdout);
    bench::PlanUnit unit;
    unit.task_spec = dist::segmenter_spec(name).to_json();
    unit.plan = core::plan_sweep(holder->task, core::AxisRegistry::global());
    unit.task = &holder->task;
    unit.seed_metric = holder->trained.trained_miou;
    unit.has_seed = true;
    unit.owner = std::move(holder);
    return unit;
  };
  def.render = render_and_write;
  return bench::run_standard_modes(cli, trace, def);
}
