// Table 4: SysNoise on the CityScapes-substitute segmentation benchmark —
// ΔmIoU per axis. Expected shape vs the paper: decode/resize/color ≈ 0,
// upsample and ceil-mode dominate, U-Net (no max-pool) has no ceil entry.
//
// Supports the plan/execute/merge lifecycle (bench_util.h): --emit-plan,
// --shard i/N and --merge, bit-identical to the unsharded run — and the
// distributed --coordinate / --connect modes on the same plan seam.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/disk_stage_cache.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

namespace {

void render_and_write(const std::vector<core::AxisReport>& reports) {
  const std::string table = core::render_axis_table(reports, "mIoU");
  std::fputs(table.c_str(), stdout);
  bench::write_file("table4_segmentation.txt", table);
  bench::write_file("table4_segmentation.csv", core::axis_report_csv(reports));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli =
      bench::parse_cli(argc, argv, "table4_segmentation");
  bench::banner("Table 4 — CityScapes-substitute segmentation",
                "Sec. 4.2, Table 4");
  bench::BenchTrace trace(cli);

  if (cli.connecting()) return bench::run_bench_worker(cli);

  if (cli.merging()) {
    std::vector<core::AxisReport> reports;
    for (const bench::PlanRun& run :
         bench::merge_shard_files(cli, cli.merge_files))
      reports.push_back(core::assemble_report(run.plan, run.metrics));
    render_and_write(reports);
    return 0;
  }

  std::vector<std::string> names = {"DeepLab-S", "DeepLab-M", "UNet"};
  if (bench::fast_mode()) names.resize(1);

  core::SweepCache cache;
  core::StageStats stages;
  core::DiskStageCache disk;
  core::DiskStageCache* disk_ptr =
      bench::disk_stage_cache_enabled() ? &disk : nullptr;
  const core::StagedExecutor staged(&stages, disk_ptr);

  std::vector<core::SweepPlan> plans;
  std::vector<bench::PlanRun> shard_runs;
  std::vector<core::AxisReport> reports;
  std::vector<dist::DistJob> jobs;
  for (const auto& name : names) {
    std::printf("[table4] %s: training/loading...\n", name.c_str());
    std::fflush(stdout);
    auto ts = models::get_segmenter(name);
    models::SegmenterTask task(ts);
    const core::SweepPlan plan =
        core::plan_sweep(task, core::AxisRegistry::global());
    if (cli.emit_plan) {
      plans.push_back(plan);
      continue;
    }
    if (cli.dist_jobs()) {
      jobs.push_back({dist::segmenter_spec(name).to_json(), plan});
      continue;
    }
    std::printf("[table4] %s: trained mIoU %.2f, sweeping noise axes...\n",
                name.c_str(), ts.trained_miou);
    std::fflush(stdout);
    cache.seed(task, SysNoiseConfig::training_default(), ts.trained_miou);
    core::SweepOptions opts;
    opts.cache = &cache;
    if (cli.sharded()) {
      const core::ShardExecutor shard(staged, cli.shard_index, cli.shard_count);
      shard_runs.push_back({plan, shard.execute(task, plan, opts)});
    } else {
      reports.push_back(
          core::assemble_report(plan, staged.execute(task, plan, opts)));
    }
  }

  if (cli.emit_plan) {
    bench::write_plan_file(cli, plans);
    return 0;
  }
  if (cli.dist_jobs()) {
    std::vector<core::MetricMap> results;
    if (!bench::dist_results(cli, jobs, &results, &trace)) return 0;  // --emit-jobs
    for (std::size_t i = 0; i < jobs.size(); ++i)
      reports.push_back(core::assemble_report(jobs[i].plan, results[i]));
    render_and_write(reports);
    return 0;
  }
  bench::print_stage_cache_stats(cli, stages, cache.hits());
  trace.finish(&stages);
  if (cli.sharded()) {
    bench::write_shard_file(cli, shard_runs);
    return 0;
  }
  render_and_write(reports);
  return 0;
}
