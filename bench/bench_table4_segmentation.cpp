// Table 4: SysNoise on the CityScapes-substitute segmentation benchmark —
// ΔmIoU per axis. Expected shape vs the paper: decode/resize/color ≈ 0,
// upsample and ceil-mode dominate, U-Net (no max-pool) has no ceil entry.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "models/eval_tasks.h"

using namespace sysnoise;

int main() {
  bench::banner("Table 4 — CityScapes-substitute segmentation",
                "Sec. 4.2, Table 4");

  std::vector<std::string> names = {"DeepLab-S", "DeepLab-M", "UNet"};
  if (bench::fast_mode()) names.resize(1);

  core::SweepCache cache;
  core::StageStats stages;
  std::vector<core::AxisReport> reports;
  for (const auto& name : names) {
    std::printf("[table4] %s: training/loading...\n", name.c_str());
    std::fflush(stdout);
    auto ts = models::get_segmenter(name);
    std::printf("[table4] %s: trained mIoU %.2f, sweeping noise axes...\n",
                name.c_str(), ts.trained_miou);
    std::fflush(stdout);
    models::SegmenterTask task(ts);
    reports.push_back(models::staged_sweep_seeded(task, task.trained_metric(),
                                                  cache, {}, &stages));
  }
  std::printf("[table4] stage cache: %zu/%zu preprocess evals reused, "
              "%zu/%zu forwards reused; metric memo %zu hits\n",
              stages.preprocess_hits, stages.evaluations, stages.forward_hits,
              stages.evaluations, cache.hits());

  const std::string table = core::render_axis_table(reports, "mIoU");
  std::fputs(table.c_str(), stdout);
  bench::write_file("table4_segmentation.txt", table);
  bench::write_file("table4_segmentation.csv", core::axis_report_csv(reports));
  return 0;
}
