// Table 6: does test-time adaptation (TENT) help against SysNoise?
// Expected shape vs the paper: TENT *hurts* on almost every model/noise
// pair — deployment noise is a far smaller shift than the corruptions
// TENT was designed for, so entropy minimization mostly destroys accuracy.
//
// The noise grid comes from core::sweep() over a restricted registry
// (Decode / Resize / Color Mode), so the option vectors are the same ones
// every other bench sweeps — no hand-rolled per-axis loops to drift out of
// sync with the registry.
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/mitigation.h"
#include "core/report.h"

using namespace sysnoise;

namespace {

// Adapts a plain metric closure (e.g. the stateful fresh-model-per-config
// TENT evaluation) to the sweep engine.
class FnTask : public core::EvalTask {
 public:
  FnTask(std::string name, std::function<double(const SysNoiseConfig&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  const std::string& name() const override { return name_; }
  core::TaskTraits traits() const override {
    return {core::TaskKind::kClassification, true};
  }
  double evaluate(const SysNoiseConfig& cfg) const override {
    return fn_(cfg);
  }

 private:
  std::string name_;
  std::function<double(const SysNoiseConfig&)> fn_;
};

double color_delta(const core::AxisReport& r) {
  const core::AxisResult* color = r.find("Color Mode");
  const core::OptionDelta* nv12 =
      color != nullptr
          ? color->option(color_mode_name(ColorMode::kNv12RoundTrip))
          : nullptr;
  return nv12 != nullptr ? nv12->delta : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table6_tent");
  bench::banner("Table 6 — TENT test-time adaptation vs SysNoise",
                "Sec. 4.3, Table 6");

  // Light members of four families (the paper's Table 6 spans the same
  // families at ImageNet scale; the TENT sweep re-adapts a fresh model per
  // noise configuration, so heavyweight rows are disproportionately slow).
  std::vector<std::string> names = {"MCUNet", "ResNet-XS", "ViT-T", "Swin-T"};
  if (bench::fast_mode()) names.resize(2);

  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  // Table 6's grid: the pre-processing axes the paper pairs TENT against.
  core::AxisRegistry grid;
  grid.add(*core::AxisRegistry::global().find("Decode"));
  grid.add(*core::AxisRegistry::global().find("Resize"));
  grid.add(*core::AxisRegistry::global().find("Color Mode"));

  core::TextTable table({"Architecture", "Trained ACC", "Decode", "Resize",
                         "Color Mode"});
  std::string csv =
      "model,tent,decode_mean,decode_max,resize_mean,resize_max,color\n";

  auto run_variant = [&](const FnTask& task, double base) {
    core::SweepCache cache;
    cache.seed(task, SysNoiseConfig::training_default(), base);
    core::SweepOptions opts;
    opts.cache = &cache;
    opts.registry = &grid;
    opts.threads = 1;  // the TENT closure retrains per config — keep serial
    return core::sweep(task, opts);
  };
  auto add_row = [&](const std::string& label, int tent,
                     const core::AxisReport& r) {
    const core::AxisResult* decode = r.find("Decode");
    const core::AxisResult* resize = r.find("Resize");
    const double color = color_delta(r);
    table.add_row({label, core::fmt(r.trained),
                   core::fmt_mm(decode->mean, decode->max),
                   core::fmt_mm(resize->mean, resize->max), core::fmt(color)});
    csv += label.substr(0, label.find(' ')) + "," + std::to_string(tent) +
           "," + core::fmt(decode->mean) + "," + core::fmt(decode->max) + "," +
           core::fmt(resize->mean) + "," + core::fmt(resize->max) + "," +
           core::fmt(color) + "\n";
  };

  return bench::run_standard_modes(
      cli, names,
      [&](const std::string& name) {
        std::printf("[table6] %s (w/o TENT sweep)...\n", name.c_str());
        std::fflush(stdout);
        // Without TENT: plain evaluation of one trained model.
        auto tc = models::get_classifier(name);
        const FnTask plain(name + " (w/o TENT)",
                           [&](const SysNoiseConfig& c) {
                             return models::eval_classifier(*tc.model, ds.eval,
                                                            c, spec,
                                                            &tc.ranges);
                           });
        add_row(plain.name(), 0, run_variant(plain, tc.trained_acc));

        std::printf("[table6] %s (w/ TENT sweep)...\n", name.c_str());
        std::fflush(stdout);
        // With TENT: fresh model per noise config (adaptation is stateful).
        const FnTask tent(name + " (w/ TENT)", [&](const SysNoiseConfig& c) {
          auto fresh = models::get_classifier(name);
          return core::eval_classifier_tent(*fresh.model, ds.eval, c, spec,
                                            &fresh.ranges);
        });
        add_row(tent.name(), 1, run_variant(tent, tc.trained_acc));
      },
      [&] { return std::make_pair(table.str(), csv); });
}
