// Table 6: does test-time adaptation (TENT) help against SysNoise?
// Expected shape vs the paper: TENT *hurts* on almost every model/noise
// pair — deployment noise is a far smaller shift than the corruptions
// TENT was designed for, so entropy minimization mostly destroys accuracy.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/mitigation.h"
#include "core/report.h"

using namespace sysnoise;

namespace {

struct TentRow {
  std::string model;
  double trained;
  double decode_mean, decode_max;
  double resize_mean, resize_max;
  double color;
};

template <typename EvalFn>
TentRow sweep(const std::string& name, double base, const EvalFn& eval) {
  TentRow row{name, base, 0, -1e30, 0, -1e30, 0};
  for (auto v : decoder_noise_options()) {
    SysNoiseConfig c;
    c.decoder = v;
    const double d = base - eval(c);
    row.decode_mean += d / static_cast<double>(decoder_noise_options().size());
    row.decode_max = std::max(row.decode_max, d);
  }
  for (auto m : resize_noise_options()) {
    SysNoiseConfig c;
    c.resize = m;
    const double d = base - eval(c);
    row.resize_mean += d / static_cast<double>(resize_noise_options().size());
    row.resize_max = std::max(row.resize_max, d);
  }
  SysNoiseConfig c;
  c.color = ColorMode::kNv12RoundTrip;
  row.color = base - eval(c);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table6_tent");
  bench::banner("Table 6 — TENT test-time adaptation vs SysNoise",
                "Sec. 4.3, Table 6");

  // Light members of four families (the paper's Table 6 spans the same
  // families at ImageNet scale; the TENT sweep re-adapts a fresh model per
  // noise configuration, so heavyweight rows are disproportionately slow).
  std::vector<std::string> names = {"MCUNet", "ResNet-XS", "ViT-T", "Swin-T"};
  if (bench::fast_mode()) names.resize(2);
  if (bench::handle_row_cli(cli, names, "table6_tent.csv")) return 0;
  names = bench::shard_slice(names, cli);

  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  core::TextTable table({"Architecture", "Trained ACC", "Decode", "Resize",
                         "Color Mode"});
  std::string csv = "model,tent,decode_mean,decode_max,resize_mean,resize_max,color\n";
  for (const auto& name : names) {
    std::printf("[table6] %s (w/o TENT sweep)...\n", name.c_str());
    std::fflush(stdout);
    // Without TENT: plain evaluation.
    auto tc = models::get_classifier(name);
    const auto plain = sweep(name, tc.trained_acc, [&](const SysNoiseConfig& c) {
      return models::eval_classifier(*tc.model, ds.eval, c, spec, &tc.ranges);
    });
    table.add_row({name + " (w/o TENT)", core::fmt(plain.trained),
                   core::fmt_mm(plain.decode_mean, plain.decode_max),
                   core::fmt_mm(plain.resize_mean, plain.resize_max),
                   core::fmt(plain.color)});
    csv += name + ",0," + core::fmt(plain.decode_mean) + "," +
           core::fmt(plain.decode_max) + "," + core::fmt(plain.resize_mean) + "," +
           core::fmt(plain.resize_max) + "," + core::fmt(plain.color) + "\n";

    std::printf("[table6] %s (w/ TENT sweep)...\n", name.c_str());
    std::fflush(stdout);
    // With TENT: fresh model per noise axis (adaptation is stateful).
    const auto tent = sweep(name, tc.trained_acc, [&](const SysNoiseConfig& c) {
      auto fresh = models::get_classifier(name);
      return core::eval_classifier_tent(*fresh.model, ds.eval, c, spec,
                                        &fresh.ranges);
    });
    table.add_row({name + " (w/ TENT)", core::fmt(tent.trained),
                   core::fmt_mm(tent.decode_mean, tent.decode_max),
                   core::fmt_mm(tent.resize_mean, tent.resize_max),
                   core::fmt(tent.color)});
    csv += name + ",1," + core::fmt(tent.decode_mean) + "," +
           core::fmt(tent.decode_max) + "," + core::fmt(tent.resize_mean) + "," +
           core::fmt(tent.resize_max) + "," + core::fmt(tent.color) + "\n";
  }

  const std::string out = table.str();
  std::fputs(out.c_str(), stdout);
  bench::write_file("table6_tent.txt" + cli.shard_suffix(), out);
  bench::write_file("table6_tent.csv" + cli.shard_suffix(), csv);
  return 0;
}
