// Table 8: mix training on the decoder — train x test matrix + mean/std.
// Expected shape vs the paper: the mix row's std collapses (paper: 0.36 ->
// 0.065) while clean accuracy is preserved.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/mitigation.h"
#include "core/report.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table8_mix_decoder");
  bench::banner("Table 8 — mix training on the decoder",
                "Sec. 4.3, Table 8 / Algo. 1");

  const std::vector<jpeg::DecoderVendor> grid = {jpeg::DecoderVendor::kPillow,
                                                 jpeg::DecoderVendor::kOpenCV,
                                                 jpeg::DecoderVendor::kFFmpeg};
  const std::string model = "ResNet-S";

  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  std::vector<std::string> headers = {"Train \\ Test"};
  for (auto v : grid) headers.push_back(jpeg::vendor_name(v));
  headers.push_back("Mean");
  headers.push_back("Std.");
  core::TextTable table(headers);
  std::string csv = "train,test,acc\n";

  auto add_row = [&](const std::string& row_name,
                     const models::ClsPreprocessor& prep, const std::string& tag) {
    std::printf("[table8] training %s with %s decoding...\n", model.c_str(),
                row_name.c_str());
    std::fflush(stdout);
    auto tc = models::get_classifier(model, tag, &prep);
    std::vector<std::string> cells = {row_name};
    double sum = 0.0, sq = 0.0;
    for (auto v : grid) {
      SysNoiseConfig cfg = SysNoiseConfig::training_default();
      cfg.decoder = v;
      const double acc =
          models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
      cells.push_back(core::fmt(acc));
      csv += row_name + "," + std::string(jpeg::vendor_name(v)) + "," +
             core::fmt(acc) + "\n";
      sum += acc;
      sq += acc * acc;
    }
    const double mean = sum / static_cast<double>(grid.size());
    const double var = sq / static_cast<double>(grid.size()) - mean * mean;
    cells.push_back(core::fmt(mean));
    cells.push_back(core::fmt(std::sqrt(std::max(var, 0.0)), 3));
    table.add_row(std::move(cells));
  };

  auto rows = grid;
  if (bench::fast_mode()) rows.resize(1);
  std::vector<std::string> labels;
  for (auto train_v : rows) labels.push_back(jpeg::vendor_name(train_v));
  labels.push_back("mix");

  return bench::run_standard_modes(
      cli, labels,
      [&](const std::string& label) {
        if (label == "mix") {
          const auto mix = core::mix_training_preprocessor(
              spec, /*mix_decoder=*/true, /*mix_resize=*/false);
          add_row("mix", mix, "t8_mix");
          return;
        }
        SysNoiseConfig cfg = SysNoiseConfig::training_default();
        cfg.decoder = decoder_vendor_from_name(label);
        const auto prep = core::fixed_config_preprocessor(spec, cfg);
        add_row(label, prep, "t8_" + label);
      },
      [&] { return std::make_pair(table.str(), csv); });
}
