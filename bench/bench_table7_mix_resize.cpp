// Table 7: mix training on the resize method — train x test accuracy
// matrix plus per-row mean/std. Expected shape vs the paper: diagonal
// (train==test) entries are the row maxima, single-method rows have large
// std across test methods, the "mix" row has the smallest std without
// losing clean accuracy.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/mitigation.h"
#include "core/report.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table7_mix_resize");
  bench::banner("Table 7 — mix training on resize", "Sec. 4.3, Table 7 / Algo. 1");

  // The six resize methods of the paper's Table 7 grid.
  const std::vector<ResizeMethod> grid = {
      ResizeMethod::kPillowBilinear, ResizeMethod::kPillowNearest,
      ResizeMethod::kPillowBicubic,  ResizeMethod::kOpenCVNearest,
      ResizeMethod::kOpenCVBilinear, ResizeMethod::kOpenCVBicubic};
  const std::string model = "ResNet-S";  // the ResNet-50 stand-in of this repro

  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();

  std::vector<std::string> headers = {"Train \\ Test"};
  for (auto m : grid) headers.push_back(resize_method_name(m));
  headers.push_back("Mean");
  headers.push_back("Std.");
  core::TextTable table(headers);
  std::string csv = "train,test,acc\n";

  auto add_row = [&](const std::string& row_name,
                     const models::ClsPreprocessor& prep, const std::string& tag) {
    std::printf("[table7] training %s with %s preprocessing...\n", model.c_str(),
                row_name.c_str());
    std::fflush(stdout);
    auto tc = models::get_classifier(model, tag, &prep);
    std::vector<std::string> cells = {row_name};
    double sum = 0.0, sq = 0.0;
    for (auto m : grid) {
      SysNoiseConfig cfg = SysNoiseConfig::training_default();
      cfg.resize = m;
      const double acc =
          models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
      cells.push_back(core::fmt(acc));
      csv += row_name + "," + resize_method_name(m) + "," + core::fmt(acc) + "\n";
      sum += acc;
      sq += acc * acc;
    }
    const double mean = sum / static_cast<double>(grid.size());
    const double var = sq / static_cast<double>(grid.size()) - mean * mean;
    cells.push_back(core::fmt(mean));
    cells.push_back(core::fmt(std::sqrt(std::max(var, 0.0)), 3));
    table.add_row(std::move(cells));
  };

  auto rows = grid;
  if (bench::fast_mode()) rows.resize(1);
  std::vector<std::string> labels;
  for (auto train_m : rows) labels.push_back(resize_method_name(train_m));
  labels.push_back("mix");

  return bench::run_standard_modes(
      cli, labels,
      [&](const std::string& label) {
        if (label == "mix") {
          const auto mix = core::mix_training_preprocessor(
              spec, /*mix_decoder=*/false, /*mix_resize=*/true);
          add_row("mix", mix, "t7_mix");
          return;
        }
        SysNoiseConfig cfg = SysNoiseConfig::training_default();
        cfg.resize = resize_method_from_name(label);
        const auto prep = core::fixed_config_preprocessor(spec, cfg);
        add_row(label, prep, "t7_" + label);
      },
      [&] { return std::make_pair(table.str(), csv); });
}
