// Table 10 (Appendix C): SysNoise on text-to-speech — spectrogram MSE
// under precision noise, STFT-operator noise, and their combination, for
// a feed-forward ("FastSpeech-mini") and a convolutional ("Tacotron-mini")
// model. Expected shape vs the paper: STFT noise > precision noise,
// combined worst.
#include <cstdio>

#include "audio/tts.h"
#include "bench/bench_util.h"
#include "core/report.h"

using namespace sysnoise;
using namespace sysnoise::audio;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table10_tts");
  bench::banner("Table 10 — text-to-speech SysNoise", "Appendix C, Table 10");

  const std::vector<std::string> model_names = {"FastSpeech-mini", "Tacotron-mini"};
  if (bench::handle_row_cli(cli, model_names, "table10_tts.csv")) return 0;

  const TtsDataset ds = make_tts_dataset();
  core::TextTable table({"Method", "Clean", "FP16", "INT8", "STFT", "Combined"});
  std::string csv = "model,clean,fp16,int8,stft,combined\n";

  for (const std::string& name : bench::shard_slice(model_names, cli)) {
    std::printf("[table10] training %s...\n", name.c_str());
    std::fflush(stdout);
    Rng rng(name == "FastSpeech-mini" ? 21u : 22u);
    auto model = make_tts_model(name, ds, rng);
    train_tts(*model, ds, /*epochs=*/30, 2e-3f);
    nn::ActRanges ranges;
    calibrate_tts(*model, ds, ranges);

    const double clean = tts_system_discrepancy(*model, ds, nn::Precision::kFP32,
                                                StftImpl::kReference, &ranges);
    const double fp16 = tts_system_discrepancy(*model, ds, nn::Precision::kFP16,
                                               StftImpl::kReference, &ranges);
    const double int8 = tts_system_discrepancy(*model, ds, nn::Precision::kINT8,
                                               StftImpl::kReference, &ranges);
    const double stft = tts_system_discrepancy(*model, ds, nn::Precision::kFP32,
                                               StftImpl::kFastFixed, &ranges);
    const double comb = tts_system_discrepancy(*model, ds, nn::Precision::kINT8,
                                               StftImpl::kFastFixed, &ranges);
    table.add_row({name, core::fmt(clean, 6), core::fmt(fp16, 6), core::fmt(int8, 6),
                   core::fmt(stft, 6), core::fmt(comb, 6)});
    csv += name + "," + core::fmt(clean, 6) + "," + core::fmt(fp16, 6) + "," +
           core::fmt(int8, 6) + "," + core::fmt(stft, 6) + "," + core::fmt(comb, 6) +
           "\n";
  }

  const std::string out = table.str();
  std::fputs(out.c_str(), stdout);
  bench::write_file("table10_tts.txt" + cli.shard_suffix(), out);
  bench::write_file("table10_tts.csv" + cli.shard_suffix(), csv);
  return 0;
}
