// Table 10 (Appendix C): SysNoise on text-to-speech — spectrogram MSE
// under precision noise, STFT-operator noise, and their combination, for
// a feed-forward ("FastSpeech-mini") and a convolutional ("Tacotron-mini")
// model. Expected shape vs the paper: STFT noise > precision noise,
// combined worst.
//
// Runs on the plan -> execute -> merge stack (bench_util.h): two SweepPlans
// per model — a restricted {Precision, Stft} registry reproducing the
// classic five-column table byte-identically (its Combined IS the classic
// INT8+fast-fixed-fft cell), and the full global registry adding the
// Backend/Resample/window/hop axes — so the bench supports
// --emit-plan/--shard/--merge and the distributed --coordinate/--connect/
// --submit modes. The per-axis report lands in table10_tts_axes.{txt,csv}.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "audio/eval_task.h"
#include "bench/bench_util.h"
#include "core/report.h"

using namespace sysnoise;
using namespace sysnoise::audio;

namespace {

using Role = core::PlannedConfig::Role;

// `runs` holds, per model, [restricted legacy plan, full-registry plan].
void render_and_write(const std::vector<bench::PlanRun>& runs) {
  core::TextTable table({"Method", "Clean", "FP16", "INT8", "STFT", "Combined"});
  std::string csv = "model,clean,fp16,int8,stft,combined\n";
  std::vector<core::AxisReport> reports;

  for (std::size_t m = 0; m * 2 < runs.size(); ++m) {
    const bench::PlanRun& legacy = runs[2 * m];
    const bench::PlanRun& full = runs[2 * m + 1];
    const std::string& name = legacy.plan.task;
    const double clean = bench::planned_metric(legacy, Role::kBaseline);
    const double fp16 =
        bench::planned_metric(legacy, Role::kOption, "Precision", "FP16");
    const double int8 =
        bench::planned_metric(legacy, Role::kOption, "Precision", "INT8");
    const double stft =
        bench::planned_metric(legacy, Role::kOption, "Stft", "fast-fixed-fft");
    const double comb = bench::planned_metric(legacy, Role::kCombined);
    table.add_row({name, core::fmt(clean, 6), core::fmt(fp16, 6),
                   core::fmt(int8, 6), core::fmt(stft, 6), core::fmt(comb, 6)});
    csv += name + "," + core::fmt(clean, 6) + "," + core::fmt(fp16, 6) + "," +
           core::fmt(int8, 6) + "," + core::fmt(stft, 6) + "," +
           core::fmt(comb, 6) + "\n";
    reports.push_back(core::assemble_report(full.plan, full.metrics));
  }

  const std::string out = table.str();
  std::fputs(out.c_str(), stdout);
  bench::write_file("table10_tts.txt", out);
  bench::write_file("table10_tts.csv", csv);
  const std::string axes_table = core::render_axis_table(reports, "MSE");
  bench::write_file("table10_tts_axes.txt", axes_table);
  bench::write_file("table10_tts_axes.csv", core::axis_report_csv(reports));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv, "table10_tts");
  bench::banner("Table 10 — text-to-speech SysNoise", "Appendix C, Table 10");
  bench::BenchTrace trace(cli);

  const std::vector<std::string> model_names = tts_model_names();

  // The classic table's noise grid: precision x STFT implementation. Its
  // Combined config (INT8 + fast-fixed-fft) is exactly the legacy
  // "Combined" cell.
  core::AxisRegistry legacy_axes;
  legacy_axes.add(*core::AxisRegistry::global().find("Precision"));
  legacy_axes.add(*core::AxisRegistry::global().find("Stft"));

  struct Unit {
    std::shared_ptr<TrainedTts> tts;
    std::shared_ptr<TtsTask> task;
  };
  std::shared_ptr<Unit> current;  // shared by one model's two plans

  bench::PlanBenchDef def;
  def.units = model_names.size() * 2;
  def.make = [&](std::size_t i) {
    const std::string& name = model_names[i / 2];
    if (i % 2 == 0) {
      std::printf("[table10] training %s...\n", name.c_str());
      std::fflush(stdout);
      current = std::make_shared<Unit>();
      current->tts = std::make_shared<TrainedTts>(get_tts(name));
      current->task = std::make_shared<TtsTask>(*current->tts);
    }
    bench::PlanUnit unit;
    unit.task_spec = dist::tts_spec(name).to_json();
    unit.plan = core::plan_sweep(
        *current->task,
        i % 2 == 0 ? legacy_axes : core::AxisRegistry::global());
    unit.task = current->task.get();
    unit.owner = current;
    return unit;
  };
  def.render = render_and_write;
  return bench::run_standard_modes(cli, trace, def);
}
