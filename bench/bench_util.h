// Shared helpers for the bench binaries: output directory handling, the
// banner each table prints, and the plan/shard/merge command line every
// table and fig bench grows in the plan -> execute -> merge lifecycle:
//
//   --emit-plan            write the bench's SweepPlans as JSON and exit
//   --shard i/N            evaluate only shard i of N (deterministic plan
//                          partition), writing a partial shard-result file
//   --merge f1 f2 ...      merge shard-result files from earlier --shard
//                          runs into the final report (no models needed)
//
// plus the distributed runtime (dist/coordinator.h) on the same plan seam:
//
//   --coordinate <port> [--min-workers N]
//                          serve this bench's SweepPlans as a coordinator:
//                          workers (sysnoise_worker, or any bench started
//                          with --connect) evaluate leased work units, the
//                          bench merges the streamed results and renders
//                          the ordinary report — byte-identical to the
//                          single-process run. Port 0 binds an ephemeral
//                          port; the chosen one is printed and written to
//                          <results_dir>/<bench>.port for worker launchers
//   --connect host:port    join a coordinator as a worker instead of
//                          running anything locally
//
// and the resident sweep service (svc/service.h, tools/sysnoise_svc.cpp)
// on the same seam:
//
//   --submit host:port [--priority N]
//                          submit this bench's jobs to a running sweep
//                          service instead of coordinating them here, then
//                          watch the jobs and render the merged report —
//                          byte-identical to the single-process run, even
//                          when the service is killed and restarted midway
//   --emit-jobs            write the bench's (task, plan) job list as JSON
//                          (<results_dir>/<bench>_jobs.json) for later
//                          `sysnoise_ctl submit`, and exit
//   --token T              shared-secret auth for --coordinate (require it
//                          of workers), --connect, and --submit
//   --trace DIR            flight recorder (obs/trace.h): record a span
//                          trace + metrics snapshot for this run into DIR
//                          (SYSNOISE_TRACE=DIR is the env spelling); off by
//                          default and provably inert — report bytes are
//                          identical either way
//
// Plan-level benches (tables 2-5, 10, fig 3) run through the PlanBenchDef
// overload of run_standard_modes and support every mode above. Benches
// whose unit of work is a row/model list rather than a SweepPlan (tables 1,
// 6-9, figs 4-5) use the row overload: the shard flags get row-level
// semantics (--shard runs every Nth row, --merge concatenates the per-shard
// CSVs) and --connect works (the worker side is bench-agnostic) but
// --coordinate/--submit need a plan and are rejected.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "core/executor.h"
#include "core/plan.h"
#include "core/staged_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "dist/coordinator.h"
#include "dist/task_factory.h"
#include "dist/worker.h"
#include "net/socket.h"
#include "svc/client.h"
#include "util/json.h"

namespace sysnoise::bench {

inline std::string results_dir() {
  const char* env = std::getenv("SYSNOISE_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void write_file(const std::string& name, const std::string& content) {
  std::ofstream f(results_dir() + "/" + name);
  f << content;
}

// Atomic publication for files other processes poll for (port files): write
// a temp sibling, then rename into place, so a reader never sees a partial
// write — either the old content, or the complete new one.
inline void write_file_atomic(const std::string& name,
                              const std::string& content) {
  const std::string final_path = results_dir() + "/" + name;
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    f << content;
    f.flush();
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", tmp_path.c_str());
      std::exit(2);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::fprintf(stderr, "cannot publish %s: %s\n", final_path.c_str(),
                 ec.message().c_str());
    std::exit(2);
  }
}

inline std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("SysNoise reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

// SYSNOISE_FAST=1 trims model lists for smoke runs.
inline bool fast_mode() {
  const char* env = std::getenv("SYSNOISE_FAST");
  return env != nullptr && env[0] == '1';
}

// SYSNOISE_DISK_STAGE_CACHE=0 opts a bench out of persisting/loading stage
// products; one env contract for benches and workers alike.
inline bool disk_stage_cache_enabled() {
  return core::DiskStageCache::enabled_by_env();
}

// ---------------------------------------------------------------------------
// Shared --shard/--emit-plan/--merge command line
// ---------------------------------------------------------------------------

struct BenchCli {
  std::string bench;  // machine name, e.g. "table2_classification"
  int shard_index = 0;
  int shard_count = 1;
  bool emit_plan = false;
  std::vector<std::string> merge_files;
  int coordinate_port = -1;  // >= 0: serve as a distributed coordinator
  int min_workers = 1;
  int min_workers_timeout_s = 0;  // 0 = wait forever for the quorum
  std::string connect_host;  // non-empty: join a coordinator as a worker
  int connect_port = 0;
  std::string submit_host;   // non-empty: submit jobs to a sweep service
  int submit_port = 0;
  int priority = 0;          // --submit job priority
  bool emit_jobs = false;    // write the (task, plan) job list and exit
  std::string token;         // shared-secret auth for every dist mode
  std::string trace_dir;     // --trace DIR: record a span trace (obs/trace.h)

  bool sharded() const { return shard_count > 1; }
  bool merging() const { return !merge_files.empty(); }
  bool coordinating() const { return coordinate_port >= 0; }
  bool connecting() const { return !connect_host.empty(); }
  bool submitting() const { return !submit_host.empty(); }
  // Any mode that needs the (task-spec, plan) job list instead of local
  // evaluation: coordinate it, submit it, or just write it out.
  bool dist_jobs() const {
    return coordinating() || submitting() || emit_jobs;
  }
  // Suffix row-sharded benches append to their output names.
  std::string shard_suffix() const {
    return sharded() ? ".shard_" + std::to_string(shard_index) + "_of_" +
                           std::to_string(shard_count)
                     : "";
  }
  std::string shard_file() const {
    return results_dir() + "/" + bench + "_shard_" +
           std::to_string(shard_index) + "_of_" + std::to_string(shard_count) +
           ".json";
  }
  std::string plan_file() const { return results_dir() + "/" + bench + "_plan.json"; }
  std::string jobs_file() const {
    return results_dir() + "/" + bench + "_jobs.json";
  }
};

[[noreturn]] inline void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--emit-plan] [--emit-jobs] [--shard i/N] "
               "[--merge file...] [--trace DIR]\n"
               "       %s --coordinate <port> [--min-workers N] "
               "[--min-workers-timeout-s S] [--token T]\n"
               "       %s --connect host:port [--token T]\n"
               "       %s --submit host:port [--priority N] [--token T]\n",
               argv0, argv0, argv0, argv0);
  std::exit(2);
}

inline BenchCli parse_cli(int argc, char** argv, const char* bench_name) {
  BenchCli cli;
  cli.bench = bench_name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit-plan") {
      cli.emit_plan = true;
    } else if (arg == "--shard") {
      if (++i >= argc) usage(argv[0]);
      int idx = -1, count = 0;
      if (std::sscanf(argv[i], "%d/%d", &idx, &count) != 2 || count <= 0 ||
          idx < 0 || idx >= count) {
        std::fprintf(stderr, "bad --shard \"%s\" (want i/N with 0 <= i < N)\n",
                     argv[i]);
        std::exit(2);
      }
      cli.shard_index = idx;
      cli.shard_count = count;
    } else if (arg == "--merge") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        cli.merge_files.push_back(argv[++i]);
      if (cli.merge_files.empty()) usage(argv[0]);
    } else if (arg == "--coordinate") {
      if (++i >= argc) usage(argv[0]);
      // All-digit parse: atoi would turn a typo'd "4510x" into a silent
      // ephemeral-port bind. 0 is the explicit "pick an ephemeral port"
      // request (the bench prints the actual one).
      cli.coordinate_port = 0;
      const char* p = argv[i];
      if (*p == '\0') usage(argv[0]);
      for (; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') usage(argv[0]);
        cli.coordinate_port = cli.coordinate_port * 10 + (*p - '0');
        if (cli.coordinate_port > 65535) usage(argv[0]);
      }
    } else if (arg == "--min-workers") {
      if (++i >= argc) usage(argv[0]);
      cli.min_workers = std::atoi(argv[i]);
      if (cli.min_workers < 1) usage(argv[0]);
    } else if (arg == "--min-workers-timeout-s") {
      if (++i >= argc) usage(argv[0]);
      cli.min_workers_timeout_s = std::atoi(argv[i]);
      if (cli.min_workers_timeout_s < 0) usage(argv[0]);
    } else if (arg == "--connect") {
      if (++i >= argc) usage(argv[0]);
      if (!net::parse_host_port(argv[i], &cli.connect_host,
                                &cli.connect_port))
        usage(argv[0]);
    } else if (arg == "--submit") {
      if (++i >= argc) usage(argv[0]);
      if (!net::parse_host_port(argv[i], &cli.submit_host, &cli.submit_port))
        usage(argv[0]);
    } else if (arg == "--priority") {
      if (++i >= argc) usage(argv[0]);
      cli.priority = std::atoi(argv[i]);
    } else if (arg == "--emit-jobs") {
      cli.emit_jobs = true;
    } else if (arg == "--token") {
      if (++i >= argc) usage(argv[0]);
      cli.token = argv[i];
    } else if (arg == "--trace") {
      if (++i >= argc) usage(argv[0]);
      cli.trace_dir = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument \"%s\"\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (cli.merging() && (cli.sharded() || cli.emit_plan)) {
    std::fprintf(stderr, "--merge excludes --shard/--emit-plan\n");
    std::exit(2);
  }
  // Clear any previous run's port file NOW, before the (possibly long)
  // model training/loading that precedes binding: a launcher polling for
  // the file must never read a dead port from an earlier run.
  if (cli.coordinating())
    std::filesystem::remove(results_dir() + "/" + cli.bench + ".port");
  const int modes = (cli.coordinating() ? 1 : 0) + (cli.connecting() ? 1 : 0) +
                    (cli.submitting() ? 1 : 0) + (cli.emit_jobs ? 1 : 0) +
                    ((cli.merging() || cli.sharded() || cli.emit_plan) ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "--coordinate / --connect / --submit / --emit-jobs / "
                 "shard-lifecycle flags are mutually exclusive\n");
    std::exit(2);
  }
  return cli;
}

// ---------------------------------------------------------------------------
// Observability (obs/trace.h): --trace DIR or SYSNOISE_TRACE=DIR
// ---------------------------------------------------------------------------

// Per-bench flight recorder. Construct right after parse_cli: when tracing
// was requested (--trace DIR wins over SYSNOISE_TRACE=DIR) it resets the
// tracer + metrics registry, opens a top-level "bench.<name>" span covering
// the whole run, and finish() flushes <dir>/<bench>_<pid>_{trace,metrics,
// summary}.json — attaching the run's StageStats to the summary when given.
// When neither source is set, every member is an inert no-op, so benches
// construct it unconditionally (the report bytes are identical either way).
class BenchTrace {
 public:
  explicit BenchTrace(const BenchCli& cli)
      : label_("bench." + cli.bench),
        session_(cli.trace_dir.empty()
                     ? obs::TraceSession::from_env(cli.bench)
                     : obs::TraceSession(cli.trace_dir, cli.bench)) {
    if (session_.active())
      top_ = std::make_unique<obs::TraceSpan>(label_.c_str());
  }
  ~BenchTrace() { finish(nullptr); }
  BenchTrace(const BenchTrace&) = delete;
  BenchTrace& operator=(const BenchTrace&) = delete;

  bool active() const { return session_.active(); }

  // Extra summary sections (e.g. "fleet_metrics" from a coordinator run).
  void add_summary(const std::string& key, util::Json value) {
    if (session_.active()) session_.add_summary(key, std::move(value));
  }

  // Close the top-level span and flush the trace files; idempotent (the
  // destructor calls it with no stats for early-exit paths).
  void finish(const core::StageStats* stages) {
    top_.reset();
    if (!session_.active()) return;
    if (stages != nullptr)
      session_.add_summary("stage_stats", stages->to_json());
    const std::string path = session_.trace_path();
    session_.finish();
    std::printf("[trace] wrote %s (+ metrics/summary siblings)\n",
                path.c_str());
  }

 private:
  // label_ outlives session_ (declaration order): the drain inside
  // session_.finish() reads the span-name pointer top_ handed it.
  std::string label_;
  obs::TraceSession session_;
  std::unique_ptr<obs::TraceSpan> top_;
};

// The one-line stage-cache summary every staged bench prints — one shape for
// all tables so eyes (and greps) can compare runs, now covering the forward
// disk cache too.
inline void print_stage_cache_stats(const BenchCli& cli,
                                    const core::StageStats& s,
                                    std::size_t memo_hits) {
  std::printf(
      "[%s] stage cache: %zu/%zu preprocess evals reused, %zu/%zu forwards "
      "reused; disk: %zu pre hits / %zu computed (%zu persisted), %zu fwd "
      "hits / %zu computed; %zu batched forward calls; metric memo %zu "
      "hits\n",
      cli.bench.c_str(), s.preprocess_hits, s.evaluations, s.forward_hits,
      s.evaluations, s.preprocess_disk_hits, s.preprocess_computed,
      s.preprocess_persisted, s.forward_disk_hits, s.forward_computed,
      s.batched_forward_calls, memo_hits);
}

// ---------------------------------------------------------------------------
// Distributed mode (shared by every bench)
// ---------------------------------------------------------------------------

// --connect: serve a coordinator as a zoo-backed worker. Returns the bench's
// exit code. Bench-agnostic — the coordinator's welcome message says which
// models to resolve, so `bench_table2 --connect` can serve a fig3 sweep.
// Connection attempts retry for a couple of minutes (the coordinator may
// still be training/loading the models it is about to serve).
inline int run_bench_worker(const BenchCli& cli) {
  core::StageStats stages;
  core::DiskStageCache disk;
  dist::WorkerOptions opts;
  opts.stats = &stages;
  opts.disk = disk_stage_cache_enabled() ? &disk : nullptr;
  opts.verbose = true;
  opts.auth_token = cli.token;
  const dist::WorkerRunStats stats = dist::run_worker_retrying(
      cli.connect_host, cli.connect_port, dist::zoo_task_resolver(), opts,
      std::chrono::seconds(600));
  std::printf("[%s] worker %s: %zu leases, %zu configs evaluated\n",
              cli.bench.c_str(), stats.done ? "done" : "stopped",
              stats.leases_completed, stats.configs_evaluated);
  if (!stats.error.empty())
    std::fprintf(stderr, "[%s] worker error: %s\n", cli.bench.c_str(),
                 stats.error.c_str());
  return stats.done ? 0 : 1;
}

// Row-sharded benches have no SweepPlan for a coordinator/service to lease.
inline void reject_coordinate(const BenchCli& cli) {
  if (!cli.dist_jobs()) return;
  std::fprintf(stderr,
               "[%s] --coordinate/--submit/--emit-jobs need a plan-level "
               "bench (tables 2-4, fig3); this bench only supports "
               "--connect\n",
               cli.bench.c_str());
  std::exit(2);
}

// --coordinate: serve `jobs` until remote workers finished every work unit;
// returns one full MetricMap per job, ready for assembly. The caller built
// the jobs' plans from its models, exactly like the single-process path.
// The actual bound port (which may be ephemeral: `--coordinate 0`) is
// printed AND written to <results_dir>/<bench>.port so scripts launching
// workers can read it instead of hard-coding a collision-prone number.
inline std::vector<core::MetricMap> serve_coordinator(
    const BenchCli& cli, const std::vector<dist::DistJob>& jobs,
    BenchTrace* trace = nullptr) {
  dist::CoordinatorOptions opts;
  opts.port = cli.coordinate_port;
  opts.min_workers = cli.min_workers;
  opts.min_workers_timeout_s = cli.min_workers_timeout_s;
  opts.auth_token = cli.token;
  opts.verbose = true;
  dist::Coordinator coordinator(opts);
  // Atomic: worker launchers poll for this file and must never read a
  // half-written port number.
  write_file_atomic(cli.bench + ".port",
                    std::to_string(coordinator.port()) + "\n");
  std::printf("[%s] coordinating on port %d (min workers: %d; port file: "
              "%s/%s.port)\n",
              cli.bench.c_str(), coordinator.port(), cli.min_workers,
              results_dir().c_str(), cli.bench.c_str());
  std::fflush(stdout);
  std::vector<core::MetricMap> results = coordinator.run(jobs);
  if (trace != nullptr && trace->active()) {
    // One fleet-wide view for the summary: this process's instruments plus
    // the cumulative snapshots the workers shipped with their results. The
    // per-process metrics file stays coordinator-local, so sysnoise_trace
    // can sum the fleet's files without double counting.
    trace->add_summary("fleet_metrics",
                       obs::merge_snapshots(obs::metrics().snapshot(),
                                            coordinator.worker_metrics()));
  }
  const dist::CoordinatorStats stats = coordinator.stats();
  std::printf("[%s] distributed sweep done: %zu workers, %zu units "
              "(%zu re-leased after expiry/death), %zu results\n",
              cli.bench.c_str(), stats.workers_joined,
              stats.scheduler.completed, stats.scheduler.re_leases,
              stats.results_received);
  return results;
}

// --emit-jobs: write the (task-spec, plan) job list as JSON for later
// `sysnoise_ctl submit` against a running sweep service.
inline void write_jobs_file(const BenchCli& cli,
                            const std::vector<dist::DistJob>& jobs) {
  util::Json j = util::Json::object();
  j.set("bench", cli.bench);
  util::Json jjobs = util::Json::array();
  for (const dist::DistJob& job : jobs) {
    util::Json jj = util::Json::object();
    jj.set("task", job.task_spec);
    jj.set("plan", job.plan.to_json());
    jjobs.push_back(std::move(jj));
  }
  j.set("jobs", std::move(jjobs));
  std::ofstream f(cli.jobs_file());
  f << j.dump(2) << "\n";
  std::printf("wrote %s (%zu jobs)\n", cli.jobs_file().c_str(), jobs.size());
}

// --submit: hand the jobs to a resident sweep service and collect each
// merged MetricMap by watching until done — riding out service restarts, so
// the report a bench renders this way survives a kill -9 of the service
// byte-identically.
inline std::vector<core::MetricMap> submit_jobs(
    const BenchCli& cli, const std::vector<dist::DistJob>& jobs) {
  svc::ClientOptions copts;
  copts.host = cli.submit_host;
  copts.port = cli.submit_port;
  copts.token = cli.token;
  copts.verbose = true;
  svc::ServiceClient client(copts);
  std::vector<int> ids;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string name = cli.bench + "#" + std::to_string(i);
    ids.push_back(client.submit(jobs[i].task_spec, jobs[i].plan, cli.priority,
                                name));
    std::printf("[%s] submitted job %d (\"%s\", priority %d)\n",
                cli.bench.c_str(), ids.back(), name.c_str(), cli.priority);
    std::fflush(stdout);
  }
  std::vector<core::MetricMap> results;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results.push_back(client.collect(ids[i], [&](const util::Json& p) {
      std::printf("[%s] job %d: %s %d/%d units\n", cli.bench.c_str(), ids[i],
                  p.at("state").as_string().c_str(),
                  p.at("units_done").as_int(), p.at("units_total").as_int());
      std::fflush(stdout);
    }));
    std::printf("[%s] job %d done (%zu metrics)\n", cli.bench.c_str(), ids[i],
                results.back().size());
  }
  return results;
}

// Dispatch the dist_jobs() modes once the bench built its job list. Returns
// true with `*results` filled (coordinate/submit — the caller assembles and
// renders), or false when the invocation is complete (--emit-jobs).
inline bool dist_results(const BenchCli& cli,
                         const std::vector<dist::DistJob>& jobs,
                         std::vector<core::MetricMap>* results,
                         BenchTrace* trace = nullptr) {
  if (cli.emit_jobs) {
    write_jobs_file(cli, jobs);
    return false;
  }
  *results = cli.submitting() ? submit_jobs(cli, jobs)
                              : serve_coordinator(cli, jobs, trace);
  return true;
}

// Row-level shard slice for benches whose unit of work is a model/row list.
template <typename T>
inline std::vector<T> shard_slice(const std::vector<T>& rows,
                                  const BenchCli& cli) {
  if (!cli.sharded()) return rows;
  std::vector<T> out;
  for (std::size_t i = static_cast<std::size_t>(cli.shard_index);
       i < rows.size(); i += static_cast<std::size_t>(cli.shard_count))
    out.push_back(rows[i]);
  return out;
}

// Merge per-shard CSVs (from row-sharded benches) by concatenation,
// keeping the first file's header only.
inline std::string merge_csv_files(const std::vector<std::string>& paths) {
  std::string out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string content = read_file(paths[i]);
    if (i == 0) {
      out += content;
    } else {
      const std::size_t nl = content.find('\n');
      out += nl == std::string::npos ? content : content.substr(nl + 1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shard-result files for plan-level sharded benches (tables 2-4, fig 3)
// ---------------------------------------------------------------------------

// One executed (plan, partial metrics) pair; a shard file holds one per
// model the bench covers.
struct PlanRun {
  core::SweepPlan plan;
  core::MetricMap metrics;
};

inline void write_plan_file(const BenchCli& cli,
                            const std::vector<core::SweepPlan>& plans) {
  util::Json j = util::Json::array();
  for (const core::SweepPlan& plan : plans) j.push_back(plan.to_json());
  std::ofstream f(cli.plan_file());
  f << j.dump(2) << "\n";
  std::printf("wrote %s (%zu plans)\n", cli.plan_file().c_str(), plans.size());
}

inline void write_shard_file(const BenchCli& cli,
                             const std::vector<PlanRun>& runs) {
  util::Json j = util::Json::object();
  j.set("bench", cli.bench);
  j.set("shard_index", cli.shard_index);
  j.set("shard_count", cli.shard_count);
  util::Json jruns = util::Json::array();
  for (const PlanRun& run : runs) {
    util::Json jr = util::Json::object();
    jr.set("fingerprint", run.plan.fingerprint());
    jr.set("plan", run.plan.to_json());
    util::Json jm = util::Json::object();
    for (const auto& [key, value] : run.metrics) jm.set(key, value);
    jr.set("metrics", std::move(jm));
    jruns.push_back(std::move(jr));
  }
  j.set("runs", std::move(jruns));
  std::ofstream f(cli.shard_file());
  f << j.dump(2) << "\n";
  std::printf("wrote %s (%zu runs, shard %d/%d)\n", cli.shard_file().c_str(),
              runs.size(), cli.shard_index, cli.shard_count);
}

// Read shard files from --shard runs of the same bench and merge them:
// plans must agree run-for-run (verified by fingerprint), metrics union
// through ShardExecutor::merge (which verifies completeness). Exits with a
// diagnostic on any mismatch.
inline std::vector<PlanRun> merge_shard_files(
    const BenchCli& cli, const std::vector<std::string>& paths) {
  struct Partial {
    core::SweepPlan plan;
    std::string fingerprint;
    std::vector<core::MetricMap> parts;
  };
  std::vector<Partial> partials;
  for (const std::string& path : paths) {
    const util::Json j = util::Json::parse(read_file(path));
    if (j.at("bench").as_string() != cli.bench) {
      std::fprintf(stderr, "%s is a %s shard file, not %s\n", path.c_str(),
                   j.at("bench").as_string().c_str(), cli.bench.c_str());
      std::exit(2);
    }
    const util::Json& jruns = j.at("runs");
    if (!partials.empty() && partials.size() != jruns.size()) {
      std::fprintf(stderr, "%s holds %zu runs, earlier shards held %zu\n",
                   path.c_str(), jruns.size(), partials.size());
      std::exit(2);
    }
    for (std::size_t r = 0; r < jruns.size(); ++r) {
      const util::Json& jr = jruns.at(r);
      const std::string fingerprint = jr.at("fingerprint").as_string();
      if (partials.size() <= r) {
        Partial p;
        p.plan = core::SweepPlan::from_json(jr.at("plan"));
        p.fingerprint = p.plan.fingerprint();
        if (p.fingerprint != fingerprint) {
          std::fprintf(stderr, "%s run %zu: fingerprint mismatch after JSON "
                       "round trip\n", path.c_str(), r);
          std::exit(2);
        }
        partials.push_back(std::move(p));
      } else if (partials[r].fingerprint != fingerprint) {
        std::fprintf(stderr, "%s run %zu was planned differently than "
                     "earlier shards (fingerprint mismatch)\n",
                     path.c_str(), r);
        std::exit(2);
      }
      core::MetricMap metrics;
      for (const auto& [key, value] : jr.at("metrics").items())
        metrics.emplace(key, value.as_number());
      partials[r].parts.push_back(std::move(metrics));
    }
  }

  std::vector<PlanRun> merged;
  for (Partial& p : partials) {
    PlanRun run;
    run.metrics = core::ShardExecutor::merge(p.plan, p.parts);
    run.plan = std::move(p.plan);
    merged.push_back(std::move(run));
  }
  return merged;
}

// Raw metric of the planned config with `role` (and, for kOption, the given
// axis name + option label) — how a bench renders legacy table cells from a
// plan run without re-evaluating anything.
inline double planned_metric(const PlanRun& run,
                             core::PlannedConfig::Role role,
                             const std::string& axis = "",
                             const std::string& label = "") {
  for (const core::PlannedConfig& p : run.plan.configs) {
    if (p.role != role) continue;
    if (role == core::PlannedConfig::Role::kOption &&
        (run.plan.axes[static_cast<std::size_t>(p.axis)].name != axis ||
         p.label != label))
      continue;
    return run.metrics.at(p.metric_key);
  }
  throw std::out_of_range("plan for \"" + run.plan.task +
                          "\" holds no config for axis \"" + axis +
                          "\" option \"" + label + "\"");
}

// ---------------------------------------------------------------------------
// run_standard_modes: the one mode dispatcher every table/fig bench uses
// ---------------------------------------------------------------------------

// One unit of a plan-level bench: a live task plus its SweepPlan and the
// dist-factory spec that lets a remote worker rebuild the task.
struct PlanUnit {
  util::Json task_spec;                  // dist::*_spec(...).to_json()
  core::SweepPlan plan;
  const core::EvalTask* task = nullptr;  // borrowed from `owner`
  double seed_metric = 0.0;              // training-default metric...
  bool has_seed = false;                 // ...seeded into the cache when set
  std::shared_ptr<void> owner;           // keeps the trained model alive
};

// A plan-level bench (tables 2-5, 10, fig 3): `make(i)` trains/loads unit i
// and returns it; `render(runs)` assembles and writes the final report from
// one complete (plan, metrics) pair per unit. The driver owns every mode:
// --connect, --merge, --emit-plan, --coordinate/--submit/--emit-jobs,
// --shard, and the plain local run — all byte-identical on the same plans.
struct PlanBenchDef {
  std::size_t units = 0;
  std::function<PlanUnit(std::size_t)> make;
  std::function<void(const std::vector<PlanRun>&)> render;
};

inline int run_standard_modes(const BenchCli& cli, BenchTrace& trace,
                              const PlanBenchDef& def) {
  if (cli.connecting()) return run_bench_worker(cli);
  if (cli.merging()) {
    def.render(merge_shard_files(cli, cli.merge_files));
    return 0;
  }

  core::SweepCache cache;
  core::StageStats stages;
  core::DiskStageCache disk;
  core::DiskStageCache* disk_ptr =
      disk_stage_cache_enabled() ? &disk : nullptr;
  const core::StagedExecutor staged(&stages, disk_ptr);

  std::vector<core::SweepPlan> plans;
  std::vector<PlanRun> runs;
  std::vector<dist::DistJob> jobs;
  std::vector<std::shared_ptr<void>> owners;
  for (std::size_t i = 0; i < def.units; ++i) {
    PlanUnit unit = def.make(i);
    if (cli.emit_plan) {
      plans.push_back(std::move(unit.plan));
      continue;
    }
    if (cli.dist_jobs()) {
      jobs.push_back({std::move(unit.task_spec), std::move(unit.plan)});
      continue;
    }
    if (unit.has_seed)
      cache.seed(*unit.task, SysNoiseConfig::training_default(),
                 unit.seed_metric);
    core::SweepOptions opts;
    opts.cache = &cache;
    if (cli.sharded()) {
      const core::ShardExecutor shard(staged, cli.shard_index,
                                      cli.shard_count);
      runs.push_back({unit.plan, shard.execute(*unit.task, unit.plan, opts)});
    } else {
      runs.push_back({unit.plan, staged.execute(*unit.task, unit.plan, opts)});
    }
    // The model must outlive the executor calls above; benches sharing one
    // model across units return the same owner repeatedly, which is fine.
    owners.push_back(std::move(unit.owner));
  }

  if (cli.emit_plan) {
    write_plan_file(cli, plans);
    return 0;
  }
  if (cli.dist_jobs()) {
    std::vector<core::MetricMap> results;
    if (!dist_results(cli, jobs, &results, &trace)) return 0;  // --emit-jobs
    std::vector<PlanRun> out;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      out.push_back({std::move(jobs[i].plan), std::move(results[i])});
    def.render(out);
    return 0;
  }
  print_stage_cache_stats(cli, stages, cache.hits());
  trace.finish(&stages);
  if (cli.sharded()) {
    write_shard_file(cli, runs);
    return 0;
  }
  def.render(runs);
  return 0;
}

// A row-level bench (tables 1, 6-9, figs 4-5): the unit of work is one row
// of the final table, not a SweepPlan. The driver dispatches --connect
// (bench-agnostic worker), --merge (CSV concatenation), --emit-plan (row
// work list), then slices the rows for --shard, calls `row(label)` for each
// survivor (the bench accumulates its table/CSV in the closure), and writes
// <bench>.txt/.csv (+ shard suffix) from `render()`'s {txt, csv} pair.
template <typename RowFn, typename RenderFn>
inline int run_standard_modes(const BenchCli& cli,
                              const std::vector<std::string>& labels,
                              RowFn&& row, RenderFn&& render) {
  reject_coordinate(cli);
  if (cli.connecting()) return run_bench_worker(cli);
  if (cli.merging()) {
    const std::string csv_name = cli.bench + ".csv";
    write_file(csv_name, merge_csv_files(cli.merge_files));
    std::printf("merged %zu shard CSVs into %s/%s\n", cli.merge_files.size(),
                results_dir().c_str(), csv_name.c_str());
    return 0;
  }
  if (cli.emit_plan) {
    util::Json j = util::Json::object();
    j.set("bench", cli.bench);
    j.set("kind", "rows");
    util::Json rows = util::Json::array();
    for (const std::string& label : labels) rows.push_back(label);
    j.set("rows", std::move(rows));
    std::ofstream f(cli.plan_file());
    f << j.dump(2) << "\n";
    std::printf("wrote %s (%zu rows)\n", cli.plan_file().c_str(),
                labels.size());
    return 0;
  }
  for (const std::string& label : shard_slice(labels, cli)) row(label);
  const std::pair<std::string, std::string> out = render();
  std::fputs(out.first.c_str(), stdout);
  write_file(cli.bench + ".txt" + cli.shard_suffix(), out.first);
  write_file(cli.bench + ".csv" + cli.shard_suffix(), out.second);
  return 0;
}

}  // namespace sysnoise::bench
