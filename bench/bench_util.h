// Shared helpers for the bench binaries: output directory handling and
// the banner each table prints.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace sysnoise::bench {

inline std::string results_dir() {
  const char* env = std::getenv("SYSNOISE_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void write_file(const std::string& name, const std::string& content) {
  std::ofstream f(results_dir() + "/" + name);
  f << content;
}

inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("SysNoise reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

// SYSNOISE_FAST=1 trims model lists for smoke runs.
inline bool fast_mode() {
  const char* env = std::getenv("SYSNOISE_FAST");
  return env != nullptr && env[0] == '1';
}

}  // namespace sysnoise::bench
