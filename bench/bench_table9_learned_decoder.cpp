// Table 9 (Appendix B): does a learning-based decoder improve robustness?
// Train x test matrix over {Pillow, OpenCV, Learned} decode stages.
// Expected shape vs the paper: no clear gain from the learned codec — its
// row looks like just another decoder.
#include <cmath>
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/learned_codec.h"
#include "core/mitigation.h"
#include "core/report.h"

using namespace sysnoise;

int main(int argc, char** argv) {
  const bench::BenchCli cli =
      bench::parse_cli(argc, argv, "table9_learned_decoder");
  bench::banner("Table 9 — learning-based decoder", "Appendix B, Table 9");

  const std::string model = "ResNet-S";
  const auto& ds = models::benchmark_cls_dataset();
  const PipelineSpec spec = models::cls_pipeline_spec();
  auto codec = core::get_learned_codec();

  // Test-side evaluators per decode stage.
  auto eval_with_decoder = [&](models::TrainedClassifier& tc,
                               const std::string& dec) {
    if (dec == "Learned") {
      // Manual eval loop through the learned decode stage.
      int correct = 0;
      const int n = static_cast<int>(ds.eval.size());
      for (int b = 0; b < n; b += 16) {
        const int bs = std::min(16, n - b);
        std::vector<Tensor> inputs;
        for (int i = 0; i < bs; ++i)
          inputs.push_back(core::preprocess_learned(
              ds.eval[static_cast<std::size_t>(b + i)].jpeg, *codec, spec));
        nn::Tape t;
        nn::Node* logits =
            tc.model->forward(t, t.input(models::stack_batch(inputs)),
                              nn::BnMode::kEval);
        for (int i = 0; i < bs; ++i) {
          int best = 0;
          for (int c = 1; c < logits->value.dim(1); ++c)
            if (logits->value.at2(i, c) > logits->value.at2(i, best)) best = c;
          if (best == ds.eval[static_cast<std::size_t>(b + i)].label) ++correct;
        }
      }
      return 100.0 * correct / std::max(1, n);
    }
    SysNoiseConfig cfg = SysNoiseConfig::training_default();
    cfg.decoder = dec == "Pillow" ? jpeg::DecoderVendor::kPillow
                                  : jpeg::DecoderVendor::kOpenCV;
    return models::eval_classifier(*tc.model, ds.eval, cfg, spec, &tc.ranges);
  };

  const std::vector<std::string> decoders = {"Pillow", "OpenCV", "Learned"};
  std::vector<std::string> headers = {"Train \\ Test"};
  for (const auto& d : decoders) headers.push_back(d);
  headers.push_back("Mean");
  headers.push_back("Std.");
  core::TextTable table(headers);
  std::string csv = "train,test,acc\n";

  return bench::run_standard_modes(
      cli, decoders,
      [&](const std::string& train_dec) {
        std::printf("[table9] training %s with %s decode...\n", model.c_str(),
                    train_dec.c_str());
        std::fflush(stdout);
        models::ClsPreprocessor prep;
        if (train_dec == "Learned") {
          prep = core::learned_decoder_preprocessor(spec);
        } else {
          SysNoiseConfig cfg = SysNoiseConfig::training_default();
          cfg.decoder = train_dec == "Pillow" ? jpeg::DecoderVendor::kPillow
                                              : jpeg::DecoderVendor::kOpenCV;
          prep = core::fixed_config_preprocessor(spec, cfg);
        }
        auto tc = models::get_classifier(model, "t9_" + train_dec, &prep);

        std::vector<std::string> cells = {train_dec};
        double sum = 0.0, sq = 0.0;
        for (const auto& test_dec : decoders) {
          const double acc = eval_with_decoder(tc, test_dec);
          cells.push_back(core::fmt(acc));
          csv += train_dec + "," + test_dec + "," + core::fmt(acc) + "\n";
          sum += acc;
          sq += acc * acc;
        }
        const double mean = sum / 3.0;
        const double var = sq / 3.0 - mean * mean;
        cells.push_back(core::fmt(mean));
        cells.push_back(core::fmt(std::sqrt(std::max(var, 0.0)), 3));
        table.add_row(std::move(cells));
      },
      [&] { return std::make_pair(table.str(), csv); });
}
